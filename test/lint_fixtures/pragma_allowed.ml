(* Fixture: pragma suppression — the first violation is waived, the second
   identical one on an uncovered line must still be reported. *)
(* dr-lint: allow L3 — fixture exercises the escape hatch *)
let ok s = print_endline s
let bad s = print_endline s
