(* Fixture: L3 direct-stdout violations. Never compiled. *)
let shout s = print_endline s
let report n = Printf.printf "n=%d\n" n
let moan s = prerr_string s
