(* Fixture: L5 fiber-safety violations (lib/core-style context). Never compiled. *)
let bail () = exit 1
let stall ic = input_line ic
