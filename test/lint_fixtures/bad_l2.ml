(* Fixture: L2 polymorphic-compare violations. Never compiled. *)
let sort_floats a = Array.sort compare a
let widest xs ys = max (List.length xs) (List.length ys)
let fold_max xs = List.fold_left max 0 xs
