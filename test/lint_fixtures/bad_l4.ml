(* Fixture: L4 query-confinement violation — a protocol touching the data
   source directly instead of the metered query function. Never compiled. *)
let sneak src i = Data_source.query src i
let sneak_fn src = Dr_source.Data_source.query_fn src
