(* Fixture: L1 determinism violations. Never compiled — parsed by dr_lint only. *)
let roll () = Random.int 6
let stamp () = Sys.time ()
let key v = Hashtbl.hash v
let tbl () = Hashtbl.create ~random:true 16
