(* dr_lint: fixture golden tests for each rule, pragma behaviour, and the
   "live tree is lint-clean" gate.

   Fixtures live in lint_fixtures/ (never compiled; dr_lint parses them).
   The live-tree test runs over ../lib ../bin ../bench — the copies dune
   places next to the test in _build, declared as deps in test/dune. *)

module Driver = Dr_lint.Driver
module Rules = Dr_lint.Rules
module Finding = Dr_lint.Finding
module Pragma = Dr_lint.Pragma

let fixture name = Filename.concat "lint_fixtures" name
let shorts (r : Driver.file_report) = List.map Finding.to_short r.findings

let check_fixture ?(ctx = Rules.lib_ctx) name expected () =
  let r = Driver.lint_file ~ctx (fixture name) in
  Alcotest.(check (list string)) name expected (shorts r)

(* ---- one known-bad fixture per rule, golden file:line [RULE] output ---- *)

let l1 =
  check_fixture "bad_l1.ml"
    [ "bad_l1.ml:2 [L1]"; "bad_l1.ml:3 [L1]"; "bad_l1.ml:4 [L1]"; "bad_l1.ml:5 [L1]" ]

let l2 =
  check_fixture "bad_l2.ml" [ "bad_l2.ml:2 [L2]"; "bad_l2.ml:3 [L2]"; "bad_l2.ml:4 [L2]" ]

let l3 =
  check_fixture "bad_l3.ml" [ "bad_l3.ml:2 [L3]"; "bad_l3.ml:3 [L3]"; "bad_l3.ml:4 [L3]" ]

let l4 = check_fixture "bad_l4.ml" [ "bad_l4.ml:3 [L4]"; "bad_l4.ml:4 [L4]" ]

let l5 =
  check_fixture ~ctx:Rules.core_ctx "bad_l5.ml" [ "bad_l5.ml:2 [L5]"; "bad_l5.ml:3 [L5]" ]

(* The same sources are silent in the zones where their rules don't apply:
   prints are fine in bin/, exit is fine outside core/engine. *)
let zone_scoping () =
  let bin_ctx = Rules.ctx_of_path "bin/whatever.ml" in
  let r = Driver.lint_file ~ctx:bin_ctx (fixture "bad_l3.ml") in
  Alcotest.(check (list string)) "prints allowed in bin/" [] (shorts r);
  let r = Driver.lint_file ~ctx:Rules.lib_ctx (fixture "bad_l5.ml") in
  Alcotest.(check (list string)) "exit allowed outside core/engine" [] (shorts r)

(* ---- pragmas ---- *)

let pragma_suppression () =
  let r = Driver.lint_file ~ctx:Rules.lib_ctx (fixture "pragma_allowed.ml") in
  Alcotest.(check (list string)) "only the uncovered line reported"
    [ "pragma_allowed.ml:5 [L3]" ] (shorts r);
  Alcotest.(check int) "one finding suppressed" 1 (List.length r.suppressed);
  Alcotest.(check (list int)) "no unused pragmas" []
    (List.map (fun p -> p.Pragma.line) r.unused_pragmas);
  match r.suppressed with
  | [ (f, p) ] ->
    Alcotest.(check string) "suppressed finding is the covered line" "pragma_allowed.ml:4 [L3]"
      (Finding.to_short f);
    Alcotest.(check string) "reason survives parsing" "fixture exercises the escape hatch"
      p.Pragma.reason
  | _ -> Alcotest.fail "expected exactly one suppressed finding"

let pragma_unused () =
  let src = "(* dr-lint: allow L2 -- nothing here violates L2 *)\nlet x = 1\n" in
  let r = Driver.lint_source ~ctx:Rules.lib_ctx ~path:"lib/fake.ml" src in
  Alcotest.(check int) "no findings" 0 (List.length r.findings);
  Alcotest.(check int) "pragma reported unused" 1 (List.length r.unused_pragmas)

let pragma_needs_comment_opener () =
  (* Prose that merely mentions the syntax is not a pragma. *)
  let src = "(* docs: write dr-lint: allow L3 above the line *)\nlet f s = print_endline s\n" in
  let r = Driver.lint_source ~ctx:Rules.lib_ctx ~path:"lib/fake.ml" src in
  Alcotest.(check (list string)) "finding not suppressed by prose" [ "fake.ml:2 [L3]" ]
    (shorts r)

(* A pragma on the file's last line has no "line below" to cover: it must
   suppress same-line findings only, and never claim the phantom line a
   trailing newline used to suggest. *)
let pragma_eof_edge () =
  let f line = Finding.at ~file:"f.ml" ~line ~col:0 Finding.L3 "msg" in
  let scan1 src =
    match Pragma.scan src with
    | [ p ] -> p
    | ps -> Alcotest.failf "expected one pragma, got %d" (List.length ps)
  in
  let mid = scan1 "(* dr-lint: allow L3 -- x *)\nlet y = 1\n" in
  Alcotest.(check bool) "mid-file pragma covers the line below" true (Pragma.covers mid (f 2));
  let last = scan1 "let y = 1\n(* dr-lint: allow L3 -- x *)\n" in
  Alcotest.(check bool) "last-line pragma covers its own line" true (Pragma.covers last (f 2));
  Alcotest.(check bool) "last-line pragma does not cover the phantom line below" false
    (Pragma.covers last (f 3));
  let last_nonl = scan1 "let y = 1\n(* dr-lint: allow L3 -- x *)" in
  Alcotest.(check bool) "same without a trailing newline" false (Pragma.covers last_nonl (f 3))

(* ---- context derivation ---- *)

let ctx_of_path () =
  let c = Rules.ctx_of_path "lib/engine/prng.ml" in
  Alcotest.(check bool) "prng may use Random" true c.Rules.allow_random;
  let c = Rules.ctx_of_path "lib/core/exec.ml" in
  Alcotest.(check bool) "exec may query" true c.Rules.allow_query;
  Alcotest.(check bool) "exec is fiber zone" true c.Rules.in_core_engine;
  let c = Rules.ctx_of_path "../lib/stats/table.ml" in
  Alcotest.(check bool) "relative paths still resolve lib/" true c.Rules.in_lib;
  Alcotest.(check bool) "stats is not fiber zone" false c.Rules.in_core_engine;
  let c = Rules.ctx_of_path "bench/bench_regress.ml" in
  Alcotest.(check bool) "bench is outside lib/" false c.Rules.in_lib;
  let c = Rules.ctx_of_path "lib/net/runner.ml" in
  Alcotest.(check bool) "net is the socket runtime" true c.Rules.in_net;
  Alcotest.(check bool) "net runner may not query" false c.Rules.allow_query;
  let c = Rules.ctx_of_path "lib/net/source_server.ml" in
  Alcotest.(check bool) "source server is the net Q meter" true c.Rules.allow_query

(* Corner cases, table-driven: separators, relative prefixes, fixture
   paths. Expected tuple is (in_lib, in_core_engine, allow_query). *)
let ctx_of_path_corners () =
  let cases =
    [
      (* Backslashes are not separators: a Windows-style spelling names no
         zone at all rather than silently matching lib/. *)
      ("lib\\core\\exec.ml", false, false, false);
      (* Leading ./ and ../ segments don't block zone detection. *)
      ("../lib/core/exec.ml", true, true, true);
      ("./lib/core/exec.ml", true, true, true);
      ("../../lib/engine/sim.ml", true, true, false);
      (* Doubled separators add only empty segments. *)
      ("lib//core//exec.ml", true, true, true);
      (* Fixture files under a lib-like path still derive a lib ctx: their
         exclusion from real runs is the tree walker's job, not ctx's. *)
      ("lib/lint/lint_fixtures/bad_l1.ml", true, false, false);
      (* A directory merely named lib deep in another tree still counts —
         ctx derivation is segment membership, by design. *)
      ("vendor/lib/x.ml", true, false, false);
    ]
  in
  List.iter
    (fun (path, in_lib, in_core_engine, allow_query) ->
      let c = Rules.ctx_of_path path in
      Alcotest.(check bool) (path ^ " in_lib") in_lib c.Rules.in_lib;
      Alcotest.(check bool) (path ^ " in_core_engine") in_core_engine c.Rules.in_core_engine;
      Alcotest.(check bool) (path ^ " allow_query") allow_query c.Rules.allow_query)
    cases

(* The walk feeding dr_lint/dr_race is globally sorted and deduplicated, so
   reports and the committed census are byte-stable however the roots are
   spelled — and fixture directories never leak into real runs. *)
let files_under_deterministic () =
  let a = Driver.files_under [ "../lib"; "../bin" ] in
  let b = Driver.files_under [ "../bin"; "../lib"; "../lib" ] in
  Alcotest.(check (list string)) "root order and duplicates don't matter" a b;
  Alcotest.(check bool) "output is sorted" true (List.sort String.compare a = a);
  Alcotest.(check bool) "walk found the tree" true (List.length a > 50);
  let mkdir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755 in
  mkdir "walkroot";
  mkdir "walkroot/lint_fixtures";
  mkdir "walkroot/race_fixtures";
  let touch p = Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc "let x = 1\n") in
  touch "walkroot/ok.ml";
  touch "walkroot/lint_fixtures/planted.ml";
  touch "walkroot/race_fixtures/planted.ml";
  Alcotest.(check (list string)) "fixture dirs are skipped" [ "walkroot/ok.ml" ]
    (Driver.files_under [ "walkroot" ])

(* ---- the lib/net zone ---- *)

(* The socket runtime is exempt from the L1 Unix ban (it IS the real-world
   effect layer), but L4 query confinement still applies outside its
   source_server, and L1 still bans ambient randomness. *)
let net_zone_rules () =
  let lint path src = Driver.lint_source ~ctx:(Rules.ctx_of_path path) ~path src in
  let r = lint "lib/net/fake.ml" "let now () = Unix.gettimeofday ()" in
  Alcotest.(check int) "Unix allowed in lib/net" 0 (List.length r.Driver.findings);
  let r = lint "lib/engine/fake.ml" "let now () = Unix.gettimeofday ()" in
  Alcotest.(check int) "Unix still banned elsewhere" 1 (List.length r.Driver.findings);
  let r = lint "lib/net/fake.ml" "let q s i = Dr_source.Data_source.query s ~peer:0 i" in
  Alcotest.(check int) "query banned in net runner code" 1 (List.length r.Driver.findings);
  let r = lint "lib/net/source_server.ml" "let q s i = Dr_source.Data_source.query s ~peer:0 i" in
  Alcotest.(check int) "query allowed in the net source server" 0 (List.length r.Driver.findings);
  let r = lint "lib/net/fake.ml" "let roll () = Random.int 6" in
  Alcotest.(check int) "ambient randomness still banned in lib/net" 1
    (List.length r.Driver.findings)

(* ---- the live tree ---- *)

let roots = [ "../lib"; "../bin"; "../bench" ]

let live_tree_clean () =
  let report = Driver.lint_paths roots in
  let rendered = Format.asprintf "%a" Driver.pp_report report in
  Alcotest.(check bool) "scans the whole tree" true (report.Driver.files_scanned > 50);
  if not (Driver.clean report) then Alcotest.failf "live tree has findings:@.%s" rendered;
  Alcotest.(check int) "pragmas in deliberate use" 3 report.Driver.total_suppressed

(* Deleting a pragma must re-expose the violation it waives, pointing at the
   right file:line [RULE] — the acceptance criterion for the escape hatch. *)
let pragma_deletion_detected () =
  List.iter
    (fun (path, expected_rule, anchor) ->
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* Blank the pragma lines, preserving line numbers. *)
      let lines = String.split_on_char '\n' src in
      let stripped =
        String.concat "\n"
          (List.map
             (fun l ->
               match Pragma.scan l with [] -> l | _ -> "")
             lines)
      in
      let anchor_line =
        let rec find i = function
          | [] -> Alcotest.failf "%s: anchor %S not found" path anchor
          | l :: rest ->
            let present =
              let nl = String.length l and na = String.length anchor in
              let rec scan j =
                j + na <= nl && (String.equal (String.sub l j na) anchor || scan (j + 1))
              in
              scan 0
            in
            if present then i else find (i + 1) rest
        in
        find 1 lines
      in
      let r = Driver.lint_source ~path stripped in
      let expected =
        Printf.sprintf "%s:%d [%s]" (Filename.basename path) anchor_line
          (Finding.rule_name expected_rule)
      in
      Alcotest.(check (list string))
        (path ^ " without its pragma") [ expected ]
        (List.map Finding.to_short r.findings))
    [
      ("../lib/stats/table.ml", Finding.L3, "Format.std_formatter");
      ("../lib/engine/trace.ml", Finding.L5, "input_line ic");
    ]

(* Reverting an L2/L3 fix must re-expose the finding at the original site. *)
let fix_reversion_detected () =
  let cases =
    [
      ( "lib/stats/summary.ml",
        "let _ = Array.sort compare arr\n",
        "summary.ml:1 [L2]" );
      ( "lib/stats/table.ml",
        "let print t = print_string (render t)\n",
        "table.ml:1 [L3]" );
    ]
  in
  List.iter
    (fun (path, src, expected) ->
      let r = Driver.lint_source ~path src in
      Alcotest.(check (list string)) ("reverted " ^ path) [ expected ]
        (List.map Finding.to_short r.findings))
    cases

let suite =
  [
    Alcotest.test_case "fixture: L1 determinism" `Quick l1;
    Alcotest.test_case "fixture: L2 polymorphic compare" `Quick l2;
    Alcotest.test_case "fixture: L3 direct stdout" `Quick l3;
    Alcotest.test_case "fixture: L4 query confinement" `Quick l4;
    Alcotest.test_case "fixture: L5 fiber safety" `Quick l5;
    Alcotest.test_case "zone scoping" `Quick zone_scoping;
    Alcotest.test_case "pragma: suppression + golden" `Quick pragma_suppression;
    Alcotest.test_case "pragma: unused is reported" `Quick pragma_unused;
    Alcotest.test_case "pragma: needs a comment opener" `Quick pragma_needs_comment_opener;
    Alcotest.test_case "pragma: last-line edge" `Quick pragma_eof_edge;
    Alcotest.test_case "ctx_of_path zones" `Quick ctx_of_path;
    Alcotest.test_case "ctx_of_path corner cases" `Quick ctx_of_path_corners;
    Alcotest.test_case "files_under is sorted, deduped, fixture-free" `Quick
      files_under_deterministic;
    Alcotest.test_case "lib/net zone rules" `Quick net_zone_rules;
    Alcotest.test_case "live tree is lint-clean" `Quick live_tree_clean;
    Alcotest.test_case "deleting a pragma re-exposes the finding" `Quick pragma_deletion_detected;
    Alcotest.test_case "reverting a fix re-exposes the finding" `Quick fix_reversion_detected;
  ]
