An escaping mutable cell with no zone is an R1 finding:

  $ mkdir -p proj/lib/engine proj/lib/check
  $ cat > proj/lib/engine/state.ml << 'ML'
  > let hits = ref 0
  > let bump () = hits := !hits + 1
  > ML
  $ cat > proj/lib/check/user.ml << 'ML'
  > let poke () = State.hits := 1
  > ML
  $ dr_race proj/lib
  proj/lib/engine/state.ml:1:4 [R1] escaping mutable value `State.hits` (ref) has no domain zone; declare it in dr-race.zones or with an inline zone pragma
  dr_race: 2 files scanned, 1 finding, 0 suppressed by pragma
  [1]

Declaring it engine-shared satisfies R1, but now the cross-module access
from user.ml breaks the zone discipline (R2) — same-unit access in bump
stays legal:

  $ cat > zones << 'EOF'
  > value State.hits engine-shared -- the one shared counter
  > EOF
  $ dr_race --zones zones proj/lib
  proj/lib/check/user.ml:1:14 [R2] engine-shared cell State.hits accessed directly from User; go through the Domain_safe wrapper
  dr_race: 2 files scanned, 1 finding, 0 suppressed by pragma
  [1]
  $ dr_race --zones zones --format json proj/lib
  {"schema": "dr-lint/1", "kind": "finding", "file": "proj/lib/check/user.ml", "line": 1, "col": 14, "rule": "R2", "msg": "engine-shared cell State.hits accessed directly from User; go through the Domain_safe wrapper"}
  [1]

The census is stable dr-race/1 JSON; the zone column reflects the
declarations in force:

  $ dr_race --zones zones --inventory proj/lib
  {
    "schema": "dr-race/1",
    "units": 2,
    "values": [
      { "key": "State.hits", "kind": "ref", "file": "proj/lib/engine/state.ml", "line": 1, "col": 4, "escaping": true, "guarded": false, "zone": "engine-shared" }
    ],
    "types": [
    ],
    "singletons": [
    ]
  }

Fixing the trespass by moving the access into the defining unit brings the
tree back to clean:

  $ cat > proj/lib/check/user.ml << 'ML'
  > let poke () = State.bump ()
  > ML
  $ dr_race --zones zones proj/lib
  dr_race: 2 files scanned, 0 findings, 0 suppressed by pragma
