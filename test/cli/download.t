The main CLI runs a protocol and reports the verdict with Q/T/M.

  $ dr_download -p crash-general -k 8 -n 512 -t 2 --crash silent
  crash-general    OK  Q=124 (mean 117.8) T=8.0 M=462 bits=101455 status=completed

  $ dr_download -p byz-committee --model byzantine -k 9 -n 512 -t 4 --attack collude
  byz-committee    OK  Q=512 (mean 512.0) T=0.0 M=40 bits=23040 status=completed

A failed download exits non-zero:

  $ dr_download -p balanced -k 4 -n 64 -t 1 --crash silent 2> /dev/null
  balanced         FAIL Q=16 (mean 16.0) T=1.0 M=9 bits=720 status=deadlock[1,2,3] wrong=[1,2,3]
  [124]

Sweeps emit CSV:

  $ dr_sweep --vary beta --values 0,0.5 -k 8 -n 256 --seeds 1
  protocol,k,n,t,beta,B,seed,ok,q_max,q_mean,q_total,time,msgs,bits,max_msg
  crash-general,8,256,0,0.0000,576,7932,true,32,32.0,256,1.62,168,52108,353
  crash-general,8,256,4,0.5000,576,7932,true,83,69.5,278,11.95,492,63518,353

Traces round-trip through files and the analyser:

  $ dr_download -p balanced -k 4 -n 32 -t 0 --crash none --trace-out t.trace > /dev/null
  $ dr_trace t.trace --summary
  events:       60
  peers:        4
  sends:        12
  deliveries:   12
  queries:      32
  crashes:      0
  terminations: 4
  time span:    [0.000, 1.000]

An unknown attack name is a clean usage error, not a crash:

  $ dr_download -p byz-2cycle --model byzantine -k 5 -n 64 -t 1 --attack bogus
  dr_download: unknown attack "bogus" for byz-2cycle (known: default, nearmiss, silent, lie, equivocate, flood, adaptive, splitcast)
  [124]

The adaptive adversary (corrupts observed traffic online) is in the catalog:

  $ dr_download -p byz-2cycle --model byzantine -k 9 -n 256 -t 2 --attack adaptive
  byz-2cycle       OK  Q=256 (mean 256.0) T=0.0 M=56 bits=17920 status=completed

The net transport classifies every peer's outcome; injected --chaos faults
are masked below the protocols' assumptions (the fault schedule is seeded,
so the taxonomy line is reproducible; the report's T is wall clock, so
only the taxonomy line is asserted here):

  $ dr_download -p crash-general -k 5 -n 256 -t 2 --crash silent --seed 1 \
  >   --transport net --chaos 7:drop=0.05,corrupt=0.02 | tail -1
  peers: 0:crashed 1:completed 2:crashed 3:completed 4:completed

An unreachable source is a clean error once the retry budget is spent, not
a hang or a crash:

  $ dr_download -p crash-general -k 4 -n 256 -t 1 --transport net \
  >   --source 127.0.0.1:1 --net-retries 0 --request-timeout 0.2
  dr_download: source 127.0.0.1:1 unreachable: connect failed after 1 attempt(s): Connection refused
  [124]

So is a malformed fault spec:

  $ dr_download -p balanced -k 4 -n 64 -t 1 --transport net --chaos 7:drop=2.0
  dr_download: --chaos: drop expects a probability in [0,1], got "2.0"
  [124]
