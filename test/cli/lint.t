A planted violation is reported in text and as dr-lint/1 JSON lines, with
the same nonzero exit:

  $ mkdir -p lib
  $ cat > lib/bad.ml << 'ML'
  > let greet () = print_endline "hi"
  > ML
  $ dr_lint lib
  lib/bad.ml:1:15 [L3] print_endline writes straight to the process stdout/stderr; take a Format.formatter parameter (or go through Trace)
  dr_lint: 1 file scanned, 1 finding, 0 suppressed by pragma
  [1]
  $ dr_lint --format json lib
  {"schema": "dr-lint/1", "kind": "finding", "file": "lib/bad.ml", "line": 1, "col": 15, "rule": "L3", "msg": "print_endline writes straight to the process stdout/stderr; take a Format.formatter parameter (or go through Trace)"}
  [1]

A pragma waives the finding and a clean run exits 0 (JSON mode prints
nothing when there is nothing to report):

  $ cat > lib/bad.ml << 'ML'
  > (* dr-lint: allow L3 -- demo waiver *)
  > let greet () = print_endline "hi"
  > ML
  $ dr_lint lib
  dr_lint: 1 file scanned, 0 findings, 1 suppressed by pragma
  $ dr_lint --format json lib

A stale pragma is itself a finding, in both formats:

  $ cat > lib/bad.ml << 'ML'
  > (* dr-lint: allow L3 -- now stale *)
  > let greet () = 1
  > ML
  $ dr_lint lib
  lib/bad.ml:1: unused pragma (allow L3) — nothing to suppress
  dr_lint: 1 file scanned, 0 findings, 0 suppressed by pragma
  [1]
  $ dr_lint --format json lib
  {"schema": "dr-lint/1", "kind": "unused-pragma", "file": "lib/bad.ml", "line": 1, "rule": "L3"}
  [1]
