A clean protocol under the coverage campaign exits 0 and writes stats:

  $ dr_check --protocol balanced --campaign --budget 40 --seed 1 --stats stats.json
  balanced: 40 runs (10 seed + 30 mutated), 23 signatures (8 runs hit new coverage), corpus 8, 0 violations
    stats: stats.json
  dr_check: no violations
  $ head -c 28 stats.json
  [
  {
    "schema": "dr-campaign

A repro file naming an out-of-catalog attack is a usage error, not a crash:

  $ cat > bad.repro.json << 'JSON'
  > { "schema": "dr-check/1", "protocol": "byz-2cycle", "attack": "bogus",
  >   "k": 3, "n": 5, "t": 1, "seed": "1", "crash": "none", "script": [],
  >   "invariant": "agreement", "event": 0, "detail": "" }
  > JSON
  $ dr_check --replay bad.repro.json
  replaying byz-2cycle/bogus k=3 n=5 t=1 seed=1 crash=none: agreement at event 0 (script length 0)
  dr_check: unknown attack "bogus" for byz-2cycle (known: default, nearmiss, silent, lie, equivocate, flood, adaptive, splitcast)
  [2]
