(* Tests for the simulation substrate: PRNG, heap, and the effects-based
   event loop. *)

open Dr_engine

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next64 a <> Prng.next64 b then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_prng_int_bounds () =
  let g = Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_one () =
  let g = Prng.create 7L in
  for _ = 1 to 10 do
    checki "bound 1 is 0" 0 (Prng.int g 1)
  done

let test_prng_float_bounds () =
  let g = Prng.create 3L in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    checkb "in range" true (v >= 0. && v < 2.5)
  done

let test_prng_split_independent () =
  let g = Prng.create 5L in
  let a = Prng.split g in
  let b = Prng.split g in
  (* The two children produce different streams. *)
  checkb "children differ" true (Prng.next64 a <> Prng.next64 b)

let test_prng_split_deterministic () =
  let mk () =
    let g = Prng.create 9L in
    let c = Prng.split g in
    Prng.next64 c
  in
  check Alcotest.int64 "split reproducible" (mk ()) (mk ())

let test_prng_int_roughly_uniform () =
  let g = Prng.create 11L in
  let buckets = Array.make 10 0 in
  let rounds = 10_000 in
  for _ = 1 to rounds do
    let v = Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      checkb (Printf.sprintf "bucket %d near uniform (%d)" i c) true (c > 700 && c < 1300))
    buckets

let test_prng_bool_balance () =
  let g = Prng.create 13L in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool g then incr trues
  done;
  checkb "balanced" true (!trues > 4500 && !trues < 5500)

let test_prng_shuffle_permutation () =
  let g = Prng.create 17L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun t -> Heap.push h ~time:t (int_of_float (t *. 10.))) [ 3.0; 1.0; 2.0; 0.5; 2.5 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "sorted by time" [ 5; 10; 20; 25; 30 ] (List.rev !order)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.push h ~time:1.0 i
  done;
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "ties in insertion order" (List.init 100 Fun.id) (List.rev !out)

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h ~time:5. "e";
  Heap.push h ~time:1. "a";
  checkb "not empty" false (Heap.is_empty h);
  checki "size 2" 2 (Heap.size h);
  (match Heap.pop h with
  | Some (t, v) ->
    check Alcotest.(float 0.0) "first time" 1. t;
    check Alcotest.string "first value" "a" v
  | None -> Alcotest.fail "unexpected empty");
  Heap.push h ~time:0.5 "z";
  (match Heap.pop h with
  | Some (_, v) -> check Alcotest.string "reordered" "z" v
  | None -> Alcotest.fail "unexpected empty");
  (match Heap.peek_time h with
  | Some t -> check Alcotest.(float 0.0) "peek" 5. t
  | None -> Alcotest.fail "peek empty")

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~time:1. 1;
  Heap.clear h;
  checkb "empty after clear" true (Heap.is_empty h);
  checkb "pop none" true (Heap.pop h = None)

let test_heap_random_order_matches_sort () =
  let g = Prng.create 23L in
  let h = Heap.create () in
  let times = Array.init 500 (fun _ -> Prng.float g 100.) in
  Array.iter (fun t -> Heap.push h ~time:t t) times;
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  let sorted = Array.copy times in
  Array.sort compare sorted;
  check Alcotest.(list (float 0.0)) "heap sorts" (Array.to_list sorted) (List.rev !out)

let test_heap_pop_min_matches_pop () =
  let g = Prng.create 29L in
  let times = Array.init 300 (fun _ -> Prng.float g 10.) in
  let mk () =
    let h = Heap.create () in
    Array.iteri (fun i t -> Heap.push h ~time:t i) times;
    h
  in
  (* Same pushes through both drains must give the same sequence. *)
  let a = mk () and b = mk () in
  while not (Heap.is_empty a) do
    let t = Heap.min_time a in
    let v = Heap.pop_min a in
    match Heap.pop b with
    | Some (t', v') ->
      check Alcotest.(float 0.0) "min_time = pop time" t' t;
      checki "pop_min = pop value" v' v
    | None -> Alcotest.fail "b drained early"
  done;
  checkb "b drained" true (Heap.is_empty b)

let test_heap_grow_preserves_order () =
  (* Push far past the initial capacity; order must survive every grow. *)
  let h = Heap.create () in
  for i = 999 downto 0 do
    Heap.push h ~time:(float_of_int i) i
  done;
  checki "size" 1000 (Heap.size h);
  for i = 0 to 999 do
    checki "ascending" i (Heap.pop_min h)
  done

let test_heap_reuse_after_clear () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.push h ~time:(float_of_int (100 - i)) i
  done;
  Heap.clear h;
  (* Ties after clear: seq keeps counting, insertion order still wins. *)
  for i = 0 to 49 do
    Heap.push h ~time:3. i
  done;
  for i = 0 to 49 do
    checki "fifo after clear" i (Heap.pop_min h)
  done

let test_heap_empty_accessors_raise () =
  let h : int Heap.t = Heap.create () in
  Alcotest.check_raises "min_time" (Invalid_argument "Heap.min_time: empty") (fun () ->
      ignore (Heap.min_time h));
  Alcotest.check_raises "pop_min" (Invalid_argument "Heap.pop_min: empty") (fun () ->
      ignore (Heap.pop_min h))

(* ------------------------------------------------------------------ *)
(* Ring                                                               *)
(* ------------------------------------------------------------------ *)

let test_ring_fifo () =
  let r = Ring.create () in
  checkb "starts empty" true (Ring.is_empty r);
  for i = 0 to 9 do
    Ring.push r i
  done;
  checki "length" 10 (Ring.length r);
  for i = 0 to 9 do
    checki "fifo order" i (Ring.pop r)
  done;
  checkb "drained" true (Ring.is_empty r)

let test_ring_wraps_and_grows () =
  (* Interleave pushes and pops so head walks around the circle, then grow
     with the live region wrapped. *)
  let r = Ring.create () in
  let next_in = ref 0 and next_out = ref 0 in
  for _ = 1 to 5 do
    for _ = 1 to 7 do
      Ring.push r !next_in;
      incr next_in
    done;
    for _ = 1 to 5 do
      checki "wrap order" !next_out (Ring.pop r);
      incr next_out
    done
  done;
  for _ = 1 to 100 do
    Ring.push r !next_in;
    incr next_in
  done;
  while not (Ring.is_empty r) do
    checki "post-grow order" !next_out (Ring.pop r);
    incr next_out
  done;
  checki "nothing lost" !next_in !next_out

let test_ring_clear_and_reuse () =
  let r = Ring.create () in
  for i = 0 to 20 do
    Ring.push r i
  done;
  Ring.clear r;
  checkb "empty after clear" true (Ring.is_empty r);
  Ring.push r 7;
  checki "usable after clear" 7 (Ring.pop r);
  Alcotest.check_raises "pop empty" (Invalid_argument "Ring.pop: empty") (fun () ->
      ignore (Ring.pop r))

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

module Smsg = struct
  type t = Ping of int | Value of bool

  let size_bits = function Ping _ -> 32 | Value _ -> 1
  let tag = function Ping i -> Printf.sprintf "ping(%d)" i | Value b -> Printf.sprintf "val(%b)" b
end

module S = Sim.Make (Smsg)

let input_bits = [| true; false; true; true |]
let query_bit ~peer:_ i = input_bits.(i)

let test_sim_pingpong () =
  (* Peer 0 sends its id to peer 1, which replies with it doubled. *)
  let cfg = Sim.default_config ~k:2 ~query_bit in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          S.send 1 (Smsg.Ping 21);
          match S.receive () with
          | _, Smsg.Ping v -> v
          | _ -> -1
        end
        else begin
          match S.receive () with
          | src, Smsg.Ping v ->
            S.send src (Smsg.Ping (v * 2));
            v
          | _ -> -1
        end)
  in
  checkb "completed" true (outcome.Sim.status = Sim.Completed);
  (match outcome.Sim.outputs.(0) with
  | Some (t, v) ->
    checki "reply doubled" 42 v;
    check Alcotest.(float 0.001) "two hops" 2.0 t
  | None -> Alcotest.fail "peer 0 has no output");
  match outcome.Sim.outputs.(1) with
  | Some (_, v) -> checki "peer1 saw 21" 21 v
  | None -> Alcotest.fail "peer 1 has no output"

let test_sim_query () =
  let cfg = Sim.default_config ~k:1 ~query_bit in
  let outcome = S.run cfg (fun _ -> List.init 4 S.query) in
  match outcome.Sim.outputs.(0) with
  | Some (_, vs) -> check Alcotest.(list bool) "queried input" [ true; false; true; true ] vs
  | None -> Alcotest.fail "no output"

let test_sim_query_metrics () =
  let cfg = Sim.default_config ~k:3 ~query_bit in
  let outcome =
    S.run cfg (fun i ->
        for _ = 1 to i + 1 do
          ignore (S.query 0)
        done;
        i)
  in
  for i = 0 to 2 do
    checki "query count" (i + 1) (Metrics.peer outcome.Sim.metrics i).Metrics.queries
  done

let test_sim_crash_at_time () =
  (* Peer 1 crashes at t=0.5; its pending send is still delivered but it
     never answers. Peer 0 blocks forever -> deadlock detected. *)
  let cfg =
    {
      (Sim.default_config ~k:2 ~query_bit) with
      crash = (fun i -> if i = 1 then Sim.At_time 0.5 else Sim.Never);
    }
  in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          S.send 1 (Smsg.Ping 1);
          let _ = S.receive () in
          0
        end
        else begin
          let _ = S.receive () in
          S.send 0 (Smsg.Ping 2);
          1
        end)
  in
  checkb "deadlock" true (outcome.Sim.status = Sim.Deadlock [ 0 ]);
  checkb "crashed peer has no output" true (outcome.Sim.outputs.(1) = None)

let test_sim_after_sends_partial_broadcast () =
  (* Peer 0 broadcasts to 4 others but dies after 2 sends. *)
  let k = 5 in
  let cfg =
    {
      (Sim.default_config ~k ~query_bit) with
      crash = (fun i -> if i = 0 then Sim.After_sends 2 else Sim.Never);
    }
  in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          S.broadcast (Smsg.Ping 9);
          0
        end
        else begin
          match S.receive () with
          | _, Smsg.Ping v -> v
          | _ -> -1
        end)
  in
  (* Peers 1 and 2 got the message; 3 and 4 blocked. *)
  checkb "sender no output" true (outcome.Sim.outputs.(0) = None);
  checkb "peer1 got it" true (outcome.Sim.outputs.(1) = Some (1.0, 9));
  checkb "peer2 got it" true (outcome.Sim.outputs.(2) = Some (1.0, 9));
  checkb "peer3 blocked" true (outcome.Sim.outputs.(3) = None);
  (match outcome.Sim.status with
  | Sim.Deadlock l -> check Alcotest.(list int) "blocked peers" [ 3; 4 ] l
  | _ -> Alcotest.fail "expected deadlock");
  checki "exactly 2 sends counted" 2 (Metrics.peer outcome.Sim.metrics 0).Metrics.msgs_sent

let test_sim_after_sends_zero_is_silent () =
  let cfg =
    {
      (Sim.default_config ~k:2 ~query_bit) with
      crash = (fun i -> if i = 0 then Sim.After_sends 0 else Sim.Never);
    }
  in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          S.send 1 (Smsg.Ping 1);
          0
        end
        else 1)
  in
  checki "no sends" 0 (Metrics.peer outcome.Sim.metrics 0).Metrics.msgs_sent;
  checkb "receiver unaffected" true (outcome.Sim.outputs.(1) <> None)

let test_sim_latency_order () =
  (* Messages with different latencies arrive in latency order, not send
     order: the core of asynchrony. *)
  let cfg =
    {
      (Sim.default_config ~k:3 ~query_bit) with
      latency =
        (fun ~src ~dst:_ ~time:_ ~size_bits:_ -> if src = 1 then 5.0 else 1.0);
    }
  in
  let outcome =
    S.run cfg (fun i ->
        match i with
        | 0 ->
          let s1, _ = S.receive () in
          let s2, _ = S.receive () in
          (s1 * 10) + s2
        | _ ->
          S.send 0 (Smsg.Ping i);
          i)
  in
  match outcome.Sim.outputs.(0) with
  | Some (t, v) ->
    checki "slow sender second" 21 v;
    check Alcotest.(float 0.001) "ends at slow latency" 5.0 t
  | None -> Alcotest.fail "no output"

let test_sim_mailbox_buffers () =
  (* Messages delivered while the peer computes are queued, not lost. *)
  let cfg = Sim.default_config ~k:3 ~query_bit in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          (* Sleep past both deliveries, then read them from the mailbox. *)
          S.sleep 10.;
          let a = S.receive () in
          let b = S.receive () in
          fst a + fst b
        end
        else begin
          S.send 0 (Smsg.Ping i);
          0
        end)
  in
  match outcome.Sim.outputs.(0) with
  | Some (_, v) -> checki "both buffered" 3 v
  | None -> Alcotest.fail "no output"

let test_sim_start_times () =
  let cfg =
    { (Sim.default_config ~k:2 ~query_bit) with start_time = (fun i -> float_of_int i *. 7.) }
  in
  let outcome = S.run cfg (fun _ -> S.now ()) in
  checkb "peer 0 starts at 0" true (outcome.Sim.outputs.(0) = Some (0., 0.));
  checkb "peer 1 starts at 7" true (outcome.Sim.outputs.(1) = Some (7., 7.))

let test_sim_deterministic_replay () =
  (* Two runs with the same seed produce identical outputs and timings. *)
  let run () =
    let cfg =
      { (Sim.default_config ~k:4 ~query_bit) with seed = 99L }
    in
    let outcome =
      S.run cfg (fun _i ->
          let g = S.rng () in
          let v = Prng.int g 1000 in
          S.broadcast (Smsg.Ping v);
          let acc = ref v in
          for _ = 1 to 3 do
            match S.receive () with
            | _, Smsg.Ping w -> acc := !acc + w
            | _ -> ()
          done;
          !acc)
    in
    Array.map (function Some (_, v) -> v | None -> -1) outcome.Sim.outputs
  in
  check Alcotest.(array int) "replay identical" (run ()) (run ())

let test_sim_rng_isolated_from_schedule () =
  (* A peer's random stream does not depend on what others do. *)
  let draw k =
    let cfg = { (Sim.default_config ~k ~query_bit) with seed = 5L } in
    let outcome =
      S.run cfg (fun i -> if i = 0 then Prng.int (S.rng ()) 1_000_000 else -1)
    in
    match outcome.Sim.outputs.(0) with Some (_, v) -> v | None -> -1
  in
  checki "same first draw regardless of k" (draw 2) (draw 2);
  (* Note: with different k the master split sequence differs only for later
     peers; peer 0's stream is the first split either way. *)
  checki "k-independent" (draw 2) (draw 5)

let test_sim_trace_records () =
  let trace = Trace.create () in
  let cfg = { (Sim.default_config ~k:2 ~query_bit) with trace = Some trace } in
  let _ =
    S.run cfg (fun i ->
        if i = 0 then begin
          ignore (S.query 2);
          S.send 1 (Smsg.Ping 3);
          0
        end
        else begin
          let _ = S.receive () in
          1
        end)
  in
  let evs = Trace.events trace in
  let has p = List.exists p evs in
  checkb "has query" true
    (has (function Trace.Queried { peer = 0; index = 2; value = true; _ } -> true | _ -> false));
  checkb "has send" true
    (has (function Trace.Sent { src = 0; dst = 1; _ } -> true | _ -> false));
  checkb "has delivery" true
    (has (function Trace.Delivered { src = 0; dst = 1; _ } -> true | _ -> false));
  checkb "has terminations" true
    (has (function Trace.Terminated { peer = 1; _ } -> true | _ -> false));
  checki "query view" 1 (List.length (Trace.query_view trace 0))

let test_sim_query_latency () =
  let cfg =
    {
      (Sim.default_config ~k:1 ~query_bit) with
      query_latency = (fun ~peer:_ ~time:_ -> 0.25);
    }
  in
  let outcome =
    S.run cfg (fun _ ->
        ignore (S.query 0);
        ignore (S.query 1);
        S.now ())
  in
  match outcome.Sim.outputs.(0) with
  | Some (_, t) -> check Alcotest.(float 0.001) "two query round-trips" 0.5 t
  | None -> Alcotest.fail "no output"

let test_sim_die () =
  let cfg = Sim.default_config ~k:2 ~query_bit in
  let outcome = S.run cfg (fun i -> if i = 0 then S.die () else 1) in
  checkb "dead peer no output" true (outcome.Sim.outputs.(0) = None);
  checkb "other completes" true (outcome.Sim.outputs.(1) <> None);
  checkb "overall completed (dier is not blocked)" true (outcome.Sim.status = Sim.Completed)

let test_sim_event_limit () =
  let cfg = { (Sim.default_config ~k:2 ~query_bit) with max_events = 50 } in
  let outcome =
    S.run cfg (fun i ->
        (* Infinite ping-pong. *)
        let other = 1 - i in
        if i = 0 then S.send other (Smsg.Ping 0);
        let rec loop () =
          let _ = S.receive () in
          S.send other (Smsg.Ping 0);
          loop ()
        in
        loop ())
  in
  checkb "limit reached" true (outcome.Sim.status = Sim.Event_limit_reached)

let test_sim_send_to_self () =
  let cfg = Sim.default_config ~k:2 ~query_bit in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          S.send 0 (Smsg.Ping 5);
          match S.receive () with
          | src, Smsg.Ping v -> (src * 100) + v
          | _ -> -1
        end
        else 0)
  in
  checkb "self-send delivered" true (outcome.Sim.outputs.(0) = Some (1.0, 5))

let test_sim_send_bad_destination () =
  let cfg = Sim.default_config ~k:2 ~query_bit in
  Alcotest.check_raises "bad dst" (Invalid_argument "Sim.send: bad destination") (fun () ->
      ignore (S.run cfg (fun i -> if i = 0 then S.send 7 (Smsg.Ping 1) else ())))

let test_sim_negative_latency_rejected () =
  let cfg =
    {
      (Sim.default_config ~k:2 ~query_bit) with
      latency = (fun ~src:_ ~dst:_ ~time:_ ~size_bits:_ -> -1.);
    }
  in
  Alcotest.check_raises "negative latency" (Invalid_argument "Sim.run: negative latency")
    (fun () -> ignore (S.run cfg (fun i -> if i = 0 then S.send 1 (Smsg.Ping 1) else ())))

let test_sim_crash_during_query_wait () =
  (* A peer blocked on a slow source query is killed cleanly by an At_time
     crash. *)
  let cfg =
    {
      (Sim.default_config ~k:2 ~query_bit) with
      query_latency = (fun ~peer:_ ~time:_ -> 10.);
      crash = (fun i -> if i = 0 then Sim.At_time 5. else Sim.Never);
    }
  in
  let outcome = S.run cfg (fun i -> if i = 0 then (ignore (S.query 0); 1) else 2) in
  checkb "victim has no output" true (outcome.Sim.outputs.(0) = None);
  checkb "other peer unaffected" true (outcome.Sim.outputs.(1) = Some (0., 2));
  checkb "completed (victim is dead, not blocked)" true (outcome.Sim.status = Sim.Completed)

let test_sim_crash_before_start () =
  (* Crash scheduled before the peer's (delayed) start: it never runs. *)
  let cfg =
    {
      (Sim.default_config ~k:2 ~query_bit) with
      start_time = (fun i -> if i = 0 then 5. else 0.);
      crash = (fun i -> if i = 0 then Sim.At_time 1. else Sim.Never);
    }
  in
  let outcome = S.run cfg (fun i -> i) in
  checkb "never started" true (outcome.Sim.outputs.(0) = None);
  checki "no queries, no sends" 0 (Metrics.peer outcome.Sim.metrics 0).Metrics.msgs_sent

let test_sim_after_queries_crash () =
  let cfg =
    {
      (Sim.default_config ~k:1 ~query_bit) with
      crash = (fun _ -> Sim.After_queries 2);
    }
  in
  let outcome =
    S.run cfg (fun _ ->
        ignore (S.query 0);
        ignore (S.query 1);
        ignore (S.query 2);
        0)
  in
  checkb "died at the second query" true (outcome.Sim.outputs.(0) = None);
  checki "exactly 2 queries counted" 2 (Metrics.peer outcome.Sim.metrics 0).Metrics.queries

let test_trace_stats_matrices () =
  let trace = Trace.create () in
  let cfg = { (Sim.default_config ~k:3 ~query_bit) with trace = Some trace } in
  let _ =
    S.run cfg (fun i ->
        if i = 0 then begin
          S.send 1 (Smsg.Ping 1);
          S.send 1 (Smsg.Ping 2);
          S.send 2 (Smsg.Value true);
          0
        end
        else begin
          ignore (S.query 0);
          let _ = S.receive () in
          if i = 1 then ignore (S.receive ());
          i
        end)
  in
  let m = Trace_stats.message_matrix trace ~k:3 in
  checki "0->1 twice" 2 m.(0).(1);
  checki "0->2 once" 1 m.(0).(2);
  checki "no reverse" 0 m.(1).(0);
  let b = Trace_stats.bits_matrix trace ~k:3 in
  checki "bits 0->1" 64 b.(0).(1);
  checki "bits 0->2" 1 b.(0).(2);
  let d = Trace_stats.delivered_matrix trace ~k:3 in
  checki "deliveries match sends" 2 d.(0).(1);
  let q = Trace_stats.queries_per_peer trace ~k:3 in
  check Alcotest.(array int) "queries" [| 0; 1; 1 |] q;
  (match Trace_stats.busiest_link m with
  | Some (0, 1, 2) -> ()
  | _ -> Alcotest.fail "busiest link wrong");
  checkb "renders" true
    (String.length (Format.asprintf "%a" (Trace_stats.pp_matrix ~label:"m") m) > 0)

let test_trace_save_load_roundtrip () =
  let trace = Trace.create () in
  List.iter (Trace.record trace)
    [
      Trace.Sent { time = 0.; src = 0; dst = 1; size_bits = 72; tag = "share(0.1)" };
      Trace.Delivered { time = 0.75; src = 0; dst = 1; tag = "share(0.1)" };
      Trace.Queried { time = 1.; peer = 2; index = 17; value = true };
      Trace.Queried { time = 1.; peer = 2; index = 18; value = false };
      Trace.Crashed { time = 1.5; peer = 3 };
      Trace.Terminated { time = 2.25; peer = 0 };
      Trace.Deadlocked { time = 3.; blocked = [ 1; 2 ] };
      Trace.Note { time = 3.5; peer = 1; text = "seg 1 candidates: 01|10" };
    ];
  let path = Filename.temp_file "dr_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save trace path;
      let back = Trace.load path in
      checkb "same events" true (Trace.events back = Trace.events trace))

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "dr_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "sent nonsense\n";
      close_out oc;
      match Trace.load path with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

let test_metrics_summary_selection () =
  let m = Metrics.create 3 in
  Metrics.on_query m 0;
  Metrics.on_query m 0;
  Metrics.on_query m 2;
  Metrics.on_send m 1 ~size_bits:100;
  Metrics.on_send m 1 ~size_bits:50;
  let all = Metrics.summarize m in
  checki "max over all" 2 all.Metrics.max_queries;
  checki "msgs" 2 all.Metrics.total_msgs;
  checki "bits" 150 all.Metrics.total_bits;
  checki "max msg" 100 all.Metrics.max_msg_bits;
  let only2 = Metrics.summarize ~select:(fun i -> i = 2) m in
  checki "selected max" 1 only2.Metrics.max_queries;
  checki "selected msgs" 0 only2.Metrics.total_msgs

let test_metrics_receives_and_wakeups () =
  let m = Metrics.create 3 in
  Metrics.on_receive m 0;
  Metrics.on_receive m 0;
  Metrics.on_wakeup m 0;
  Metrics.on_receive m 1;
  Metrics.on_wakeup m 1;
  Metrics.on_wakeup m 1;
  Metrics.on_wakeup m 1;
  checki "peer0 receives" 2 (Metrics.peer m 0).Metrics.msgs_received;
  checki "peer1 wakeups" 3 (Metrics.peer m 1).Metrics.wakeups;
  checki "max wakeups (all)" 3 (Metrics.summarize m).Metrics.max_wakeups;
  checki "max wakeups (without 1)" 1
    (Metrics.summarize ~select:(fun i -> i <> 1) m).Metrics.max_wakeups;
  (* [peer] is a snapshot: mutating it must not write back. *)
  let p = Metrics.peer m 0 in
  p.Metrics.wakeups <- 99;
  checki "snapshot detached" 1 (Metrics.peer m 0).Metrics.wakeups

let test_metrics_max_msg_bits_per_peer () =
  let m = Metrics.create 2 in
  Metrics.on_send m 0 ~size_bits:10;
  Metrics.on_send m 0 ~size_bits:500;
  Metrics.on_send m 0 ~size_bits:20;
  Metrics.on_send m 1 ~size_bits:900;
  checki "peer0 max" 500 (Metrics.peer m 0).Metrics.max_msg_bits;
  checki "summary max excludes deselected" 500
    (Metrics.summarize ~select:(fun i -> i = 0) m).Metrics.max_msg_bits

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng seed sensitivity", `Quick, test_prng_seed_sensitivity);
    ("prng int bounds", `Quick, test_prng_int_bounds);
    ("prng int bound=1", `Quick, test_prng_int_one);
    ("prng float bounds", `Quick, test_prng_float_bounds);
    ("prng split independent", `Quick, test_prng_split_independent);
    ("prng split deterministic", `Quick, test_prng_split_deterministic);
    ("prng roughly uniform", `Quick, test_prng_int_roughly_uniform);
    ("prng bool balance", `Quick, test_prng_bool_balance);
    ("prng shuffle is a permutation", `Quick, test_prng_shuffle_permutation);
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap fifo on ties", `Quick, test_heap_fifo_ties);
    ("heap interleaved ops", `Quick, test_heap_interleaved);
    ("heap clear", `Quick, test_heap_clear);
    ("heap matches sort", `Quick, test_heap_random_order_matches_sort);
    ("heap pop_min matches pop", `Quick, test_heap_pop_min_matches_pop);
    ("heap grow preserves order", `Quick, test_heap_grow_preserves_order);
    ("heap reuse after clear", `Quick, test_heap_reuse_after_clear);
    ("heap empty accessors raise", `Quick, test_heap_empty_accessors_raise);
    ("ring fifo", `Quick, test_ring_fifo);
    ("ring wraps and grows", `Quick, test_ring_wraps_and_grows);
    ("ring clear and reuse", `Quick, test_ring_clear_and_reuse);
    ("sim ping-pong", `Quick, test_sim_pingpong);
    ("sim query", `Quick, test_sim_query);
    ("sim query metrics", `Quick, test_sim_query_metrics);
    ("sim crash at time", `Quick, test_sim_crash_at_time);
    ("sim partial broadcast crash", `Quick, test_sim_after_sends_partial_broadcast);
    ("sim after_sends 0 silences", `Quick, test_sim_after_sends_zero_is_silent);
    ("sim latency reorders", `Quick, test_sim_latency_order);
    ("sim mailbox buffers", `Quick, test_sim_mailbox_buffers);
    ("sim start times", `Quick, test_sim_start_times);
    ("sim deterministic replay", `Quick, test_sim_deterministic_replay);
    ("sim rng schedule-isolated", `Quick, test_sim_rng_isolated_from_schedule);
    ("sim trace records", `Quick, test_sim_trace_records);
    ("sim query latency", `Quick, test_sim_query_latency);
    ("sim die", `Quick, test_sim_die);
    ("sim event limit", `Quick, test_sim_event_limit);
    ("sim send to self", `Quick, test_sim_send_to_self);
    ("sim bad destination", `Quick, test_sim_send_bad_destination);
    ("sim negative latency", `Quick, test_sim_negative_latency_rejected);
    ("sim crash during query wait", `Quick, test_sim_crash_during_query_wait);
    ("sim crash before start", `Quick, test_sim_crash_before_start);
    ("sim after-queries crash", `Quick, test_sim_after_queries_crash);
    ("trace stats matrices", `Quick, test_trace_stats_matrices);
    ("trace save/load roundtrip", `Quick, test_trace_save_load_roundtrip);
    ("trace load rejects garbage", `Quick, test_trace_load_rejects_garbage);
    ("metrics summary selection", `Quick, test_metrics_summary_selection);
    ("metrics receives and wakeups", `Quick, test_metrics_receives_and_wakeups);
    ("metrics per-peer max msg", `Quick, test_metrics_max_msg_bits_per_peer);
  ]
