(* The chaos-hardened socket runtime, below the protocol layer: hardened
   frames over hostile byte streams, the seeded fault planner, and the
   retrying source client against the server's replay cache.

   Like the transport suite, some tests fork or spawn threads over real
   sockets; the suite must run before the stats suite (OCaml 5 refuses
   Unix.fork once domains have been spawned). *)

module Frame = Dr_net.Frame
module Faultnet = Dr_net.Faultnet
module Wire = Dr_core.Wire

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- Frame layer ------------------------------------------------------- *)

(* A frame must reassemble from arbitrarily fragmented reads: the writer
   dribbles the encoded frame one byte at a time (yielding at the header
   boundary and mid-payload so the reader demonstrably blocks on short
   reads), and two frames back-to-back must not desynchronize. *)
let test_frame_byte_dribble () =
  let p1 = Bytes.of_string "hello, chaos" in
  let p2 = Bytes.of_string "second frame survives fragmentation" in
  let encode p =
    let header = Wire.Frame.encode_header ~len:(Bytes.length p) ~crc:(Wire.Crc32.bytes p) in
    Bytes.cat header p
  in
  let stream = Bytes.cat (encode p1) (encode p2) in
  let r, w = Unix.pipe ~cloexec:false () in
  let writer =
    Thread.create
      (fun () ->
        Bytes.iteri
          (fun i b ->
            if i = Wire.Frame.header_len || i mod 7 = 0 then Thread.delay 0.001;
            Frame.write_all w (Bytes.make 1 b) 0 1)
          stream;
        Unix.close w)
      ()
  in
  checks "first frame reassembles" (Bytes.to_string p1) (Bytes.to_string (Frame.recv_bytes r));
  checks "second frame reassembles" (Bytes.to_string p2) (Bytes.to_string (Frame.recv_bytes r));
  (match Frame.recv_bytes r with
  | _ -> Alcotest.fail "expected End_of_file after the stream closes"
  | exception End_of_file -> ());
  Thread.join writer;
  Unix.close r

(* A header that is not ours must be rejected before any payload
   allocation: garbage bytes fail the magic check, and a valid magic with
   a hostile length fails the bound — both kill the stream as [Desync]. *)
let test_frame_hostile_headers () =
  let feed header =
    let r, w = Unix.pipe ~cloexec:false () in
    Frame.write_all w header 0 (Bytes.length header);
    Unix.close w;
    let result =
      match Frame.recv_bytes r with
      | _ -> `Payload
      | exception Frame.Desync _ -> `Desync
      | exception Frame.Corrupt _ -> `Corrupt
    in
    Unix.close r;
    result
  in
  (match feed (Bytes.make Wire.Frame.header_len '\xff') with
  | `Desync -> ()
  | _ -> Alcotest.fail "garbage header must desynchronize");
  let oversized =
    (* Correct magic, length far beyond [max_payload]: the bound must trip
       before a buffer of that size is ever allocated. *)
    let b = Bytes.make Wire.Frame.header_len '\x00' in
    Bytes.blit_string Wire.Frame.magic 0 b 0 4;
    Bytes.set_int32_be b 4 0x7fff_ffffl;
    b
  in
  (match feed oversized with
  | `Desync -> ()
  | _ -> Alcotest.fail "hostile length must desynchronize")

(* A corrupted transmission is detected by CRC and skipped with the stream
   still in sync: the injected-fault sender's good copy right behind it is
   delivered untouched. *)
let test_frame_corrupt_then_recover () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload = Bytes.of_string "bit-flipped on the wire" in
  Frame.send_corrupted a payload;
  Frame.send_bytes a payload;
  (match Frame.recv_bytes b with
  | _ -> Alcotest.fail "corrupted frame must not be delivered"
  | exception Frame.Corrupt _ -> ());
  checks "good copy follows in sync" (Bytes.to_string payload)
    (Bytes.to_string (Frame.recv_bytes b));
  Unix.close a;
  Unix.close b

(* --- Faultnet ---------------------------------------------------------- *)

let full_spec = "drop=0.25,corrupt=0.1,stall=2ms@p1,disconnect=peer2@msg40,reply_loss=0.5,source_blackout=3@q5"

let test_faultnet_parse_roundtrip () =
  let plan =
    match Faultnet.parse full_spec with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let reparsed =
    match Faultnet.parse (Faultnet.describe plan) with
    | Ok p -> p
    | Error e -> Alcotest.failf "describe is not parseable: %s" e
  in
  checkb "describe round-trips" true (plan = reparsed);
  (match Faultnet.parse_seeded ("42:" ^ full_spec) with
  | Ok (seed, p) ->
    checkb "seed parses" true (Int64.equal seed 42L);
    checkb "seeded spec matches plain" true (p = plan)
  | Error e -> Alcotest.failf "parse_seeded failed: %s" e);
  (match Faultnet.parse "" with
  | Ok p -> checkb "empty spec is none" true (Faultnet.is_none p)
  | Error e -> Alcotest.failf "empty spec: %s" e);
  (match Faultnet.parse "drop=2.0" with
  | Ok _ -> Alcotest.fail "out-of-range probability must be rejected"
  | Error _ -> ());
  match Faultnet.parse "frobnicate=1" with
  | Ok _ -> Alcotest.fail "unknown clause must be rejected"
  | Error _ -> ()

(* The acceptance bar for reproducible chaos: the same SEED:SPEC yields a
   byte-identical fault schedule — every link and source decision equal,
   op by op — while another seed (or another peer's stream) diverges. *)
let test_faultnet_deterministic_schedule () =
  let plan =
    match Faultnet.parse "drop=0.5,corrupt=0.3,reply_loss=0.5" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let schedule ~seed ~peer =
    let t = Faultnet.make ~seed ~peer plan in
    List.init 200 (fun i ->
        if i mod 3 = 0 then begin
          let a = Faultnet.on_source_request t ~elapsed:0. in
          (0, (if a.Faultnet.refuse then 1 else 0), (if a.Faultnet.lose_reply then 1 else 0))
        end
        else begin
          let a = Faultnet.on_send t in
          (1, a.Faultnet.pre_drops, if a.Faultnet.corrupt_first then 1 else 0)
        end)
  in
  checkb "same seed, same peer: identical schedule" true
    (schedule ~seed:9L ~peer:0 = schedule ~seed:9L ~peer:0);
  checkb "different seed diverges" true
    (schedule ~seed:9L ~peer:0 <> schedule ~seed:10L ~peer:0);
  checkb "different peer stream diverges" true
    (schedule ~seed:9L ~peer:0 <> schedule ~seed:9L ~peer:1)

(* --- Source client retry/replay ---------------------------------------- *)

(* Every reply is lost once ([reply_loss=1]): each logical query is sent
   twice under one sequence number across a forced reconnect, the server
   answers the retry from its replay cache, and the peer's Q meter — the
   paper's central cost — is charged exactly once per logical query. *)
let test_source_client_replay_charged_once () =
  let n = 64 in
  let x = Dr_source.Bitarray.random (Dr_engine.Prng.create 5L) n in
  let server = Dr_net.Source_server.create ~k:2 x in
  Dr_net.Source_server.start server;
  let plan =
    match Faultnet.parse "reply_loss=1.0" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let chaos = Faultnet.make ~seed:1L ~peer:0 plan in
  let port = Dr_net.Source_server.port server in
  let client = Dr_net.Source_client.connect ~port ~peer:0 ~chaos () in
  let logical = 16 in
  for i = 0 to logical - 1 do
    checkb (Printf.sprintf "Query(%d) answers correctly despite the lost reply" i)
      (Dr_source.Bitarray.get x i)
      (Dr_net.Source_client.query client i)
  done;
  checki "client issued one sequence number per logical query" logical
    (Dr_net.Source_client.sequence client);
  checkb "lost replies forced reconnects" true (Dr_net.Source_client.reconnects client > 0);
  let control =
    Dr_net.Source_client.connect ~port ~peer:Dr_net.Source_proto.control_peer ()
  in
  let per_peer, total, replays = Dr_net.Source_client.stats control in
  checki "Q charged exactly once per logical query" logical per_peer.(0);
  checki "total matches" logical total;
  checki "every retry hit the replay cache" logical replays;
  Dr_net.Source_client.close client;
  Dr_net.Source_client.shutdown control;
  Dr_net.Source_client.close control;
  Dr_net.Source_server.stop server

(* Retry exhaustion is a typed failure, not a hang. *)
let test_source_client_unreachable () =
  let cfg =
    { Dr_net.Source_client.default_config with max_retries = 1; backoff_base = 0.001 }
  in
  match Dr_net.Source_client.connect ~port:1 ~peer:0 ~cfg () with
  | _ -> Alcotest.fail "connecting to a closed port must fail"
  | exception Dr_net.Source_client.Unreachable _ -> ()

let suite =
  [
    ("frame reassembles from byte-dribbled reads", `Quick, test_frame_byte_dribble);
    ("hostile headers desynchronize before allocation", `Quick, test_frame_hostile_headers);
    ("corrupt frame skipped, stream stays in sync", `Quick, test_frame_corrupt_then_recover);
    ("faultnet spec parse/describe round-trip", `Quick, test_faultnet_parse_roundtrip);
    ("faultnet schedule is seed-deterministic", `Quick, test_faultnet_deterministic_schedule);
    ("lost replies: replay cache charges Q once", `Quick, test_source_client_replay_charged_once);
    ("retry exhaustion raises Unreachable", `Quick, test_source_client_unreachable);
  ]
