(* The seeded-bug fixture suite: three protocol variants, each with one
   planted violation that triggers on one specific delivery order.

   Every fixture runs honest code except for a single schedule-dependent
   branch, so finding the bug is a pure schedule-search problem: these are
   the benchmark targets the campaign tests use to show the coverage-guided
   driver finds planted agreement, termination and Q-bound violations within
   a fixed budget (and to measure plain random fuzzing at the same budget
   for comparison). All pools use t = 0 so crash plans and attacks are
   inert — the schedule is the only free variable. *)

open Dr_core
module Check = Dr_check.Check
module Sim = Dr_engine.Sim
module Spec = Dr_core.Spec
module Bitarray = Dr_source.Bitarray

module Msg = struct
  type t = int

  let size_bits _ = 8
  let tag i = Printf.sprintf "seq(%d)" i
end

module S = Sim.Make (Msg)

let download n = Bitarray.init n (fun j -> S.query j)
let seq_equal = List.equal Int.equal

(* Agreement: peers 1 and 2 each send their id twice; peer 0 flips its
   output iff the four messages arrive exactly as 2, 2, 1, 1. *)
let agreement_run ?observer ~attack:_ ~crash:_ ~arbiter inst =
  let cfg = Exec.build_config inst (Exec.make_opts ?observer ~arbiter ()) in
  let n = Problem.n inst in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          let seq = List.init 4 (fun _ -> fst (S.receive ())) in
          let x = download n in
          if seq_equal seq [ 2; 2; 1; 1 ] then Bitarray.flip x 0 else x
        end
        else begin
          S.send 0 i;
          S.send 0 i;
          download n
        end)
  in
  Exec.finish ~protocol:"seeded-agreement" inst outcome

let agreement =
  {
    Check.name = "seeded-agreement";
    attacks = [ "default" ];
    model = Problem.Crash;
    spec = None;
    pool = [ (3, 2, 0) ];
    run = agreement_run;
  }

(* Termination: peers 1–3 each send their id once; if they arrive strictly
   descending (3, 2, 1) peer 0 waits for a fourth message nobody sends. *)
let termination_run ?observer ~attack:_ ~crash:_ ~arbiter inst =
  let cfg = Exec.build_config inst (Exec.make_opts ?observer ~arbiter ()) in
  let n = Problem.n inst in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          let seq = List.init 3 (fun _ -> fst (S.receive ())) in
          if seq_equal seq [ 3; 2; 1 ] then ignore (S.receive ());
          download n
        end
        else begin
          S.send 0 i;
          download n
        end)
  in
  Exec.finish ~protocol:"seeded-termination" inst outcome

let termination =
  {
    Check.name = "seeded-termination";
    attacks = [ "default" ];
    model = Problem.Crash;
    spec = None;
    pool = [ (4, 2, 0) ];
    run = termination_run;
  }

(* Q-bound: the planted spec allows n + 2 queries per peer; on arrival
   order 3, 1, 2 peer 0 re-downloads the whole input, spending 2n. The
   output stays correct, so only the spec-bound invariant can catch it. *)
let qbound_spec =
  {
    Spec.protocol = "seeded-qbound";
    theorem = "planted";
    resilience = (fun ~k:_ ~t -> t = 0);
    q_bound = (fun ~k:_ ~n ~t:_ ~b:_ -> float_of_int (n + 2));
    randomized = false;
  }

let qbound_run ?observer ~attack:_ ~crash:_ ~arbiter inst =
  let cfg = Exec.build_config inst (Exec.make_opts ?observer ~arbiter ()) in
  let n = Problem.n inst in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          let seq = List.init 3 (fun _ -> fst (S.receive ())) in
          let x = download n in
          if seq_equal seq [ 3; 1; 2 ] then ignore (download n);
          x
        end
        else begin
          S.send 0 i;
          download n
        end)
  in
  Exec.finish ~protocol:"seeded-qbound" inst outcome

let qbound =
  {
    Check.name = "seeded-qbound";
    attacks = [ "default" ];
    model = Problem.Crash;
    spec = Some qbound_spec;
    pool = [ (4, 4, 0) ];
    run = qbound_run;
  }

let all = [ agreement; termination; qbound ]

(* The invariant each fixture is seeded to violate. *)
let expected_invariant target =
  if String.equal target.Check.name "seeded-agreement" then "agreement"
  else if String.equal target.Check.name "seeded-termination" then "termination"
  else "spec-bound"
