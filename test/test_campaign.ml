(* The coverage-guided campaign: seeded-bug discovery, campaign-vs-random
   comparison, byte-level determinism, shrinker idempotence, corpus
   persistence and the coverage/mutation building blocks.

   Golden files (seeded_*.repro.json, campaign_stats.golden) regenerate with
   DR_CHECK_BLESS=1 dune runtest. *)

module Check = Dr_check.Check
module Coverage = Dr_check.Coverage
module Corpus = Dr_check.Corpus
module Mutate = Dr_check.Mutate
module Repro = Dr_check.Repro
module Invariant = Dr_check.Invariant
module Explore = Dr_engine.Explore
module Sim = Dr_engine.Sim
module Prng = Dr_engine.Prng
module Registry = Dr_core.Registry
module Crash_plan = Dr_adversary.Crash_plan

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* One budget and seed for every fixture campaign: the acceptance bar is
   that this single configuration finds all three planted bugs. *)
let campaign_budget = 240
let campaign_seed = 7

let run_campaign target =
  Check.campaign ~bucket:1 ~budget:campaign_budget ~seed:campaign_seed target

let golden_path target = String.map (function '-' -> '_' | c -> c) target.Check.name ^ ".repro.json"

let first_failure label (c : Check.campaign) =
  match c.Check.failures with
  | r :: _ -> r
  | [] -> Alcotest.fail (label ^ ": campaign found no violation")

(* ------------------------------------------------------------------ *)
(* Seeded bugs: the campaign finds all three planted violations        *)
(* ------------------------------------------------------------------ *)

let test_campaign_finds_seeded_bugs () =
  List.iter
    (fun target ->
      let c = run_campaign target in
      let r = first_failure target.Check.name c in
      checks
        (target.Check.name ^ " violated invariant")
        (Seeded_bugs.expected_invariant target)
        r.Repro.invariant;
      (* The shrunk counterexample is committed as a golden and must replay
         to the same invariant at the same event index. *)
      Test_check.bless_or_compare ~path:(golden_path target)
        ~label:(target.Check.name ^ " golden repro")
        (Repro.to_json r);
      let reloaded = Repro.read (golden_path target) in
      match Check.replay ~targets:Seeded_bugs.all reloaded with
      | Check.Reproduced _ -> ()
      | Check.Diverged msg -> Alcotest.fail (target.Check.name ^ " diverged: " ^ msg)
      | Check.Vanished -> Alcotest.fail (target.Check.name ^ " vanished"))
    Seeded_bugs.all

let test_campaign_vs_random () =
  (* Plain random fuzzing (dfs_budget = 0 strips the systematic prefix) at
     the same budget, measured side by side. The campaign must find every
     planted bug; random's score is informative, not asserted — the point of
     the fixture suite is that the comparison is reproducible. *)
  List.iter
    (fun target ->
      let c = run_campaign target in
      let o =
        Check.fuzz ~dfs_budget:0 ~budget:campaign_budget ~seed:campaign_seed target
      in
      Printf.printf "%s: campaign %d violation(s) in %d runs, random %d in %d\n%!"
        target.Check.name
        (List.length c.Check.failures)
        c.Check.executed
        (List.length o.Check.failures)
        o.Check.runs;
      checkb (target.Check.name ^ " campaign finds the bug") true (c.Check.failures <> []))
    Seeded_bugs.all

(* ------------------------------------------------------------------ *)
(* Determinism: same seed, same bytes                                  *)
(* ------------------------------------------------------------------ *)

let corpus_bytes c = String.concat "" (List.map Corpus.entry_to_json (Corpus.to_list c))

let test_campaign_deterministic () =
  let check_twice target =
    let a = run_campaign target in
    let b = run_campaign target in
    checkb
      (target.Check.name ^ " coverage maps equal")
      true
      (Coverage.equal a.Check.coverage b.Check.coverage);
    checks
      (target.Check.name ^ " coverage json")
      (Coverage.to_json a.Check.coverage)
      (Coverage.to_json b.Check.coverage);
    checks (target.Check.name ^ " corpus bytes") (corpus_bytes a.Check.corpus)
      (corpus_bytes b.Check.corpus);
    checks
      (target.Check.name ^ " failure list")
      (String.concat "" (List.map Repro.to_json a.Check.failures))
      (String.concat "" (List.map Repro.to_json b.Check.failures));
    checks (target.Check.name ^ " stats json") (Check.campaign_stats_json a)
      (Check.campaign_stats_json b)
  in
  check_twice Seeded_bugs.agreement;
  (* And through the registry path (observer threaded via Exec.opts). *)
  let entry = Registry.find_exn "crash-general" in
  let a = Check.campaign ~budget:60 ~seed:3 (Check.of_registry entry) in
  let b = Check.campaign ~budget:60 ~seed:3 (Check.of_registry entry) in
  checkb "registry coverage maps equal" true (Coverage.equal a.Check.coverage b.Check.coverage);
  checks "registry stats json" (Check.campaign_stats_json a) (Check.campaign_stats_json b)

let test_campaign_stats_golden () =
  let c = run_campaign Seeded_bugs.agreement in
  Test_check.bless_or_compare ~path:"campaign_stats.golden" ~label:"campaign stats bytes"
    (Check.campaign_stats_json c)

(* ------------------------------------------------------------------ *)
(* Shrinker idempotence                                                *)
(* ------------------------------------------------------------------ *)

let test_shrink_idempotent () =
  (* Re-shrinking a shrunk counterexample is a fixpoint: replay the repro to
     recover the violation, shrink again, demand identical bytes. *)
  List.iter
    (fun target ->
      let c = run_campaign target in
      let r = first_failure target.Check.name c in
      match Check.replay ~targets:Seeded_bugs.all r with
      | Check.Reproduced v ->
        let r2 = Check.shrink target r.Repro.scenario v ~script:r.Repro.script in
        checks (target.Check.name ^ " re-shrink is a fixpoint") (Repro.to_json r)
          (Repro.to_json r2)
      | Check.Diverged msg -> Alcotest.fail (target.Check.name ^ " diverged: " ^ msg)
      | Check.Vanished -> Alcotest.fail (target.Check.name ^ " vanished"))
    Seeded_bugs.all

(* ------------------------------------------------------------------ *)
(* Registry protocols under the campaign                               *)
(* ------------------------------------------------------------------ *)

let test_registry_campaign_clean () =
  (* The real protocols — including the adaptive/splitcast adversaries now
     in the Byzantine catalogs — must survive a campaign with zero
     violations while producing nonempty coverage. *)
  List.iter
    (fun entry ->
      let c = Check.campaign ~budget:40 ~seed:1 (Check.of_registry entry) in
      checki (Registry.name entry ^ " violations") 0 (List.length c.Check.failures);
      checki (Registry.name entry ^ " executed") 40 c.Check.executed;
      checkb (Registry.name entry ^ " has coverage") true (Coverage.distinct c.Check.coverage > 0))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Corpus persistence                                                  *)
(* ------------------------------------------------------------------ *)

let test_corpus_roundtrip () =
  let c = run_campaign Seeded_bugs.agreement in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dr_corpus_roundtrip" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Corpus.save c.Check.corpus ~dir;
  let reloaded = Corpus.load ~dir in
  checki "corpus size survives" (Corpus.size c.Check.corpus) (Corpus.size reloaded);
  checks "corpus bytes survive" (corpus_bytes c.Check.corpus) (corpus_bytes reloaded)

let test_corpus_entry_rejects_garbage () =
  let expect_failure label text =
    match Corpus.entry_of_json text with
    | _ -> Alcotest.fail (label ^ ": expected Failure")
    | exception Failure _ -> ()
  in
  expect_failure "wrong schema" "{ \"schema\": \"dr-check/1\" }";
  expect_failure "missing script"
    "{ \"schema\": \"dr-corpus/1\", \"protocol\": \"x\", \"attack\": \"a\", \"k\": 1, \"n\": 1, \
     \"t\": 0, \"seed\": \"1\", \"crash\": \"none\", \"new_signatures\": 0 }"

(* ------------------------------------------------------------------ *)
(* Building blocks: coverage map, signatures, mutation engine          *)
(* ------------------------------------------------------------------ *)

let test_coverage_map () =
  let c = Coverage.create () in
  checki "first run all fresh" 3 (Coverage.note c [ 1; 2; 3 ]);
  checki "second run one fresh" 1 (Coverage.note c [ 2; 3; 4 ]);
  checki "distinct" 4 (Coverage.distinct c);
  checki "hits" 6 (Coverage.hits c);
  checkb "signatures sorted" true (Coverage.signatures c = [ 1; 2; 3; 4 ]);
  let d = Coverage.create () in
  ignore (Coverage.note d [ 1; 2; 3 ]);
  ignore (Coverage.note d [ 2; 3; 4 ]);
  checkb "same notes, equal maps" true (Coverage.equal c d);
  ignore (Coverage.note d [ 9 ]);
  checkb "diverged maps differ" false (Coverage.equal c d);
  Coverage.merge ~into:c d;
  checki "merge unions" 5 (Coverage.distinct c)

let test_signature_stability () =
  let obs kind tag step = { Sim.obs_kind = kind; obs_peer = 0; obs_tag = tag; obs_step = step } in
  let s1 = Explore.signature (obs Sim.Obs_deliver "seg(c2,0)" 12) in
  checki "same obs, same signature" s1 (Explore.signature (obs Sim.Obs_deliver "seg(c2,0)" 12));
  checkb "kind distinguishes" true
    (s1 <> Explore.signature (obs Sim.Obs_query_reply "seg(c2,0)" 12));
  checkb "tag distinguishes" true (s1 <> Explore.signature (obs Sim.Obs_deliver "seg(c2,1)" 12));
  checkb "same bucket, same signature" true
    (Explore.signature ~bucket:8 (obs Sim.Obs_deliver "x" 8)
    = Explore.signature ~bucket:8 (obs Sim.Obs_deliver "x" 15));
  checkb "bucket boundary distinguishes" true
    (Explore.signature ~bucket:8 (obs Sim.Obs_deliver "x" 7)
    <> Explore.signature ~bucket:8 (obs Sim.Obs_deliver "x" 8));
  checkb "30-bit range" true (s1 >= 0 && s1 < 0x40000000)

let test_scripted_then_random () =
  let prng = Prng.create 5L in
  let arb = Explore.scripted_then_random [ 1; 7; 0 ] prng in
  checki "follows script" 1 (arb 3);
  checki "clamps like the simulator" 2 (arb 3);
  checki "script tail" 0 (arb 4);
  for _ = 1 to 50 do
    let c = arb 3 in
    checkb "random suffix in range" true (c >= 0 && c < 3)
  done

let test_mutate_deterministic () =
  let scenario =
    {
      Repro.protocol = "seeded-agreement";
      attack = "default";
      k = 3;
      n = 2;
      t = 0;
      seed = 11L;
      crash = Crash_plan.No_crash;
    }
  in
  let base = { Corpus.scenario; script = [ 0; 1; 2; 3; 4; 5 ]; new_signatures = 2 } in
  let donor = { Corpus.scenario; script = [ 9; 8; 7 ]; new_signatures = 1 } in
  let mutate seed =
    List.init 20 (fun _ ->
        Mutate.mutate ~prng:(Prng.create seed) ~attacks:[ "default"; "silent" ]
          ~crashes:[ Crash_plan.No_crash; Crash_plan.Mid_broadcast 1 ]
          ~donor:(Some donor) base)
    |> List.map (fun (s, prefix) ->
           Repro.to_json
             {
               Repro.scenario = s;
               script = prefix;
               invariant = "agreement";
               event = 0;
               detail = "";
             })
    |> String.concat ""
  in
  checks "same prng, same mutants" (mutate 13L) (mutate 13L);
  (* Across many draws every operator keeps the script a valid choice list. *)
  let prng = Prng.create 99L in
  for _ = 1 to 200 do
    let _s, prefix =
      Mutate.mutate ~prng ~attacks:[ "default"; "silent" ]
        ~crashes:[ Crash_plan.No_crash; Crash_plan.Mid_broadcast 1 ]
        ~donor:(Some donor) base
    in
    checkb "prefix entries nonnegative" true (List.for_all (fun c -> c >= 0) prefix);
    checkb "prefix bounded" true (List.length prefix <= 9)
  done

let suite =
  [
    ("campaign: finds all seeded bugs (goldens)", `Quick, test_campaign_finds_seeded_bugs);
    ("campaign: beats-or-matches plain random", `Quick, test_campaign_vs_random);
    ("campaign: same seed, same bytes", `Quick, test_campaign_deterministic);
    ("campaign: stats golden", `Quick, test_campaign_stats_golden);
    ("shrink: re-shrinking is a fixpoint", `Quick, test_shrink_idempotent);
    ("campaign: registry protocols stay clean", `Quick, test_registry_campaign_clean);
    ("corpus: save/load round-trip", `Quick, test_corpus_roundtrip);
    ("corpus: malformed entries rejected", `Quick, test_corpus_entry_rejects_garbage);
    ("coverage: map accounting", `Quick, test_coverage_map);
    ("coverage: signature stability", `Quick, test_signature_stability);
    ("explore: scripted-then-random arbiter", `Quick, test_scripted_then_random);
    ("mutate: deterministic and well-formed", `Quick, test_mutate_deterministic);
  ]
