(* Tests for the statistics helpers: summaries, tail bounds, tables, and
   the Select dispatcher. *)

open Dr_stats

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf eps = Alcotest.(check (float eps))
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_basics () =
  let s = Summary.of_floats [ 1.; 2.; 3.; 4.; 5. ] in
  checki "count" 5 s.Summary.count;
  checkf 1e-9 "mean" 3. s.Summary.mean;
  checkf 1e-9 "median" 3. s.Summary.median;
  checkf 1e-9 "min" 1. s.Summary.min;
  checkf 1e-9 "max" 5. s.Summary.max;
  checkf 1e-6 "stddev" (sqrt 2.) s.Summary.stddev

let test_summary_single () =
  let s = Summary.of_floats [ 7.5 ] in
  checkf 1e-9 "median = value" 7.5 s.Summary.median;
  checkf 1e-9 "p90 = value" 7.5 s.Summary.p90;
  checkf 1e-9 "sd 0" 0. s.Summary.stddev

let test_summary_of_ints () =
  let s = Summary.of_ints [ 10; 20 ] in
  checkf 1e-9 "mean" 15. s.Summary.mean;
  (* lower-median convention via interpolation at q=0.5 of two points *)
  checkf 1e-9 "median interpolates" 15. s.Summary.median

let test_summary_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_floats: empty") (fun () ->
      ignore (Summary.of_floats []))

let test_percentile_interpolation () =
  let sorted = [| 0.; 10.; 20.; 30. |] in
  checkf 1e-9 "p0" 0. (Summary.percentile sorted 0.);
  checkf 1e-9 "p100" 30. (Summary.percentile sorted 1.);
  checkf 1e-9 "p50" 15. (Summary.percentile sorted 0.5);
  checkf 1e-9 "p25" 7.5 (Summary.percentile sorted 0.25)

(* ------------------------------------------------------------------ *)
(* Chernoff / binomial                                                 *)
(* ------------------------------------------------------------------ *)

let test_binomial_pmf_known () =
  (* Bin(4, 0.5): probabilities 1/16, 4/16, 6/16, 4/16, 1/16. *)
  checkf 1e-9 "pmf 0" (1. /. 16.) (Chernoff.binomial_pmf ~trials:4 ~p:0.5 0);
  checkf 1e-9 "pmf 2" (6. /. 16.) (Chernoff.binomial_pmf ~trials:4 ~p:0.5 2);
  checkf 1e-9 "pmf 4" (1. /. 16.) (Chernoff.binomial_pmf ~trials:4 ~p:0.5 4);
  checkf 1e-9 "out of range" 0. (Chernoff.binomial_pmf ~trials:4 ~p:0.5 5)

let test_binomial_degenerate () =
  checkf 1e-9 "p=0 mass at 0" 1. (Chernoff.binomial_pmf ~trials:10 ~p:0. 0);
  checkf 1e-9 "p=1 mass at n" 1. (Chernoff.binomial_pmf ~trials:10 ~p:1. 10)

let test_binomial_tail () =
  (* P[Bin(4,0.5) < 2] = 5/16. *)
  checkf 1e-9 "tail below 2" (5. /. 16.) (Chernoff.binomial_tail_below ~trials:4 ~p:0.5 ~threshold:2);
  checkf 1e-9 "below 0 is 0" 0. (Chernoff.binomial_tail_below ~trials:4 ~p:0.5 ~threshold:0);
  checkf 1e-9 "below n+1 is 1" 1. (Chernoff.binomial_tail_below ~trials:4 ~p:0.5 ~threshold:5)

let test_coverage_failure_sane () =
  (* More honest pickers -> lower failure probability. *)
  let f h = Chernoff.coverage_failure ~honest:h ~segments:4 ~rho:2 in
  checkb "monotone in honest" true (f 40 < f 20 && f 20 < f 10);
  checkb "clamped" true (Chernoff.coverage_failure ~honest:1 ~segments:10 ~rho:5 <= 1.)

let test_chernoff_below () =
  checkf 1e-9 "factor >= 1 trivial" 1. (Chernoff.chernoff_below ~mu:10. ~factor:1.5);
  let b = Chernoff.chernoff_below ~mu:32. ~factor:0.5 in
  checkf 1e-9 "exp(-mu/8)" (exp (-4.)) b

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_layout () =
  let t = Table.create [ "a"; "bbbb" ] in
  Table.add_row t [ "xxxxx"; "y" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | header :: rule :: row :: _ ->
    checks "header padded" "a      bbbb" header;
    checks "rule" (String.make 11 '-') rule;
    checks "row" "xxxxx  y   " row
  | _ -> Alcotest.fail "unexpected layout");
  ()

let test_table_short_row_padded () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "1" ];
  checkb "renders" true (String.length (Table.render t) > 0)

let test_table_long_row_rejected () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells" (Invalid_argument "Table.add_row: more cells than headers")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_cells () =
  checks "int" "42" (Table.cell_int 42);
  checks "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  checks "bool" "yes" (Table.cell_bool true);
  checks "bool no" "no" (Table.cell_bool false)

(* ------------------------------------------------------------------ *)
(* Par                                                                 *)
(* ------------------------------------------------------------------ *)

let test_par_matches_sequential () =
  let xs = List.init 57 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "ordered results" (List.map f xs) (Par.map ~domains:3 f xs);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Par.map ~domains:4 f [ 1 ]);
  Alcotest.(check (list int)) "empty" [] (Par.map f [])

let test_par_runs_simulations () =
  (* Whole simulations in worker domains: same reports as sequential. *)
  let open Dr_core in
  let job seed =
    let inst = Problem.random_instance ~seed ~k:5 ~n:40 ~t:1 () in
    let r = Crash_general.run inst in
    (r.Problem.ok, r.Problem.q_max)
  in
  let seeds = List.init 12 (fun i -> Int64.of_int (i + 1)) in
  Alcotest.(check (list (pair bool int)))
    "parallel = sequential" (List.map job seeds)
    (Par.map ~domains:3 job seeds)

(* ------------------------------------------------------------------ *)
(* Select (protocol dispatch)                                          *)
(* ------------------------------------------------------------------ *)

let name_of m =
  let (module P : Dr_core.Exec.PROTOCOL) = m in
  P.name

let test_select_regimes () =
  let open Dr_core in
  let crash ~k ~t = Problem.random_instance ~k ~n:64 ~t () in
  let byz ~k ~t = Problem.random_instance ~model:Problem.Byzantine ~k ~n:64 ~t () in
  checks "no faults" "balanced" (name_of (Select.for_instance (crash ~k:8 ~t:0)));
  checks "one crash" "crash-single" (name_of (Select.for_instance (crash ~k:8 ~t:1)));
  checks "many crashes" "crash-general" (name_of (Select.for_instance (crash ~k:8 ~t:5)));
  checks "byz minority randomized" "byz-2cycle" (name_of (Select.for_instance (byz ~k:9 ~t:4)));
  checks "byz minority deterministic" "byz-committee"
    (name_of (Select.for_instance ~prefer:Select.Deterministic (byz ~k:9 ~t:4)));
  checks "byz majority" "naive" (name_of (Select.for_instance (byz ~k:8 ~t:4)))

let test_select_by_name () =
  checkb "found" true (Dr_core.Select.by_name "crash-general" <> None);
  checkb "missing" true (Dr_core.Select.by_name "nope" = None);
  checki "seven protocols" 7 (List.length Dr_core.Select.all)

let test_selected_protocol_actually_works () =
  let open Dr_core in
  List.iter
    (fun (k, t, model) ->
      let inst = Problem.random_instance ~seed:3L ~model ~k ~n:128 ~t () in
      let (module P : Exec.PROTOCOL) = Select.for_instance inst in
      checkb
        (Printf.sprintf "%s supports its own regime" P.name)
        true
        (P.supports inst = Ok ());
      checkb (Printf.sprintf "%s solves it" P.name) true (P.run inst).Problem.ok)
    [
      (8, 0, Problem.Crash);
      (8, 1, Problem.Crash);
      (8, 5, Problem.Crash);
      (9, 4, Problem.Byzantine);
      (8, 4, Problem.Byzantine);
    ]

(* ------------------------------------------------------------------ *)
(* Printers (smoke)                                                    *)
(* ------------------------------------------------------------------ *)

let test_printers_smoke () =
  let s = Summary.of_floats [ 1.; 2.; 3. ] in
  checkb "summary pp" true (String.length (Format.asprintf "%a" Summary.pp s) > 0);
  let t = Table.create [ "a" ] in
  Table.add_row t [ "1" ];
  Table.add_rule t;
  Table.add_row t [ "2" ];
  checkb "rule renders" true
    (List.length (String.split_on_char '\n' (Table.render t)) >= 5);
  let inst = Dr_core.Problem.random_instance ~k:3 ~n:8 ~t:1 () in
  let r = Dr_core.Naive.run inst in
  let rendered = Format.asprintf "%a" Dr_core.Problem.pp_report r in
  checkb "report pp mentions protocol" true
    (String.length rendered > 0
    && String.sub rendered 0 5 = "naive");
  let m = Dr_engine.Metrics.create 2 in
  Dr_engine.Metrics.on_query m 0;
  let summary = Dr_engine.Metrics.summarize m in
  checkb "metrics pp" true
    (String.length (Format.asprintf "%a" Dr_engine.Metrics.pp_summary summary) > 0)

(* ------------------------------------------------------------------ *)
(* Bench_io (BENCH_*.json schema)                                      *)
(* ------------------------------------------------------------------ *)

let test_bench_io_quantiles () =
  let q25, med, q75 = Bench_io.quantiles [ 4.; 1.; 3.; 2. ] in
  checkf 1e-9 "q25" 1.75 q25;
  checkf 1e-9 "median" 2.5 med;
  checkf 1e-9 "q75" 3.25 q75;
  let q25, med, q75 = Bench_io.quantiles [ 42. ] in
  checkf 1e-9 "single q25" 42. q25;
  checkf 1e-9 "single median" 42. med;
  checkf 1e-9 "single q75" 42. q75;
  Alcotest.check_raises "empty" (Invalid_argument "Bench_io.quantiles: empty sample")
    (fun () -> ignore (Bench_io.quantiles []))

let test_bench_io_roundtrip () =
  let b1 = Bench_io.of_samples ~name:"engine/storm" ~unit_:"events_per_sec" [ 10.; 30.; 20. ] in
  checki "runs" 3 b1.Bench_io.runs;
  checkf 1e-9 "median" 20. b1.Bench_io.median;
  let file =
    {
      Bench_io.suite = "engine";
      benches =
        [
          b1;
          {
            Bench_io.name = "engine/other";
            unit_ = "sims_per_sec";
            runs = 5;
            median = 123456.789;
            iqr_lo = 120000.5;
            iqr_hi = 130000.25;
          };
        ];
    }
  in
  let back = Bench_io.of_json (Bench_io.to_json file) in
  checkb "roundtrip exact" true (back = file);
  checkb "find hit" true (Bench_io.find back "engine/other" <> None);
  checkb "find miss" true (Bench_io.find back "nope" = None);
  let path = Filename.temp_file "dr_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bench_io.write ~path file;
      checkb "file roundtrip" true (Bench_io.read path = file))

let test_bench_io_rejects_garbage () =
  checkb "garbage rejected" true
    (match Bench_io.of_json "{ \"schema\": \"nope\" }" with
    | _ -> false
    | exception Failure _ -> true);
  checkb "truncated rejected" true
    (match Bench_io.of_json "{ \"schema\": \"dr-bench/1\", \"suite\": \"x\"" with
    | _ -> false
    | exception Failure _ -> true)

let test_lanes_smoke () =
  let trace = Dr_engine.Trace.create () in
  Dr_engine.Trace.record trace
    (Dr_engine.Trace.Sent { time = 0.; src = 0; dst = 1; size_bits = 8; tag = "x" });
  Dr_engine.Trace.record trace (Dr_engine.Trace.Delivered { time = 1.; src = 0; dst = 1; tag = "x" });
  Dr_engine.Trace.record trace (Dr_engine.Trace.Terminated { time = 2.; peer = 1 });
  let out = Format.asprintf "%a" (fun ppf tr -> Dr_engine.Trace_stats.pp_lanes ~k:2 ppf tr) trace in
  let lines = String.split_on_char '\n' out in
  checkb "header + 3 rows" true (List.length lines >= 4);
  checkb "contains send marker" true
    (List.exists (fun l -> String.length l > 0 && String.index_opt l '>' <> None) lines)

let suite =
  [
    ("summary: basics", `Quick, test_summary_basics);
    ("summary: single value", `Quick, test_summary_single);
    ("summary: of_ints", `Quick, test_summary_of_ints);
    ("summary: empty raises", `Quick, test_summary_empty_raises);
    ("summary: percentile interpolation", `Quick, test_percentile_interpolation);
    ("chernoff: binomial pmf", `Quick, test_binomial_pmf_known);
    ("chernoff: degenerate p", `Quick, test_binomial_degenerate);
    ("chernoff: tail", `Quick, test_binomial_tail);
    ("chernoff: coverage monotone", `Quick, test_coverage_failure_sane);
    ("chernoff: multiplicative bound", `Quick, test_chernoff_below);
    ("table: layout", `Quick, test_table_layout);
    ("table: short row padded", `Quick, test_table_short_row_padded);
    ("table: long row rejected", `Quick, test_table_long_row_rejected);
    ("table: cell formatters", `Quick, test_table_cells);
    ("par: matches sequential", `Quick, test_par_matches_sequential);
    ("par: runs simulations", `Quick, test_par_runs_simulations);
    ("select: regimes", `Quick, test_select_regimes);
    ("select: by name", `Quick, test_select_by_name);
    ("bench_io: quantiles", `Quick, test_bench_io_quantiles);
    ("bench_io: json roundtrip", `Quick, test_bench_io_roundtrip);
    ("bench_io: rejects garbage", `Quick, test_bench_io_rejects_garbage);
    ("select: chosen protocol works", `Quick, test_selected_protocol_actually_works);
    ("printers smoke", `Quick, test_printers_smoke);
    ("lane view smoke", `Quick, test_lanes_smoke);
  ]
