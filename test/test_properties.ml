(* Property-based tests (QCheck): data-structure invariants and
   whole-protocol correctness under randomized instances, adversaries and
   schedules. *)

open Dr_core
module Bitarray = Dr_source.Bitarray
module Segment = Dr_source.Segment
module Fault = Dr_adversary.Fault
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan
module Prng = Dr_engine.Prng

let bits_gen =
  QCheck.Gen.(map (fun l -> List.map (fun b -> if b then '1' else '0') l |> List.to_seq |> String.of_seq)
                (list_size (int_range 1 120) bool))

let bits_arb = QCheck.make ~print:(fun s -> s) bits_gen

(* ------------------------------------------------------------------ *)
(* Bitarray                                                            *)
(* ------------------------------------------------------------------ *)

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"bitarray: of_string/to_string roundtrip" ~count:200 bits_arb (fun s ->
      Bitarray.to_string (Bitarray.of_string s) = s)

let prop_bits_count_ones =
  QCheck.Test.make ~name:"bitarray: count_ones matches string" ~count:200 bits_arb (fun s ->
      Bitarray.count_ones (Bitarray.of_string s)
      = String.fold_left (fun acc c -> if c = '1' then acc + 1 else acc) 0 s)

let prop_bits_first_diff =
  QCheck.Test.make ~name:"bitarray: first_diff matches naive scan" ~count:200
    QCheck.(pair bits_arb (small_int))
    (fun (s, flips) ->
      let a = Bitarray.of_string s in
      let b = ref (Bitarray.copy a) in
      let len = String.length s in
      for f = 0 to flips mod 4 do
        b := Bitarray.flip !b ((f * 7) mod len)
      done;
      let naive =
        let rec scan i =
          if i >= len then None
          else if Bitarray.get a i <> Bitarray.get !b i then Some i
          else scan (i + 1)
        in
        scan 0
      in
      Bitarray.first_diff a !b = naive)

let prop_bits_append_sub =
  QCheck.Test.make ~name:"bitarray: sub inverts append" ~count:200
    QCheck.(pair bits_arb bits_arb)
    (fun (s1, s2) ->
      let a = Bitarray.of_string s1 and b = Bitarray.of_string s2 in
      let ab = Bitarray.append a b in
      Bitarray.equal (Bitarray.sub ab ~pos:0 ~len:(Bitarray.length a)) a
      && Bitarray.equal (Bitarray.sub ab ~pos:(Bitarray.length a) ~len:(Bitarray.length b)) b)

let prop_bits_flip_involution =
  QCheck.Test.make ~name:"bitarray: flip twice restores" ~count:200
    QCheck.(pair bits_arb small_nat)
    (fun (s, i) ->
      let a = Bitarray.of_string s in
      let i = i mod String.length s in
      Bitarray.equal (Bitarray.flip (Bitarray.flip a i) i) a)

(* ------------------------------------------------------------------ *)
(* Segment                                                             *)
(* ------------------------------------------------------------------ *)

let seg_params = QCheck.(pair (int_range 1 500) (int_range 1 64))

let prop_segment_tiles =
  QCheck.Test.make ~name:"segment: tiles [0,n) exactly" ~count:300 seg_params (fun (n, s) ->
      QCheck.assume (s <= n);
      let spec = Segment.make ~n ~s in
      let covered = Array.make n 0 in
      for j = 0 to s - 1 do
        let pos, len = Segment.bounds spec j in
        for i = pos to pos + len - 1 do
          covered.(i) <- covered.(i) + 1
        done
      done;
      Array.for_all (fun c -> c = 1) covered)

let prop_segment_of_bit =
  QCheck.Test.make ~name:"segment: of_bit is the inverse of bounds" ~count:300 seg_params
    (fun (n, s) ->
      QCheck.assume (s <= n);
      let spec = Segment.make ~n ~s in
      let ok = ref true in
      for i = 0 to n - 1 do
        let j = Segment.of_bit spec i in
        let pos, len = Segment.bounds spec j in
        if not (i >= pos && i < pos + len) then ok := false
      done;
      !ok)

let prop_segment_children_concat =
  QCheck.Test.make ~name:"segment: children concatenate to parent" ~count:100
    QCheck.(pair (int_range 4 400) (int_range 1 5))
    (fun (n, logs) ->
      let s = 1 lsl logs in
      QCheck.assume (s <= n);
      let fine = Segment.make ~n ~s in
      let coarse = Segment.halve fine in
      let x = Bitarray.random (Prng.create (Int64.of_int (n + s))) n in
      let ok = ref true in
      for j = 0 to coarse.Segment.s - 1 do
        let parts =
          List.map (Segment.extract fine x) (Segment.children ~coarse ~fine j)
        in
        let joined = List.fold_left Bitarray.append (Bitarray.create 0) parts in
        if not (Bitarray.equal joined (Segment.extract coarse x j)) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)
(* ------------------------------------------------------------------ *)

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire: split/assemble roundtrip (any order)" ~count:200
    QCheck.(triple bits_arb (int_range 1 40) (int_range 0 1000))
    (fun (s, b, shuffle_seed) ->
      let bits = Bitarray.of_string s in
      let parts = Wire.split ~b bits in
      let arr = Array.of_list parts in
      Prng.shuffle (Prng.create (Int64.of_int shuffle_seed)) arr;
      let asm = Wire.Assembly.create ~len:(Bitarray.length bits) ~b in
      Array.iter (fun (part, payload) -> Wire.Assembly.add asm ~part payload) arr;
      Wire.Assembly.complete asm && Bitarray.equal (Wire.Assembly.get asm) bits)

(* ------------------------------------------------------------------ *)
(* Decision trees                                                      *)
(* ------------------------------------------------------------------ *)

let candidates_gen =
  (* Between 1 and 12 strings of equal length 1..24, plus the index of the
     "true" one. *)
  QCheck.Gen.(
    int_range 1 24 >>= fun len ->
    int_range 1 12 >>= fun count ->
    list_repeat count (list_repeat len bool) >>= fun strings ->
    int_range 0 (count - 1) >>= fun truth_idx -> return (len, strings, truth_idx))

let candidates_arb =
  QCheck.make
    ~print:(fun (len, strings, idx) ->
      Printf.sprintf "len=%d idx=%d [%s]" len idx
        (String.concat ";"
           (List.map (fun l -> String.concat "" (List.map (fun b -> if b then "1" else "0") l)) strings)))
    candidates_gen

let prop_tree_recovers_truth =
  QCheck.Test.make ~name:"tree: determine recovers the true candidate" ~count:300 candidates_arb
    (fun (_len, strings, truth_idx) ->
      let candidates = List.map (fun l -> Bitarray.init (List.length l) (List.nth l)) strings in
      let truth = List.nth candidates truth_idx in
      let tree = Decision_tree.build candidates in
      let got, spent = Decision_tree.determine ~query:(Bitarray.get truth) ~offset:0 tree in
      Bitarray.equal got truth
      && spent <= List.length (List.sort_uniq Bitarray.compare candidates) - 1)

let prop_tree_node_count =
  QCheck.Test.make ~name:"tree: internal nodes = distinct - 1" ~count:300 candidates_arb
    (fun (_len, strings, _idx) ->
      let candidates = List.map (fun l -> Bitarray.init (List.length l) (List.nth l)) strings in
      let distinct = List.length (List.sort_uniq Bitarray.compare candidates) in
      Decision_tree.internal_nodes (Decision_tree.build candidates) = distinct - 1)

(* ------------------------------------------------------------------ *)
(* Whole-protocol properties                                           *)
(* ------------------------------------------------------------------ *)

let crash_instance_gen =
  QCheck.Gen.(
    int_range 2 9 >>= fun k ->
    int_range 0 (k - 1) >>= fun t ->
    int_range (max 1 k) 80 >>= fun n ->
    int_range 0 5 >>= fun after_sends ->
    int_range 1 10_000 >>= fun seed -> return (k, t, n, after_sends, seed))

let crash_instance_arb =
  QCheck.make
    ~print:(fun (k, t, n, a, seed) -> Printf.sprintf "k=%d t=%d n=%d after=%d seed=%d" k t n a seed)
    crash_instance_gen

let prop_crash_general_always_correct =
  QCheck.Test.make ~name:"crash-general: correct on random instances" ~count:60 crash_instance_arb
    (fun (k, t, n, after_sends, seed) ->
      let seed = Int64.of_int seed in
      let inst = Problem.random_instance ~seed ~k ~n ~t () in
      let opts =
        Exec.default
        |> Exec.with_latency (Latency.jittered (Prng.create seed))
        |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends)
      in
      (Crash_general.run ~opts inst).Problem.ok)

let prop_crash_general_q_bound =
  QCheck.Test.make ~name:"crash-general: Q <= n/(gamma k) + n/k + slack" ~count:40
    crash_instance_arb (fun (k, t, n, after_sends, seed) ->
      let seed = Int64.of_int seed in
      let inst = Problem.random_instance ~seed ~k ~n ~t () in
      let opts =
        Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends) Exec.default
      in
      let r = Crash_general.run ~opts inst in
      let gamma = float_of_int (k - t) /. float_of_int k in
      let bound =
        int_of_float (float_of_int n /. (gamma *. float_of_int k)) + (n / k) + (2 * k) + 2
      in
      r.Problem.ok && r.Problem.q_max <= bound)

(* Run a registry entry with the attack picked by index from the entry's own
   catalog. The attack vocabulary lives in one place (the registry), so a
   protocol that grows a new attack is exercised here without edits. *)
let registry_attack_run ~name ?segments ?rho ~opts ~attack_idx inst =
  let entry = Registry.find_exn name in
  let attacks = Registry.attacks entry in
  let attack = List.nth attacks (attack_idx mod List.length attacks) in
  entry.Registry.run ~opts ~attack ?segments ?rho inst

let committee_instance_gen =
  QCheck.Gen.(
    int_range 0 3 >>= fun t ->
    int_range ((2 * t) + 1) 9 >>= fun k ->
    int_range (max 1 k) 100 >>= fun n ->
    int_range 0 3 >>= fun attack ->
    int_range 1 10_000 >>= fun seed -> return (k, t, n, attack, seed))

let committee_instance_arb =
  QCheck.make
    ~print:(fun (k, t, n, a, seed) -> Printf.sprintf "k=%d t=%d n=%d attack=%d seed=%d" k t n a seed)
    committee_instance_gen

let prop_committee_always_correct =
  QCheck.Test.make ~name:"committee: correct under any catalog attack" ~count:60
    committee_instance_arb (fun (k, t, n, attack, seed) ->
      let seed = Int64.of_int seed in
      let inst = Problem.random_instance ~seed ~model:Problem.Byzantine ~k ~n ~t () in
      let opts = Exec.with_latency (Latency.jittered (Prng.create seed)) Exec.default in
      (registry_attack_run ~name:"byz-committee" ~opts ~attack_idx:attack inst).Problem.ok)

let prop_balanced_correct =
  QCheck.Test.make ~name:"balanced: correct on fault-free random instances" ~count:60
    QCheck.(pair (int_range 1 12) (int_range 1 200))
    (fun (k, n) ->
      let inst = Problem.random_instance ~seed:(Int64.of_int (k + n)) ~k ~n ~t:0 () in
      (Balanced.run inst).Problem.ok)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let prop_summary_bounds =
  QCheck.Test.make ~name:"summary: median and mean within [min,max]" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun values ->
      let s = Dr_stats.Summary.of_floats values in
      s.Dr_stats.Summary.median >= s.Dr_stats.Summary.min
      && s.Dr_stats.Summary.median <= s.Dr_stats.Summary.max
      && s.Dr_stats.Summary.mean >= s.Dr_stats.Summary.min -. 1e-9
      && s.Dr_stats.Summary.mean <= s.Dr_stats.Summary.max +. 1e-9)

let prop_binomial_pmf_sums =
  QCheck.Test.make ~name:"chernoff: binomial pmf sums to 1" ~count:50
    QCheck.(pair (int_range 0 60) (float_range 0.01 0.99))
    (fun (trials, p) ->
      let total = ref 0. in
      for i = 0 to trials do
        total := !total +. Dr_stats.Chernoff.binomial_pmf ~trials ~p i
      done;
      abs_float (!total -. 1.) < 1e-6)

let prop_coverage_monotone_in_rho =
  QCheck.Test.make ~name:"chernoff: coverage failure monotone in rho" ~count:100
    QCheck.(triple (int_range 1 100) (int_range 1 10) (int_range 1 10))
    (fun (honest, segments, rho) ->
      Dr_stats.Chernoff.coverage_failure ~honest ~segments ~rho
      <= Dr_stats.Chernoff.coverage_failure ~honest ~segments ~rho:(rho + 1) +. 1e-12)


let prop_crash_single_always_correct =
  QCheck.Test.make ~name:"crash-single: correct on random instances" ~count:60
    QCheck.(quad (int_range 2 10) (int_range 0 1) (int_range 2 100) (int_range 0 10_000))
    (fun (k, t, n, seed) ->
      QCheck.assume (n >= k);
      let seed64 = Int64.of_int (seed + 1) in
      let inst = Problem.random_instance ~seed:seed64 ~k ~n ~t () in
      let after_sends = seed mod 5 in
      let opts =
        Exec.default
        |> Exec.with_latency (Latency.jittered (Prng.create seed64))
        |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends)
      in
      (Crash_single.run ~opts inst).Problem.ok)

(* Heterogeneous WAN: each ordered link gets its own constant delay, drawn
   once. Deterministic protocols must not care. *)
let heterogeneous_links seed =
  let g = Prng.create seed in
  let table = Hashtbl.create 64 in
  fun ~src ~dst ~time:_ ~size_bits:_ ->
    match Hashtbl.find_opt table (src, dst) with
    | Some d -> d
    | None ->
      let d = 0.05 +. Prng.float g 0.95 in
      Hashtbl.add table (src, dst) d;
      d

let prop_crash_general_heterogeneous_wan =
  QCheck.Test.make ~name:"crash-general: correct on heterogeneous per-link delays" ~count:40
    crash_instance_arb (fun (k, t, n, after_sends, seed) ->
      let seed64 = Int64.of_int seed in
      let inst = Problem.random_instance ~seed:seed64 ~k ~n ~t () in
      let opts =
        Exec.default
        |> Exec.with_latency (heterogeneous_links seed64)
        |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends)
      in
      (Crash_general.run ~opts inst).Problem.ok)

let prop_crash_general_link_serialized =
  QCheck.Test.make ~name:"crash-general: correct with B-limited serialized links" ~count:30
    crash_instance_arb (fun (k, t, n, after_sends, seed) ->
      let seed64 = Int64.of_int seed in
      let inst = Problem.random_instance ~seed:seed64 ~k ~n ~t () in
      let opts =
        Exec.default
        |> Exec.with_link_rate (float_of_int inst.Problem.b)
        |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends)
      in
      (Crash_general.run ~opts inst).Problem.ok)

(* The 2-cycle protocol on parameters where coverage is essentially certain
   (rho = 1, many honest peers per segment): any catalog attack, any
   schedule. *)
let byz2_instance_gen =
  QCheck.Gen.(
    int_range 0 3 >>= fun t ->
    int_range (max 16 ((4 * t) + 4)) 40 >>= fun k ->
    int_range k 300 >>= fun n ->
    int_range 0 4 >>= fun attack ->
    int_range 1 10_000 >>= fun seed -> return (k, t, n, attack, seed))

let byz2_instance_arb =
  QCheck.make
    ~print:(fun (k, t, n, a, s) -> Printf.sprintf "k=%d t=%d n=%d attack=%d seed=%d" k t n a s)
    byz2_instance_gen

let prop_byz_2cycle_safe_params =
  QCheck.Test.make ~name:"byz-2cycle: correct under catalog attacks (safe parameters)" ~count:60
    byz2_instance_arb (fun (k, t, n, attack, seed) ->
      let seed64 = Int64.of_int seed in
      let inst = Problem.random_instance ~seed:seed64 ~model:Problem.Byzantine ~k ~n ~t () in
      let opts = Exec.with_latency (Latency.jittered (Prng.create seed64)) Exec.default in
      (* s = 2 with >= 10 honest reporters: coverage failure < 2^-8. *)
      (registry_attack_run ~name:"byz-2cycle" ~segments:2 ~rho:1 ~opts ~attack_idx:attack inst)
        .Problem.ok)

let prop_byz_multicycle_safe_params =
  QCheck.Test.make ~name:"byz-multicycle: correct under catalog attacks (safe parameters)"
    ~count:40 byz2_instance_arb (fun (k, t, n, attack, seed) ->
      let seed64 = Int64.of_int seed in
      let inst = Problem.random_instance ~seed:seed64 ~model:Problem.Byzantine ~k ~n ~t () in
      let opts = Exec.with_latency (Latency.jittered (Prng.create seed64)) Exec.default in
      (registry_attack_run ~name:"byz-multicycle" ~segments:2 ~rho:1 ~opts ~attack_idx:attack inst)
        .Problem.ok)

let prop_spec_bound_crash_general =
  QCheck.Test.make ~name:"spec: crash-general Q bound holds on random instances" ~count:50
    crash_instance_arb (fun (k, t, n, after_sends, seed) ->
      let seed64 = Int64.of_int seed in
      let inst = Problem.random_instance ~seed:seed64 ~k ~n ~t () in
      let opts =
        Exec.default
        |> Exec.with_latency (Latency.jittered (Prng.create seed64))
        |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends)
      in
      let r = Crash_general.run ~opts inst in
      r.Problem.ok
      && Spec.within Spec.crash_general ~k ~n ~t ~b:inst.Problem.b ~measured:r.Problem.q_max)

let prop_spec_bound_committee =
  QCheck.Test.make ~name:"spec: committee Q bound holds on random instances" ~count:50
    committee_instance_arb (fun (k, t, n, attack, seed) ->
      ignore attack;
      let seed64 = Int64.of_int seed in
      let inst = Problem.random_instance ~seed:seed64 ~model:Problem.Byzantine ~k ~n ~t () in
      let opts = Exec.with_latency (Latency.jittered (Prng.create seed64)) Exec.default in
      let r = Committee.run_with ~opts ~attack:Committee.Equivocate inst in
      r.Problem.ok
      && Spec.within Spec.committee ~k ~n ~t ~b:inst.Problem.b ~measured:r.Problem.q_max)

let prop_naive_unconditional =
  QCheck.Test.make ~name:"naive: correct whatever the fault pattern" ~count:40
    QCheck.(triple (int_range 1 10) (int_range 1 60) (int_range 0 10_000))
    (fun (k, n, seed) ->
      QCheck.assume (n >= k);
      let t = seed mod k in
      let inst =
        Problem.random_instance ~seed:(Int64.of_int (seed + 1)) ~model:Problem.Byzantine ~k ~n ~t ()
      in
      (Naive.run inst).Problem.ok)

(* ------------------------------------------------------------------ *)
(* Registry matrix: every protocol x every catalog attack              *)
(* ------------------------------------------------------------------ *)

(* The smallest admitted instance with as many faults as the protocol's own
   [supports] precondition allows: faults make the attacks actually fire. For
   the randomized protocols we additionally keep k >= 4t + 4 (the same safe
   margin the QCheck generators use) so the w.h.p. coverage guarantee is
   essentially certain and the matrix stays deterministic-green. *)
let matrix_instance entry =
  let admitted =
    List.concat_map
      (fun (k, n) -> List.init k (fun t -> (k, n, t)))
      [ (2, 4); (3, 6); (4, 8); (5, 10); (9, 18); (20, 40) ]
    |> List.filter (fun (k, n, t) ->
           let inst =
             Problem.random_instance ~seed:7L ~model:entry.Registry.model ~k ~n ~t ()
           in
           Registry.admits entry inst = Ok ()
           && ((not (Registry.randomized entry)) || k >= (4 * t) + 4))
  in
  match List.sort (fun (_, _, t1) (_, _, t2) -> compare t2 t1) admitted with
  | [] -> Alcotest.failf "%s admits no small instance" (Registry.name entry)
  | (k, n, t) :: _ -> Problem.random_instance ~seed:7L ~model:entry.Registry.model ~k ~n ~t ()

let matrix_registry_attacks () =
  List.iter
    (fun entry ->
      let inst = matrix_instance entry in
      List.iter
        (fun attack ->
          let r = entry.Registry.run ~attack ~segments:2 ~rho:1 inst in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: honest peers output X (k=%d n=%d t=%d)"
               (Registry.name entry) attack inst.Problem.k (Problem.n inst) (Problem.t inst))
            true r.Problem.ok)
        (Registry.attacks entry))
    Registry.all

let suite =
  (* A fixed QCheck random state keeps the generated cases identical from
     run to run: the whole test suite stays deterministic (the randomized
     protocols' w.h.p. failure events would otherwise flake CI at ~1e-3). *)
  let rand = Random.State.make [| 0x5eed |] in
  List.map (fun t -> QCheck_alcotest.to_alcotest ~rand t)
    [
      prop_bits_roundtrip;
      prop_bits_count_ones;
      prop_bits_first_diff;
      prop_bits_append_sub;
      prop_bits_flip_involution;
      prop_segment_tiles;
      prop_segment_of_bit;
      prop_segment_children_concat;
      prop_wire_roundtrip;
      prop_tree_recovers_truth;
      prop_tree_node_count;
      prop_crash_general_always_correct;
      prop_crash_single_always_correct;
      prop_crash_general_heterogeneous_wan;
      prop_crash_general_link_serialized;
      prop_byz_2cycle_safe_params;
      prop_byz_multicycle_safe_params;
      prop_naive_unconditional;
      prop_spec_bound_crash_general;
      prop_spec_bound_committee;
      prop_crash_general_q_bound;
      prop_committee_always_correct;
      prop_balanced_correct;
      prop_summary_bounds;
      prop_binomial_pmf_sums;
      prop_coverage_monotone_in_rho;
    ]
  @ [
      Alcotest.test_case "registry matrix: every protocol x catalog attack" `Quick
        matrix_registry_attacks;
    ]
