(* An engine-shared cell declared inline. Same-unit access is allowed;
   outsider.ml pokes it cross-module and must be flagged. *)
(* dr-race: zone engine-shared — fixture: the one shared counter *)
let hits = ref 0
let bump () = hits := !hits + 1
