(* Planted R3: domain-unsafe stdlib singletons outside bin//bench//lib/stats.
   The second use carries a deliberate waiver and must be suppressed. *)
let hello () = Printf.printf "hello\n"
let bye () = print_endline "bye" (* dr-race: allow R3 — fixture: waived on purpose *)
