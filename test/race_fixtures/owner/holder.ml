(* Per-domain state with an owner subtree: only race_fixtures/owner may
   touch the cell or construct the type. intruder.ml (outside the subtree)
   violates both. *)
(* dr-race: zone per-domain:race_fixtures/owner — fixture: subtree-owned slots *)
let slots = Array.make 4 0
let set i v = slots.(i) <- v

(* dr-race: zone per-domain:race_fixtures/owner — fixture: subtree-owned type *)
type t = { mutable n : int }

let make () = { n = 0 }
let step t = t.n <- t.n + 1
