(* Planted R2: an init-only cell written after initialization. Writes at
   module init and in init_-prefixed setup functions are fine; tweak is
   the violation. *)
(* dr-race: zone init-only — fixture: set up once, read-only after *)
let limit = ref 0
let init_limit n = limit := n
let tweak n = limit := n
let current () = !limit
