(* Planted R2: reaches into per-domain state owned by race_fixtures/owner
   from outside that subtree — a direct cell write and a constructor call. *)
let smash () = Holder.slots.(0) <- 9
let fresh () = Holder.make ()
