(* Planted R1: escaping module-level mutable value with no zone declared
   anywhere. dr_race must demand a declaration for it. *)
let table = Hashtbl.create 16
let note k v = Hashtbl.replace table k v
