(* Planted R2: an engine-shared cell touched directly from another unit —
   both the write and the read must be flagged. *)
let poke () = Shared_cell.hits := 1
let peek () = !Shared_cell.hits
