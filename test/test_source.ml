(* Tests for bit arrays, segmentation, the data source and packetization. *)

open Dr_source

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Bitarray                                                           *)
(* ------------------------------------------------------------------ *)

let test_bits_set_get () =
  let a = Bitarray.create 19 in
  Bitarray.set a 0 true;
  Bitarray.set a 7 true;
  Bitarray.set a 8 true;
  Bitarray.set a 18 true;
  checks "pattern" "1000000110000000001" (Bitarray.to_string a);
  Bitarray.set a 7 false;
  checkb "cleared" false (Bitarray.get a 7)

let test_bits_roundtrip () =
  let s = "0110100111010001" in
  checks "of/to string" s (Bitarray.to_string (Bitarray.of_string s))

let test_bits_of_string_rejects () =
  Alcotest.check_raises "bad char" (Invalid_argument "Bitarray.of_string: expected only '0'/'1'")
    (fun () -> ignore (Bitarray.of_string "01x"))

let test_bits_bounds () =
  let a = Bitarray.create 8 in
  Alcotest.check_raises "get oob" (Invalid_argument "Bitarray: index out of bounds") (fun () ->
      ignore (Bitarray.get a 8));
  Alcotest.check_raises "negative" (Invalid_argument "Bitarray: index out of bounds") (fun () ->
      ignore (Bitarray.get a (-1)))

let test_bits_equal_content () =
  let a = Bitarray.of_string "10101" and b = Bitarray.of_string "10101" in
  checkb "equal" true (Bitarray.equal a b);
  Bitarray.set b 4 false;
  checkb "not equal" false (Bitarray.equal a b);
  checkb "length matters" false (Bitarray.equal a (Bitarray.of_string "101010"))

let test_bits_padding_invisible () =
  (* Setting then clearing high bits must not corrupt equality. *)
  let a = Bitarray.create 9 and b = Bitarray.create 9 in
  Bitarray.set a 8 true;
  Bitarray.set a 8 false;
  checkb "padding clean" true (Bitarray.equal a b);
  checki "compare 0" 0 (Bitarray.compare a b)

let test_bits_sub_blit () =
  let a = Bitarray.of_string "0011010110" in
  let s = Bitarray.sub a ~pos:2 ~len:5 in
  checks "sub" "11010" (Bitarray.to_string s);
  let d = Bitarray.create 10 in
  Bitarray.blit ~src:s ~dst:d ~pos:3;
  checks "blit" "0001101000" (Bitarray.to_string d)

let test_bits_append () =
  let a = Bitarray.of_string "101" and b = Bitarray.of_string "0011" in
  checks "append" "1010011" (Bitarray.to_string (Bitarray.append a b))

let test_bits_first_diff () =
  let a = Bitarray.of_string "110100" and b = Bitarray.of_string "110001" in
  checkb "diff at 3" true (Bitarray.first_diff a b = Some 3);
  checkb "self none" true (Bitarray.first_diff a a = None)

let test_bits_first_diff_far () =
  (* Difference beyond the first byte exercises the byte-scan path. *)
  let a = Bitarray.create 100 and b = Bitarray.create 100 in
  Bitarray.set b 77 true;
  checkb "diff at 77" true (Bitarray.first_diff a b = Some 77)

let test_bits_counts () =
  let a = Bitarray.of_string "1101001" in
  checki "ones" 4 (Bitarray.count_ones a);
  let b = Bitarray.of_string "1001001" in
  checki "hamming" 1 (Bitarray.diff_count a b)

let test_bits_flip () =
  let a = Bitarray.of_string "000" in
  let b = Bitarray.flip a 1 in
  checks "flipped copy" "010" (Bitarray.to_string b);
  checks "original intact" "000" (Bitarray.to_string a)

let test_bits_random_deterministic () =
  let mk () = Bitarray.to_string (Bitarray.random (Dr_engine.Prng.create 4L) 64) in
  checks "reproducible" (mk ()) (mk ())

(* ------------------------------------------------------------------ *)
(* Segment                                                            *)
(* ------------------------------------------------------------------ *)

let test_segment_partition () =
  (* Segments tile [0, n) exactly, lengths within 1 of each other. *)
  List.iter
    (fun (n, s) ->
      let spec = Segment.make ~n ~s in
      let total = ref 0 in
      let min_len = ref max_int and max_len = ref 0 in
      for j = 0 to s - 1 do
        let pos, len = Segment.bounds spec j in
        checki (Printf.sprintf "contiguous n=%d s=%d j=%d" n s j) !total pos;
        total := !total + len;
        if len < !min_len then min_len := len;
        if len > !max_len then max_len := len
      done;
      checki "covers n" n !total;
      checkb "balanced" true (!max_len - !min_len <= 1);
      checki "max_len consistent" !max_len (Segment.max_len spec))
    [ (10, 3); (16, 4); (17, 4); (100, 7); (5, 5); (1, 1); (1000, 64) ]

let test_segment_of_bit () =
  List.iter
    (fun (n, s) ->
      let spec = Segment.make ~n ~s in
      for i = 0 to n - 1 do
        let j = Segment.of_bit spec i in
        let pos, len = Segment.bounds spec j in
        checkb "bit in its segment" true (i >= pos && i < pos + len)
      done)
    [ (10, 3); (17, 4); (64, 8); (63, 8) ]

let test_segment_halve_alignment () =
  let fine = Segment.make ~n:100 ~s:16 in
  let coarse = Segment.halve fine in
  checki "half count" 8 coarse.Segment.s;
  for j = 0 to coarse.Segment.s - 1 do
    match Segment.children ~coarse ~fine j with
    | [ a; b ] ->
      checki "children consecutive" (a + 1) b;
      let cpos, clen = Segment.bounds coarse j in
      let apos, alen = Segment.bounds fine a in
      let _bpos, blen = Segment.bounds fine b in
      checki "start aligned" cpos apos;
      checki "lengths add" clen (alen + blen)
    | _ -> Alcotest.fail "expected two children"
  done

let test_segment_extract () =
  let x = Bitarray.of_string "0101101100" in
  let spec = Segment.make ~n:10 ~s:2 in
  checks "seg0" "01011" (Bitarray.to_string (Segment.extract spec x 0));
  checks "seg1" "01100" (Bitarray.to_string (Segment.extract spec x 1))

let test_segment_invalid () =
  Alcotest.check_raises "s>n" (Invalid_argument "Segment.make: need 1 <= s <= n") (fun () ->
      ignore (Segment.make ~n:4 ~s:5));
  let spec = Segment.make ~n:9 ~s:3 in
  Alcotest.check_raises "odd halve" (Invalid_argument "Segment.halve: segment count must be even")
    (fun () -> ignore (Segment.halve spec))

(* ------------------------------------------------------------------ *)
(* Data_source                                                        *)
(* ------------------------------------------------------------------ *)

let test_source_counts () =
  let x = Bitarray.of_string "1010" in
  let src = Data_source.create ~k:3 x in
  checkb "bit0" true (Data_source.query src ~peer:0 0);
  checkb "bit1" false (Data_source.query src ~peer:0 1);
  ignore (Data_source.query src ~peer:2 3);
  checki "peer0 count" 2 (Data_source.queries_by src 0);
  checki "peer1 count" 0 (Data_source.queries_by src 1);
  checki "total" 3 (Data_source.total_queries src);
  checki "max" 2 (Data_source.max_queries src);
  checki "max among honest={1,2}" 1
    (Data_source.max_queries ~select:(fun i -> i > 0) src);
  Data_source.reset_counts src;
  checki "reset" 0 (Data_source.total_queries src)

let test_source_repeat_queries_counted () =
  let src = Data_source.create ~k:1 (Bitarray.of_string "1") in
  for _ = 1 to 5 do
    ignore (Data_source.query src ~peer:0 0)
  done;
  checki "repeats count" 5 (Data_source.queries_by src 0)

(* ------------------------------------------------------------------ *)
(* Wire                                                               *)
(* ------------------------------------------------------------------ *)

let test_wire_split_sizes () =
  let bits = Bitarray.random (Dr_engine.Prng.create 8L) 23 in
  let parts = Dr_core.Wire.split ~b:8 bits in
  checki "part count" 3 (List.length parts);
  List.iteri
    (fun idx (part, payload) ->
      checki "indexed in order" idx part;
      checkb "size bound" true (Bitarray.length payload <= 8))
    parts

let test_wire_roundtrip () =
  List.iter
    (fun (len, b) ->
      let bits = Bitarray.random (Dr_engine.Prng.create 21L) len in
      let asm = Dr_core.Wire.Assembly.create ~len ~b in
      (* Deliver parts in reverse order; reassembly must not care. *)
      List.iter
        (fun (part, payload) -> Dr_core.Wire.Assembly.add asm ~part payload)
        (List.rev (Dr_core.Wire.split ~b bits));
      checkb "complete" true (Dr_core.Wire.Assembly.complete asm);
      checkb "identical" true (Bitarray.equal bits (Dr_core.Wire.Assembly.get asm)))
    [ (1, 1); (10, 3); (64, 64); (65, 64); (100, 7) ]

let test_wire_empty () =
  let asm = Dr_core.Wire.Assembly.create ~len:0 ~b:4 in
  checkb "incomplete before part" false (Dr_core.Wire.Assembly.complete asm);
  List.iter
    (fun (part, payload) -> Dr_core.Wire.Assembly.add asm ~part payload)
    (Dr_core.Wire.split ~b:4 (Bitarray.create 0));
  checkb "complete after empty part" true (Dr_core.Wire.Assembly.complete asm);
  checki "empty result" 0 (Bitarray.length (Dr_core.Wire.Assembly.get asm))

let test_wire_duplicate_parts_ignored () =
  let bits = Bitarray.of_string "110011" in
  let asm = Dr_core.Wire.Assembly.create ~len:6 ~b:3 in
  let parts = Dr_core.Wire.split ~b:3 bits in
  List.iter (fun (part, payload) -> Dr_core.Wire.Assembly.add asm ~part payload) parts;
  List.iter (fun (part, payload) -> Dr_core.Wire.Assembly.add asm ~part payload) parts;
  checki "received counted once" 2 (Dr_core.Wire.Assembly.received_parts asm);
  checkb "still correct" true (Bitarray.equal bits (Dr_core.Wire.Assembly.get asm))

let test_wire_conflicting_duplicate_raises () =
  (* A duplicate of part 0 whose payload differs from the first copy must be
     rejected, not silently dropped: under a Byzantine sender the first-write
     -wins policy would otherwise hide an equivocation. *)
  let bits = Bitarray.of_string "110011" in
  let asm = Dr_core.Wire.Assembly.create ~len:6 ~b:3 in
  let parts = Dr_core.Wire.split ~b:3 bits in
  List.iter (fun (part, payload) -> Dr_core.Wire.Assembly.add asm ~part payload) parts;
  let conflicting = Bitarray.of_string "000" in
  Alcotest.check_raises "conflicting duplicate"
    (Invalid_argument "Wire.Assembly.add: duplicate part with conflicting payload")
    (fun () -> Dr_core.Wire.Assembly.add asm ~part:0 conflicting);
  (* Identical duplicates are still fine and the payload is untouched. *)
  List.iter (fun (part, payload) -> Dr_core.Wire.Assembly.add asm ~part payload) parts;
  checkb "payload intact" true (Bitarray.equal bits (Dr_core.Wire.Assembly.get asm))

let test_wire_frame_header_roundtrip () =
  let module F = Dr_core.Wire.Frame in
  List.iteri
    (fun j len ->
      let crc = 0x1234 * (j + 1) in
      let hdr = F.encode_header ~len ~crc in
      checki "header width" F.header_len (Bytes.length hdr);
      match F.decode_header hdr with
      | Ok (len', crc') ->
        checki "length roundtrip" len len';
        checki "crc roundtrip" crc crc'
      | Error e -> Alcotest.failf "well-formed header rejected: %s" (F.describe_header_error e))
    [ 0; 1; 255; 256; 65535; F.max_payload ];
  Alcotest.check_raises "oversized length rejected"
    (Invalid_argument "Wire.Frame.encode_header: bad length")
    (fun () -> ignore (F.encode_header ~len:(F.max_payload + 1) ~crc:0))

let test_wire_frame_header_rejects_garbage () =
  let module F = Dr_core.Wire.Frame in
  let checkerr what want h =
    match F.decode_header h with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error e -> checkb what true (e = want)
  in
  checkerr "short header" F.Short_header (Bytes.create (F.header_len - 1));
  checkerr "zero garbage" F.Bad_magic (Bytes.create F.header_len);
  let all_ff = Bytes.make F.header_len '\xff' in
  checkerr "0xff garbage" F.Bad_magic all_ff;
  (* Right magic, hostile length: rejected with the decoded value, so the
     caller can refuse to allocate. *)
  let oversized = F.encode_header ~len:16 ~crc:0 in
  Bytes.set_uint8 oversized 4 0xff;
  (match F.decode_header oversized with
  | Error (F.Length_out_of_range n) -> checkb "decoded length reported" true (n > F.max_payload)
  | Ok _ | Error _ -> Alcotest.fail "oversized length accepted")

let test_wire_crc32_known_vectors () =
  (* Standard check value: CRC32("123456789") = 0xCBF43926. *)
  checki "check vector" 0xCBF43926 (Dr_core.Wire.Crc32.string "123456789");
  checki "empty" 0 (Dr_core.Wire.Crc32.string "");
  let b = Bytes.of_string "xx123456789yy" in
  checki "ranged" 0xCBF43926 (Dr_core.Wire.Crc32.bytes ~off:2 ~len:9 b);
  let c1 = Dr_core.Wire.Crc32.string "framed payload" in
  let c2 = Dr_core.Wire.Crc32.string "framed payloae" in
  checkb "bit flip changes crc" false (c1 = c2)

let test_wire_incomplete_get_raises () =
  let asm = Dr_core.Wire.Assembly.create ~len:10 ~b:4 in
  Alcotest.check_raises "incomplete get" (Invalid_argument "Wire.Assembly.get: incomplete")
    (fun () -> ignore (Dr_core.Wire.Assembly.get asm))

let test_wire_size_mismatch_raises () =
  let asm = Dr_core.Wire.Assembly.create ~len:10 ~b:4 in
  Alcotest.check_raises "bad size" (Invalid_argument "Wire.Assembly.add: payload size mismatch")
    (fun () -> Dr_core.Wire.Assembly.add asm ~part:0 (Bitarray.create 3))

let suite =
  [
    ("bitarray set/get", `Quick, test_bits_set_get);
    ("bitarray string roundtrip", `Quick, test_bits_roundtrip);
    ("bitarray of_string rejects", `Quick, test_bits_of_string_rejects);
    ("bitarray bounds", `Quick, test_bits_bounds);
    ("bitarray equality", `Quick, test_bits_equal_content);
    ("bitarray padding invisible", `Quick, test_bits_padding_invisible);
    ("bitarray sub/blit", `Quick, test_bits_sub_blit);
    ("bitarray append", `Quick, test_bits_append);
    ("bitarray first_diff", `Quick, test_bits_first_diff);
    ("bitarray first_diff far", `Quick, test_bits_first_diff_far);
    ("bitarray counts", `Quick, test_bits_counts);
    ("bitarray flip", `Quick, test_bits_flip);
    ("bitarray random deterministic", `Quick, test_bits_random_deterministic);
    ("segment partition", `Quick, test_segment_partition);
    ("segment of_bit", `Quick, test_segment_of_bit);
    ("segment halve alignment", `Quick, test_segment_halve_alignment);
    ("segment extract", `Quick, test_segment_extract);
    ("segment invalid args", `Quick, test_segment_invalid);
    ("source query counting", `Quick, test_source_counts);
    ("source repeats counted", `Quick, test_source_repeat_queries_counted);
    ("wire split sizes", `Quick, test_wire_split_sizes);
    ("wire roundtrip", `Quick, test_wire_roundtrip);
    ("wire empty payload", `Quick, test_wire_empty);
    ("wire duplicates ignored", `Quick, test_wire_duplicate_parts_ignored);
    ("wire conflicting duplicate", `Quick, test_wire_conflicting_duplicate_raises);
    ("wire frame header", `Quick, test_wire_frame_header_roundtrip);
    ("wire frame header rejects garbage", `Quick, test_wire_frame_header_rejects_garbage);
    ("wire crc32 known vectors", `Quick, test_wire_crc32_known_vectors);
    ("wire incomplete get", `Quick, test_wire_incomplete_get_raises);
    ("wire size mismatch", `Quick, test_wire_size_mismatch_raises);
  ]
