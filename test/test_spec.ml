(* The Spec bounds must (a) match the protocol registry, (b) hold on live
   executions across the whole parameter grid. *)

open Dr_core
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan
module Prng = Dr_engine.Prng

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

let test_spec_covers_registry () =
  (* Each entry's spec names its own protocol, and lookup round-trips. *)
  List.iter
    (fun e ->
      checks (Registry.name e ^ " spec name") (Registry.name e) e.Registry.spec.Spec.protocol;
      checkb (Registry.name e ^ " spec lookup") true
        (Registry.spec_of (Registry.name e) <> None))
    Registry.all;
  checkb "no orphan specs" true
    (List.for_all (fun b -> Select.by_name b.Spec.protocol <> None) Registry.specs)

let test_registry_entries () =
  checki "seven entries" 7 (List.length Registry.all);
  checkb "unique names" true
    (List.sort_uniq compare Registry.names = List.sort compare Registry.names);
  let two = Registry.find_exn "byz-2cycle" in
  checkb "2cycle is Byzantine" true (two.Registry.model = Problem.Byzantine);
  checkb "2cycle randomized" true (Registry.randomized two);
  checkb "2cycle beta sup 1/2" true (two.Registry.beta_sup = 0.5);
  let cg = Registry.find_exn "crash-general" in
  checkb "crash-general is Crash" true (cg.Registry.model = Problem.Crash);
  checkb "crash-general deterministic" false (Registry.randomized cg);
  checkb "unknown name" true (Registry.find "nope" = None);
  let inst = Problem.random_instance ~seed:2L ~k:8 ~n:128 ~t:2 () in
  checkb "admits delegates to supports" true (Registry.admits cg inst = Ok ())

let test_registry_attack_dispatch () =
  let byz = Problem.random_instance ~seed:9L ~model:Problem.Byzantine ~k:9 ~n:256 ~t:2 () in
  let committee = Registry.find_exn "byz-committee" in
  checkb "committee silent attack runs" true
    (committee.Registry.run ~attack:"silent" byz).Problem.ok;
  (match committee.Registry.run ~attack:"bogus" byz with
  | _ -> Alcotest.fail "expected Unknown_attack on unknown attack"
  | exception Registry.Unknown_attack { protocol = "byz-committee"; attack = "bogus"; _ } -> ());
  let two = Registry.find_exn "byz-2cycle" in
  (* The lie attack may legitimately defeat a tiny segment count; the check
     here is that the attack name reaches the right protocol. *)
  checks "2cycle lie attack dispatches" "byz-2cycle"
    (two.Registry.run ~attack:"lie" ~segments:2 byz).Problem.protocol;
  (* Protocols without an attack surface ignore the attack name, as the CLI
     always has. *)
  let crash = Problem.random_instance ~seed:9L ~k:8 ~n:256 ~t:2 () in
  checkb "crash-general ignores attack" true
    ((Registry.find_exn "crash-general").Registry.run ~attack:"flip" crash).Problem.ok

let test_resilience_matches_supports () =
  (* Spec.resilience and PROTOCOL.supports must agree across a grid. *)
  List.iter
    (fun (module P : Exec.PROTOCOL) ->
      match Registry.spec_of P.name with
      | None -> Alcotest.fail "missing spec"
      | Some b ->
        for k = 2 to 10 do
          for t = 0 to k - 1 do
            let model =
              if P.name = "naive" || String.length P.name >= 3 && String.sub P.name 0 3 = "byz"
              then Problem.Byzantine
              else Problem.Crash
            in
            let inst = Problem.random_instance ~k ~n:32 ~t ~model () in
            let supported = P.supports inst = Ok () in
            let spec_ok = b.Spec.resilience ~k ~t in
            (* supports may be stricter about the model; where both are in
               their model, the resilience conditions must coincide. *)
            if supported <> spec_ok then
              Alcotest.failf "%s: supports=%b spec=%b at k=%d t=%d" P.name supported spec_ok k t
          done
        done)
    [ (module Naive : Exec.PROTOCOL); (module Crash_general); (module Committee) ]

let test_bounds_hold_on_live_runs () =
  (* Crash protocols under silent crashes: measured Q <= bound. *)
  List.iter
    (fun (k, n, t, seed) ->
      let inst = Problem.random_instance ~seed ~k ~n ~t () in
      let opts =
        Exec.default
        |> Exec.with_latency (Latency.jittered (Prng.create seed))
        |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:0)
      in
      let r = Crash_general.run ~opts inst in
      checkb
        (Printf.sprintf "crash-general within bound (k=%d n=%d t=%d)" k n t)
        true
        (r.Problem.ok && Spec.within Spec.crash_general ~k ~n ~t ~b:inst.Problem.b ~measured:r.Problem.q_max))
    [ (8, 512, 2, 1L); (8, 512, 6, 2L); (16, 2048, 8, 3L); (12, 1200, 11, 4L) ]

let test_bounds_hold_committee () =
  List.iter
    (fun (k, n, t, seed) ->
      let inst = Problem.random_instance ~seed ~model:Problem.Byzantine ~k ~n ~t () in
      let r = Committee.run_with ~attack:Committee.Equivocate inst in
      checkb
        (Printf.sprintf "committee within bound (k=%d n=%d t=%d)" k n t)
        true
        (r.Problem.ok && Spec.within Spec.committee ~k ~n ~t ~b:inst.Problem.b ~measured:r.Problem.q_max))
    [ (9, 512, 4, 1L); (16, 2048, 4, 2L); (32, 4096, 8, 3L) ]

let test_bounds_hold_2cycle () =
  List.iter
    (fun (k, n, t, seed) ->
      let inst = Problem.random_instance ~seed ~model:Problem.Byzantine ~k ~n ~t () in
      let r = Byz_2cycle.run_with ~attack:Byz_2cycle.Near_miss inst in
      checkb
        (Printf.sprintf "2cycle within bound (k=%d n=%d t=%d)" k n t)
        true
        (r.Problem.ok && Spec.within Spec.byz_2cycle ~k ~n ~t ~b:inst.Problem.b ~measured:r.Problem.q_max))
    [ (128, 8192, 8, 1L); (128, 8192, 32, 2L); (16, 256, 4, 3L) ]

let test_bound_is_not_vacuous () =
  (* The bounds must sit below naive for the interesting regimes. *)
  let k = 32 and n = 16384 and t = 8 and b = 960 in
  checkb "crash bound < n" true (Spec.crash_general.Spec.q_bound ~k ~n ~t ~b < float_of_int n);
  checkb "committee bound < n" true (Spec.committee.Spec.q_bound ~k ~n ~t ~b < float_of_int n);
  checkb "2cycle bound < n" true
    (Spec.byz_2cycle.Spec.q_bound ~k:128 ~n:32768 ~t:8 ~b < 32768.)

let suite =
  [
    ("spec covers the registry", `Quick, test_spec_covers_registry);
    ("registry entries are coherent", `Quick, test_registry_entries);
    ("registry attack dispatch", `Quick, test_registry_attack_dispatch);
    ("resilience matches supports", `Quick, test_resilience_matches_supports);
    ("crash-general bound holds live", `Quick, test_bounds_hold_on_live_runs);
    ("committee bound holds live", `Quick, test_bounds_hold_committee);
    ("2cycle bound holds live", `Quick, test_bounds_hold_2cycle);
    ("bounds are not vacuous", `Quick, test_bound_is_not_vacuous);
  ]
