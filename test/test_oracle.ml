(* Tests for the blockchain-oracle application (Section 4): feeds,
   aggregation, and the two ODC constructions. *)

module Feed = Dr_oracle.Feed
module Aggregate = Dr_oracle.Aggregate
module Odc = Dr_oracle.Odc
module Bitarray = Dr_source.Bitarray

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let default_params =
  {
    Odc.peers = 9;
    peer_faults = 2;
    sources = 7;
    source_faults = 2;
    cells = 12;
    seed = 1L;
  }

(* ------------------------------------------------------------------ *)
(* Feed                                                               *)
(* ------------------------------------------------------------------ *)

let test_feed_honest_within_jitter () =
  let feed = Feed.make ~sources:5 ~faulty:[ 4 ] ~cells:8 ~jitter:2 ~seed:3L () in
  for c = 0 to 7 do
    let lo, hi = Feed.honest_range feed ~cell:c in
    checkb "range tight" true (hi - lo <= 4);
    checkb "near base" true (lo >= 1000 + (10 * c) - 2 && hi <= 1000 + (10 * c) + 2)
  done

let test_feed_byzantine_out_of_range () =
  let feed = Feed.make ~sources:5 ~faulty:[ 0; 3 ] ~cells:4 ~seed:3L () in
  checkb "flagged" true (Feed.is_faulty_source feed 0);
  checkb "not flagged" false (Feed.is_faulty_source feed 1);
  for c = 0 to 3 do
    checkb "byz value outside honest range" false
      (Feed.in_honest_range feed ~cell:c (Feed.value feed ~source:0 ~cell:c))
  done

let test_feed_encode_roundtrip () =
  let feed = Feed.make ~sources:3 ~faulty:[ 2 ] ~cells:6 ~seed:9L () in
  for s = 0 to 2 do
    let decoded = Feed.decode (Feed.encode feed ~source:s) in
    checki "cells preserved" 6 (Array.length decoded);
    Array.iteri
      (fun c v -> checki (Printf.sprintf "source %d cell %d" s c) (Feed.value feed ~source:s ~cell:c) v)
      decoded
  done

let test_feed_deterministic () =
  let mk () =
    let feed = Feed.make ~sources:4 ~faulty:[] ~cells:4 ~seed:11L () in
    List.init 4 (fun c -> Feed.value feed ~source:1 ~cell:c)
  in
  Alcotest.(check (list int)) "reproducible" (mk ()) (mk ())

(* ------------------------------------------------------------------ *)
(* Aggregate                                                          *)
(* ------------------------------------------------------------------ *)

let test_median_basic () =
  checki "odd" 3 (Aggregate.median [| 5; 1; 3 |]);
  checki "even -> lower" 2 (Aggregate.median [| 4; 1; 2; 3 |]);
  checki "single" 7 (Aggregate.median [| 7 |])

let test_median_does_not_mutate () =
  let a = [| 3; 1; 2 |] in
  ignore (Aggregate.median a);
  Alcotest.(check (array int)) "untouched" [| 3; 1; 2 |] a

let test_median_robust_to_minority () =
  (* t outliers among 2t+1 values cannot drag the median outside the honest
     range. *)
  let honest = [ 100; 101; 102 ] in
  List.iter
    (fun outliers ->
      let v = Aggregate.median (Array.of_list (honest @ outliers)) in
      checkb "median within honest range" true (v >= 100 && v <= 102))
    [ [ 0; 0 ]; [ 1_000_000; 2_000_000 ]; [ 0; 2_000_000 ] ]

let test_cellwise_median () =
  let m = Aggregate.cellwise_median [ [| 1; 10 |]; [| 2; 20 |]; [| 3; 0 |] ] in
  Alcotest.(check (array int)) "cellwise" [| 2; 10 |] m

(* ------------------------------------------------------------------ *)
(* ODC                                                                *)
(* ------------------------------------------------------------------ *)

let test_validate () =
  checkb "default ok" true (Odc.validate default_params = Ok ());
  checkb "too many byz nodes" true
    (match Odc.validate { default_params with Odc.peer_faults = 5 } with
    | Error _ -> true
    | Ok () -> false);
  checkb "too many byz sources" true
    (match Odc.validate { default_params with Odc.source_faults = 4 } with
    | Error _ -> true
    | Ok () -> false)

let test_baseline_odd () =
  let r = Odc.baseline default_params in
  checkb "published in honest range" true r.Odc.odd_ok;
  checki "all honest nodes fine" 7 r.Odc.honest_reports_ok;
  (* k_honest * (2ts+1) * d cell queries. *)
  checki "total queries" (7 * 5 * 12) r.Odc.cell_queries_total

let test_download_based_odd () =
  let r = Odc.download_based default_params in
  checkb "download exact" true r.Odc.download_ok;
  checkb "published in honest range" true r.Odc.odd_ok;
  checki "all honest nodes fine" 7 r.Odc.honest_reports_ok

let test_download_beats_baseline () =
  (* Theorem 4.2's point: the Download-based ODC saves ~gamma*k in total
     queries. With k=9 nodes the saving must be at least 2x even after
     committee overhead. *)
  let b = Odc.baseline default_params in
  let d = Odc.download_based default_params in
  checkb
    (Printf.sprintf "download total %d < baseline total %d" d.Odc.cell_queries_total
       b.Odc.cell_queries_total)
    true
    (d.Odc.cell_queries_total * 2 < b.Odc.cell_queries_total)

let test_download_with_2cycle () =
  (* The randomized protocol slot: with few peers it degrades to naive but
     must stay correct. *)
  let r = Odc.download_based ~protocol:`Two_cycle default_params in
  checkb "odd ok" true r.Odc.odd_ok;
  checkb "download ok" true r.Odc.download_ok

let test_download_naive_matches_baseline_cost_shape () =
  (* Download-with-naive costs every node the full arrays: no saving. *)
  let r = Odc.download_based ~protocol:`Naive default_params in
  checkb "odd ok" true r.Odc.odd_ok;
  let b = Odc.baseline default_params in
  checkb "naive download >= baseline" true
    (r.Odc.cell_queries_total >= b.Odc.cell_queries_total)

let test_published_agrees_with_honest_median () =
  let b = Odc.baseline default_params in
  let d = Odc.download_based default_params in
  Alcotest.(check (array int)) "same published array" b.Odc.published d.Odc.published

let test_odc_no_faults () =
  let p = { default_params with Odc.peer_faults = 0; source_faults = 0; sources = 1 } in
  let b = Odc.baseline p in
  let d = Odc.download_based p in
  checkb "baseline odd" true b.Odc.odd_ok;
  checkb "download odd" true d.Odc.odd_ok

let test_odc_max_source_faults () =
  let p = { default_params with Odc.sources = 9; source_faults = 4 } in
  let b = Odc.baseline p in
  checkb "odd holds at ts = (m-1)/2" true b.Odc.odd_ok

let test_dynamic_data_breaks_download_odc () =
  (* The paper's closing caveat: the Download-based construction assumes a
     static source; "getting rid of this assumption ... is left as an open
     problem". Here the source updates a value mid-protocol: the committee
     members who query late see a different bit, the vote splits, and the
     download either disagrees with the original array or cannot decide. *)
  let open Dr_core in
  let k = 9 and n = 180 and t = 2 in
  let inst = Problem.random_instance ~seed:17L ~model:Problem.Byzantine ~k ~n ~t () in
  let queries_so_far = ref 0 in
  let dynamic ~peer:_ i =
    incr queries_so_far;
    let original = Dr_source.Bitarray.get inst.Problem.x i in
    (* After a while, the source updates the first quarter of the array. *)
    if !queries_so_far > 60 && i < n / 4 then not original else original
  in
  let opts = Exec.make_opts ~query_override:dynamic ~max_events:200_000 () in
  let r = Committee.run_with ~opts ~attack:Committee.Honest_but_silent inst in
  checkb "dynamic data defeats the static-source protocol" false r.Dr_core.Problem.ok

let suite =
  [
    ("feed: honest jitter window", `Quick, test_feed_honest_within_jitter);
    ("feed: byzantine out of range", `Quick, test_feed_byzantine_out_of_range);
    ("feed: encode/decode roundtrip", `Quick, test_feed_encode_roundtrip);
    ("feed: deterministic", `Quick, test_feed_deterministic);
    ("median: basics", `Quick, test_median_basic);
    ("median: pure", `Quick, test_median_does_not_mutate);
    ("median: robust to minority", `Quick, test_median_robust_to_minority);
    ("median: cellwise", `Quick, test_cellwise_median);
    ("odc: validate", `Quick, test_validate);
    ("odc: baseline satisfies ODD", `Quick, test_baseline_odd);
    ("odc: download-based satisfies ODD", `Quick, test_download_based_odd);
    ("odc: download beats baseline (Thm 4.2)", `Quick, test_download_beats_baseline);
    ("odc: 2-cycle variant", `Quick, test_download_with_2cycle);
    ("odc: naive variant costs like baseline", `Quick, test_download_naive_matches_baseline_cost_shape);
    ("odc: both methods publish the same", `Quick, test_published_agrees_with_honest_median);
    ("odc: no faults", `Quick, test_odc_no_faults);
    ("odc: max source faults", `Quick, test_odc_max_source_faults);
    ("odc: dynamic data breaks it (open problem)", `Quick, test_dynamic_data_breaks_download_odc);
  ]
