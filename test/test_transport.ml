(* Transport conformance: the simulator runtime and the socket runtime must
   agree on everything that is schedule-invariant.

   Each scenario runs the same registry protocol on the same instance twice —
   once through [Exec] (the deterministic simulator) and once through
   [Dr_net.Runner] (k forked OS processes over loopback, querying a real
   source server) — and asserts identical verdicts and query counts. Message
   and timing totals are NOT compared: they depend on the delivery schedule,
   which the network does not replay. The scenarios below are chosen so the
   per-peer query counts are schedule-invariant (deterministic query plans,
   crash/attack behavior not keyed on arrival order). *)

module Problem = Dr_core.Problem
module Registry = Dr_core.Registry
module Exec = Dr_core.Exec
module Crash_plan = Dr_adversary.Crash_plan

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "registry lost protocol %s" name

(* [crash] is a function of the instance so the plan can target its fault
   set. 30s of wall clock is an order of magnitude above what these tiny
   instances need; it only bounds the damage of a hung child. *)
let conform ?(attack = "default") ?(crash = fun _ -> Crash_plan.none) ?chaos ~protocol ~k ~n ~t
    ~model ~seed () =
  let e = entry protocol in
  let inst = Problem.random_instance ~seed ~model ~k ~n ~t () in
  let crash = crash inst in
  let sim =
    e.Registry.run ~opts:(Exec.make_opts ~crash ()) ~attack inst
  in
  let net =
    Dr_net.Runner.run ~timeout:30. ~crash ?chaos (e.Registry.core ~attack inst) inst
  in
  checkb "sim verdict ok" true sim.Problem.ok;
  checkb "net verdict matches" sim.Problem.ok net.Problem.ok;
  checki "q_max matches" sim.Problem.q_max net.Problem.q_max;
  checki "q_total matches" sim.Problem.q_total net.Problem.q_total;
  Alcotest.(check (float 1e-9)) "q_mean matches" sim.Problem.q_mean net.Problem.q_mean

let test_crash_general_faultfree () =
  conform ~protocol:"crash-general" ~k:5 ~n:256 ~t:0 ~model:Problem.Crash ~seed:7L ()

let test_crash_general_silent_crash () =
  conform ~protocol:"crash-general" ~k:6 ~n:512 ~t:2 ~model:Problem.Crash ~seed:3L
    ~crash:(fun inst -> Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:0)
    ()

let test_byz_2cycle_silent () =
  conform ~protocol:"byz-2cycle" ~attack:"silent" ~k:6 ~n:512 ~t:2 ~model:Problem.Byzantine
    ~seed:3L ()

(* Chaos conformance: injected infrastructure faults (drops, corruption,
   lost replies, a blackout window) sit below the reliability the protocols
   assume, so a chaotic net run must still agree with the pristine
   simulator on the verdict and on every query count — the replay cache
   keeps retried queries off the Q meter. *)
let chaos spec =
  match Dr_net.Faultnet.parse_seeded spec with
  | Ok (chaos_seed, plan) -> { Dr_net.Runner.chaos_seed; plan }
  | Error e -> Alcotest.failf "bad chaos spec %S: %s" spec e

let test_chaos_conformance_crash_general () =
  conform ~protocol:"crash-general" ~k:5 ~n:256 ~t:0 ~model:Problem.Crash ~seed:7L
    ~chaos:(chaos "13:drop=0.1,corrupt=0.05,reply_loss=0.25")
    ()

let test_chaos_conformance_byz_2cycle () =
  conform ~protocol:"byz-2cycle" ~attack:"silent" ~k:6 ~n:512 ~t:2 ~model:Problem.Byzantine
    ~seed:3L
    ~chaos:(chaos "5:drop=0.05,source_blackout=3@q2,stall=1ms@p1")
    ()

let test_net_rejects_at_time_crash () =
  let e = entry "crash-general" in
  let inst = Problem.random_instance ~seed:1L ~model:Problem.Crash ~k:4 ~n:64 ~t:1 () in
  let crash = Crash_plan.staggered inst.Problem.fault ~first:0.5 ~gap:2.0 in
  match Dr_net.Runner.run ~timeout:30. ~crash (e.Registry.core inst) inst with
  | _ -> Alcotest.fail "wall-clock crash instants must be rejected"
  | exception Failure _ -> ()

let suite =
  [
    ("crash-general fault-free sim=net", `Quick, test_crash_general_faultfree);
    ("crash-general silent crash sim=net", `Quick, test_crash_general_silent_crash);
    ("byz-2cycle silent attack sim=net", `Quick, test_byz_2cycle_silent);
    ("crash-general sim=net under chaos", `Quick, test_chaos_conformance_crash_general);
    ("byz-2cycle sim=net under chaos", `Quick, test_chaos_conformance_byz_2cycle);
    ("net rejects At_time crash plans", `Quick, test_net_rejects_at_time_crash);
  ]
