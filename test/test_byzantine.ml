(* Tests for the Byzantine-fault machinery: decision trees, frequent-string
   stores, the deterministic committee protocol, and the randomized 2-cycle
   and multi-cycle protocols. *)

open Dr_core
module Bitarray = Dr_source.Bitarray
module Fault = Dr_adversary.Fault
module Latency = Dr_adversary.Latency

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let byz_instance ?(seed = 1L) ?b ~k ~n ~t () =
  let inst = Problem.random_instance ~seed ?b ~model:Problem.Byzantine ~k ~n ~t () in
  inst

let assert_ok name report =
  if not report.Problem.ok then
    Alcotest.failf "%s: expected success, got %a" name Problem.pp_report report

let jitter seed = Latency.jittered (Dr_engine.Prng.create seed)
let ba = Bitarray.of_string

(* ------------------------------------------------------------------ *)
(* Decision trees (Protocol 3)                                         *)
(* ------------------------------------------------------------------ *)

let query_of truth i = Bitarray.get truth i

let test_tree_single_leaf () =
  let tree = Decision_tree.build [ ba "1010" ] in
  checki "no internal nodes" 0 (Decision_tree.internal_nodes tree);
  let v, spent = Decision_tree.determine ~query:(fun _ -> assert false) ~offset:0 tree in
  checki "no queries" 0 spent;
  checks "the leaf" "1010" (Bitarray.to_string v)

let test_tree_duplicates_merge () =
  let tree = Decision_tree.build [ ba "11"; ba "11"; ba "11" ] in
  checki "merged" 0 (Decision_tree.internal_nodes tree);
  checki "one leaf" 1 (List.length (Decision_tree.leaves tree))

let test_tree_internal_count () =
  (* d distinct candidates -> exactly d-1 internal nodes. *)
  List.iter
    (fun strings ->
      let tree = Decision_tree.build strings in
      let distinct = List.length (List.sort_uniq Bitarray.compare strings) in
      checki "d-1 internal nodes" (distinct - 1) (Decision_tree.internal_nodes tree))
    [
      [ ba "00"; ba "01" ];
      [ ba "000"; ba "011"; ba "110" ];
      [ ba "0000"; ba "0001"; ba "0010"; ba "0100"; ba "1000" ];
      [ ba "10101010"; ba "01010101"; ba "11110000"; ba "00001111"; ba "10101010" ];
    ]

let test_tree_determine_finds_truth () =
  (* Whatever forgeries accompany it, if the true string is a candidate,
     determine returns it. *)
  let truth = ba "110010" in
  let candidates =
    [ ba "010010"; truth; ba "111010"; ba "110011"; ba "000000"; ba "111111" ]
  in
  let tree = Decision_tree.build candidates in
  let v, spent = Decision_tree.determine ~query:(query_of truth) ~offset:0 tree in
  checks "truth wins" "110010" (Bitarray.to_string v);
  checkb "queries <= candidates-1" true (spent <= List.length candidates - 1)

let test_tree_determine_with_offset () =
  (* Candidates describe bits [3..5] of a longer array. *)
  let full = ba "00010100" in
  let truth = Bitarray.sub full ~pos:3 ~len:3 in
  let tree = Decision_tree.build [ truth; ba "000"; ba "111" ] in
  let v, _ = Decision_tree.determine ~query:(query_of full) ~offset:3 tree in
  checkb "offset respected" true (Bitarray.equal v truth)

let test_tree_exhaustive_truth_recovery () =
  (* All 16 strings of length 4 as candidates: determine must recover any
     truth with exactly... at most 15 queries, always correctly. *)
  let all = List.init 16 (fun v -> Bitarray.init 4 (fun b -> (v lsr b) land 1 = 1)) in
  let tree = Decision_tree.build all in
  checki "15 internal" 15 (Decision_tree.internal_nodes tree);
  List.iter
    (fun truth ->
      let v, _ = Decision_tree.determine ~query:(query_of truth) ~offset:0 tree in
      checkb "recovered" true (Bitarray.equal v truth))
    all

let test_tree_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Decision_tree.build: empty candidate set")
    (fun () -> ignore (Decision_tree.build []));
  Alcotest.check_raises "mixed lengths"
    (Invalid_argument "Decision_tree.build: candidates must have equal length") (fun () ->
      ignore (Decision_tree.build [ ba "01"; ba "011" ]))

let test_tree_contains () =
  let tree = Decision_tree.build [ ba "01"; ba "10" ] in
  checkb "contains" true (Decision_tree.contains tree (ba "10"));
  checkb "not contains" false (Decision_tree.contains tree (ba "11"))

(* ------------------------------------------------------------------ *)
(* Frequent strings                                                    *)
(* ------------------------------------------------------------------ *)

let test_frequent_threshold () =
  let st = Frequent.create () in
  ignore (Frequent.add st ~seg:0 ~peer:1 (ba "11"));
  ignore (Frequent.add st ~seg:0 ~peer:2 (ba "11"));
  ignore (Frequent.add st ~seg:0 ~peer:3 (ba "00"));
  checki "rho=2 keeps the pair" 1 (List.length (Frequent.frequent st ~seg:0 ~rho:2));
  checki "rho=1 keeps both" 2 (List.length (Frequent.frequent st ~seg:0 ~rho:1));
  checki "rho=3 keeps none" 0 (List.length (Frequent.frequent st ~seg:0 ~rho:3))

let test_frequent_one_report_per_peer () =
  (* A flooder cannot vote twice — not even on different segments. *)
  let st = Frequent.create () in
  checkb "first accepted" true (Frequent.add st ~seg:0 ~peer:7 (ba "1"));
  checkb "second rejected" false (Frequent.add st ~seg:0 ~peer:7 (ba "1"));
  checkb "other segment rejected too" false (Frequent.add st ~seg:1 ~peer:7 (ba "0"));
  checki "R_0 = 1" 1 (Frequent.total_for st ~seg:0);
  checki "one reporter" 1 (Frequent.reporters st)

let test_frequent_covered () =
  let st = Frequent.create () in
  ignore (Frequent.add st ~seg:0 ~peer:0 (ba "1"));
  checkb "segment 1 missing" false (Frequent.covered st ~segments:2 ~rho:1);
  ignore (Frequent.add st ~seg:1 ~peer:1 (ba "0"));
  checkb "now covered" true (Frequent.covered st ~segments:2 ~rho:1);
  checkb "not at rho=2" false (Frequent.covered st ~segments:2 ~rho:2)

let test_frequent_strings_counts () =
  let st = Frequent.create () in
  ignore (Frequent.add st ~seg:3 ~peer:0 (ba "10"));
  ignore (Frequent.add st ~seg:3 ~peer:1 (ba "10"));
  ignore (Frequent.add st ~seg:3 ~peer:2 (ba "01"));
  let counts = List.sort compare (List.map snd (Frequent.strings_for st ~seg:3)) in
  check (Alcotest.list Alcotest.int) "counts" [ 1; 2 ] counts

(* ------------------------------------------------------------------ *)
(* Committee protocol                                                  *)
(* ------------------------------------------------------------------ *)

let test_committee_membership () =
  check (Alcotest.list Alcotest.int) "round robin" [ 3; 4; 0 ]
    (Committee.committee ~k:5 ~size:3 1);
  checki "size clamped to k" 4 (List.length (Committee.committee ~k:4 ~size:9 0))

let test_committee_no_attack () =
  let inst = byz_instance ~k:9 ~n:300 ~t:4 () in
  let r = Committee.run_with ~attack:Committee.Honest_but_silent inst in
  assert_ok "silent byz" r

let test_committee_all_attacks () =
  List.iter
    (fun (label, attack) ->
      let inst = byz_instance ~k:9 ~n:300 ~t:4 () in
      assert_ok label (Committee.run_with ~attack inst))
    [
      ("silent", Committee.Honest_but_silent);
      ("flip", Committee.Flip);
      ("equivocate", Committee.Equivocate);
      ("collude", Committee.Collude);
    ]

let test_committee_query_complexity () =
  (* Q ~= (2t+1) * n/k. *)
  let k = 10 and n = 1000 and t = 2 in
  let inst = byz_instance ~k ~n ~t ~b:(64 + 10) () in
  let r = Committee.run_with ~attack:Committee.Flip inst in
  assert_ok "committee Q run" r;
  let per_block = 10 in
  let blocks = n / per_block in
  let expected = (2 * t) + 1 in
  (* Each peer sits on ~blocks*c/k committees of per_block bits each. *)
  let bound = (blocks * expected * per_block / k) + (2 * per_block) in
  checkb (Printf.sprintf "Q=%d <= %d" r.Problem.q_max bound) true (r.Problem.q_max <= bound);
  checkb "Q >= naive share" true (r.Problem.q_max >= n / k)

let test_committee_under_jitter () =
  List.iter
    (fun seed ->
      let inst = byz_instance ~seed ~k:7 ~n:140 ~t:3 () in
      let opts = Exec.(with_latency (jitter seed) default) in
      assert_ok
        (Printf.sprintf "jitter %Ld" seed)
        (Committee.run_with ~opts ~attack:Committee.Equivocate inst))
    [ 1L; 2L; 3L; 4L; 5L ]

let test_committee_rushing_byzantine () =
  (* Byzantine values arrive first; honest ones must still win. *)
  let inst = byz_instance ~k:9 ~n:90 ~t:4 () in
  let fast i = Fault.is_faulty inst.Problem.fault i in
  let opts = Exec.(with_latency (Latency.rushing ~fast ~eps:0.01) default) in
  assert_ok "rushing" (Committee.run_with ~opts ~attack:Committee.Collude inst)

let test_committee_breaks_at_majority () =
  (* Theorem 3.1 made concrete: with beta = 1/2 a colluding committee
     majority forges decisions. *)
  let k = 8 in
  let fault = Fault.choose ~k (Fault.Explicit [ 0; 2; 4; 6 ]) in
  let x = Bitarray.random (Dr_engine.Prng.create 3L) 64 in
  let inst = Problem.make ~model:Problem.Byzantine ~k ~x fault in
  (* With beta = 1/2 no committee size/threshold is safe: a committee of 5
     holds 3 colluders, enough for a forged tau = 3 quorum. Rushing delivery
     makes the forged quorum land first at every non-member. *)
  let fast i = Fault.is_faulty fault i in
  let opts = Exec.(with_latency (Latency.rushing ~fast ~eps:0.01) default) in
  let r =
    Committee.run_with ~opts ~attack:Committee.Collude ~committee_size:5 ~threshold:3 inst
  in
  checkb "fails under byzantine majority" false r.Problem.ok

let test_committee_supports () =
  checkb "rejects beta >= 1/2" true
    (match Committee.supports (byz_instance ~k:8 ~n:16 ~t:4 ()) with
    | Error _ -> true
    | Ok () -> false);
  checkb "accepts beta < 1/2" true
    (match Committee.supports (byz_instance ~k:9 ~n:16 ~t:4 ()) with
    | Ok () -> true
    | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* 2-cycle randomized protocol                                         *)
(* ------------------------------------------------------------------ *)

let test_2cycle_plan_cases () =
  (* Big k: a real segmentation; small k: the naive fallback (s = 1). *)
  let s_big, rho_big = Byz_2cycle.plan ~k:200 ~n:10_000 ~t:20 in
  checkb "case 1: s > 1" true (s_big > 1);
  checkb "rho >= 1" true (rho_big >= 1);
  let s_small, _ = Byz_2cycle.plan ~k:8 ~n:10_000 ~t:3 in
  checki "case 3: naive" 1 s_small

let test_2cycle_case3_naive () =
  let inst = byz_instance ~k:8 ~n:64 ~t:3 () in
  let r = Byz_2cycle.run inst in
  assert_ok "case 3" r;
  checki "Q = n" 64 r.Problem.q_max

let test_2cycle_attacks () =
  List.iter
    (fun (label, attack) ->
      let inst = byz_instance ~seed:11L ~k:12 ~n:120 ~t:2 () in
      let r = Byz_2cycle.run_with ~attack ~segments:2 ~rho:2 inst in
      assert_ok label r)
    [
      ("silent", Byz_2cycle.Silent);
      ("near-miss", Byz_2cycle.Near_miss);
      ("consistent lie", Byz_2cycle.Consistent_lie);
      ("equivocate", Byz_2cycle.Equivocate);
    ]

let test_2cycle_query_savings () =
  (* With s segments, honest peers query ~n/s + trees, well below n. *)
  let n = 3000 in
  let inst = byz_instance ~seed:7L ~k:24 ~n ~t:4 () in
  let r = Byz_2cycle.run_with ~attack:Byz_2cycle.Near_miss ~segments:4 ~rho:2 inst in
  assert_ok "savings" r;
  checkb
    (Printf.sprintf "Q=%d < n=%d" r.Problem.q_max n)
    true
    (r.Problem.q_max <= (n / 4) + (2 * 24))

let test_2cycle_jitter_sweep () =
  List.iter
    (fun seed ->
      let inst = byz_instance ~seed ~k:15 ~n:90 ~t:3 () in
      let opts = Exec.(with_latency (jitter seed) default) in
      assert_ok
        (Printf.sprintf "2cycle jitter %Ld" seed)
        (Byz_2cycle.run_with ~opts ~attack:Byz_2cycle.Near_miss ~segments:2 ~rho:2 inst))
    [ 1L; 2L; 3L; 4L; 5L; 6L ]

let test_2cycle_rushing_forgeries () =
  (* Forged strings arrive before any honest string. *)
  let inst = byz_instance ~seed:21L ~k:12 ~n:72 ~t:2 () in
  let fast i = Fault.is_faulty inst.Problem.fault i in
  let opts = Exec.(with_latency (Latency.rushing ~fast ~eps:0.01) default) in
  let r = Byz_2cycle.run_with ~opts ~attack:Byz_2cycle.Consistent_lie ~segments:2 ~rho:2 inst in
  assert_ok "rushing lie" r

let test_2cycle_rho_too_high_deadlocks () =
  (* Ablation A-1: an over-strict threshold can starve the wait condition. *)
  let inst = byz_instance ~seed:3L ~k:10 ~n:40 ~t:2 () in
  let r = Byz_2cycle.run_with ~attack:Byz_2cycle.Silent ~segments:2 ~rho:9 inst in
  checkb "deadlock" true
    (match r.Problem.status with Dr_engine.Sim.Deadlock _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Multi-cycle randomized protocol                                     *)
(* ------------------------------------------------------------------ *)

let test_multicycle_plan () =
  let s1, cycles = Byz_multicycle.plan ~k:300 ~n:100_000 ~t:30 in
  checkb "power of two" true (s1 land (s1 - 1) = 0);
  checkb "cycles = 1 + log2 s1" true (1 lsl (cycles - 1) = s1)

let test_multicycle_small_naive () =
  let inst = byz_instance ~k:8 ~n:64 ~t:3 () in
  assert_ok "cycles=1 fallback" (Byz_multicycle.run inst)

let test_multicycle_attacks () =
  List.iter
    (fun (label, attack) ->
      let inst = byz_instance ~seed:5L ~k:20 ~n:160 ~t:2 () in
      let r = Byz_multicycle.run_with ~attack ~segments:2 inst in
      assert_ok label r)
    [
      ("silent", Byz_multicycle.Silent);
      ("near-miss", Byz_multicycle.Near_miss);
      ("consistent lie", Byz_multicycle.Consistent_lie);
      ("equivocate", Byz_multicycle.Equivocate);
    ]

let test_multicycle_deeper () =
  let inst = byz_instance ~seed:13L ~k:48 ~n:480 ~t:8 () in
  let r = Byz_multicycle.run_with ~attack:Byz_multicycle.Near_miss ~segments:4 inst in
  assert_ok "s1=4 (3 cycles)" r;
  checkb "Q well below n" true (r.Problem.q_max < 480)

let test_multicycle_jitter () =
  List.iter
    (fun seed ->
      let inst = byz_instance ~seed ~k:20 ~n:100 ~t:3 () in
      let opts = Exec.(with_latency (jitter seed) default) in
      assert_ok
        (Printf.sprintf "multicycle jitter %Ld" seed)
        (Byz_multicycle.run_with ~opts ~attack:Byz_multicycle.Near_miss ~segments:2 inst))
    [ 1L; 2L; 3L; 4L ]

let test_combined_adversary_committee () =
  (* Everything at once: rushing Byzantine delivery, B-limited serialized
     links, staggered honest starts. *)
  let inst = byz_instance ~seed:41L ~k:9 ~n:360 ~t:4 () in
  let fast i = Fault.is_faulty inst.Problem.fault i in
  let opts =
    Exec.make_opts
      ~latency:(Latency.rushing ~fast ~eps:0.01)
      ~link_rate:(float_of_int inst.Problem.b)
      ~start_time:(fun i -> float_of_int (i mod 3) *. 0.4)
      ()
  in
  assert_ok "combined adversary" (Committee.run_with ~opts ~attack:Committee.Collude inst)

let test_2cycle_under_serialized_links () =
  let inst = byz_instance ~seed:43L ~k:16 ~n:160 ~t:3 () in
  let opts =
    Exec.default
    |> Exec.with_latency (jitter 43L)
    |> Exec.with_link_rate 4096.
  in
  assert_ok "2cycle + link rate"
    (Byz_2cycle.run_with ~opts ~attack:Byz_2cycle.Consistent_lie ~segments:2 ~rho:2 inst)

let test_multicycle_under_serialized_links () =
  let inst = byz_instance ~seed:47L ~k:24 ~n:240 ~t:4 () in
  let opts = Exec.with_link_rate 8192. Exec.default in
  assert_ok "multicycle + link rate"
    (Byz_multicycle.run_with ~opts ~attack:Byz_multicycle.Near_miss ~segments:2 inst)

let test_committee_explored_schedules () =
  (* Schedule exploration with an actual Byzantine peer in the mix: a
     silent byzantine peer on k=3, every explored order must decide. *)
  let x = Bitarray.random (Dr_engine.Prng.create 51L) 4 in
  let fault = Fault.choose ~k:3 (Fault.Explicit [ 2 ]) in
  let inst = Problem.make ~model:Problem.Byzantine ~k:3 ~x fault in
  let r =
    Dr_engine.Explore.dfs ~budget:2_000 ~run:(fun ~arbiter ->
        let opts = Exec.with_arbiter arbiter Exec.default in
        (Committee.run_with ~opts ~attack:Committee.Honest_but_silent inst).Problem.ok)
  in
  checki "no failing schedule" 0 r.Dr_engine.Explore.failures

let suite =
  [
    ("tree: single leaf", `Quick, test_tree_single_leaf);
    ("tree: duplicates merge", `Quick, test_tree_duplicates_merge);
    ("tree: internal = distinct-1", `Quick, test_tree_internal_count);
    ("tree: truth survives forgeries", `Quick, test_tree_determine_finds_truth);
    ("tree: offset", `Quick, test_tree_determine_with_offset);
    ("tree: exhaustive recovery", `Quick, test_tree_exhaustive_truth_recovery);
    ("tree: rejects bad input", `Quick, test_tree_rejects_bad_input);
    ("tree: contains", `Quick, test_tree_contains);
    ("frequent: threshold", `Quick, test_frequent_threshold);
    ("frequent: one report per peer", `Quick, test_frequent_one_report_per_peer);
    ("frequent: covered", `Quick, test_frequent_covered);
    ("frequent: counts", `Quick, test_frequent_strings_counts);
    ("committee: membership", `Quick, test_committee_membership);
    ("committee: no attack", `Quick, test_committee_no_attack);
    ("committee: all attacks", `Quick, test_committee_all_attacks);
    ("committee: query complexity", `Quick, test_committee_query_complexity);
    ("committee: jitter", `Quick, test_committee_under_jitter);
    ("committee: rushing byzantine", `Quick, test_committee_rushing_byzantine);
    ("committee: breaks at beta>=1/2", `Quick, test_committee_breaks_at_majority);
    ("committee: supports", `Quick, test_committee_supports);
    ("2cycle: plan cases", `Quick, test_2cycle_plan_cases);
    ("2cycle: case 3 = naive", `Quick, test_2cycle_case3_naive);
    ("2cycle: attacks", `Quick, test_2cycle_attacks);
    ("2cycle: query savings", `Quick, test_2cycle_query_savings);
    ("2cycle: jitter sweep", `Quick, test_2cycle_jitter_sweep);
    ("2cycle: rushing forgeries", `Quick, test_2cycle_rushing_forgeries);
    ("2cycle: rho ablation deadlock", `Quick, test_2cycle_rho_too_high_deadlocks);
    ("multicycle: plan", `Quick, test_multicycle_plan);
    ("multicycle: small naive", `Quick, test_multicycle_small_naive);
    ("multicycle: attacks", `Quick, test_multicycle_attacks);
    ("multicycle: deeper", `Quick, test_multicycle_deeper);
    ("multicycle: jitter", `Quick, test_multicycle_jitter);
    ("combined adversary (committee)", `Quick, test_combined_adversary_committee);
    ("2cycle under serialized links", `Quick, test_2cycle_under_serialized_links);
    ("multicycle under serialized links", `Quick, test_multicycle_under_serialized_links);
    ("committee: explored schedules", `Quick, test_committee_explored_schedules);
  ]
