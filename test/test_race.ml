(* dr_race: planted-violation fixtures for each rule, zone parsing, the
   census determinism gate, and the "live tree is race-clean" gate.

   Fixtures live in race_fixtures/ (never compiled; dr_race parses them).
   The live-tree tests run over ../lib ../bin ../bench against the
   committed ../dr-race.zones and ../RACE_INVENTORY.json. *)

module Driver = Dr_lint.Driver
module Finding = Dr_lint.Finding
module Inventory = Dr_lint.Inventory
module Zones = Dr_lint.Zones
module Race_rules = Dr_lint.Race_rules
module Domain_safe = Dr_engine.Domain_safe

let shorts (r : Driver.report) =
  List.concat_map (fun fr -> List.map Finding.to_short fr.Driver.findings) r.Driver.files

(* ---- the planted violations: every rule must fire ---- *)

let fixture_findings () =
  let a = Race_rules.analyze [ "race_fixtures" ] in
  Alcotest.(check (list string))
    "each planted violation fires, nothing else"
    [
      "initonly.ml:7 [R2]";   (* init-only cell written post-init *)
      "intruder.ml:3 [R2]";   (* per-domain cell poked from outside the owner *)
      "intruder.ml:4 [R2]";   (* per-domain type constructed outside the owner *)
      "outsider.ml:3 [R2]";   (* engine-shared write from another unit *)
      "outsider.ml:4 [R2]";   (* engine-shared read from another unit *)
      "printer.ml:3 [R3]";    (* stdlib singleton outside bin//bench//lib/stats *)
      "undeclared.ml:3 [R1]"; (* escaping mutable value with no zone *)
    ]
    (shorts a.Race_rules.report);
  Alcotest.(check int) "the waived print is suppressed" 1
    a.Race_rules.report.Driver.total_suppressed

(* A zones file silences the undeclared cell and raises its own stale-entry
   diagnostic. *)
let zones_file_findings () =
  let a =
    Race_rules.analyze ~zones_path:"race_fixtures/fixtures.zones" [ "race_fixtures" ]
  in
  let r1s = List.filter (fun s -> Filename.check_suffix s "[R1]") (shorts a.Race_rules.report) in
  Alcotest.(check (list string))
    "declared cell silenced; stale entry reported"
    [ "fixtures.zones:4 [R1]" ] r1s

(* ---- the census ---- *)

let fixture_inventory () =
  let a = Race_rules.analyze [ "race_fixtures" ] in
  let find key =
    List.find_opt (fun it -> String.equal (Inventory.key it) key) a.Race_rules.items
  in
  (match find "Undeclared.table" with
  | Some it ->
    Alcotest.(check string) "hashtbl kind" "hashtbl" (Inventory.kind_name it.Inventory.kind);
    Alcotest.(check bool) "no .mli: escapes" true it.Inventory.escaping
  | None -> Alcotest.fail "Undeclared.table missing from census");
  (match find "Holder.t" with
  | Some it ->
    Alcotest.(check string) "mutable record kind" "mutable-record"
      (Inventory.kind_name it.Inventory.kind)
  | None -> Alcotest.fail "Holder.t missing from census");
  (match Zones.find a.Race_rules.decls ~sort:Inventory.Value ~key:"Shared_cell.hits" with
  | Some d ->
    Alcotest.(check string) "pragma zone parsed" "engine-shared" (Zones.zone_name d.Zones.d_zone);
    Alcotest.(check string) "pragma reason parsed" "fixture: the one shared counter"
      d.Zones.d_reason
  | None -> Alcotest.fail "Shared_cell.hits zone pragma not picked up")

(* ---- zone grammar ---- *)

let zones_parsing () =
  let decls =
    Zones.parse_file ~path:"z"
      "# comment\n\
       value M.x init-only -- precomputed\n\
       type N.t per-domain:lib/check — em-dash reason\n\
       \n\
       type O.t engine-shared\n"
  in
  Alcotest.(check int) "three declarations" 3 (List.length decls);
  (match decls with
  | [ a; b; c ] ->
    Alcotest.(check string) "zone 1" "init-only" (Zones.zone_name a.Zones.d_zone);
    Alcotest.(check string) "reason 1" "precomputed" a.Zones.d_reason;
    Alcotest.(check string) "zone 2" "per-domain:lib/check" (Zones.zone_name b.Zones.d_zone);
    Alcotest.(check string) "reason 2" "em-dash reason" b.Zones.d_reason;
    Alcotest.(check string) "reason optional" "" c.Zones.d_reason
  | _ -> Alcotest.fail "expected three declarations");
  let rejects src =
    match Zones.parse_file ~path:"z" src with
    | exception Zones.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted malformed line %S" src
  in
  rejects "cell M.x init-only\n";
  rejects "value M.x shared\n";
  rejects "type M.t init-only -- instances have no init window\n";
  rejects "value M.x\n"

(* ---- the path/zone predicates the rules are built on ---- *)

let predicates () =
  Alcotest.(check bool) "subtree" true (Race_rules.path_under ~owner:"lib/check" "lib/check/corpus.ml");
  Alcotest.(check bool) "dotdot-normalized" true
    (Race_rules.path_under ~owner:"lib/check" "../lib/check/corpus.ml");
  Alcotest.(check bool) "sibling is outside" false
    (Race_rules.path_under ~owner:"lib/check" "lib/core/exec.ml");
  Alcotest.(check bool) "prefix is not a segment match" false
    (Race_rules.path_under ~owner:"lib/check" "lib/checker/x.ml");
  Alcotest.(check bool) "bin allowed" true (Race_rules.singleton_allowed "bin/dr_trace.ml");
  Alcotest.(check bool) "bench allowed" true (Race_rules.singleton_allowed "../bench/main.ml");
  Alcotest.(check bool) "lib/stats allowed" true (Race_rules.singleton_allowed "lib/stats/table.ml");
  Alcotest.(check bool) "lib/engine not allowed" false
    (Race_rules.singleton_allowed "lib/engine/sim.ml");
  Alcotest.(check bool) "module init is an init context" true (Race_rules.init_like None);
  Alcotest.(check bool) "setup_ prefixed" true (Race_rules.init_like (Some "setup_tables"));
  Alcotest.(check bool) "of_ prefixed" true (Race_rules.init_like (Some "of_string"));
  Alcotest.(check bool) "plain mutator is not" false (Race_rules.init_like (Some "tweak"))

(* ---- the live tree ---- *)

let roots = [ "../lib"; "../bin"; "../bench" ]

let live_tree_race_clean () =
  let a = Race_rules.analyze ~zones_path:"../dr-race.zones" roots in
  let rendered =
    Format.asprintf "%a" (Driver.pp_report_as ~tool:"dr_race") a.Race_rules.report
  in
  Alcotest.(check bool) "scans the whole tree" true
    (a.Race_rules.report.Driver.files_scanned > 50);
  if not (Driver.clean a.Race_rules.report) then
    Alcotest.failf "live tree has race findings:@.%s" rendered;
  Alcotest.(check int) "race waivers in deliberate use" 1
    a.Race_rules.report.Driver.total_suppressed

(* The committed census must be regenerable byte-for-byte: stale
   RACE_INVENTORY.json fails here (and in the @race alias diff). *)
let inventory_committed_and_deterministic () =
  let a = Race_rules.analyze ~zones_path:"../dr-race.zones" roots in
  let b = Race_rules.analyze ~zones_path:"../dr-race.zones" roots in
  Alcotest.(check string) "byte-deterministic across reruns"
    (Race_rules.inventory_json a) (Race_rules.inventory_json b);
  let committed = Driver.read_file "../RACE_INVENTORY.json" in
  Alcotest.(check string) "committed census is current" committed (Race_rules.inventory_json a)

(* Every escaping census item must carry a zone in the committed file —
   the invariant R1 enforces, asserted here directly against the data. *)
let all_escaping_zoned () =
  let a = Race_rules.analyze ~zones_path:"../dr-race.zones" roots in
  List.iter
    (fun (it : Inventory.item) ->
      if it.Inventory.escaping then
        match Zones.find a.Race_rules.decls ~sort:it.Inventory.sort ~key:(Inventory.key it) with
        | Some _ -> ()
        | None -> Alcotest.failf "%s escapes but has no zone" (Inventory.key it))
    a.Race_rules.items

(* ---- the Domain_safe wrapper under real contention ---- *)
(* Spawns domains: keep this after every suite that forks (transport). *)

let domain_safe_parallel () =
  let counter = Domain_safe.Counter.make () in
  let cell = Domain_safe.Cell.make 0 in
  let guarded = Domain_safe.Guarded.make 0 in
  let iters = 10_000 in
  let worker () =
    for _ = 1 to iters do
      Domain_safe.Counter.incr counter;
      Domain_safe.Cell.update cell (fun n -> n + 1);
      Domain_safe.Guarded.with_lock guarded (fun _ -> ()) |> ignore
    done
  in
  let doms = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join doms;
  Alcotest.(check int) "atomic counter: no lost increments" (4 * iters)
    (Domain_safe.Counter.get counter);
  Alcotest.(check int) "CAS cell: no lost updates" (4 * iters) (Domain_safe.Cell.get cell);
  Domain_safe.Counter.reset counter;
  Alcotest.(check int) "reset" 0 (Domain_safe.Counter.get counter);
  Domain_safe.Guarded.set guarded 7;
  Alcotest.(check int) "guarded set/get" 7 (Domain_safe.Guarded.with_lock guarded (fun v -> v))

let suite =
  [
    Alcotest.test_case "fixtures: R1/R2/R3 all fire" `Quick fixture_findings;
    Alcotest.test_case "fixtures: zones file declares and goes stale" `Quick zones_file_findings;
    Alcotest.test_case "fixtures: census kinds and zone pragmas" `Quick fixture_inventory;
    Alcotest.test_case "zones grammar" `Quick zones_parsing;
    Alcotest.test_case "path/zone predicates" `Quick predicates;
    Alcotest.test_case "live tree is race-clean" `Quick live_tree_race_clean;
    Alcotest.test_case "census is committed and deterministic" `Quick
      inventory_committed_and_deterministic;
    Alcotest.test_case "every escaping item is zoned" `Quick all_escaping_zoned;
    Alcotest.test_case "Domain_safe under 4-domain contention" `Quick domain_safe_parallel;
  ]
