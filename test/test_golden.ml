(* Golden regression values: every protocol on a fixed instance, fixed
   schedule, fixed seeds. The simulator is fully deterministic, so any
   change to these numbers means an intentional behaviour change (update
   the table) or an accidental one (a bug). *)

open Dr_core
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan
module Prng = Dr_engine.Prng
module Fault = Dr_adversary.Fault

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

type golden = { ok : bool; q_max : int; msgs : int; bits : int; time : float }

let expect label g (r : Problem.report) =
  checkb (label ^ " ok") g.ok r.Problem.ok;
  checki (label ^ " Q") g.q_max r.Problem.q_max;
  checki (label ^ " M") g.msgs r.Problem.msgs;
  checki (label ^ " bits") g.bits r.Problem.bits_sent;
  Alcotest.(check (float 0.001)) (label ^ " T") g.time r.Problem.time

let jopts inst =
  Exec.default
  |> Exec.with_latency (Latency.jittered (Prng.create 5L))
  |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:2)

let jitter_only () = Exec.with_latency (Latency.jittered (Prng.create 5L)) Exec.default

let crash () = Problem.random_instance ~seed:1234L ~k:12 ~n:1200 ~t:4 ()

let test_naive () =
  expect "naive" { ok = true; q_max = 1200; msgs = 0; bits = 0; time = 0. } (Naive.run (crash ()))

let test_balanced () =
  let inst = { (crash ()) with Problem.fault = Fault.choose ~k:12 Fault.None_faulty } in
  expect "balanced"
    { ok = true; q_max = 100; msgs = 132; bits = 21648; time = 1.0 }
    (Balanced.run inst)

let test_crash_single () =
  let inst = { (crash ()) with Problem.fault = Fault.choose ~k:12 (Fault.Explicit [ 7 ]) } in
  expect "crash-single"
    { ok = true; q_max = 100; msgs = 538; bits = 192132; time = 1.687 }
    (Crash_single.run ~opts:(jopts inst) inst)

let test_crash_general () =
  let inst = crash () in
  expect "crash-general"
    { ok = true; q_max = 203; msgs = 1690; bits = 429918; time = 10.467 }
    (Crash_general.run ~opts:(jopts inst) inst)

let test_committee () =
  let inst = Problem.random_instance ~seed:1234L ~model:Problem.Byzantine ~k:12 ~n:1200 ~t:4 () in
  expect "byz-committee"
    { ok = true; q_max = 1200; msgs = 132; bits = 87648; time = 0.764 }
    (Committee.run_with ~opts:(jitter_only ()) ~attack:Committee.Equivocate inst)

let byz_big () = Problem.random_instance ~seed:1234L ~model:Problem.Byzantine ~k:40 ~n:1200 ~t:6 ()

let test_2cycle () =
  expect "byz-2cycle"
    { ok = true; q_max = 600; msgs = 1326; bits = 880464; time = 0.906 }
    (Byz_2cycle.run_with ~opts:(jitter_only ()) ~attack:Byz_2cycle.Near_miss ~segments:2 ~rho:2
       (byz_big ()))

let test_multicycle () =
  expect "byz-multicycle"
    { ok = true; q_max = 600; msgs = 2652; bits = 2556528; time = 0.913 }
    (Byz_multicycle.run_with ~opts:(jitter_only ()) ~attack:Byz_multicycle.Near_miss ~segments:2
       (byz_big ()))

(* Full-report determinism: two runs with identical seeds/opts must agree on
   every field of the report (not just the pinned Q/T/M numbers above). Runs
   go through Registry.run so the uniform dispatch path is covered too. *)

let registry_run name ?segments ~attack inst =
  (Registry.find_exn name).Registry.run ~opts:(jitter_only ()) ~attack ?segments inst

let test_determinism_2cycle () =
  let run () = registry_run "byz-2cycle" ~segments:2 ~attack:"nearmiss" (byz_big ()) in
  checkb "identical reports" true (run () = run ())

let test_determinism_crash_general () =
  let run () =
    let inst = crash () in
    (Registry.find_exn "crash-general").Registry.run ~opts:(jopts inst) inst
  in
  checkb "identical reports" true (run () = run ())

let suite =
  [
    ("golden: naive", `Quick, test_naive);
    ("golden: balanced", `Quick, test_balanced);
    ("golden: crash-single", `Quick, test_crash_single);
    ("golden: crash-general", `Quick, test_crash_general);
    ("golden: byz-committee", `Quick, test_committee);
    ("golden: byz-2cycle", `Quick, test_2cycle);
    ("golden: byz-multicycle", `Quick, test_multicycle);
    ("determinism: byz-2cycle full report", `Quick, test_determinism_2cycle);
    ("determinism: crash-general full report", `Quick, test_determinism_crash_general);
  ]
