(* The dr_check model checker: invariant oracle, schedule fuzzing,
   counterexample shrinking and repro-file round-trips.

   Golden files (check_broken.repro.json, shrink_min.golden) regenerate with
   DR_CHECK_BLESS=1 dune runtest. *)

open Dr_core
module Check = Dr_check.Check
module Invariant = Dr_check.Invariant
module Repro = Dr_check.Repro
module Shrink = Dr_check.Shrink
module Explore = Dr_engine.Explore
module Sim = Dr_engine.Sim
module Prng = Dr_engine.Prng
module Crash_plan = Dr_adversary.Crash_plan
module Bitarray = Dr_source.Bitarray

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let bless = Sys.getenv_opt "DR_CHECK_BLESS" <> None

let bless_or_compare ~path ~label content =
  if bless then begin
    let oc = open_out path in
    output_string oc content;
    close_out oc
  end
  else begin
    let ic = open_in_bin path in
    let expected =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    checks label expected content
  end

(* ------------------------------------------------------------------ *)
(* Test-only protocol stubs                                            *)
(* ------------------------------------------------------------------ *)

module Msg = struct
  type t = int

  let size_bits _ = 8
  let tag = string_of_int
end

module S = Sim.Make (Msg)

let download n = Bitarray.init n (fun j -> S.query j)

(* Deliberately order-sensitive: peer 0 outputs X only if peer 1's message
   beats peer 2's — the planted bug the checker must find, shrink and
   replay. *)
let broken_run ?observer ~attack:_ ~crash:_ ~arbiter inst =
  let cfg = Exec.build_config inst (Exec.make_opts ?observer ~arbiter ()) in
  let n = Problem.n inst in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          let first, _ = S.receive () in
          let _ = S.receive () in
          let x = download n in
          if first = 1 then x else Bitarray.flip x 0
        end
        else begin
          S.send 0 i;
          download n
        end)
  in
  Exec.finish ~protocol:"broken-order" inst outcome

let broken_target =
  {
    Check.name = "broken-order";
    attacks = [ "default" ];
    model = Problem.Crash;
    spec = None;
    pool = [ (3, 2, 0) ];
    run = broken_run;
  }

(* Wrong output whenever any peer has a send-counted crash spec — exercises
   fault-plan shrinking in isolation. *)
let crashy_run ?observer ~attack:_ ~crash ~arbiter inst =
  let bad =
    List.exists
      (fun p -> match crash p with Sim.After_sends _ -> true | _ -> false)
      (List.init inst.Problem.k Fun.id)
  in
  let cfg = Exec.build_config inst (Exec.make_opts ?observer ~arbiter ()) in
  let n = Problem.n inst in
  let outcome = S.run cfg (fun _ -> if bad then Bitarray.flip (download n) 0 else download n) in
  Exec.finish ~protocol:"crash-sensitive" inst outcome

let crashy_target =
  {
    Check.name = "crash-sensitive";
    attacks = [ "default" ];
    model = Problem.Crash;
    spec = None;
    pool = [ (2, 2, 1) ];
    run = crashy_run;
  }

(* Honest peer 0 waits for a message nobody sends. *)
let deadlock_run ?observer ~attack:_ ~crash:_ ~arbiter inst =
  let cfg = Exec.build_config inst (Exec.make_opts ?observer ~arbiter ()) in
  let n = Problem.n inst in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          let _ = S.receive () in
          download n
        end
        else download n)
  in
  Exec.finish ~protocol:"deadlocker" inst outcome

let deadlock_target =
  {
    Check.name = "deadlocker";
    attacks = [ "default" ];
    model = Problem.Crash;
    spec = None;
    pool = [ (2, 2, 0) ];
    run = deadlock_run;
  }

let scenario ?(attack = "default") ?(crash = Crash_plan.No_crash) ~k ~n ~t ~seed name =
  { Repro.protocol = name; attack; k; n; t; seed = Int64.of_int seed; crash }

(* ------------------------------------------------------------------ *)
(* Invariant oracle                                                    *)
(* ------------------------------------------------------------------ *)

let violation_of (c : Check.checked) =
  match c.Check.violation with
  | Some v -> v
  | None -> Alcotest.fail "expected a violation"

let test_oracle_termination () =
  let s = scenario ~k:2 ~n:2 ~t:0 ~seed:1 "deadlocker" in
  let v =
    violation_of
      (Check.run_scenario deadlock_target s ~arbiter:(Explore.random (Prng.create 1L)))
  in
  checks "invariant" "termination" (Invariant.name v.Invariant.invariant);
  checkb "names honest blocked peer" true
    (String.length v.Invariant.detail > 0
    && v.Invariant.invariant = Invariant.Termination)

let test_oracle_agreement_and_pass () =
  (* The broken stub fails agreement on some schedule and passes on others;
     a healthy registry protocol passes everywhere. *)
  let s = scenario ~k:3 ~n:2 ~t:0 ~seed:1 "broken-order" in
  let r = Explore.dfs ~budget:200 ~run:(fun ~arbiter ->
      (Check.run_scenario broken_target s ~arbiter).Check.violation = None)
  in
  checkb "bug found" true (r.Explore.failures > 0);
  checkb "bug is schedule-dependent" true (r.Explore.failures < r.Explore.schedules_run);
  let naive = Check.of_registry (Registry.find_exn "naive") in
  let sn = scenario ~k:3 ~n:4 ~t:1 ~seed:2 "naive" in
  checkb "naive passes" true
    ((Check.run_scenario naive sn ~arbiter:(Explore.random (Prng.create 2L))).Check.violation
    = None)

let test_oracle_spec_bound () =
  (* Naive's Q = n blows the balanced bound: the spec-bound invariant must
     say so (deterministic spec, resilient regime). *)
  let naive_entry = Registry.find_exn "naive" in
  let miswired =
    { (Check.of_registry naive_entry) with Check.spec = Some Spec.balanced; pool = [ (2, 8, 0) ] }
  in
  let s = scenario ~k:2 ~n:8 ~t:0 ~seed:1 "naive" in
  let v = violation_of (Check.run_scenario miswired s ~arbiter:(Explore.random (Prng.create 1L))) in
  checks "invariant" "spec-bound" (Invariant.name v.Invariant.invariant)

(* ------------------------------------------------------------------ *)
(* Explore: replay divergence accounting                               *)
(* ------------------------------------------------------------------ *)

let echo_run arbiter =
  let cfg =
    {
      (Sim.default_config ~k:2 ~query_bit:(fun ~peer:_ _ -> false)) with
      Sim.arbiter = Some arbiter;
    }
  in
  ignore
    (S.run cfg (fun i ->
         S.send (1 - i) i;
         ignore (S.receive ())))

let test_replay_counts_overruns () =
  (* A 1-entry script cannot cover the echo's schedule: the arbiter must
     count every padded choice instead of silently inventing zeros. *)
  let r = Explore.replay [ 0 ] in
  echo_run r.Explore.arbiter;
  checkb "overran the script" true (r.Explore.overruns () > 0);
  checkb "not faithful" false (Explore.faithful r);
  checki "steps = script + overruns" (r.Explore.steps ()) (1 + r.Explore.overruns ())

let test_replay_counts_clamps () =
  let r = Explore.replay [ 99; 99; 99; 99; 99; 99; 99; 99 ] in
  echo_run r.Explore.arbiter;
  checkb "clamped out-of-range choices" true (r.Explore.clamped () > 0);
  checkb "not faithful" false (Explore.faithful r)

let test_recorded_script_replays_faithfully () =
  let arb, recorded = Explore.record (Explore.random (Prng.create 7L)) in
  echo_run arb;
  let script = recorded () in
  let r = Explore.replay script in
  echo_run r.Explore.arbiter;
  checkb "faithful" true (Explore.faithful r);
  checki "exact step count" (List.length script) (r.Explore.steps ())

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let script_to_string s = String.concat " " (List.map string_of_int s)

let test_shrink_to_known_minimum () =
  (* fails iff the script contains at least two 1s: locally minimal is
     exactly [1; 1]. *)
  let fails s = List.length (List.filter (fun x -> x = 1) s) >= 2 in
  let m1 = Shrink.minimize ~fails [ 3; 1; 0; 1; 2; 1; 0; 4; 1 ] in
  checkb "still fails" true (fails m1);
  checkb "minimal" true (m1 = [ 1; 1 ]);
  (* fails iff some element >= 3: deletion strips the rest, lowering drives
     the witness down to exactly 3. *)
  let fails2 s = List.exists (fun x -> x >= 3) s in
  let m2 = Shrink.minimize ~fails:fails2 [ 0; 5; 2; 9 ] in
  checkb "minimal witness" true (m2 = [ 3 ]);
  bless_or_compare ~path:"shrink_min.golden" ~label:"golden minima"
    (script_to_string m1 ^ "\n" ^ script_to_string m2 ^ "\n")

let test_shrink_passing_is_noop () =
  let script = [ 5; 4; 3; 2; 1 ] in
  checkb "no-op on a passing run" true
    (Shrink.minimize ~fails:(fun _ -> false) script = script)

let test_shrink_respects_budget () =
  (* With a one-test budget the initial check consumes it and nothing can
     shrink. *)
  let fails s = s <> [] in
  checkb "budget exhausted, script kept" true
    (Shrink.minimize ~max_tests:1 ~fails [ 1; 2 ] = [ 1; 2 ])

let test_shrink_crash_plan () =
  let s =
    scenario ~crash:(Crash_plan.Mid_broadcast 3) ~k:2 ~n:2 ~t:1 ~seed:1 "crash-sensitive"
  in
  let c = Check.run_scenario crashy_target s ~arbiter:(Explore.random (Prng.create 1L)) in
  let v = violation_of c in
  let r = Check.shrink crashy_target s v ~script:c.Check.script in
  checkb "crash plan lowered to its minimum" true
    (r.Repro.scenario.Repro.crash = Crash_plan.Mid_broadcast 0);
  checkb "script shrunk to nothing" true (r.Repro.script = [])

(* ------------------------------------------------------------------ *)
(* Fuzzing the planted bug + repro round-trip                          *)
(* ------------------------------------------------------------------ *)

let fuzz_broken () = Check.fuzz ~dfs_budget:100 ~budget:200 ~seed:1 broken_target

let test_fuzz_finds_and_shrinks_planted_bug () =
  let o = fuzz_broken () in
  checkb "found the planted bug" true (o.Check.failures <> []);
  let r = List.hd o.Check.failures in
  checks "agreement broke" "agreement" r.Repro.invariant;
  (* Local minimality: dropping any single element of the shrunk script (or
     lowering any choice) loses the failure. *)
  let fails script =
    match
      (Check.run_scenario broken_target r.Repro.scenario ~arbiter:(Explore.scripted script))
        .Check.violation
    with
    | Some v -> Invariant.name v.Invariant.invariant = r.Repro.invariant
    | None -> false
  in
  checkb "shrunk script still fails" true (fails r.Repro.script);
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) r.Repro.script in
      checkb (Printf.sprintf "deleting element %d breaks the repro" i) false (fails without))
    r.Repro.script;
  (* And the repro replays to the same invariant at the same event. *)
  match Check.replay ~targets:[ broken_target ] r with
  | Check.Reproduced _ -> ()
  | Check.Diverged msg -> Alcotest.fail ("diverged: " ^ msg)
  | Check.Vanished -> Alcotest.fail "vanished"

let test_repro_json_roundtrip () =
  let o = fuzz_broken () in
  let r = List.hd o.Check.failures in
  let r' = Repro.of_json (Repro.to_json r) in
  checkb "round-trips structurally" true (r = r');
  checks "round-trips textually" (Repro.to_json r) (Repro.to_json r')

let test_repro_golden_file () =
  (* The committed repro file is the checker's output verbatim: serialize,
     compare bytes, reload, replay, and demand the same invariant at the
     same event index. *)
  let o = fuzz_broken () in
  let r = List.hd o.Check.failures in
  bless_or_compare ~path:"check_broken.repro.json" ~label:"golden repro bytes" (Repro.to_json r);
  let reloaded = Repro.read "check_broken.repro.json" in
  match Check.replay ~targets:[ broken_target ] reloaded with
  | Check.Reproduced v ->
    checks "same invariant" reloaded.Repro.invariant (Invariant.name v.Invariant.invariant);
    checki "same event index" reloaded.Repro.event v.Invariant.event
  | Check.Diverged msg -> Alcotest.fail ("golden repro diverged: " ^ msg)
  | Check.Vanished -> Alcotest.fail "golden repro vanished"

let test_repro_rejects_garbage () =
  let expect_failure label text =
    match Repro.of_json text with
    | _ -> Alcotest.fail (label ^ ": expected Failure")
    | exception Failure _ -> ()
  in
  expect_failure "wrong schema" "{ \"schema\": \"dr-bench/1\" }";
  expect_failure "bad crash" "{ \"schema\": \"dr-check/1\", \"protocol\": \"x\", \"attack\": \"a\", \"k\": 1, \"n\": 1, \"t\": 0, \"seed\": \"1\", \"crash\": \"at-time:3\", \"script\": [], \"invariant\": \"agreement\", \"event\": 0, \"detail\": \"\" }";
  expect_failure "fractional script" "{ \"schema\": \"dr-check/1\", \"protocol\": \"x\", \"attack\": \"a\", \"k\": 1, \"n\": 1, \"t\": 0, \"seed\": \"1\", \"crash\": \"none\", \"script\": [1.5], \"invariant\": \"agreement\", \"event\": 0, \"detail\": \"\" }"

(* ------------------------------------------------------------------ *)
(* The registry under the checker                                      *)
(* ------------------------------------------------------------------ *)

let test_registry_protocols_clean () =
  (* Small fixed-seed fuzz budget over every registry protocol: the real
     protocols must produce zero violations (the @check-smoke alias runs the
     same thing with a bigger budget via the CLI). *)
  List.iter
    (fun entry ->
      let o = Check.fuzz ~dfs_budget:40 ~budget:80 ~seed:1 (Check.of_registry entry) in
      checki (Registry.name entry ^ " violations") 0 (List.length o.Check.failures);
      checki (Registry.name entry ^ " runs") 80 o.Check.runs)
    Registry.all

let test_unknown_attack_rejected () =
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
    go 0
  in
  let e = Registry.find_exn "byz-2cycle" in
  (match Registry.validate_attack e "bogus" with
  | Ok () -> Alcotest.fail "expected Error for an out-of-catalog attack"
  | Error msg ->
    checkb "message names the attack" true (contains ~sub:"bogus" msg);
    checkb "message lists the catalog" true (contains ~sub:"adaptive" msg));
  checkb "default accepted" true (Registry.validate_attack e "default" = Ok ());
  List.iter
    (fun a -> checkb (a ^ " accepted") true (Registry.validate_attack e a = Ok ()))
    (Registry.attacks e);
  (* Protocols without an attack surface accept and ignore any name. *)
  let naive = Registry.find_exn "naive" in
  checkb "no attack surface ignores the name" true
    (Registry.validate_attack naive "bogus" = Ok ());
  (* Running anyway raises the structured exception, not a bare Failure. *)
  let inst = Problem.random_instance ~seed:1L ~model:Problem.Byzantine ~k:4 ~n:16 ~t:1 () in
  match e.Registry.run ~attack:"bogus" inst with
  | _ -> Alcotest.fail "expected Unknown_attack"
  | exception Registry.Unknown_attack { attack; protocol; known } ->
    checks "exception attack" "bogus" attack;
    checks "exception protocol" "byz-2cycle" protocol;
    checkb "exception catalog includes default" true (List.exists (String.equal "default") known)

let test_replay_detects_divergence () =
  (* A repro doctored to expect the wrong event index must be flagged as
     divergence, not reported as reproduced. *)
  let o = fuzz_broken () in
  let r = List.hd o.Check.failures in
  let doctored = { r with Repro.event = r.Repro.event + 1 } in
  (match Check.replay ~targets:[ broken_target ] doctored with
  | Check.Diverged _ -> ()
  | _ -> Alcotest.fail "expected divergence on a doctored event index");
  let wrong_inv = { r with Repro.invariant = "termination" } in
  match Check.replay ~targets:[ broken_target ] wrong_inv with
  | Check.Diverged _ -> ()
  | _ -> Alcotest.fail "expected divergence on a doctored invariant"

let suite =
  [
    ("oracle: termination (honest deadlock)", `Quick, test_oracle_termination);
    ("oracle: agreement + healthy pass", `Quick, test_oracle_agreement_and_pass);
    ("oracle: spec bound", `Quick, test_oracle_spec_bound);
    ("replay: overruns are counted", `Quick, test_replay_counts_overruns);
    ("replay: clamps are counted", `Quick, test_replay_counts_clamps);
    ("replay: recorded script is faithful", `Quick, test_recorded_script_replays_faithfully);
    ("shrink: reaches known minima (golden)", `Quick, test_shrink_to_known_minimum);
    ("shrink: passing run is a no-op", `Quick, test_shrink_passing_is_noop);
    ("shrink: respects the test budget", `Quick, test_shrink_respects_budget);
    ("shrink: fault plan is minimized", `Quick, test_shrink_crash_plan);
    ("fuzz: finds, shrinks and replays the planted bug", `Quick, test_fuzz_finds_and_shrinks_planted_bug);
    ("repro: JSON round-trip", `Quick, test_repro_json_roundtrip);
    ("repro: golden file replays identically", `Quick, test_repro_golden_file);
    ("repro: malformed input rejected", `Quick, test_repro_rejects_garbage);
    ("registry: protocols fuzz clean", `Quick, test_registry_protocols_clean);
    ("registry: unknown attacks rejected cleanly", `Quick, test_unknown_attack_rejected);
    ("replay: doctored repros diverge", `Quick, test_replay_detects_divergence);
  ]
