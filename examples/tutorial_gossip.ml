(* The protocol developed in TUTORIAL.md, verbatim: a fault-free pull-based
   gossip Download, written once against Transport.S and run on both
   runtimes — the deterministic simulator and k forked OS processes over
   loopback sockets. Exists so the tutorial's code is compiled, run and
   schedule-explored on every `dune runtest`.

   Run with:  dune exec examples/tutorial_gossip.exe *)

open Dr_core
module Bitarray = Dr_source.Bitarray
module Segment = Dr_source.Segment

type msg = Want of { seg : int } | Have of { seg : int; bits : Bitarray.t }

module Msg = struct
  type t = msg

  let size_bits = function Want _ -> 64 | Have { bits; _ } -> 64 + Bitarray.length bits

  let tag = function
    | Want { seg } -> Printf.sprintf "want(%d)" seg
    | Have { seg; _ } -> Printf.sprintf "have(%d)" seg
end

module Process (T : Transport.S with type msg = Msg.t) = struct
  let run inst i =
    let n = Problem.n inst in
    let spec = Segment.make ~n ~s:(min inst.Problem.k n) in
    let y = Bitarray.create n in
    let have = Array.make spec.Segment.s false in
    let pos, len = Segment.bounds spec i in
    for r = 0 to len - 1 do
      Bitarray.set y (pos + r) (T.query (pos + r))
    done;
    have.(i) <- true;
    T.broadcast (Want { seg = (i + 1) mod spec.Segment.s });
    let missing = ref (spec.Segment.s - 1) in
    while !missing > 0 do
      match T.receive () with
      | src, Want { seg } ->
        if have.(seg) then T.send src (Have { seg; bits = Segment.extract spec y seg })
      | _, Have { seg; bits } ->
        if not have.(seg) then begin
          have.(seg) <- true;
          decr missing;
          Bitarray.blit ~src:bits ~dst:y ~pos:(Segment.start spec seg);
          T.broadcast (Want { seg = (seg + 1) mod spec.Segment.s })
        end
    done;
    (* Termination flood (the Claim 2 move): a peer that stops serving pull
       requests would starve any late requester, so push everything once
       before exiting. *)
    for seg = 0 to spec.Segment.s - 1 do
      T.broadcast (Have { seg; bits = Segment.extract spec y seg })
    done;
    y
end

let core () : (module Transport.CORE) =
  (module struct
    let name = "lazy-gossip"

    let supports inst =
      if Problem.t inst = 0 then Ok () else Error "lazy gossip tolerates no faults"

    module Msg = Msg
    module Process = Process
  end)

module ST = Sim_transport.Make (Msg)
module SP = Process (ST)

let run ?(opts = Exec.default) inst =
  let cfg = Exec.build_config inst opts in
  Exec.finish ~protocol:"lazy-gossip" inst (ST.run_sim cfg (SP.run inst))

let () =
  (* A jittered asynchronous run with serialized links. *)
  let inst = Problem.random_instance ~seed:1L ~k:8 ~n:1024 ~t:0 () in
  let opts =
    Exec.default
    |> Exec.with_latency (Dr_adversary.Latency.jittered (Dr_engine.Prng.create 2L))
    |> Exec.with_link_rate 1024.
  in
  let report = run ~opts inst in
  Format.printf "%a@." Problem.pp_report report;
  assert report.Problem.ok;

  (* Every delivery schedule of a tiny instance. *)
  let tiny = Problem.random_instance ~seed:2L ~k:3 ~n:3 ~t:0 () in
  let r =
    Dr_engine.Explore.dfs ~budget:3_000 ~run:(fun ~arbiter ->
        (run ~opts:(Exec.with_arbiter arbiter Exec.default) tiny).Problem.ok)
  in
  Printf.printf "schedule exploration: %d schedules, %d failures%s\n"
    r.Dr_engine.Explore.schedules_run r.Dr_engine.Explore.failures
    (if r.Dr_engine.Explore.exhausted then " (exhausted)" else " (prefix)");
  assert (r.Dr_engine.Explore.failures = 0);

  (* And the same core as 8 real OS processes over loopback, querying a TCP
     source server. Only schedule-invariant fields are comparable with the
     simulator run: the verdict and the query counts. *)
  let net = Dr_net.Runner.run ~timeout:30. (core ()) inst in
  Format.printf "%a@." Problem.pp_report net;
  assert net.Problem.ok;
  assert (net.Problem.q_total = report.Problem.q_total)
