(* Experiment T1: regenerate the paper's Table 1 — the query-complexity
   landscape across fault models, resilience and synchrony — by measurement.
   Absolute constants differ from the asymptotic formulas; the shape (who
   wins, how Q scales with beta and n) is what the table checks, so each row
   carries the theory prediction next to the measured Q. *)

open Dr_core
open Exp_common

type row = {
  setting : string;
  protocol : string;
  model : string;
  beta : float;
  k : int;
  n : int;
  msg_b : int;
  q : int;
  theory : float;
  t_time : float;
  msgs : int;
  ok : bool;
}

let mk_row ~setting ~model ~theory inst (r : Problem.report) =
  {
    setting;
    protocol = r.Problem.protocol;
    model;
    beta = Problem.beta inst;
    k = inst.Problem.k;
    n = Problem.n inst;
    msg_b = inst.Problem.b;
    q = r.Problem.q_max;
    theory;
    t_time = r.Problem.time;
    msgs = r.Problem.msgs;
    ok = r.Problem.ok;
  }

let rows () =
  let acc = ref [] in
  let push r = acc := r :: !acc in
  (* --- Baselines --- *)
  let base = crash_inst ~seed:1L ~k:32 ~n:16384 ~t:0 () in
  push (mk_row ~setting:"async" ~model:"none" ~theory:(float_of_int 16384) base (Naive.run base));
  push
    (mk_row ~setting:"async" ~model:"none"
       ~theory:(float_of_int (ideal_q base))
       base
       (Balanced.run ~opts:(Exec.with_latency (jitter 2L) Exec.default) base));
  (* --- This paper, crash rows (Theorem 2.13): Q = O(n/(gamma k)). --- *)
  List.iter
    (fun t ->
      let k = 32 and n = 16384 in
      let inst = crash_inst ~seed:3L ~k ~n ~t () in
      let gamma = Problem.gamma inst in
      let theory = (float_of_int n /. (gamma *. float_of_int k)) +. float_of_int (n / k) in
      let r = Crash_general.run ~opts:(silent_opts inst 3L) inst in
      push (mk_row ~setting:"async" ~model:"crash" ~theory inst r))
    [ 1; 8; 16; 24 ];
  (* --- This paper, deterministic Byzantine (Theorem 3.4): Q = (2t+1)n/k. --- *)
  List.iter
    (fun t ->
      let k = 32 and n = 16384 in
      let inst = byz_inst ~seed:4L ~k ~n ~t () in
      let theory = float_of_int (((2 * t) + 1) * n) /. float_of_int k in
      let r =
        Committee.run_with
          ~opts:(Exec.with_latency (jitter 4L) Exec.default)
          ~attack:Committee.Equivocate inst
      in
      push (mk_row ~setting:"async" ~model:"byzantine" ~theory inst r))
    [ 2; 4; 8; 12 ];
  (* --- This paper, randomized Byzantine (Theorems 3.7 / 3.12). --- *)
  List.iter
    (fun (t, proto) ->
      let k = 128 and n = 32768 in
      let inst = byz_inst ~seed:5L ~k ~n ~t () in
      let s, _rho = Byz_2cycle.plan ~k ~n ~t in
      let theory = (float_of_int n /. float_of_int s) +. float_of_int k in
      let opts = Exec.with_latency (jitter 5L) Exec.default in
      let r =
        match proto with
        | `Two -> Byz_2cycle.run_with ~opts ~attack:Byz_2cycle.Near_miss inst
        | `Multi -> Byz_multicycle.run_with ~opts ~attack:Byz_multicycle.Near_miss inst
      in
      push (mk_row ~setting:"async" ~model:"byzantine" ~theory inst r))
    [ (8, `Two); (16, `Two); (32, `Two); (8, `Multi); (16, `Multi); (32, `Multi) ];
  (* --- Prior synchronous rows, for shape comparison: the same protocols
         under the lockstep unit-latency schedule. --- *)
  List.iter
    (fun t ->
      let k = 32 and n = 16384 in
      let inst = byz_inst ~seed:6L ~k ~n ~t () in
      let theory = float_of_int (((2 * t) + 1) * n) /. float_of_int k in
      let r = Committee.run_with ~attack:Committee.Equivocate inst in
      push (mk_row ~setting:"sync" ~model:"byzantine" ~theory inst r))
    [ 4; 8 ];
  List.iter
    (fun t ->
      let k = 128 and n = 32768 in
      let inst = byz_inst ~seed:7L ~k ~n ~t () in
      let s, _ = Byz_2cycle.plan ~k ~n ~t in
      let theory = (float_of_int n /. float_of_int s) +. float_of_int k in
      let r = Byz_2cycle.run_with ~attack:Byz_2cycle.Near_miss inst in
      push (mk_row ~setting:"sync" ~model:"byzantine" ~theory inst r))
    [ 8; 32 ];
  List.rev !acc

let run () =
  section "Table 1: query complexity across models (measured vs theory)";
  let table =
    Dr_stats.Table.create
      [ "setting"; "protocol"; "faults"; "beta"; "k"; "n"; "Q meas"; "Q theory"; "<=spec"; "Q/n"; "T"; "M"; "ok" ]
  in
  List.iter
    (fun r ->
      let spec_ok =
        match Registry.spec_of r.protocol with
        | Some b ->
          let t = int_of_float (Float.round (r.beta *. float_of_int r.k)) in
          if Spec.within b ~k:r.k ~n:r.n ~t ~b:r.msg_b ~measured:r.q then "yes" else "NO"
        | None -> "-"
      in
      Dr_stats.Table.add_row table
        [
          r.setting;
          r.protocol;
          r.model;
          Printf.sprintf "%.3f" r.beta;
          string_of_int r.k;
          string_of_int r.n;
          string_of_int r.q;
          Printf.sprintf "%.0f" r.theory;
          spec_ok;
          Printf.sprintf "%.3f" (float_of_int r.q /. float_of_int r.n);
          Printf.sprintf "%.1f" r.t_time;
          string_of_int r.msgs;
          (if r.ok then "yes" else "NO");
        ])
    (rows ());
  Dr_stats.Table.print table;
  note
    "\nShape checks: crash Q grows as 1/gamma; deterministic Byzantine Q grows as (2t+1);\n\
     randomized Byzantine Q ~ n/s + O(k) stays near-ideal while beta < 1/2.\n"
