(* The continuous benchmark harness: a fixed matrix of engine and protocol
   workloads, timed with the wall clock and written as machine-readable
   BENCH_engine.json / BENCH_protocols.json (schema: Dr_stats.Bench_io).

   Usage:
     dune exec bench/bench_regress.exe                 # full matrix, repo root
     dune exec bench/bench_regress.exe -- --smoke      # tiny sizes (CI gate)
     dune exec bench/bench_regress.exe -- --out-dir /tmp --repeats 9

   Compare two runs with dr_bench_diff:
     dune exec bin/dr_bench_diff.exe -- BENCH_engine.old.json BENCH_engine.json *)

open Dr_core
module Bench_io = Dr_stats.Bench_io
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan
module Prng = Dr_engine.Prng

type profile = { repeats : int; storm_k : int; storm_rounds : int; sim_seeds : int }

let full = { repeats = 7; storm_k = 64; storm_rounds = 20; sim_seeds = 24 }
let smoke = { repeats = 3; storm_k = 16; storm_rounds = 2; sim_seeds = 4 }

let now () = Unix.gettimeofday ()

(* One timed sample of [f], returning work-units per second. [f] returns the
   number of work units it performed. *)
let rate_sample f =
  let t0 = now () in
  let units = f () in
  let dt = now () -. t0 in
  if dt <= 0. then float_of_int units /. 1e-9 else float_of_int units /. dt

let samples ~repeats f = List.init repeats (fun _ -> rate_sample f)

(* ------------------------------------------------------------------ *)
(* Engine micro-bench: raw event-loop throughput in events/sec.       *)
(* An all-to-all broadcast round: every peer broadcasts, then drains  *)
(* k-1 receives — the densest delivery pattern the protocols create.  *)
(* ------------------------------------------------------------------ *)

module Storm_msg = struct
  type t = int

  let size_bits _ = 64
  let tag _ = "x"
end

module Storm = Dr_engine.Sim.Make (Storm_msg)

let storm_events ~k ~rounds () =
  let cfg = Dr_engine.Sim.default_config ~k ~query_bit:(fun ~peer:_ _ -> false) in
  let total = ref 0 in
  for _ = 1 to rounds do
    let outcome =
      Storm.run cfg (fun i ->
          Storm.broadcast i;
          for _ = 1 to k - 1 do
            ignore (Storm.receive ())
          done;
          i)
    in
    assert (outcome.Dr_engine.Sim.status = Dr_engine.Sim.Completed);
    total := !total + outcome.Dr_engine.Sim.events
  done;
  !total

(* Same workload under a live trace sink, to keep the tracing path honest
   (it may cost, but must not regress silently). *)
let storm_traced_events ~k ~rounds () =
  let total = ref 0 in
  for _ = 1 to rounds do
    let trace = Dr_engine.Trace.create () in
    let cfg =
      {
        (Dr_engine.Sim.default_config ~k ~query_bit:(fun ~peer:_ _ -> false)) with
        Dr_engine.Sim.trace = Some trace;
      }
    in
    let outcome =
      Storm.run cfg (fun i ->
          Storm.broadcast i;
          for _ = 1 to k - 1 do
            ignore (Storm.receive ())
          done;
          i)
    in
    total := !total + outcome.Dr_engine.Sim.events
  done;
  !total

(* ------------------------------------------------------------------ *)
(* Protocol end-to-end benches: whole seeded simulations per second,  *)
(* fanned out over domains exactly as the Monte-Carlo experiments do. *)
(* ------------------------------------------------------------------ *)

let crash_general_sims ~seeds () =
  let ok =
    Dr_stats.Par.map
      (fun seed ->
        let inst = Problem.random_instance ~seed ~k:16 ~n:2048 ~t:6 () in
        let opts =
          Exec.default
          |> Exec.with_latency (Latency.jittered (Prng.create seed))
          |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:0)
        in
        (Crash_general.run ~opts inst).Problem.ok)
      (List.init seeds (fun i -> Int64.of_int (i + 1)))
  in
  assert (List.for_all Fun.id ok);
  seeds

let byz_2cycle_sims ~seeds () =
  let ok =
    Dr_stats.Par.map
      (fun seed ->
        let inst =
          Problem.random_instance ~seed ~model:Problem.Byzantine ~k:64 ~n:4096 ~t:8 ()
        in
        let opts = Exec.with_latency (Latency.jittered (Prng.create seed)) Exec.default in
        (Byz_2cycle.run_with ~opts ~attack:Byz_2cycle.Near_miss inst).Problem.ok)
      (List.init seeds (fun i -> Int64.of_int (i + 1)))
  in
  ignore ok;
  seeds

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let run_suite ~out_dir ~filename ~suite benches =
  let file = { Bench_io.suite; benches } in
  let path = Filename.concat out_dir filename in
  Bench_io.write ~path file;
  Printf.printf "wrote %s\n" path;
  List.iter
    (fun (b : Bench_io.bench) ->
      Printf.printf "  %-28s median %12.0f %s  (IQR %.0f..%.0f over %d runs)\n" b.Bench_io.name
        b.Bench_io.median b.Bench_io.unit_ b.Bench_io.iqr_lo b.Bench_io.iqr_hi b.Bench_io.runs)
    benches

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let p = if List.mem "--smoke" args then smoke else full in
  let rec opt_value key = function
    | [] -> None
    | k :: v :: _ when k = key -> Some v
    | _ :: rest -> opt_value key rest
  in
  let out_dir = Option.value ~default:"." (opt_value "--out-dir" args) in
  let p =
    match opt_value "--repeats" args with
    | Some r -> { p with repeats = int_of_string r }
    | None -> p
  in
  (* Warm-up: fault in code paths and stabilize allocator state before timing. *)
  ignore (storm_events ~k:8 ~rounds:1 ());
  let engine =
    [
      Bench_io.of_samples ~name:"engine/message-storm" ~unit_:"events_per_sec"
        (samples ~repeats:p.repeats (storm_events ~k:p.storm_k ~rounds:p.storm_rounds));
      Bench_io.of_samples ~name:"engine/message-storm-traced" ~unit_:"events_per_sec"
        (samples ~repeats:p.repeats (storm_traced_events ~k:p.storm_k ~rounds:p.storm_rounds));
    ]
  in
  run_suite ~out_dir ~filename:"BENCH_engine.json" ~suite:"engine" engine;
  let protocols =
    [
      Bench_io.of_samples ~name:"protocols/crash-general" ~unit_:"sims_per_sec"
        (samples ~repeats:p.repeats (crash_general_sims ~seeds:p.sim_seeds));
      Bench_io.of_samples ~name:"protocols/byz-2cycle" ~unit_:"sims_per_sec"
        (samples ~repeats:p.repeats (byz_2cycle_sims ~seeds:p.sim_seeds));
    ]
  in
  run_suite ~out_dir ~filename:"BENCH_protocols.json" ~suite:"protocols" protocols
