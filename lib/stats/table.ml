type line = Row of string list | Rule

type t = { headers : string list; mutable lines : line list (* reversed *) }

let create headers = { headers; lines = [] }

let add_row t cells =
  let hc = List.length t.headers in
  let cc = List.length cells in
  if cc > hc then invalid_arg "Table.add_row: more cells than headers";
  let cells = cells @ List.init (hc - cc) (fun _ -> "") in
  t.lines <- Row cells :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let render t =
  let rows = List.rev t.lines in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Row cells ->
        List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
      | Rule -> ())
    rows;
  let buf = Buffer.create 1024 in
  let pad i s =
    Buffer.add_string buf s;
    Buffer.add_string buf (String.make (widths.(i) - String.length s) ' ')
  in
  let emit_row cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        pad i c)
      cells;
    Buffer.add_char buf '\n'
  in
  let rule () =
    let total = Array.fold_left ( + ) 0 widths + (2 * (Array.length widths - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  rule ();
  List.iter (function Row cells -> emit_row cells | Rule -> rule ()) rows;
  Buffer.contents buf

(* dr-lint: allow L3 — the documented default sink; callers in bin//bench pass nothing *)
let print ?(ppf = Format.std_formatter) t =
  Format.pp_print_string ppf (render t);
  Format.pp_print_flush ppf ()

let cell_int = string_of_int
let cell_float ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v
let cell_bool b = if b then "yes" else "no"
