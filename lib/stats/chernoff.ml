let log_fact =
  (* Memoized log-factorial. *)
  let cache = ref (Array.make 1 0.) in
  fun v ->
    let cur = Array.length !cache in
    if v >= cur then begin
      let grown = Array.make (Int.max (v + 1) (2 * cur)) 0. in
      Array.blit !cache 0 grown 0 cur;
      for i = cur to Array.length grown - 1 do
        grown.(i) <- grown.(i - 1) +. log (float_of_int i)
      done;
      cache := grown
    end;
    !cache.(v)

let binomial_pmf ~trials ~p i =
  if i < 0 || i > trials then 0.
  else if p <= 0. then if i = 0 then 1. else 0.
  else if p >= 1. then if i = trials then 1. else 0.
  else begin
    let logc = log_fact trials -. log_fact i -. log_fact (trials - i) in
    exp (logc +. (float_of_int i *. log p) +. (float_of_int (trials - i) *. log (1. -. p)))
  end

let binomial_tail_below ~trials ~p ~threshold =
  let rec go i acc =
    if i >= threshold then acc else go (i + 1) (acc +. binomial_pmf ~trials ~p i)
  in
  min 1. (go 0 0.)

let coverage_failure ~honest ~segments ~rho =
  if segments <= 0 then 0.
  else begin
    let p = 1. /. float_of_int segments in
    let per_segment = binomial_tail_below ~trials:honest ~p ~threshold:rho in
    min 1. (float_of_int segments *. per_segment)
  end

let chernoff_below ~mu ~factor =
  if factor >= 1. then 1. else min 1. (exp (-.((1. -. factor) ** 2.) *. mu /. 2.))
