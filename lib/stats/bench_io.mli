(** Machine-readable benchmark records: the [BENCH_*.json] schema.

    The continuous benchmark harness ({!page-index} [bench/bench_regress.ml])
    writes one file per suite; [dr_bench_diff] reads two back and fails on
    regression. The schema is deliberately tiny:

    {v
    {
      "schema": "dr-bench/1",
      "suite": "engine",
      "benches": [
        { "name": "engine/message-storm",
          "unit": "events_per_sec",
          "runs": 7,
          "median": 1234567.0,
          "iqr_lo": 1200000.0,
          "iqr_hi": 1300000.0 }
      ]
    }
    v}

    All rates are throughputs (higher is better). The writer and parser below
    round-trip exactly this subset of JSON — no external JSON dependency. *)

type bench = {
  name : string;
  unit_ : string;  (** e.g. ["events_per_sec"], ["sims_per_sec"] *)
  runs : int;  (** sample count the quantiles were computed over *)
  median : float;
  iqr_lo : float;  (** 25th percentile *)
  iqr_hi : float;  (** 75th percentile *)
}

type file = { suite : string; benches : bench list }

(** The minimal JSON subset (objects, arrays, strings, numbers) behind the
    bench files, exposed so other machine-readable artifacts (the [dr_check]
    repro files) reuse one parser instead of growing their own. *)
module Json : sig
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float

  val parse : string -> t
  (** Raises [Failure] with a byte position on malformed input. *)

  val member : t -> string -> t option
  (** Object field lookup; [None] on a non-object or missing key. *)

  val str : t -> string -> string
  (** Required string field. Raises [Failure] when absent or mistyped. *)

  val num : t -> string -> float
  (** Required number field. Raises [Failure] when absent or mistyped. *)

  val escape : string -> string
  (** Escape a string for embedding between double quotes. *)
end

val quantiles : float list -> float * float * float
(** [(q25, median, q75)] of a non-empty sample, by linear interpolation.
    Raises [Invalid_argument] on an empty list. *)

val of_samples : name:string -> unit_:string -> float list -> bench
(** Summarize one bench's samples into a record. *)

val to_json : file -> string
(** Render the schema above (stable field order, ["%.17g"] floats). *)

val of_json : string -> file
(** Parse a file produced by {!to_json} (accepts any whitespace). Raises
    [Failure] with a position on malformed input or a schema mismatch. *)

val write : path:string -> file -> unit
val read : string -> file

val find : file -> string -> bench option
(** Look a bench up by name. *)
