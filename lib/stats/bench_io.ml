type bench = {
  name : string;
  unit_ : string;
  runs : int;
  median : float;
  iqr_lo : float;
  iqr_hi : float;
}

type file = { suite : string; benches : bench list }

let schema_id = "dr-bench/1"

(* ------------------------------------------------------------------ *)
(* Quantiles                                                          *)
(* ------------------------------------------------------------------ *)

let quantile sorted q =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = Int.max 0 (Int.min (n - 2) (int_of_float pos)) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(lo + 1) *. frac)
  end

let quantiles samples =
  if samples = [] then invalid_arg "Bench_io.quantiles: empty sample";
  let a = Array.of_list samples in
  Array.sort Float.compare a;
  (quantile a 0.25, quantile a 0.5, quantile a 0.75)

let of_samples ~name ~unit_ samples =
  let iqr_lo, median, iqr_hi = quantiles samples in
  { name; unit_; runs = List.length samples; median; iqr_lo; iqr_hi }

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

module Json = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float

  type cursor = { src : string; mutable pos : int }

  let fail c msg = failwith (Printf.sprintf "Json: %s at byte %d" msg c.pos)

  let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

  let skip_ws c =
    while
      c.pos < String.length c.src
      && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      c.pos <- c.pos + 1
    done

  let expect c ch =
    skip_ws c;
    match peek c with
    | Some x when x = ch -> c.pos <- c.pos + 1
    | _ -> fail c (Printf.sprintf "expected %C" ch)

  let parse_string c =
    expect c '"';
    let b = Buffer.create 16 in
    let rec go () =
      if c.pos >= String.length c.src then fail c "unterminated string";
      match c.src.[c.pos] with
      | '"' -> c.pos <- c.pos + 1
      | '\\' ->
        if c.pos >= String.length c.src - 1 then fail c "bad escape";
        (match c.src.[c.pos + 1] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | ch -> fail c (Printf.sprintf "unsupported escape \\%c" ch));
        c.pos <- c.pos + 2;
        go ()
      | ch ->
        Buffer.add_char b ch;
        c.pos <- c.pos + 1;
        go ()
    in
    go ();
    Buffer.contents b

  let parse_number c =
    let start = c.pos in
    let is_num ch =
      (ch >= '0' && ch <= '9') || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
    in
    while c.pos < String.length c.src && is_num c.src.[c.pos] do
      c.pos <- c.pos + 1
    done;
    if c.pos = start then fail c "expected number";
    match float_of_string_opt (String.sub c.src start (c.pos - start)) with
    | Some f -> f
    | None -> fail c "malformed number"

  let rec parse_value c =
    skip_ws c;
    match peek c with
    | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string c in
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
            c.pos <- c.pos + 1;
            members ((key, v) :: acc)
          | Some '}' ->
            c.pos <- c.pos + 1;
            List.rev ((key, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
            c.pos <- c.pos + 1;
            items (v :: acc)
          | Some ']' ->
            c.pos <- c.pos + 1;
            List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string c)
    | Some _ -> Num (parse_number c)
    | None -> fail c "unexpected end of input"

  let parse text = parse_value { src = text; pos = 0 }

  let member obj key = match obj with Obj kvs -> List.assoc_opt key kvs | _ -> None

  let str obj key =
    match member obj key with
    | Some (Str s) -> s
    | _ -> failwith ("Json: missing string field " ^ key)

  let num obj key =
    match member obj key with
    | Some (Num f) -> f
    | _ -> failwith ("Json: missing number field " ^ key)

  let escape = escape
end

let float_field f =
  (* %.17g round-trips every float; normalize nan/inf (not expected) to 0. *)
  if Float.is_nan f || f = infinity || f = neg_infinity then "0"
  else Printf.sprintf "%.17g" f

let to_json { suite; benches } =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"%s\",\n" schema_id);
  Buffer.add_string b (Printf.sprintf "  \"suite\": \"%s\",\n" (escape suite));
  Buffer.add_string b "  \"benches\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"name\": \"%s\", \"unit\": \"%s\", \"runs\": %d, \"median\": %s, \
            \"iqr_lo\": %s, \"iqr_hi\": %s }"
           (escape r.name) (escape r.unit_) r.runs (float_field r.median)
           (float_field r.iqr_lo) (float_field r.iqr_hi)))
    benches;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser (on the shared Json module above)                           *)
(* ------------------------------------------------------------------ *)

let of_json text =
  let root = Json.parse text in
  let schema = Json.str root "schema" in
  if schema <> schema_id then
    failwith (Printf.sprintf "Bench_io.of_json: unsupported schema %S (want %S)" schema schema_id);
  let suite = Json.str root "suite" in
  let benches =
    match Json.member root "benches" with
    | Some (Json.Arr items) ->
      List.map
        (fun item ->
          {
            name = Json.str item "name";
            unit_ = Json.str item "unit";
            runs = int_of_float (Json.num item "runs");
            median = Json.num item "median";
            iqr_lo = Json.num item "iqr_lo";
            iqr_hi = Json.num item "iqr_hi";
          })
        items
    | _ -> failwith "Bench_io.of_json: missing benches array"
  in
  { suite; benches }

let write ~path file =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json file))

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (really_input_string ic (in_channel_length ic)))

let find file name = List.find_opt (fun b -> b.name = name) file.benches
