type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

let percentile sorted q =
  let m = Array.length sorted in
  if m = 0 then invalid_arg "Summary.percentile: empty";
  if m = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (m - 1) in
    let lo = int_of_float (floor pos) in
    let hi = Int.min (m - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let of_floats values =
  if values = [] then invalid_arg "Summary.of_floats: empty";
  let arr = Array.of_list values in
  Array.sort Float.compare arr;
  let count = Array.length arr in
  let total = Array.fold_left ( +. ) 0. arr in
  let mean = total /. float_of_int count in
  let var =
    Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0. arr
    /. float_of_int count
  in
  {
    count;
    mean;
    stddev = sqrt var;
    min = arr.(0);
    max = arr.(count - 1);
    median = percentile arr 0.5;
    p90 = percentile arr 0.9;
  }

let of_ints values = of_floats (List.map float_of_int values)

let pp ppf s =
  Format.fprintf ppf "n=%d mean=%.1f sd=%.1f min=%.0f med=%.1f p90=%.1f max=%.0f" s.count s.mean
    s.stddev s.min s.median s.p90 s.max
