(** Fixed-width ASCII tables for the experiment harness.

    The bench binary regenerates the paper's Table 1 and the per-theorem
    experiments as plain-text tables; this module does the layout. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Row cells are padded/aligned per column. A row shorter than the header
    is right-padded with empty cells; a longer one raises. *)

val add_rule : t -> unit
(** A horizontal separator at this position. *)

val render : t -> string

val print : ?ppf:Format.formatter -> t -> unit
(** Render to [ppf] and flush; defaults to [Format.std_formatter] so the
    CLIs and bench binaries keep their one-line call sites. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
