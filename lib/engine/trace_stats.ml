let matrix_of trace ~k weight =
  let m = Array.make_matrix k k 0 in
  List.iter
    (fun ev ->
      match weight ev with
      | Some (src, dst, w) when src >= 0 && src < k && dst >= 0 && dst < k ->
        m.(src).(dst) <- m.(src).(dst) + w
      | Some _ | None -> ())
    (Trace.events trace);
  m

let message_matrix trace ~k =
  matrix_of trace ~k (function
    | Trace.Sent { src; dst; _ } -> Some (src, dst, 1)
    | _ -> None)

let bits_matrix trace ~k =
  matrix_of trace ~k (function
    | Trace.Sent { src; dst; size_bits; _ } -> Some (src, dst, size_bits)
    | _ -> None)

let delivered_matrix trace ~k =
  matrix_of trace ~k (function
    | Trace.Delivered { src; dst; _ } -> Some (src, dst, 1)
    | _ -> None)

let queries_per_peer trace ~k =
  let q = Array.make k 0 in
  List.iter
    (function
      | Trace.Queried { peer; _ } when peer >= 0 && peer < k -> q.(peer) <- q.(peer) + 1
      | _ -> ())
    (Trace.events trace);
  q

let busiest_link m =
  let best = ref None in
  Array.iteri
    (fun src row ->
      Array.iteri
        (fun dst w ->
          match !best with
          | Some (_, _, bw) when w <= bw -> ()
          | _ -> if w > 0 then best := Some (src, dst, w))
        row)
    m;
  !best

let pp_matrix ?(label = "msgs") ppf m =
  let k = Array.length m in
  let width =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun acc w -> max acc (String.length (string_of_int w))) acc row)
      (String.length label) m
  in
  Format.fprintf ppf "%*s" (width + 1) label;
  for dst = 0 to k - 1 do
    Format.fprintf ppf " %*d" width dst
  done;
  Format.pp_print_newline ppf ();
  for src = 0 to k - 1 do
    Format.fprintf ppf "%*d" (width + 1) src;
    for dst = 0 to k - 1 do
      Format.fprintf ppf " %*d" width m.(src).(dst)
    done;
    Format.pp_print_newline ppf ()
  done

let pp_lanes ?(max_events = 200) ~k ppf trace =
  let lane_width = 7 in
  let cell peer text cells =
    if peer >= 0 && peer < k then cells.(peer) <- text
  in
  Format.fprintf ppf "%8s" "time";
  for p = 0 to k - 1 do
    Format.fprintf ppf " |%-*s" (lane_width - 2) (Printf.sprintf "p%d" p)
  done;
  Format.pp_print_newline ppf ();
  let shown = ref 0 in
  List.iter
    (fun ev ->
      if !shown < max_events then begin
        incr shown;
        let cells = Array.make k "" in
        let time =
          match ev with
          | Trace.Sent { time; src; dst; tag; _ } ->
            cell src (Printf.sprintf ">%d %s" dst tag) cells;
            time
          | Trace.Delivered { time; src; dst; _ } ->
            cell dst (Printf.sprintf "<%d" src) cells;
            time
          | Trace.Queried { time; peer; index; value } ->
            cell peer (Printf.sprintf "?%d=%d" index (if value then 1 else 0)) cells;
            time
          | Trace.Crashed { time; peer } ->
            cell peer "X" cells;
            time
          | Trace.Terminated { time; peer } ->
            cell peer "#" cells;
            time
          | Trace.Deadlocked { time; blocked } ->
            List.iter (fun p -> cell p "...." cells) blocked;
            time
          | Trace.Note { time; peer; _ } ->
            cell peer "note" cells;
            time
        in
        Format.fprintf ppf "%8.3f" time;
        Array.iter
          (fun c ->
            let keep = lane_width - 2 in
            let c = if String.length c > keep then String.sub c 0 keep else c in
            Format.fprintf ppf " |%-*s" keep c)
          cells;
        Format.pp_print_newline ppf ()
      end)
    (Trace.events trace);
  if !shown >= max_events then Format.fprintf ppf "... (%d more events)@." (Trace.length trace - !shown)
