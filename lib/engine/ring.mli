(** Growable FIFO ring buffer.

    The simulator's per-peer mailbox. Same FIFO semantics as [Queue.t], but
    backed by a circular array: [push]/[pop] allocate nothing at steady state
    (a [Queue] allocates a cons cell per element), and capacity doubles when
    full, amortized O(1). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue at the tail. *)

val pop : 'a t -> 'a
(** Dequeue from the head. Raises [Invalid_argument] when empty. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val clear : 'a t -> unit
(** Drop all elements (retains capacity; stale references persist until
    overwritten, as with popped slots). *)
