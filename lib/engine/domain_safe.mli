(** The sanctioned wrappers for engine-shared mutable state. Cells declared
    [engine-shared] in dr-race.zones may only be touched through this
    module (dr_race rule R2); everything here is Atomic- or Mutex-guarded
    and safe to share across domains. *)

module Counter : sig
  type t

  val make : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

module Cell : sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  val update : 'a t -> ('a -> 'a) -> unit
  (** Lock-free read-modify-write; [f] may be retried and must be pure. *)
end

module Guarded : sig
  type 'a t

  val make : 'a -> 'a t

  val with_lock : 'a t -> ('a -> 'b) -> 'b
  (** Run [f] on the value with the mutex held. *)

  val set : 'a t -> 'a -> unit
end
