exception Crashed
exception Halted

module type MESSAGE = sig
  type t

  val size_bits : t -> int
  val tag : t -> string
end

type crash_spec = Never | At_time of float | After_sends of int | After_queries of int

type status = Completed | Deadlock of int list | Event_limit_reached

type arbiter = int -> int

type obs_kind = Obs_start | Obs_deliver | Obs_crash | Obs_query_reply | Obs_wake

type obs = { obs_kind : obs_kind; obs_peer : int; obs_tag : string; obs_step : int }

type config = {
  k : int;
  seed : int64;
  query_bit : peer:int -> int -> bool;
  query_latency : peer:int -> time:float -> float;
  latency : src:int -> dst:int -> time:float -> size_bits:int -> float;
  link_rate : float;
  crash : int -> crash_spec;
  start_time : int -> float;
  trace : Trace.t option;
  max_events : int;
  arbiter : arbiter option;
  observer : (obs -> unit) option;
}

let default_config ~k ~query_bit =
  {
    k;
    seed = 1L;
    query_bit;
    query_latency = (fun ~peer:_ ~time:_ -> 0.);
    latency = (fun ~src:_ ~dst:_ ~time:_ ~size_bits:_ -> 1.);
    link_rate = infinity;
    crash = (fun _ -> Never);
    start_time = (fun _ -> 0.);
    trace = None;
    max_events = 200_000_000;
    arbiter = None;
    observer = None;
  }

type 'r outcome = {
  outputs : (float * 'r) option array;
  metrics : Metrics.t;
  status : status;
  end_time : float;
  events : int;
}

module Make (M : MESSAGE) = struct
  type _ Effect.t +=
    | E_send : int * M.t -> unit Effect.t
    | E_receive : (int * M.t) Effect.t
    | E_query : int -> bool Effect.t
    | E_now : float Effect.t
    | E_me : int Effect.t
    | E_k : int Effect.t
    | E_rng : Prng.t Effect.t
    | E_sleep : float -> unit Effect.t
    | E_note : string -> unit Effect.t

  let me () = Effect.perform E_me
  let peer_count () = Effect.perform E_k
  let now () = Effect.perform E_now
  let send dst msg = Effect.perform (E_send (dst, msg))

  let broadcast msg =
    let self = me () and k = peer_count () in
    for dst = 0 to k - 1 do
      if dst <> self then send dst msg
    done

  let receive () = Effect.perform E_receive
  let query i = Effect.perform (E_query i)
  let rng () = Effect.perform E_rng
  let sleep d = Effect.perform (E_sleep d)
  let note text = Effect.perform (E_note text)
  let die () = raise Halted

  type wait =
    | Idle
    | On_receive of (int * M.t, unit) Effect.Deep.continuation
    | On_query_reply of (bool, unit) Effect.Deep.continuation
    | On_wake of (unit, unit) Effect.Deep.continuation

  type pstate = {
    id : int;
    mutable alive : bool;
    mutable finished : bool;
    mailbox : (int * M.t) Ring.t;
    mutable wait : wait;
    prng : Prng.t;
    mutable sends : int;
    mutable queries : int;
  }

  type event =
    | Ev_start of int
    | Ev_deliver of { dst : int; src : int; msg : M.t }
    | Ev_crash of int
    | Ev_query_reply of { peer : int; value : bool }
    | Ev_wake of int

  let run cfg proc =
    let master = Prng.create cfg.seed in
    let peers =
      Array.init cfg.k (fun id ->
          {
            id;
            alive = true;
            finished = false;
            mailbox = Ring.create ();
            wait = Idle;
            prng = Prng.split master;
            sends = 0;
            queries = 0;
          })
    in
    let heap = Heap.create () in
    (* Store-and-forward link serialization: each ordered link transmits at
       [link_rate] bits per time unit, one message at a time, in FIFO order.
       [infinity] (the default) models unbounded bandwidth. *)
    let serialized = cfg.link_rate <> infinity in
    let link_free : (int * int, float) Hashtbl.t =
      if serialized then Hashtbl.create 64 else Hashtbl.create 1
    in
    let metrics = Metrics.create cfg.k in
    let outputs = Array.make cfg.k None in
    (* A one-slot float array keeps the clock flat (a [float ref] would box
       on every store). *)
    let clock = [| 0. |] in
    let events_done = ref 0 in
    (* Crash plans are fixed per peer; resolve the closure once instead of
       on every send/query. *)
    let crash_spec = Array.init cfg.k cfg.crash in
    (* Tracing must cost nothing when off: every call site is guarded by
       [trace_on] so the closure passed to [tr] is never even allocated. *)
    let trace_on = cfg.trace <> None in
    let tr f = match cfg.trace with None -> () | Some t -> Trace.record t (f ()) in
    (* Killing a peer: mark dead and unwind its blocked fiber if any. *)
    let kill p =
      if p.alive then begin
        p.alive <- false;
        if trace_on then tr (fun () -> Trace.Crashed { time = clock.(0); peer = p.id });
        match p.wait with
        | Idle -> ()
        | On_receive k ->
          p.wait <- Idle;
          Effect.Deep.discontinue k Crashed
        | On_query_reply k ->
          p.wait <- Idle;
          Effect.Deep.discontinue k Crashed
        | On_wake k ->
          p.wait <- Idle;
          Effect.Deep.discontinue k Crashed
      end
    in
    let handler_for p =
      let open Effect.Deep in
      let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option = function
        | E_me -> Some (fun k -> continue k p.id)
        | E_k -> Some (fun k -> continue k cfg.k)
        | E_now -> Some (fun k -> continue k clock.(0))
        | E_rng -> Some (fun k -> continue k p.prng)
        | E_note text ->
          Some
            (fun k ->
              if trace_on then
                tr (fun () -> Trace.Note { time = clock.(0); peer = p.id; text });
              continue k ())
        | E_send (dst, msg) ->
          Some
            (fun k ->
              if dst < 0 || dst >= cfg.k then
                discontinue k (Invalid_argument "Sim.send: bad destination")
              else begin
                (* [After_sends j] lets exactly [j] sends complete; the peer
                   dies attempting the next one, so that send is lost. *)
                let crash_now =
                  match Array.unsafe_get crash_spec p.id with
                  | After_sends j -> p.sends >= j
                  | Never | At_time _ | After_queries _ -> false
                in
                if crash_now then begin
                  p.alive <- false;
                  if trace_on then
                    tr (fun () -> Trace.Crashed { time = clock.(0); peer = p.id });
                  discontinue k Crashed
                end
                else begin
                  let size_bits = M.size_bits msg in
                  let delay = cfg.latency ~src:p.id ~dst ~time:clock.(0) ~size_bits in
                  if not (delay >= 0.) then
                    discontinue k (Invalid_argument "Sim.run: negative latency")
                  else begin
                    Metrics.on_send metrics p.id ~size_bits;
                    if trace_on then
                      tr (fun () ->
                          Trace.Sent
                            { time = clock.(0); src = p.id; dst; size_bits; tag = M.tag msg });
                    let arrival =
                      if not serialized then clock.(0) +. delay
                      else begin
                        let free =
                          match Hashtbl.find_opt link_free (p.id, dst) with
                          | Some f -> f
                          | None -> 0.
                        in
                        let departure = Float.max clock.(0) free in
                        let transmission = float_of_int size_bits /. cfg.link_rate in
                        Hashtbl.replace link_free (p.id, dst) (departure +. transmission);
                        departure +. transmission +. delay
                      end
                    in
                    Heap.push heap ~time:arrival (Ev_deliver { dst; src = p.id; msg });
                    p.sends <- p.sends + 1;
                    continue k ()
                  end
                end
              end)
        | E_receive ->
          Some
            (fun k ->
              if not (Ring.is_empty p.mailbox) then continue k (Ring.pop p.mailbox)
              else p.wait <- On_receive k)
        | E_query i ->
          Some
            (fun k ->
              Metrics.on_query metrics p.id;
              p.queries <- p.queries + 1;
              let value = cfg.query_bit ~peer:p.id i in
              if trace_on then
                tr (fun () -> Trace.Queried { time = clock.(0); peer = p.id; index = i; value });
              let crash_now =
                match Array.unsafe_get crash_spec p.id with
                | After_queries j -> p.queries >= j
                | Never | At_time _ | After_sends _ -> false
              in
              if crash_now then begin
                p.alive <- false;
                if trace_on then
                  tr (fun () -> Trace.Crashed { time = clock.(0); peer = p.id });
                discontinue k Crashed
              end
              else begin
                let delay = cfg.query_latency ~peer:p.id ~time:clock.(0) in
                if delay <= 0. then continue k value
                else begin
                  p.wait <- On_query_reply k;
                  Heap.push heap ~time:(clock.(0) +. delay)
                    (Ev_query_reply { peer = p.id; value })
                end
              end)
        | E_sleep d ->
          Some
            (fun k ->
              if not (d >= 0.) then discontinue k (Invalid_argument "Sim.sleep: negative")
              else begin
                p.wait <- On_wake k;
                Heap.push heap ~time:(clock.(0) +. d) (Ev_wake p.id)
              end)
        | _ -> None
      in
      {
        retc = (fun () -> ());
        exnc =
          (function
          | Crashed | Halted -> p.alive <- false
          | e -> raise e);
        effc;
      }
    in
    let start_fiber p =
      Effect.Deep.match_with
        (fun () ->
          let out = proc p.id in
          outputs.(p.id) <- Some (clock.(0), out);
          p.finished <- true;
          if trace_on then tr (fun () -> Trace.Terminated { time = clock.(0); peer = p.id }))
        () (handler_for p)
    in
    (* Seed the schedule: starts and timed crashes. *)
    Array.iter
      (fun p ->
        Heap.push heap ~time:(cfg.start_time p.id) (Ev_start p.id);
        match crash_spec.(p.id) with
        | At_time t0 -> Heap.push heap ~time:t0 (Ev_crash p.id)
        | Never | After_sends _ | After_queries _ -> ())
      peers;
    let status = ref Completed in
    (* Coverage observation must cost nothing when off, exactly like the
       trace guard: one boolean test per event, tags rendered only when a
       sink is installed. *)
    let obs_on = cfg.observer <> None in
    let notify ev =
      match cfg.observer with
      | None -> ()
      | Some f ->
        let obs_kind, obs_peer, obs_tag =
          match ev with
          | Ev_start i -> (Obs_start, i, "")
          | Ev_deliver { dst; msg; _ } -> (Obs_deliver, dst, M.tag msg)
          | Ev_crash i -> (Obs_crash, i, "")
          | Ev_query_reply { peer; _ } -> (Obs_query_reply, peer, "")
          | Ev_wake i -> (Obs_wake, i, "")
        in
        f { obs_kind; obs_peer; obs_tag; obs_step = !events_done - 1 }
    in
    let handle = function
      | Ev_start i ->
        let p = Array.unsafe_get peers i in
        if p.alive then start_fiber p
      | Ev_deliver { dst; src; msg } ->
        let p = Array.unsafe_get peers dst in
        if p.alive && not p.finished then begin
          Metrics.on_receive metrics dst;
          if trace_on then
            tr (fun () -> Trace.Delivered { time = clock.(0); src; dst; tag = M.tag msg });
          match p.wait with
          | On_receive k ->
            p.wait <- Idle;
            Metrics.on_wakeup metrics dst;
            Effect.Deep.continue k (src, msg)
          | Idle | On_query_reply _ | On_wake _ -> Ring.push p.mailbox (src, msg)
        end
      | Ev_crash i -> kill peers.(i)
      | Ev_query_reply { peer; value } ->
        let p = Array.unsafe_get peers peer in
        if p.alive then begin
          match p.wait with
          | On_query_reply k ->
            p.wait <- Idle;
            Effect.Deep.continue k value
          | Idle | On_receive _ | On_wake _ -> ()
        end
      | Ev_wake i ->
        let p = Array.unsafe_get peers i in
        if p.alive then begin
          match p.wait with
          | On_wake k ->
            p.wait <- Idle;
            Effect.Deep.continue k ()
          | Idle | On_receive _ | On_query_reply _ -> ()
        end
    in
    let deadlock_check () =
      let blocked =
        Array.to_list peers
        |> List.filter_map (fun p -> if p.alive && not p.finished then Some p.id else None)
      in
      if blocked <> [] then begin
        if trace_on then tr (fun () -> Trace.Deadlocked { time = clock.(0); blocked });
        status := Deadlock blocked
      end
    in
    (match cfg.arbiter with
    | None ->
      (* Hot path: pull straight off the heap with no option/tuple boxing. *)
      let max_events = cfg.max_events in
      let rec loop () =
        if !events_done >= max_events then status := Event_limit_reached
        else if Heap.is_empty heap then deadlock_check ()
        else begin
          clock.(0) <- Heap.min_time heap;
          let ev = Heap.pop_min heap in
          incr events_done;
          if obs_on then notify ev;
          handle ev;
          loop ()
        end
      in
      loop ()
    | Some choose ->
      (* Under an arbiter, events live in a plain list and the arbiter picks
         which fires next; times are purely decorative (monotone counter). *)
      let pending : event list ref = ref [] in
      let next_event () =
        (* Drain freshly scheduled events from the heap into the pool. *)
        let rec drain () =
          match Heap.pop heap with
          | Some (_, ev) ->
            pending := !pending @ [ ev ];
            drain ()
          | None -> ()
        in
        drain ();
        let count = List.length !pending in
        if count = 0 then None
        else begin
          let idx = choose count in
          let idx = if idx < 0 || idx >= count then 0 else idx in
          let ev = List.nth !pending idx in
          pending := List.filteri (fun i _ -> i <> idx) !pending;
          Some ev
        end
      in
      let rec loop () =
        if !events_done >= cfg.max_events then status := Event_limit_reached
        else
          match next_event () with
          | None -> deadlock_check ()
          | Some ev ->
            clock.(0) <- clock.(0) +. 1.;
            incr events_done;
            if obs_on then notify ev;
            handle ev;
            loop ()
      in
      loop ());
    {
      outputs;
      metrics;
      status = !status;
      end_time = clock.(0);
      events = !events_done;
    }
end
