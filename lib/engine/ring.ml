type 'a t = {
  mutable data : 'a array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
}

let create () = { data = [||]; head = 0; len = 0 }

let is_empty r = r.len = 0
let length r = r.len

(* [value] seeds fresh slots, so no dummy element is needed. *)
let grow r value =
  let cap = Array.length r.data in
  if cap = 0 then begin
    r.data <- Array.make 8 value;
    r.head <- 0
  end
  else begin
    let data = Array.make (2 * cap) value in
    (* Unroll the circle into the front of the new array. *)
    let first = cap - r.head in
    Array.blit r.data r.head data 0 first;
    Array.blit r.data 0 data first (r.len - first);
    r.data <- data;
    r.head <- 0
  end

let push r value =
  if r.len = Array.length r.data then grow r value;
  let cap = Array.length r.data in
  let tail = r.head + r.len in
  let tail = if tail >= cap then tail - cap else tail in
  Array.unsafe_set r.data tail value;
  r.len <- r.len + 1

(* Popped slots keep their stale reference until overwritten by a later push
   (bounded by capacity) — same trade as {!Heap} for an allocation-free pop. *)
let pop r =
  if r.len = 0 then invalid_arg "Ring.pop: empty";
  let v = Array.unsafe_get r.data r.head in
  let head = r.head + 1 in
  r.head <- (if head = Array.length r.data then 0 else head);
  r.len <- r.len - 1;
  v

let clear r =
  r.head <- 0;
  r.len <- 0
