type event =
  | Sent of { time : float; src : int; dst : int; size_bits : int; tag : string }
  | Delivered of { time : float; src : int; dst : int; tag : string }
  | Queried of { time : float; peer : int; index : int; value : bool }
  | Crashed of { time : float; peer : int }
  | Terminated of { time : float; peer : int }
  | Deadlocked of { time : float; blocked : int list }
  | Note of { time : float; peer : int; text : string }

type t = { mutable items : event array; mutable len : int }

let create ?(capacity = 256) () =
  let capacity = max capacity 1 in
  { items = Array.make capacity (Note { time = 0.; peer = -1; text = "" }); len = 0 }

let record t ev =
  if t.len = Array.length t.items then begin
    let items = Array.make (2 * t.len) ev in
    Array.blit t.items 0 items 0 t.len;
    t.items <- items
  end;
  t.items.(t.len) <- ev;
  t.len <- t.len + 1

let events t = Array.to_list (Array.sub t.items 0 t.len)
let length t = t.len

let involves peer = function
  | Sent { src; dst; _ } | Delivered { src; dst; _ } -> src = peer || dst = peer
  | Queried { peer = p; _ } | Crashed { peer = p; _ }
  | Terminated { peer = p; _ } | Note { peer = p; _ } ->
    p = peer
  | Deadlocked { blocked; _ } -> List.mem peer blocked

let events_of_peer t peer = List.filter (involves peer) (events t)

let received_view t peer =
  List.filter_map
    (function
      | Delivered { time; src; dst; tag } when dst = peer -> Some (time, src, tag)
      | _ -> None)
    (events t)

let query_view t peer =
  List.filter_map
    (function
      | Queried { peer = p; index; value; _ } when p = peer -> Some (index, value)
      | _ -> None)
    (events t)

let pp_event ppf = function
  | Sent { time; src; dst; size_bits; tag } ->
    Format.fprintf ppf "%8.3f send  %3d -> %3d  %s (%d bits)" time src dst tag size_bits
  | Delivered { time; src; dst; tag } ->
    Format.fprintf ppf "%8.3f recv  %3d -> %3d  %s" time src dst tag
  | Queried { time; peer; index; value } ->
    Format.fprintf ppf "%8.3f query %3d X[%d] = %b" time peer index value
  | Crashed { time; peer } -> Format.fprintf ppf "%8.3f CRASH %3d" time peer
  | Terminated { time; peer } -> Format.fprintf ppf "%8.3f done  %3d" time peer
  | Deadlocked { time; blocked } ->
    Format.fprintf ppf "%8.3f DEADLOCK blocked=[%s]" time
      (String.concat "," (List.map string_of_int blocked))
  | Note { time; peer; text } -> Format.fprintf ppf "%8.3f note  %3d %s" time peer text

let pp ppf t =
  List.iter (fun ev -> Format.fprintf ppf "%a@." pp_event ev) (events t)

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let event_to_line = function
  | Sent { time; src; dst; size_bits; tag } ->
    Printf.sprintf "sent %.9g %d %d %d %s" time src dst size_bits tag
  | Delivered { time; src; dst; tag } -> Printf.sprintf "recv %.9g %d %d %s" time src dst tag
  | Queried { time; peer; index; value } ->
    Printf.sprintf "query %.9g %d %d %d" time peer index (if value then 1 else 0)
  | Crashed { time; peer } -> Printf.sprintf "crash %.9g %d" time peer
  | Terminated { time; peer } -> Printf.sprintf "done %.9g %d" time peer
  | Deadlocked { time; blocked } ->
    Printf.sprintf "deadlock %.9g %s" time (String.concat "," (List.map string_of_int blocked))
  | Note { time; peer; text } -> Printf.sprintf "note %.9g %d %s" time peer text

let split_n line n =
  (* First n space-separated fields, then the rest of the line verbatim. *)
  let rec go start acc remaining =
    if remaining = 0 then (List.rev acc, String.sub line start (String.length line - start))
    else begin
      match String.index_from_opt line start ' ' with
      | Some sp ->
        go (sp + 1) (String.sub line start (sp - start) :: acc) (remaining - 1)
      | None -> (List.rev (String.sub line start (String.length line - start) :: acc), "")
    end
  in
  go 0 [] n

let event_of_line line =
  let fail () = failwith "malformed trace line" in
  let f = float_of_string and i = int_of_string in
  match split_n line 1 with
  | [ "sent" ], rest -> (
    match split_n rest 4 with
    | [ t; src; dst; size ], tag ->
      Sent { time = f t; src = i src; dst = i dst; size_bits = i size; tag }
    | _ -> fail ())
  | [ "recv" ], rest -> (
    match split_n rest 3 with
    | [ t; src; dst ], tag -> Delivered { time = f t; src = i src; dst = i dst; tag }
    | _ -> fail ())
  | [ "query" ], rest -> (
    match String.split_on_char ' ' rest with
    | [ t; peer; index; v ] ->
      Queried { time = f t; peer = i peer; index = i index; value = v = "1" }
    | _ -> fail ())
  | [ "crash" ], rest -> (
    match String.split_on_char ' ' rest with
    | [ t; peer ] -> Crashed { time = f t; peer = i peer }
    | _ -> fail ())
  | [ "done" ], rest -> (
    match String.split_on_char ' ' rest with
    | [ t; peer ] -> Terminated { time = f t; peer = i peer }
    | _ -> fail ())
  | [ "deadlock" ], rest -> (
    match String.split_on_char ' ' rest with
    | [ t; blocked ] ->
      Deadlocked
        { time = f t; blocked = List.map i (String.split_on_char ',' blocked) }
    | _ -> fail ())
  | [ "note" ], rest -> (
    match split_n rest 2 with
    | [ t; peer ], text -> Note { time = f t; peer = i peer; text }
    | _ -> fail ())
  | _ -> fail ()

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun ev -> output_string oc (event_to_line ev ^ "\n")) (events t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let t = create () in
      let lineno = ref 0 in
      (try
         while true do
           (* dr-lint: allow L5 — trace persistence; load runs outside the event loop *)
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match event_of_line line with
             | ev -> record t ev
             | exception _ -> failwith (Printf.sprintf "%s: bad trace line %d" path !lineno)
         done
       with End_of_file -> ());
      t)
