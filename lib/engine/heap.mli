(** Binary min-heap keyed by [(time, sequence)].

    The event queue of the simulator. Ties on time are broken by insertion
    order, which keeps executions deterministic: two events scheduled for the
    same instant are processed in the order they were scheduled.

    The representation is struct-of-arrays (times in a flat float array,
    sequence numbers and values in parallel arrays), so [push] and
    [pop_min] allocate nothing once capacity is reached — this heap sits on
    the simulator's per-event hot path. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Schedule a value at [time]. O(log n), allocation-free at steady state. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, or [None] when empty. O(log n).
    Allocates the option/tuple — hot paths should use {!min_time} +
    {!pop_min} instead. *)

val min_time : 'a t -> float
(** Time of the earliest event. Raises [Invalid_argument] when empty. *)

val pop_min : 'a t -> 'a
(** Remove and return the earliest event's value without allocating.
    Raises [Invalid_argument] when empty. *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val clear : 'a t -> unit
(** Drop all pending events. *)
