(* Counters live in one flat int array, [stride] slots per peer, updated with
   unsafe accesses and a branch-free integer max: the on_* hooks run once per
   simulated event, so they must cost a handful of instructions and zero
   allocations. The [peer] record is only materialized on demand. *)

type peer = {
  mutable queries : int;
  mutable msgs_sent : int;
  mutable bits_sent : int;
  mutable msgs_received : int;
  mutable max_msg_bits : int;
  mutable wakeups : int;
}

let stride = 6

(* Field offsets within a peer's slice. *)
let f_queries = 0
let f_msgs_sent = 1
let f_bits_sent = 2
let f_msgs_received = 3
let f_max_msg_bits = 4
let f_wakeups = 5

type t = { k : int; data : int array }

let create k = { k; data = Array.make (k * stride) 0 }
let peer_count t = t.k

let peer t i =
  if i < 0 || i >= t.k then invalid_arg "Metrics.peer: bad index";
  let base = i * stride in
  {
    queries = t.data.(base + f_queries);
    msgs_sent = t.data.(base + f_msgs_sent);
    bits_sent = t.data.(base + f_bits_sent);
    msgs_received = t.data.(base + f_msgs_received);
    max_msg_bits = t.data.(base + f_max_msg_bits);
    wakeups = t.data.(base + f_wakeups);
  }

(* max(a, b) without a conditional branch: valid for native ints (the sign
   of [b - a] cannot overflow for the counter magnitudes involved). *)
let[@inline] imax a b =
  let d = b - a in
  a + (d land lnot (d asr (Sys.int_size - 1)))

let[@inline] bump t i field =
  let idx = (i * stride) + field in
  Array.unsafe_set t.data idx (Array.unsafe_get t.data idx + 1)

let[@inline] on_query t i = bump t i f_queries

let on_send t i ~size_bits =
  let base = i * stride in
  Array.unsafe_set t.data (base + f_msgs_sent)
    (Array.unsafe_get t.data (base + f_msgs_sent) + 1);
  Array.unsafe_set t.data (base + f_bits_sent)
    (Array.unsafe_get t.data (base + f_bits_sent) + size_bits);
  Array.unsafe_set t.data (base + f_max_msg_bits)
    (imax (Array.unsafe_get t.data (base + f_max_msg_bits)) size_bits)

let[@inline] on_receive t i = bump t i f_msgs_received
let[@inline] on_wakeup t i = bump t i f_wakeups

type summary = {
  max_queries : int;
  total_queries : int;
  total_msgs : int;
  total_bits : int;
  max_msg_bits : int;
  mean_queries : float;
  max_wakeups : int;
}

let summarize ?(select = fun _ -> true) t =
  let max_queries = ref 0
  and total_queries = ref 0
  and total_msgs = ref 0
  and total_bits = ref 0
  and max_msg_bits = ref 0
  and max_wakeups = ref 0
  and selected = ref 0 in
  for i = 0 to t.k - 1 do
    if select i then begin
      let base = i * stride in
      incr selected;
      let q = t.data.(base + f_queries) in
      max_queries := imax !max_queries q;
      total_queries := !total_queries + q;
      total_msgs := !total_msgs + t.data.(base + f_msgs_sent);
      total_bits := !total_bits + t.data.(base + f_bits_sent);
      max_msg_bits := imax !max_msg_bits t.data.(base + f_max_msg_bits);
      max_wakeups := imax !max_wakeups t.data.(base + f_wakeups)
    end
  done;
  {
    max_queries = !max_queries;
    total_queries = !total_queries;
    total_msgs = !total_msgs;
    total_bits = !total_bits;
    max_msg_bits = !max_msg_bits;
    mean_queries =
      (if !selected = 0 then 0. else float_of_int !total_queries /. float_of_int !selected);
    max_wakeups = !max_wakeups;
  }

let pp_summary ppf s =
  Format.fprintf ppf "Q=%d (mean %.1f) M=%d bits=%d max_msg=%d" s.max_queries s.mean_queries
    s.total_msgs s.total_bits s.max_msg_bits
