(** Deterministic discrete-event simulator for asynchronous message passing.

    This is the substrate on which every protocol in the repository runs. It
    implements the DR model of the paper: [k] peers on a complete network,
    point-to-point messages with adversarially chosen finite delays, an
    external source answering bit queries, crash injection, and no global
    clock visible to the peers. Peers are written in direct style as ordinary
    OCaml functions; blocking operations ([receive], [query], [sleep]) are
    OCaml 5 effects interpreted by the event loop, so a peer reads exactly
    like the paper's pseudo-code ("wait until it receives …").

    Executions are fully deterministic given the configuration and seed:
    the event queue breaks time ties by schedule order and all randomness
    comes from {!Prng}. *)

exception Crashed
(** Raised inside a peer's process when the adversary crashes it; the engine
    uses it to unwind the fiber. Protocol code must not catch it. *)

exception Halted
(** Raised by {!die}; used by Byzantine strategies that stop voluntarily. *)

module type MESSAGE = sig
  type t

  val size_bits : t -> int
  (** Size charged against the message-complexity accounting. Protocols are
      responsible for respecting their own bound [B]. *)

  val tag : t -> string
  (** Short label used in traces. *)
end

type crash_spec =
  | Never
  | At_time of float  (** crash at the given instant (peer must be idle/blocked) *)
  | After_sends of int
      (** complete exactly j sends, die attempting the next: a mid-cycle
          partial broadcast, the hard case of the crash model. [After_sends 0]
          never sends anything. *)
  | After_queries of int
      (** crash immediately after the j-th source query is issued *)

type status =
  | Completed  (** every live peer's process returned *)
  | Deadlock of int list  (** live peers still blocked when no event remained *)
  | Event_limit_reached

type arbiter = int -> int
(** Schedule arbiter for systematic exploration: called with the number of
    currently pending events, returns the index (0-based) of the one to fire
    next. When set, event {e times} are ignored — any pending event may fire
    in any order, which is exactly the asynchronous adversary's power over
    message delays, start times and source replies. Sound for protocols that
    never read the clock (all honest protocol logic here). Timed crashes
    ([At_time]) are not meaningful under an arbiter; use [After_sends] /
    [After_queries]. See {!Explore}. *)

type obs_kind = Obs_start | Obs_deliver | Obs_crash | Obs_query_reply | Obs_wake
(** The category of a fired event, as seen by an observer. *)

type obs = {
  obs_kind : obs_kind;
  obs_peer : int;  (** the peer the event applies to (destination for delivers) *)
  obs_tag : string;
      (** the message's {!MESSAGE.tag} for delivers — the protocol-phase
          label ("seg(3)", "seg(c2,0)", …) — and [""] otherwise *)
  obs_step : int;  (** 0-based index of the event within the execution *)
}
(** One observation per processed event. Unlike {!Trace}, observations are
    streamed (never stored by the engine) and carry no wall-clock data, so a
    coverage sink hashing them stays deterministic under replay. See
    {!Explore.signature}. *)

type config = {
  k : int;  (** number of peers *)
  seed : int64;
  query_bit : peer:int -> int -> bool;
      (** the external source. Per-peer so that lower-bound adversaries can
          hand corrupted peers a different (simulated) input array. *)
  query_latency : peer:int -> time:float -> float;
      (** round-trip delay of a source query; [0.] answers instantly *)
  latency : src:int -> dst:int -> time:float -> size_bits:int -> float;
      (** adversarial propagation delay; must be finite and [>= 0.] *)
  link_rate : float;
      (** bits per time unit on each ordered link, transmitted one message
          at a time in FIFO order — the paper's "a message of L bits takes
          L/B time units". [infinity] (default) disables serialization. *)
  crash : int -> crash_spec;
  start_time : int -> float;  (** the adversary decides when peers start *)
  trace : Trace.t option;
  max_events : int;
  arbiter : arbiter option;
  observer : (obs -> unit) option;
      (** called once per processed event, before the event's effects run —
          the coverage-guided checker's sampling hook. [None] (default) costs
          one branch per event. *)
}

val default_config : k:int -> query_bit:(peer:int -> int -> bool) -> config
(** Unit latency on every link, instant queries, no crashes, simultaneous
    start at time 0, no trace, generous event limit. *)

type 'r outcome = {
  outputs : (float * 'r) option array;
      (** per peer: termination time and returned value; [None] for peers
          that crashed, died or blocked forever *)
  metrics : Metrics.t;
  status : status;
  end_time : float;  (** time of the last processed event *)
  events : int;  (** total events processed — the bench harness's work unit *)
}

module Make (M : MESSAGE) : sig
  (** {2 Process-side API}

      These may only be called from inside a process executed by {!run}. *)

  val me : unit -> int
  val peer_count : unit -> int

  val now : unit -> float
  (** Current virtual time. Only for Byzantine strategies and
      instrumentation — honest protocol logic must not read the clock
      (the model has no global time). *)

  val send : int -> M.t -> unit
  val broadcast : M.t -> unit
  (** [broadcast m] sends [m] to every other peer, in ID order. *)

  val receive : unit -> int * M.t
  (** Next delivered message as [(sender, message)]; blocks until one
      arrives. Protocols keep their own buffers for out-of-phase messages,
      as in the paper. *)

  val query : int -> bool
  (** Read one bit from the source (counted in Q). *)

  val rng : unit -> Prng.t
  (** This peer's private random stream. *)

  val sleep : float -> unit
  (** Wait for a duration. Only for Byzantine/adversarial code. *)

  val note : string -> unit
  (** Free-form trace annotation. *)

  val die : unit -> 'a
  (** Stop executing this peer immediately (Byzantine strategies). *)

  (** {2 Running executions} *)

  val run : config -> (int -> 'r) -> 'r outcome
  (** [run cfg proc] executes [proc i] as peer [i] for all [i < cfg.k] and
      drives events to quiescence. Raises [Invalid_argument] on negative
      latencies. Exceptions escaping a process (other than crash/halt
      control flow) propagate to the caller. *)
end
