(** Bounded systematic schedule exploration.

    The asynchronous adversary's whole power over honest peers is the order
    in which pending events (message deliveries, start signals, source
    replies) fire. With {!Sim.arbiter} that order becomes an explicit choice
    sequence, so correctness can be checked against {e every} schedule of a
    small instance — depth-first, deterministically, re-executing the
    simulation once per schedule — instead of against a handful of sampled
    latency policies. The schedule tree of any non-trivial run is
    astronomical, so exploration is budgeted: [exhausted = true] means the
    whole tree was covered, otherwise the DFS covered a lexicographic prefix
    of it. *)

type outcome = {
  schedules_run : int;
  exhausted : bool;  (** the full schedule tree fit inside the budget *)
  failures : int;
  first_failure : int list option;
      (** the choice script of the first failing schedule — replay it by
          passing the same script to {!scripted} *)
  max_depth : int;  (** longest schedule seen (events per execution) *)
}

val dfs : budget:int -> run:(arbiter:Sim.arbiter -> bool) -> outcome
(** [dfs ~budget ~run] calls [run] once per schedule, handing it an arbiter
    that drives that schedule; [run] returns whether the execution was
    correct. [run] must be deterministic given the arbiter's choices. *)

type replay = {
  arbiter : Sim.arbiter;
  steps : unit -> int;  (** choices made so far (events fired) *)
  overruns : unit -> int;
      (** choices requested {e after} the script ran out — each one was
          answered with 0. A replayed counterexample whose execution outlives
          its recorded schedule diverged from the recording; a nonzero count
          makes that visible instead of silently padding. *)
  clamped : unit -> int;
      (** scripted choices that were out of range for the pending-event count
          at that step (answered with [count - 1]) — also divergence. *)
}

val replay : int list -> replay
(** A scripted arbiter that counts its own divergence. Replaying a script on
    the deterministic execution it was recorded from reports
    [overruns () = 0] and [clamped () = 0]; anything else means the run no
    longer follows the recorded schedule. *)

val faithful : replay -> bool
(** [overruns () = 0 && clamped () = 0] — the execution followed the script
    exactly (so far). *)

val scripted : int list -> Sim.arbiter
(** An arbiter that follows the given choice script, then always picks 0 —
    for replaying a failure found by {!dfs}. Use {!replay} when divergence
    from the script must be detected rather than masked. *)

val record : Sim.arbiter -> Sim.arbiter * (unit -> int list)
(** [record a] wraps [a] so that every choice it makes (clamped exactly as
    the simulator clamps) is logged; the second component returns the script
    so far. Recording a {!random} arbiter turns a fuzzed run into a
    deterministic, replayable script. *)

val random : Prng.t -> Sim.arbiter
(** A uniformly random arbiter — schedule fuzzing beyond the DFS prefix. *)

val scripted_then_random : int list -> Prng.t -> Sim.arbiter
(** Follow the choice script, then continue with uniformly random choices —
    the coverage campaign's mutation arbiter: replay an interesting corpus
    prefix exactly, explore a fresh suffix. (Contrast {!scripted}, which
    pads with 0 and is meant for exact replay.) *)

(** {2 Coverage observation}

    The coverage-guided checker ({!Dr_check.Coverage}) keys its map on
    hashed signatures of the events an execution fires. The engine streams
    one {!Sim.obs} per event through [config.observer]; {!signature}
    collapses it to a stable 30-bit key and {!probe} collects the distinct
    keys of one run. *)

val signature : ?bucket:int -> Sim.obs -> int
(** Deterministic 30-bit signature of (protocol-phase × event-type ×
    round-bucket): the event kind, the message tag (the protocol's own phase
    label, e.g. ["seg(c2,0)"]) and the event index divided by [bucket]
    (default 8) are FNV-1a-hashed together. Independent of wall clock, peer
    count and Hashtbl seeding, so two runs firing the same schedule produce
    the same signatures byte-for-byte. *)

type probe = {
  observer : Sim.obs -> unit;  (** plug into [config.observer] (via [Exec.make_opts ~observer]) *)
  hits : unit -> int list;  (** distinct signatures so far, in first-hit order *)
}

val probe : ?bucket:int -> unit -> probe
(** A fresh single-run signature collector. *)
