type outcome = {
  schedules_run : int;
  exhausted : bool;
  failures : int;
  first_failure : int list option;
  max_depth : int;
}

type replay = {
  arbiter : Sim.arbiter;
  steps : unit -> int;
  overruns : unit -> int;
  clamped : unit -> int;
}

let replay script =
  let remaining = ref script in
  let steps = ref 0 in
  let overruns = ref 0 in
  let clamped = ref 0 in
  let arbiter count =
    incr steps;
    match !remaining with
    | c :: tl ->
      remaining := tl;
      if c < count then c
      else begin
        incr clamped;
        count - 1
      end
    | [] ->
      incr overruns;
      0
  in
  {
    arbiter;
    steps = (fun () -> !steps);
    overruns = (fun () -> !overruns);
    clamped = (fun () -> !clamped);
  }

let faithful r = r.overruns () = 0 && r.clamped () = 0

let scripted script = (replay script).arbiter

let record arbiter =
  let log = ref [] in
  let recording count =
    let c = arbiter count in
    (* Clamp exactly like the simulator does, so the recorded script is the
       schedule that actually fired. *)
    let c = if c < 0 || c >= count then 0 else c in
    log := c :: !log;
    c
  in
  (recording, fun () -> List.rev !log)

let random prng count = Prng.int prng count

let scripted_then_random script prng =
  let remaining = ref script in
  fun count ->
    match !remaining with
    | c :: tl ->
      remaining := tl;
      if c < count then c else count - 1
    | [] -> Prng.int prng count

(* ------------------------------------------------------------------ *)
(* Coverage signatures                                                *)
(* ------------------------------------------------------------------ *)

(* FNV-1a, written out so signatures never depend on Hashtbl.hash's
   representation-sensitive behavior: byte-exact across runs and builds. *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let signature ?(bucket = 8) (o : Sim.obs) =
  let h = ref fnv_basis in
  let mix byte = h := Int64.mul (Int64.logxor !h (Int64.of_int (byte land 0xff))) fnv_prime in
  mix
    (match o.Sim.obs_kind with
    | Sim.Obs_start -> 1
    | Sim.Obs_deliver -> 2
    | Sim.Obs_crash -> 3
    | Sim.Obs_query_reply -> 4
    | Sim.Obs_wake -> 5);
  String.iter (fun c -> mix (Char.code c)) o.Sim.obs_tag;
  let b = o.Sim.obs_step / max bucket 1 in
  mix (b land 0xff);
  mix ((b lsr 8) land 0xff);
  mix ((b lsr 16) land 0xff);
  Int64.to_int !h land 0x3FFFFFFF

type probe = { observer : Sim.obs -> unit; hits : unit -> int list }

let probe ?bucket () =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let observer o =
    let s = signature ?bucket o in
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      order := s :: !order
    end
  in
  { observer; hits = (fun () -> List.rev !order) }

let dfs ~budget ~run =
  (* The DFS frontier is a choice script: replay it, extend with zeros, and
     record (choice, alternatives) per step; backtracking increments the
     deepest incrementable position. Prefix determinism (same choices, same
     execution) makes replay exact. *)
  let script = ref [] in
  let schedules = ref 0 in
  let failures = ref 0 in
  let first_failure = ref None in
  let max_depth = ref 0 in
  let exhausted = ref false in
  (try
     while !schedules < budget do
       let log = ref [] in
       let remaining = ref !script in
       let arbiter count =
         let choice =
           match !remaining with
           | c :: tl ->
             remaining := tl;
             if c < count then c else count - 1
           | [] -> 0
         in
         log := (choice, count) :: !log;
         choice
       in
       let ok = run ~arbiter in
       incr schedules;
       let choices = List.rev !log in
       if List.length choices > !max_depth then max_depth := List.length choices;
       if not ok then begin
         incr failures;
         if !first_failure = None then first_failure := Some (List.map fst choices)
       end;
       (* Next schedule: bump the deepest position with room to grow. *)
       let rec next_script rev_prefix = function
         | [] -> None
         | (choice, count) :: rest ->
           (match next_script ((choice, count) :: rev_prefix) rest with
           | Some s -> Some s
           | None ->
             if choice + 1 < count then
               Some (List.rev_map fst rev_prefix @ [ choice + 1 ])
             else None)
       in
       match next_script [] choices with
       | Some s -> script := s
       | None ->
         exhausted := true;
         raise Exit
     done
   with Exit -> ());
  {
    schedules_run = !schedules;
    exhausted = !exhausted;
    failures = !failures;
    first_failure = !first_failure;
    max_depth = !max_depth;
  }
