(* Struct-of-arrays binary min-heap. Times live in a flat float array (flat
   unboxed representation), sequence numbers and values in parallel arrays:
   a push allocates nothing once capacity is there, where the previous
   entry-record layout allocated a record plus a boxed float per event. The
   (time, seq) order is unchanged, so executions are bit-identical. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { times = [||]; seqs = [||]; values = [||]; len = 0; next_seq = 0 }

(* Strict (time, seq) lexicographic order between slots [i] and [j]. *)
let[@inline] lt h i j =
  let ti = Array.unsafe_get h.times i and tj = Array.unsafe_get h.times j in
  ti < tj || (ti = tj && Array.unsafe_get h.seqs i < Array.unsafe_get h.seqs j)

(* [value] seeds fresh slots of the values array — it is about to be stored
   anyway, so no dummy element is ever needed. *)
let grow h value =
  let cap = Array.length h.values in
  if cap = 0 then begin
    h.times <- Array.make 16 0.;
    h.seqs <- Array.make 16 0;
    h.values <- Array.make 16 value
  end
  else begin
    let new_cap = 2 * cap in
    let times = Array.make new_cap 0. in
    Array.blit h.times 0 times 0 h.len;
    h.times <- times;
    let seqs = Array.make new_cap 0 in
    Array.blit h.seqs 0 seqs 0 h.len;
    h.seqs <- seqs;
    let values = Array.make new_cap value in
    Array.blit h.values 0 values 0 h.len;
    h.values <- values
  end

let[@inline] set h i ~time ~seq value =
  Array.unsafe_set h.times i time;
  Array.unsafe_set h.seqs i seq;
  Array.unsafe_set h.values i value

(* Hole-based sifts: carry the moving element in registers and write each
   visited slot once, instead of swapping (which writes twice per level
   across all three arrays). Comparison order matches the classic swap
   formulation, so the resulting layout — and hence the pop order — is
   identical. *)

let sift_up h i ~time ~seq value =
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = Array.unsafe_get h.times parent in
    if time < pt || (time = pt && seq < Array.unsafe_get h.seqs parent) then begin
      set h !i ~time:pt ~seq:(Array.unsafe_get h.seqs parent) (Array.unsafe_get h.values parent);
      i := parent
    end
    else continue := false
  done;
  set h !i ~time ~seq value

let sift_down h ~time ~seq value =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let left = (2 * !i) + 1 in
    if left >= h.len then continue := false
    else begin
      let right = left + 1 in
      (* Index of the smaller child. *)
      let c = if right < h.len && lt h right left then right else left in
      let ct = Array.unsafe_get h.times c in
      if ct < time || (ct = time && Array.unsafe_get h.seqs c < seq) then begin
        set h !i ~time:ct ~seq:(Array.unsafe_get h.seqs c) (Array.unsafe_get h.values c);
        i := c
      end
      else continue := false
    end
  done;
  set h !i ~time ~seq value

let push h ~time value =
  if h.len = Array.length h.values then grow h value;
  let i = h.len in
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.len <- i + 1;
  sift_up h i ~time ~seq value

let is_empty h = h.len = 0
let size h = h.len

let[@inline] min_time h =
  if h.len = 0 then invalid_arg "Heap.min_time: empty";
  Array.unsafe_get h.times 0

(* Remove the root by sifting the last element down from the top. Freed
   slots keep stale value references (bounded by capacity, reclaimed on the
   next push into them) — a deliberate trade for an allocation-free pop. *)
let[@inline] remove_min h =
  let last = h.len - 1 in
  h.len <- last;
  if last > 0 then
    sift_down h ~time:(Array.unsafe_get h.times last) ~seq:(Array.unsafe_get h.seqs last)
      (Array.unsafe_get h.values last)

let pop_min h =
  if h.len = 0 then invalid_arg "Heap.pop_min: empty";
  let v = Array.unsafe_get h.values 0 in
  remove_min h;
  v

let pop h =
  if h.len = 0 then None
  else begin
    let t = min_time h and v = Array.unsafe_get h.values 0 in
    remove_min h;
    Some (t, v)
  end

let peek_time h = if h.len = 0 then None else Some (min_time h)
let clear h = h.len <- 0
