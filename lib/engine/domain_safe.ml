(* The one sanctioned doorway to engine-shared mutable state.

   dr_race's R2 rule rejects any direct cross-module access to a cell
   declared [engine-shared] in dr-race.zones — every such cell must be
   held in (or reached through) one of these wrappers, so the sharing
   discipline is visible at the type level and checkable syntactically.
   See DESIGN.md "Domain-safety zones". *)

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let incr t = Atomic.incr t
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Cell = struct
  type 'a t = 'a Atomic.t

  let make v = Atomic.make v
  let get t = Atomic.get t
  let set t v = Atomic.set t v

  (* Retry loop over compare_and_set: lock-free read-modify-write. [f] may
     run more than once and must be pure. *)
  let rec update t f =
    let cur = Atomic.get t in
    if not (Atomic.compare_and_set t cur (f cur)) then update t f
end

module Guarded = struct
  type 'a t = { mu : Mutex.t; mutable v : 'a }

  let make v = { mu = Mutex.create (); v }

  let with_lock t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) (fun () -> f t.v)

  let set t v = with_lock t (fun _ -> t.v <- v)
end
