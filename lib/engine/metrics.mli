(** Per-peer cost accounting.

    Tracks the three complexity measures of the DR model — queries, time and
    messages — plus bit volumes, for every peer of an execution. The runner
    decides which peers count as nonfaulty when summarizing (the paper's Q is
    a max over {e nonfaulty} peers only). *)

type peer = {
  mutable queries : int;  (** bits queried at the source *)
  mutable msgs_sent : int;
  mutable bits_sent : int;
  mutable msgs_received : int;
  mutable max_msg_bits : int;  (** largest single message sent *)
  mutable wakeups : int;  (** times the peer was resumed by a delivery *)
}

type t
(** Internally a flat counter array (one slice per peer); the [on_*] hooks
    are branch-free and allocation-free — they run once per simulated
    event. *)

val create : int -> t
(** [create k] allocates counters for [k] peers. *)

val peer : t -> int -> peer
(** Snapshot of one peer's counters (a fresh record per call; mutating it
    does not write back). *)

val peer_count : t -> int

val on_query : t -> int -> unit
val on_send : t -> int -> size_bits:int -> unit
val on_receive : t -> int -> unit
val on_wakeup : t -> int -> unit

type summary = {
  max_queries : int;  (** Q: max queries over the selected peers *)
  total_queries : int;
  total_msgs : int;  (** M: messages sent by the selected peers *)
  total_bits : int;
  max_msg_bits : int;
  mean_queries : float;
  max_wakeups : int;
      (** most times any selected peer was resumed by a delivery — a proxy
          for the paper's per-peer cycle count *)
}

val summarize : ?select:(int -> bool) -> t -> summary
(** Aggregate over the peers satisfying [select] (default: all). Pass the
    honesty predicate to obtain the paper's Q and M. *)

val pp_summary : Format.formatter -> summary -> unit
