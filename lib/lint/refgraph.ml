(* The cross-module reference graph: which compilation units read or write
   each inventoried cell, and which units reach into which other units at
   all. Purely syntactic, over the resolved longidents of every unit.

   Classification is calibrated, not sound: a cell passed whole to an
   unknown function is recorded as a Read (the repo idiom passes cells to
   their own module's accessors, which are seen separately); the known
   stdlib mutators (Hashtbl.replace, Buffer.add_*, [:=], [<-], ...) are
   recorded as Writes. *)

open Ppxlib

type access_kind = Read | Write

let access_kind_name = function Read -> "read" | Write -> "write"

type access = {
  a_key : string;  (* Inventory.key of the cell *)
  a_unit : string;  (* accessing unit *)
  a_path : string;
  a_line : int;
  a_col : int;
  a_kind : access_kind;
  a_fn : string option;  (* enclosing module-level binding; None = toplevel eval *)
  a_in_fun : bool;  (* under a lambda: runs post-init, not at module init *)
}

type uref = {
  r_unit : string;  (* referenced unit *)
  r_ident : string;  (* first ident inside it, "" for a bare module reference *)
  r_from : string;  (* referencing unit *)
  r_path : string;
  r_line : int;
  r_col : int;
}

let lident_parts txt = try Longident.flatten_exn txt with _ -> []
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

(* Known in-place mutators, by container module. *)
let mutators =
  [
    ("Hashtbl", [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Queue", [ "add"; "push"; "pop"; "take"; "take_opt"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "pop_opt"; "clear"; "drop" ]);
    ( "Buffer",
      [
        "add_char"; "add_string"; "add_bytes"; "add_substring"; "add_subbytes"; "add_buffer";
        "add_channel"; "clear"; "reset"; "truncate";
      ] );
    ("Array", [ "set"; "unsafe_set"; "fill"; "blit"; "sort"; "fast_sort"; "stable_sort"; "shuffle" ]);
    ("Bytes", [ "set"; "unsafe_set"; "fill"; "blit"; "blit_string" ]);
    ("Atomic", [ "set"; "exchange"; "compare_and_set"; "fetch_and_add"; "incr"; "decr" ]);
  ]

let is_mutator parts =
  match parts with
  | [ ":=" ] | [ "incr" ] | [ "decr" ] -> true
  | [ m; f ] -> (
    match List.assoc_opt m mutators with
    | Some fns -> List.exists (String.equal f) fns
    | None -> false)
  | _ -> false

let pos_of loc =
  let start = loc.Location.loc_start in
  (start.Lexing.pos_lnum, start.Lexing.pos_cnum - start.Lexing.pos_bol)

let accesses_of_unit table (self : Symbols.unit_info) ~(cells : (string, Inventory.item) Hashtbl.t)
    : access list * uref list =
  let accs = ref [] and urefs = ref [] in
  let cur_fn = ref None in
  let lambda_depth = ref 0 in
  let resolve parts = Symbols.resolve table ~self parts in
  (* The inventoried cell this expression denotes, if any. *)
  let rec cell_of e =
    match e.pexp_desc with
    | Pexp_constraint (e, _) -> cell_of e
    | Pexp_ident { txt; loc } -> (
      let parts = strip_stdlib (lident_parts txt) in
      match resolve parts with
      | Some (u, rest) when rest <> [] -> (
        let key = String.concat "." (u :: rest) in
        match Hashtbl.find_opt cells key with Some _ -> Some (key, loc) | None -> None)
      | _ -> None)
    | _ -> None
  in
  let note_access ~loc key kind =
    let line, col = pos_of loc in
    accs :=
      {
        a_key = key;
        a_unit = self.name;
        a_path = self.path;
        a_line = line;
        a_col = col;
        a_kind = kind;
        a_fn = !cur_fn;
        a_in_fun = !lambda_depth > 0;
      }
      :: !accs
  in
  let note_uref ~loc parts =
    match resolve parts with
    | Some (u, rest) when not (String.equal u self.name) ->
      let line, col = pos_of loc in
      urefs :=
        {
          r_unit = u;
          r_ident = (match rest with i :: _ -> i | [] -> "");
          r_from = self.name;
          r_path = self.path;
          r_line = line;
          r_col = col;
        }
        :: !urefs
    | _ -> ()
  in
  let iter =
    object (this)
      inherit Ast_traverse.iter as super

      method! structure_item item =
        (match item.pstr_desc with
        | Pstr_value (_, bindings) ->
          List.iter
            (fun vb ->
              (match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ }
              | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
                cur_fn := Some txt
              | _ -> cur_fn := None);
              this#value_binding vb;
              cur_fn := None)
            bindings
        | _ -> super#structure_item item)

      method! expression e =
        match e.pexp_desc with
        | Pexp_ident { txt; loc } -> (
          let parts = strip_stdlib (lident_parts txt) in
          note_uref ~loc parts;
          match cell_of e with Some (key, loc) -> note_access ~loc key Read | None -> ())
        | Pexp_setfield (b, _, v) ->
          (match cell_of b with
          | Some (key, loc) -> note_access ~loc key Write
          | None -> this#expression b);
          this#expression v
        | Pexp_function _ ->
          incr lambda_depth;
          super#expression e;
          decr lambda_depth
        | Pexp_apply (({ pexp_desc = Pexp_ident { txt; loc = hloc }; _ } as _head), args) ->
          let parts = strip_stdlib (lident_parts txt) in
          note_uref ~loc:hloc parts;
          let writes = is_mutator parts in
          List.iter
            (fun (_, a) ->
              match cell_of a with
              | Some (key, loc) -> note_access ~loc key (if writes then Write else Read)
              | None -> this#expression a)
            args
        | _ -> super#expression e
    end
  in
  iter#structure self.str;
  (List.rev !accs, List.rev !urefs)

let build table (units : Symbols.unit_info list) (items : Inventory.item list) =
  let cells = Hashtbl.create 64 in
  List.iter
    (fun (it : Inventory.item) ->
      match it.sort with
      | Inventory.Value -> Hashtbl.replace cells (Inventory.key it) it
      | Inventory.Type -> ())
    items;
  let accs, urefs =
    List.fold_left
      (fun (accs, urefs) u ->
        let a, r = accesses_of_unit table u ~cells in
        (a :: accs, r :: urefs))
      ([], []) units
  in
  (List.concat (List.rev accs), List.concat (List.rev urefs))
