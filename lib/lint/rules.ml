(* The five rules, as a single pass over the Parsetree.

   Everything here is purely syntactic: no typing information is available,
   so each rule is calibrated to be precise on the shapes this codebase
   actually uses (see DESIGN.md "Static invariants"). The escape hatch for a
   deliberate exception is a [(* dr-lint: allow Lx — reason *)] pragma. *)

open Ppxlib

type ctx = {
  in_lib : bool;  (** under lib/: L2 and L3 apply, and L1 in full *)
  in_core_engine : bool;  (** under lib/core or lib/engine: L5 applies *)
  in_net : bool;  (** lib/net: the real socket runtime, exempt from the L1 Unix ban *)
  allow_random : bool;  (** lib/engine/prng.ml: the one seeded PRNG *)
  allow_query : bool;  (** Exec/Problem/Dr_source/Source_server: the Q-metering boundary *)
}

let ctx_of_path path =
  let segs =
    List.filter
      (fun s -> String.length s > 0 && not (String.equal s "."))
      (String.split_on_char '/' path)
  in
  let base = Filename.basename path in
  let mem s = List.exists (String.equal s) segs in
  let in_lib = mem "lib" in
  let in_core_engine = in_lib && (mem "core" || mem "engine") in
  let in_net = in_lib && mem "net" in
  let allow_random = in_lib && mem "engine" && String.equal base "prng.ml" in
  let allow_query =
    (in_lib && mem "source")
    || (in_lib && mem "core"
       && (String.equal base "exec.ml" || String.equal base "problem.ml"))
    || (in_net && String.equal base "source_server.ml")
  in
  { in_lib; in_core_engine; in_net; allow_random; allow_query }

let lib_ctx =
  { in_lib = true; in_core_engine = false; in_net = false; allow_random = false; allow_query = false }
let core_ctx = { lib_ctx with in_core_engine = true }

(* ------------------------------------------------------------------ *)
(* Identifier shapes                                                  *)
(* ------------------------------------------------------------------ *)

let lident_parts txt = try Longident.flatten_exn txt with _ -> []
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let part_eq = List.equal String.equal

let poly_binops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]
let is_poly_binop s = List.exists (String.equal s) poly_binops
let is_minmax s = String.equal s "min" || String.equal s "max"

let l3_prints =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline";
    "prerr_char"; "prerr_int"; "prerr_float"; "prerr_bytes";
  ]

let l5_blocking = [ "read_line"; "read_int"; "read_int_opt"; "read_float"; "read_float_opt" ]
let l5_unix_blocking = [ "sleep"; "sleepf"; "select"; "wait"; "waitpid"; "read"; "write" ]

(* Is this identifier (already Stdlib-stripped) banned here, and why? *)
let check_ident ctx parts : (Finding.rule * string) option =
  match parts with
  | "Random" :: _ when not ctx.allow_random ->
    Some
      ( Finding.L1,
        "ambient Random.* breaks bit-exact replay; use the seeded Dr_engine.Prng \
         (create/split) instead" )
  | [ "Sys"; "time" ] when ctx.in_lib ->
    Some (Finding.L1, "Sys.time reads the wall clock; simulated time must come from the event loop")
  | "Unix" :: rest when ctx.in_core_engine && List.exists (fun b -> part_eq rest [ b ]) l5_unix_blocking
    ->
    Some
      ( Finding.L5,
        "blocking Unix call inside fiber code stalls every simulated peer; fibers must stay \
         compute-only" )
  | "Unix" :: _ when ctx.in_lib && not ctx.in_net ->
    Some
      ( Finding.L1,
        "Unix.* (wall clock, processes, IO) is nondeterministic under replay; keep real-world \
         effects in bin/, bench/ or lib/net (the socket runtime)" )
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] when ctx.in_lib ->
    Some
      ( Finding.L1,
        "Hashtbl.hash is representation-sensitive and truncates deep values; derive keys \
         explicitly" )
  | [ "Hashtbl"; "randomize" ] when ctx.in_lib ->
    Some (Finding.L1, "randomized hashtables iterate in a seed-dependent order; replay needs a fixed order")
  | ([ "Data_source"; ("query" | "query_fn") ] | [ _; "Data_source"; ("query" | "query_fn") ])
    when not ctx.allow_query ->
    Some
      ( Finding.L4,
        "Data_source.query outside Exec/Problem/Dr_source/Source_server bypasses Q metering; \
         use the query function the runtime hands to the protocol" )
  | [ ("exit" | "at_exit") ] when ctx.in_core_engine ->
    Some
      ( Finding.L5,
        "exit tears down the whole simulator from inside a fiber; return a value or raise" )
  | [ ("input_line" | "input_char" | "input_byte") ] when ctx.in_core_engine ->
    Some (Finding.L5, "blocking channel read inside fiber code stalls every simulated peer")
  | [ p ] when ctx.in_core_engine && List.exists (String.equal p) l5_blocking ->
    Some (Finding.L5, "blocking stdin read inside fiber code stalls every simulated peer")
  | [ p ] when ctx.in_lib && List.exists (String.equal p) l3_prints ->
    Some
      ( Finding.L3,
        p ^ " writes straight to the process stdout/stderr; take a Format.formatter parameter \
            (or go through Trace)" )
  | [ "Printf"; ("printf" | "eprintf") ] | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline" | "print_flush" | "open_box" | "close_box") ]
    when ctx.in_lib ->
    Some
      ( Finding.L3,
        "implicit std_formatter output in lib/; take a Format.formatter parameter (or go \
         through Trace)" )
  | [ "Format"; ("std_formatter" | "err_formatter") ] when ctx.in_lib ->
    Some
      ( Finding.L3,
        "Format.std_formatter hard-wires the process stdout; take the formatter as a parameter" )
  | [ ("stdout" | "stderr") ] when ctx.in_lib ->
    Some (Finding.L3, "direct channel use in lib/; take an out_channel or formatter parameter")
  | _ -> None

(* ------------------------------------------------------------------ *)
(* L2 operand shapes                                                  *)
(* ------------------------------------------------------------------ *)

(* Literal-ish: constants and constructors of constants ([], None,
   Some 3, (1, 2), `A). Comparing against these is unambiguous and cheap. *)
let rec literal_like e =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_construct (_, Some a) -> literal_like a
  | Pexp_variant (_, None) -> true
  | Pexp_variant (_, Some a) -> literal_like a
  | Pexp_tuple es -> List.for_all literal_like es
  | _ -> false

let getters =
  [
    [ "Array"; "get" ]; [ "Array"; "unsafe_get" ]; [ "String"; "get" ];
    [ "String"; "unsafe_get" ]; [ "Bytes"; "get" ]; [ "Bytes"; "unsafe_get" ]; [ "!" ];
  ]

(* Path-ish: a variable, field chain, array/ref read — a value that is
   typically scalar and whose comparison the author sees locally. *)
let rec path_like e =
  match e.pexp_desc with
  | Pexp_ident _ -> true
  | Pexp_field (b, _) -> path_like b
  | Pexp_constraint (b, _) -> path_like b
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, b) :: _) ->
    List.exists (part_eq (strip_stdlib (lident_parts txt))) getters && path_like b
  | _ -> false

let complex e = not (literal_like e) && not (path_like e)

let l2_compare_msg =
  "polymorphic compare is type-blind (allocation hazard, NaN-unsound); use Float.compare / \
   Int.compare / a monomorphic compare"

let l2_value_msg op =
  Printf.sprintf
    "polymorphic %s passed as a function; pass the monomorphic equivalent (Int.%s, \
     Float.compare, String.equal, ...)"
    op op

let l2_apply_msg op =
  Printf.sprintf
    "polymorphic %s on two computed operands; compare through the monomorphic equivalent \
     (Int/Float/String.compare or an explicit equal)"
    op

(* ------------------------------------------------------------------ *)
(* The pass                                                           *)
(* ------------------------------------------------------------------ *)

let collect ~ctx ~file (str : structure) : Finding.t list =
  let acc = ref [] in
  let add ~loc rule msg = acc := Finding.make ~file ~loc rule msg :: !acc in
  let check_head ~loc parts =
    match check_ident ctx parts with Some (rule, msg) -> add ~loc rule msg | None -> ()
  in
  (* A compare-family identifier in value position (not the head of an
     application): [Array.sort compare], [fold_left max], [( = )]. *)
  let check_bare ~loc parts =
    if ctx.in_lib then
      match parts with
      | [ "compare" ] -> add ~loc Finding.L2 l2_compare_msg
      | [ op ] when is_poly_binop op || is_minmax op -> add ~loc Finding.L2 (l2_value_msg op)
      | _ -> ()
  in
  let check_hashtbl_create ~loc parts args =
    if ctx.in_lib && part_eq parts [ "Hashtbl"; "create" ] then
      List.iter
        (fun (label, a) ->
          match label with
          | Labelled l when String.equal l "random" -> (
            match a.pexp_desc with
            | Pexp_construct ({ txt = Lident "false"; _ }, None) -> ()
            | _ ->
              add ~loc Finding.L1
                "Hashtbl.create ~random:true iterates in a seed-dependent order; replay needs a \
                 fixed order")
          | _ -> ())
        args
  in
  let check_poly_apply ~loc parts args =
    if ctx.in_lib then
      match parts with
      | [ "compare" ] -> add ~loc Finding.L2 l2_compare_msg
      | [ op ] when is_poly_binop op || is_minmax op -> (
        let operands = List.filter_map (function Nolabel, a -> Some a | _ -> None) args in
        match operands with
        | [ a; b ] -> if complex a && complex b then add ~loc Finding.L2 (l2_apply_msg op)
        | _ -> add ~loc Finding.L2 (l2_value_msg op) (* partial application *))
      | _ -> ()
  in
  let iter =
    object (self)
      inherit Ast_traverse.iter as super

      method! expression e =
        match e.pexp_desc with
        | Pexp_ident { txt; loc } ->
          let parts = strip_stdlib (lident_parts txt) in
          (match check_ident ctx parts with
          | Some (rule, msg) -> add ~loc rule msg
          | None -> check_bare ~loc parts)
        | Pexp_apply (({ pexp_desc = Pexp_ident { txt; loc }; _ } as _f), args) ->
          let parts = strip_stdlib (lident_parts txt) in
          check_head ~loc parts;
          check_hashtbl_create ~loc parts args;
          check_poly_apply ~loc parts args;
          (* Do not visit the head: its banned/poly-op status was just
             classified with the benefit of seeing the operands. *)
          List.iter (fun (_, a) -> self#expression a) args
        | _ -> super#expression e

      method! module_expr m =
        (match m.pmod_desc with
        | Pmod_ident { txt; loc } -> check_head ~loc (strip_stdlib (lident_parts txt))
        | _ -> ());
        super#module_expr m
    end
  in
  iter#structure str;
  List.sort Finding.compare !acc
