(* Suppression pragmas.

   A comment opening with the marker, i.e.

     dr-lint: allow L2 — reason

   wrapped in ordinary comment parens, suppresses findings of that rule on
   the comment's own line and on the next source line. The reason text is
   kept for the summary; pragmas that suppress nothing are reported as
   unused so stale allowances don't accumulate. (The scanner insists on a
   comment opener directly before the marker, so prose that merely mentions
   the syntax — like this block — is not a pragma.) *)

type t = { line : int; rule : Finding.rule; reason : string }

let marker = "dr-lint:"

let is_space c = c = ' ' || c = '\t'

let find_sub ~start hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.equal (String.sub hay i nn) needle then Some i
    else go (i + 1)
  in
  go start

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

(* Does [text.[.. at)] end with a comment opener (modulo spaces)? *)
let opener_before text at =
  let rec back i = if i >= 0 && is_space text.[i] then back (i - 1) else i in
  let i = back (at - 1) in
  i >= 1 && text.[i] = '*' && text.[i - 1] = '('

(* Parse one line; [None] when it carries no (well-formed) pragma. *)
let of_line ~line text =
  match find_sub ~start:0 text marker with
  | None -> None
  | Some at when not (opener_before text at) -> None
  | Some at -> (
    let rest = String.sub text (at + String.length marker) (String.length text - at - String.length marker) in
    let rest = strip rest in
    let verb = "allow" in
    let nr = String.length rest and nv = String.length verb in
    if nr < nv || not (String.equal (String.sub rest 0 nv) verb) then None
    else
      let rest = strip (String.sub rest (String.length verb) (String.length rest - String.length verb)) in
      (* Rule token: up to the first space (or end). *)
      let tok_end = match find_sub ~start:0 rest " " with Some i -> i | None -> String.length rest in
      let tok = String.sub rest 0 tok_end in
      match Finding.rule_of_string tok with
      | None -> None
      | Some rule ->
        let reason = strip (String.sub rest tok_end (String.length rest - tok_end)) in
        (* Drop a leading em-dash / hyphen separator and the comment close. *)
        let reason =
          let drop_prefix p s =
            let ns = String.length s and np = String.length p in
            if ns >= np && String.equal (String.sub s 0 np) p then
              strip (String.sub s np (ns - np))
            else s
          in
          let s = drop_prefix "\xe2\x80\x94" (drop_prefix "--" (drop_prefix "- " reason)) in
          let s = drop_prefix "\xe2\x80\x94" s in
          match find_sub ~start:0 s "*)" with
          | Some i -> strip (String.sub s 0 i)
          | None -> s
        in
        Some { line; rule; reason })

let scan source =
  let lines = String.split_on_char '\n' source in
  let _, acc =
    List.fold_left
      (fun (line, acc) text ->
        match of_line ~line text with
        | Some p -> (line + 1, p :: acc)
        | None -> (line + 1, acc))
      (1, []) lines
  in
  List.rev acc

let covers p (f : Finding.t) =
  (match (p.rule, f.rule) with
  | Finding.L1, Finding.L1
  | Finding.L2, Finding.L2
  | Finding.L3, Finding.L3
  | Finding.L4, Finding.L4
  | Finding.L5, Finding.L5 -> true
  | _ -> false)
  && (f.line = p.line || f.line = p.line + 1)
