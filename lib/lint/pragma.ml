(* Suppression pragmas.

   A comment opening with the marker, i.e.

     dr-lint: allow L2 — reason

   wrapped in ordinary comment parens, suppresses findings of that rule on
   the comment's own line and on the next source line. The reason text is
   kept for the summary; pragmas that suppress nothing are reported as
   unused so stale allowances don't accumulate. (The scanner insists on a
   comment opener directly before the marker, so prose that merely mentions
   the syntax — like this block — is not a pragma.)

   dr_race reuses the same machinery with the marker "dr-race:" for its
   allow pragmas, and with the verb "zone" for inline zone declarations
   (see Zones). *)

type t = { line : int; rule : Finding.rule; reason : string; at_eof : bool }

let lint_marker = "dr-lint:"
let race_marker = "dr-race:"

let is_space c = c = ' ' || c = '\t'

let find_sub ~start hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.equal (String.sub hay i nn) needle then Some i
    else go (i + 1)
  in
  go start

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

(* Does [text.[.. at)] end with a comment opener (modulo spaces)? *)
let opener_before text at =
  let rec back i = if i >= 0 && is_space text.[i] then back (i - 1) else i in
  let i = back (at - 1) in
  i >= 1 && text.[i] = '*' && text.[i - 1] = '('

(* Strip a leading em-dash / hyphen separator and the comment close from a
   reason tail. *)
let clean_reason reason =
  let drop_prefix p s =
    let ns = String.length s and np = String.length p in
    if ns >= np && String.equal (String.sub s 0 np) p then strip (String.sub s np (ns - np))
    else s
  in
  let s = drop_prefix "\xe2\x80\x94" (drop_prefix "--" (drop_prefix "- " reason)) in
  let s = drop_prefix "\xe2\x80\x94" s in
  match find_sub ~start:0 s "*)" with
  | Some i -> strip (String.sub s 0 i)
  | None -> s

(* The payload after [marker verb] on one line; [None] when the line carries
   no well-formed directive. *)
let directive_of_line ~marker ~verb text =
  match find_sub ~start:0 text marker with
  | None -> None
  | Some at when not (opener_before text at) -> None
  | Some at ->
    let rest =
      String.sub text (at + String.length marker) (String.length text - at - String.length marker)
    in
    let rest = strip rest in
    let nr = String.length rest and nv = String.length verb in
    if nr < nv || not (String.equal (String.sub rest 0 nv) verb) then None
    else
      let payload = strip (String.sub rest nv (nr - nv)) in
      (* The comment close is delimiter, not payload. *)
      let payload =
        match find_sub ~start:0 payload "*)" with
        | Some i -> strip (String.sub payload 0 i)
        | None -> payload
      in
      Some payload

(* Parse one line; [None] when it carries no (well-formed) allow pragma. *)
let of_line ~marker ~line text =
  match directive_of_line ~marker ~verb:"allow" text with
  | None -> None
  | Some rest -> (
    (* Rule token: up to the first space (or end). *)
    let tok_end = match find_sub ~start:0 rest " " with Some i -> i | None -> String.length rest in
    let tok = String.sub rest 0 tok_end in
    match Finding.rule_of_string tok with
    | None -> None
    | Some rule ->
      let reason = clean_reason (strip (String.sub rest tok_end (String.length rest - tok_end))) in
      Some { line; rule; reason; at_eof = false })

let fold_lines source f acc =
  let lines = String.split_on_char '\n' source in
  (* A trailing newline yields a phantom empty last element; a pragma can
     never sit on it, but the real last source line must know it is last so
     [covers] doesn't reach past the end of the file. *)
  let total =
    match List.rev lines with "" :: (_ :: _ as rest) -> List.length rest | l -> List.length l
  in
  let _, acc =
    List.fold_left (fun (line, acc) text -> (line + 1, f ~line ~total text acc)) (1, acc) lines
  in
  acc

let scan ?(marker = lint_marker) source =
  List.rev
    (fold_lines source
       (fun ~line ~total text acc ->
         match of_line ~marker ~line text with
         | Some p -> { p with at_eof = line >= total } :: acc
         | None -> acc)
       [])

let directives ~marker ~verb source =
  List.rev
    (fold_lines source
       (fun ~line ~total:_ text acc ->
         match directive_of_line ~marker ~verb text with
         | Some payload -> (line, payload) :: acc
         | None -> acc)
       [])

let covers p (f : Finding.t) =
  Finding.rule_equal p.rule f.rule
  (* A pragma covers its own line and the line directly below — but a pragma
     on the last line of the file has no line below, and must not "cover"
     findings that happen to carry an out-of-range position. *)
  && (f.line = p.line || (f.line = p.line + 1 && not p.at_eof))
