(** The R1-R3 domain-safety rules and the dr_race orchestration: census the
    tree, resolve cross-module accesses, check them against the declared
    zones, and emit the machine-readable inventory. *)

type analysis = {
  units_scanned : int;
  items : Inventory.item list;
  singletons : Inventory.singleton list;
  accesses : Refgraph.access list;
  urefs : Refgraph.uref list;
  decls : Zones.decl list;
  report : Driver.report;
}

val path_under : owner:string -> string -> bool
(** Is [path] inside the [owner] subtree? Separator-normalized; leading
    ["./"]/["../"] segments are ignored so in-tree and out-of-tree
    invocations agree. *)

val singleton_allowed : string -> bool
(** R3's allowed surface: [bin/], [bench/], [lib/stats]. *)

val init_like : string option -> bool
(** Does this enclosing-binding name count as an initialization context for
    init-only cells? [None] (module-init toplevel) always does. *)

val analyze : ?zones_path:string -> string list -> analysis
(** Run the whole analysis over the trees under [roots]. Raises
    {!Driver.Error} on unreadable/unparseable input, a malformed zones
    file, or clashing unit names. *)

val schema_id : string
(** ["dr-race/1"]. *)

val inventory_json : analysis -> string
(** The census as deterministic [dr-race/1] JSON — byte-identical across
    reruns and invocation directories (paths are root-normalized). *)
