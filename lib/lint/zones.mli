(** Domain-safety zone declarations: the [dr-race.zones] file and inline
    [(* dr-race: zone ... *)] pragmas. *)

type zone =
  | Engine_shared  (** accessed only via the Domain_safe wrapper *)
  | Per_domain of string option  (** one instance per domain; optional owner subtree *)
  | Init_only  (** written during setup, read-only afterward (values only) *)

val zone_name : zone -> string
val zone_of_string : string -> zone option

type decl = {
  d_key : string;  (** "Metrics.t", "Bitarray.popcount_byte" *)
  d_sort : Inventory.sort;
  d_zone : zone;
  d_reason : string;
  d_file : string;  (** zones file, or the .ml carrying the pragma *)
  d_line : int;
}

exception Parse_error of string
(** Malformed zones file; carries [path:line: reason]. *)

val parse_file : path:string -> string -> decl list
(** Parse a [dr-race.zones] file ([#] comments and blank lines skipped).
    Raises {!Parse_error}. *)

val of_pragmas : Symbols.unit_info -> Inventory.item list -> decl list * (int * string) list
(** Inline zone pragmas of one unit, matched to the inventory items
    declared on the pragma's line or the line below; the second component
    is the stale pragmas [(line, why)] that matched nothing. *)

val find : decl list -> sort:Inventory.sort -> key:string -> decl option
