(** [(* dr-lint: allow L2 — reason *)] suppression comments, shared with
    dr_race's [(* dr-race: allow R1 — reason *)] and
    [(* dr-race: zone init-only — reason *)] forms. *)

type t = {
  line : int;
  rule : Finding.rule;
  reason : string;
  at_eof : bool;  (** on the last line of the file: no "line below" exists *)
}

val lint_marker : string
(** ["dr-lint:"] — the default marker. *)

val race_marker : string
(** ["dr-race:"] — the marker dr_race pragmas open with. *)

val scan : ?marker:string -> string -> t list
(** All allow pragmas in a source file, in line order. [marker] defaults to
    {!lint_marker}. *)

val directives : marker:string -> verb:string -> string -> (int * string) list
(** All [(line, payload)] directive comments of the form
    [(* <marker> <verb> <payload> *)], payload with separator dashes and the
    comment close stripped — the generic form zone pragmas build on. *)

val covers : t -> Finding.t -> bool
(** Does this pragma suppress this finding? True when the rules match and
    the finding sits on the pragma's line or the line directly below it
    (never past the end of the file). *)
