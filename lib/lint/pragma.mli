(** [(* dr-lint: allow L2 — reason *)] suppression comments. *)

type t = { line : int; rule : Finding.rule; reason : string }

val scan : string -> t list
(** All pragmas in a source file, in line order. *)

val covers : t -> Finding.t -> bool
(** Does this pragma suppress this finding? True when the rules match and
    the finding sits on the pragma's line or the line directly below it. *)
