(* Parse, run the rules, apply pragmas, walk trees. *)

exception Error of string

type file_report = {
  path : string;
  findings : Finding.t list;  (* after pragma suppression, sorted *)
  suppressed : (Finding.t * Pragma.t) list;
  unused_pragmas : Pragma.t list;
}

type report = {
  files : file_report list;
  files_scanned : int;
  total_findings : int;
  total_suppressed : int;
}

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  try Ppxlib.Parse.implementation lexbuf
  with exn ->
    raise (Error (Printf.sprintf "%s: parse error (%s)" path (Printexc.to_string exn)))

let apply_pragmas ~path ~pragmas raw =
  let findings, suppressed =
    List.partition_map
      (fun f ->
        match List.find_opt (fun p -> Pragma.covers p f) pragmas with
        | None -> Either.Left f
        | Some p -> Either.Right (f, p))
      raw
  in
  let unused_pragmas =
    List.filter (fun p -> not (List.exists (fun (_, q) -> q == p) suppressed)) pragmas
  in
  { path; findings = List.sort Finding.compare findings; suppressed; unused_pragmas }

let lint_source ?ctx ~path source =
  let ctx = match ctx with Some c -> c | None -> Rules.ctx_of_path path in
  let str = parse ~path source in
  let raw = Rules.collect ~ctx ~file:path str in
  apply_pragmas ~path ~pragmas:(Pragma.scan source) raw

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> raise (Error e) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?ctx path = lint_source ?ctx ~path (read_file path)

(* ------------------------------------------------------------------ *)
(* Tree walking                                                       *)
(* ------------------------------------------------------------------ *)

let skip_dir name =
  String.equal name "_build"
  || String.equal name "lint_fixtures"
  || String.equal name "race_fixtures"
  || (String.length name > 0 && name.[0] = '.')

let is_ml name =
  Filename.check_suffix name ".ml"
  (* .mli interfaces carry no executable code worth linting *)

let rec walk acc path =
  if Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        if skip_dir name then acc else walk acc (Filename.concat path name))
      acc entries
  else if is_ml path then path :: acc
  else acc

let files_under roots =
  let files =
    List.fold_left
      (fun acc root ->
        if not (Sys.file_exists root) then
          raise (Error (Printf.sprintf "no such file or directory: %s" root))
        else walk acc root)
      [] roots
  in
  (* One global byte-order sort (plus dedup for overlapping roots): the walk
     already visits each directory in sorted order, but reports must be
     byte-identical no matter how roots were spelled or what order the
     filesystem hands entries back in. *)
  List.sort_uniq String.compare files

let lint_paths roots =
  let files = files_under roots in
  let reports = List.map (fun p -> lint_file p) files in
  let files = List.filter (fun r -> r.findings <> [] || r.suppressed <> [] || r.unused_pragmas <> []) reports in
  {
    files;
    files_scanned = List.length reports;
    total_findings = List.fold_left (fun n r -> n + List.length r.findings) 0 files;
    total_suppressed = List.fold_left (fun n r -> n + List.length r.suppressed) 0 files;
  }

let report_of_file_reports reports =
  let files =
    List.filter
      (fun r -> r.findings <> [] || r.suppressed <> [] || r.unused_pragmas <> [])
      (List.sort (fun a b -> String.compare a.path b.path) reports)
  in
  {
    files;
    files_scanned = List.length reports;
    total_findings = List.fold_left (fun n r -> n + List.length r.findings) 0 files;
    total_suppressed = List.fold_left (fun n r -> n + List.length r.suppressed) 0 files;
  }

let pp_report_as ~tool ppf r =
  List.iter
    (fun fr ->
      List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) fr.findings;
      List.iter
        (fun p ->
          Format.fprintf ppf "%s:%d: unused pragma (allow %s) — nothing to suppress@." fr.path
            p.Pragma.line
            (Finding.rule_name p.Pragma.rule))
        fr.unused_pragmas)
    r.files;
  Format.fprintf ppf "%s: %d file%s scanned, %d finding%s, %d suppressed by pragma@." tool
    r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    r.total_findings
    (if r.total_findings = 1 then "" else "s")
    r.total_suppressed

let pp_report ppf r = pp_report_as ~tool:"dr_lint" ppf r

(* Machine-readable findings: one dr-lint/1 JSON object per line (findings
   and unused pragmas only — the summary lives in the exit code). *)
let pp_report_json ppf r =
  List.iter
    (fun fr ->
      List.iter (fun f -> Format.fprintf ppf "%s@." (Finding.to_json f)) fr.findings;
      List.iter
        (fun p ->
          Format.fprintf ppf
            "{\"schema\": \"%s\", \"kind\": \"unused-pragma\", \"file\": \"%s\", \"line\": %d, \
             \"rule\": \"%s\"}@."
            Finding.json_schema
            (Finding.json_escape fr.path)
            p.Pragma.line
            (Finding.rule_name p.Pragma.rule))
        fr.unused_pragmas)
    r.files

let clean r =
  r.total_findings = 0 && List.for_all (fun fr -> fr.unused_pragmas = []) r.files
