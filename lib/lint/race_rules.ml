(* dr_race: the whole-program domain-safety analysis.

   Pipeline: parse every unit (Symbols) -> census mutable state
   (Inventory) -> resolve cross-module accesses (Refgraph) -> load zone
   declarations (Zones) -> apply R1/R2/R3 -> report through the shared
   Finding/Driver machinery, with per-site allow pragmas (the dr-lint
   comment syntax under the dr-race marker) as the escape hatch. *)

type analysis = {
  units_scanned : int;
  items : Inventory.item list;
  singletons : Inventory.singleton list;
  accesses : Refgraph.access list;
  urefs : Refgraph.uref list;
  decls : Zones.decl list;
  report : Driver.report;
}

(* ------------------------------------------------------------------ *)
(* Path zones                                                         *)
(* ------------------------------------------------------------------ *)

let segs_of path =
  List.filter
    (fun s -> String.length s > 0 && not (String.equal s ".") && not (String.equal s ".."))
    (String.split_on_char '/' path)

let path_under ~owner path =
  let rec prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a, y :: b -> String.equal x y && prefix a b
    | _ :: _, [] -> false
  in
  prefix (segs_of owner) (segs_of path)

(* R3's allowed surface: the process-owning layers. bin/ and bench/ are
   single-shot CLI mains; lib/stats carries the documented default print
   sink (Table.print ?ppf). *)
let singleton_allowed path =
  let segs = segs_of path in
  let mem s = List.exists (String.equal s) segs in
  mem "bin" || mem "bench" || (mem "lib" && mem "stats")

(* Init contexts for init-only cells: module initialization itself, plus
   functions whose name says they run during setup. *)
let init_like = function
  | None -> true
  | Some fn ->
    let prefixes = [ "init"; "create"; "make"; "setup"; "of_" ] in
    List.exists
      (fun p ->
        let np = String.length p in
        String.length fn >= np && String.equal (String.sub fn 0 np) p)
      prefixes

(* Constructor-shaped idents, for the per-domain construction-confinement
   check on types. *)
let constructor_like name =
  List.exists (String.equal name) [ "empty"; "copy"; "load" ] || init_like (Some name)

(* ------------------------------------------------------------------ *)
(* The rules                                                          *)
(* ------------------------------------------------------------------ *)

let wrapper_unit = "Domain_safe"

let r1_findings ~zones_path items decls pragma_stale =
  let undeclared =
    List.filter_map
      (fun (it : Inventory.item) ->
        if not it.escaping then None
        else
          match Zones.find decls ~sort:it.sort ~key:(Inventory.key it) with
          | Some _ -> None
          | None ->
            Some
              (Finding.at ~file:it.path ~line:it.line ~col:it.col Finding.R1
                 (Printf.sprintf
                    "escaping mutable %s `%s` (%s) has no domain zone; declare it in %s or with \
                     an inline zone pragma"
                    (Inventory.sort_name it.sort) (Inventory.key it)
                    (Inventory.kind_name it.kind)
                    (match zones_path with Some p -> p | None -> "dr-race.zones"))))
      items
  in
  let stale =
    List.filter_map
      (fun (d : Zones.decl) ->
        let matches =
          List.exists
            (fun (it : Inventory.item) ->
              String.equal (Inventory.key it) d.Zones.d_key
              && (match (it.sort, d.Zones.d_sort) with
                 | Inventory.Value, Inventory.Value | Inventory.Type, Inventory.Type -> true
                 | _ -> false))
            items
        in
        if matches then None
        else
          Some
            (Finding.at ~file:d.Zones.d_file ~line:d.Zones.d_line ~col:0 Finding.R1
               (Printf.sprintf "stale zone declaration: census has no %s named %s"
                  (Inventory.sort_name d.Zones.d_sort)
                  d.Zones.d_key)))
      decls
  in
  let dups =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun (d : Zones.decl) ->
        let k = Inventory.sort_name d.Zones.d_sort ^ " " ^ d.Zones.d_key in
        match Hashtbl.find_opt seen k with
        | Some (file0, line0) ->
          Some
            (Finding.at ~file:d.Zones.d_file ~line:d.Zones.d_line ~col:0 Finding.R1
               (Printf.sprintf "duplicate zone declaration for %s (first at %s:%d)" d.Zones.d_key
                  file0 line0))
        | None ->
          Hashtbl.add seen k (d.Zones.d_file, d.Zones.d_line);
          None)
      decls
  in
  let stale_pragmas =
    List.map
      (fun (path, line, why) -> Finding.at ~file:path ~line ~col:0 Finding.R1 why)
      pragma_stale
  in
  undeclared @ stale @ dups @ stale_pragmas

let r2_findings items decls accesses urefs =
  let item_by_key sort key =
    List.find_opt
      (fun (it : Inventory.item) ->
        String.equal (Inventory.key it) key
        && (match (it.sort, sort) with
           | Inventory.Value, Inventory.Value | Inventory.Type, Inventory.Type -> true
           | _ -> false))
      items
  in
  let value_findings =
    List.filter_map
      (fun (a : Refgraph.access) ->
        match item_by_key Inventory.Value a.Refgraph.a_key with
        | None -> None
        | Some cell -> (
          match Zones.find decls ~sort:Inventory.Value ~key:a.Refgraph.a_key with
          | None -> None  (* undeclared: R1's business *)
          | Some { Zones.d_zone = Zones.Engine_shared; _ } ->
            if
              Inventory.guarded cell.Inventory.kind
              || String.equal a.Refgraph.a_unit cell.Inventory.unit_name
              || String.equal a.Refgraph.a_unit wrapper_unit
            then None
            else
              Some
                (Finding.at ~file:a.Refgraph.a_path ~line:a.Refgraph.a_line ~col:a.Refgraph.a_col
                   Finding.R2
                   (Printf.sprintf
                      "engine-shared cell %s accessed directly from %s; go through the \
                       Domain_safe wrapper"
                      a.Refgraph.a_key a.Refgraph.a_unit))
          | Some { Zones.d_zone = Zones.Per_domain (Some owner); _ } ->
            if path_under ~owner a.Refgraph.a_path then None
            else
              Some
                (Finding.at ~file:a.Refgraph.a_path ~line:a.Refgraph.a_line ~col:a.Refgraph.a_col
                   Finding.R2
                   (Printf.sprintf "per-domain cell %s (owner %s) referenced from %s"
                      a.Refgraph.a_key owner a.Refgraph.a_path))
          | Some { Zones.d_zone = Zones.Per_domain None; _ } -> None
          | Some { Zones.d_zone = Zones.Init_only; _ } ->
            if
              (match a.Refgraph.a_kind with Refgraph.Write -> false | Refgraph.Read -> true)
              || (not a.Refgraph.a_in_fun)
              || init_like a.Refgraph.a_fn
            then None
            else
              Some
                (Finding.at ~file:a.Refgraph.a_path ~line:a.Refgraph.a_line ~col:a.Refgraph.a_col
                   Finding.R2
                   (Printf.sprintf "init-only cell %s written after initialization (in %s)"
                      a.Refgraph.a_key
                      (match a.Refgraph.a_fn with Some f -> f | None -> "?")))))
      accesses
  in
  (* Construction confinement for per-domain types with an owner subtree:
     only the owner may build instances. *)
  let type_findings =
    List.filter_map
      (fun (d : Zones.decl) ->
        match (d.Zones.d_sort, d.Zones.d_zone) with
        | Inventory.Type, Zones.Per_domain (Some owner) -> (
          match item_by_key Inventory.Type d.Zones.d_key with
          | None -> None
          | Some it ->
            Some
              (List.filter_map
                 (fun (r : Refgraph.uref) ->
                   if
                     String.equal r.Refgraph.r_unit it.Inventory.unit_name
                     && constructor_like r.Refgraph.r_ident
                     && not (path_under ~owner r.Refgraph.r_path)
                   then
                     Some
                       (Finding.at ~file:r.Refgraph.r_path ~line:r.Refgraph.r_line
                          ~col:r.Refgraph.r_col Finding.R2
                          (Printf.sprintf
                             "per-domain type %s (owner %s) constructed outside its subtree (%s.%s)"
                             d.Zones.d_key owner r.Refgraph.r_unit r.Refgraph.r_ident))
                   else None)
                 urefs))
        | _ -> None)
      decls
  in
  value_findings @ List.concat type_findings

let r3_findings singletons =
  List.filter_map
    (fun (s : Inventory.singleton) ->
      if singleton_allowed s.Inventory.s_path then None
      else
        Some
          (Finding.at ~file:s.Inventory.s_path ~line:s.Inventory.s_line ~col:s.Inventory.s_col
             Finding.R3
             (Printf.sprintf
                "domain-unsafe stdlib singleton %s: two domains would race on its shared state; \
                 confine to bin//bench//lib/stats or take an explicit parameter"
                s.Inventory.s_ident)))
    singletons

(* ------------------------------------------------------------------ *)
(* Orchestration                                                      *)
(* ------------------------------------------------------------------ *)

let analyze ?zones_path roots =
  let files = Driver.files_under roots in
  let units =
    List.map (fun p -> Symbols.load ~parse:Driver.parse ~read:Driver.read_file p) files
  in
  let table =
    try Symbols.table units with Symbols.Clash msg -> raise (Driver.Error msg)
  in
  let items = List.sort Inventory.compare_item (List.concat_map Inventory.of_unit units) in
  let singletons =
    List.sort Inventory.compare_singleton (List.concat_map Inventory.singletons_of_unit units)
  in
  let file_decls =
    match zones_path with
    | None -> []
    | Some p -> (
      if not (Sys.file_exists p) then raise (Driver.Error (Printf.sprintf "zones file not found: %s" p));
      try Zones.parse_file ~path:p (Driver.read_file p)
      with Zones.Parse_error msg -> raise (Driver.Error msg))
  in
  let pragma_decls, pragma_stale =
    List.fold_left
      (fun (ds, stale) u ->
        let d, s = Zones.of_pragmas u items in
        (d :: ds, List.map (fun (line, why) -> (u.Symbols.path, line, why)) s :: stale))
      ([], []) units
  in
  let decls = file_decls @ List.concat (List.rev pragma_decls) in
  let pragma_stale = List.concat (List.rev pragma_stale) in
  let accesses, urefs = Refgraph.build table units items in
  let raw =
    r1_findings ~zones_path items decls pragma_stale
    @ r2_findings items decls accesses urefs
    @ r3_findings singletons
  in
  (* Group findings per file and apply (* dr-race: allow Rx *) pragmas; the
     zones file (not a .ml) gets a pragma-less report. *)
  let by_file = Hashtbl.create 32 in
  List.iter
    (fun (f : Finding.t) ->
      let cur = match Hashtbl.find_opt by_file f.Finding.file with Some l -> l | None -> [] in
      Hashtbl.replace by_file f.Finding.file (f :: cur))
    raw;
  let unit_reports =
    List.map
      (fun (u : Symbols.unit_info) ->
        let findings =
          match Hashtbl.find_opt by_file u.Symbols.path with
          | Some l ->
            Hashtbl.remove by_file u.Symbols.path;
            l
          | None -> []
        in
        let pragmas = Pragma.scan ~marker:Pragma.race_marker u.Symbols.source in
        Driver.apply_pragmas ~path:u.Symbols.path ~pragmas findings)
      units
  in
  let other_reports =
    Hashtbl.fold
      (fun path findings acc -> Driver.apply_pragmas ~path ~pragmas:[] findings :: acc)
      by_file []
  in
  let report = Driver.report_of_file_reports (unit_reports @ other_reports) in
  let report = { report with Driver.files_scanned = List.length units } in
  { units_scanned = List.length units; items; singletons; accesses; urefs; decls; report }

(* ------------------------------------------------------------------ *)
(* The machine-readable census (schema dr-race/1)                     *)
(* ------------------------------------------------------------------ *)

let schema_id = "dr-race/1"

(* Paths relative to the repo root regardless of where the scan ran from
   ("../lib/x.ml" and "lib/x.ml" serialize identically). *)
let norm_path path = String.concat "/" (segs_of path)

let inventory_json a =
  let b = Buffer.create 4096 in
  let esc = Finding.json_escape in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"%s\",\n" schema_id);
  Buffer.add_string b (Printf.sprintf "  \"units\": %d,\n" a.units_scanned);
  let emit_items label sort =
    Buffer.add_string b (Printf.sprintf "  \"%s\": [" label);
    let first = ref true in
    List.iter
      (fun (it : Inventory.item) ->
        let same =
          match (it.sort, sort) with
          | Inventory.Value, Inventory.Value | Inventory.Type, Inventory.Type -> true
          | _ -> false
        in
        if same then begin
          if not !first then Buffer.add_char b ',';
          first := false;
          let zone =
            match Zones.find a.decls ~sort ~key:(Inventory.key it) with
            | Some d -> Printf.sprintf "\"%s\"" (esc (Zones.zone_name d.Zones.d_zone))
            | None -> "null"
          in
          Buffer.add_string b
            (Printf.sprintf
               "\n    { \"key\": \"%s\", \"kind\": \"%s\", \"file\": \"%s\", \"line\": %d, \
                \"col\": %d, \"escaping\": %b, \"guarded\": %b, \"zone\": %s }"
               (esc (Inventory.key it))
               (Inventory.kind_name it.kind)
               (esc (norm_path it.path))
               it.line it.col it.escaping
               (Inventory.guarded it.kind)
               zone)
        end)
      a.items;
    Buffer.add_string b "\n  ],\n"
  in
  emit_items "values" Inventory.Value;
  emit_items "types" Inventory.Type;
  Buffer.add_string b "  \"singletons\": [";
  let first = ref true in
  List.iter
    (fun (s : Inventory.singleton) ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b
        (Printf.sprintf "\n    { \"ident\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d }"
           (esc s.Inventory.s_ident)
           (esc (norm_path s.Inventory.s_path))
           s.Inventory.s_line s.Inventory.s_col))
    a.singletons;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
