(** The five static rules (L1–L5) as one Parsetree pass. *)

type ctx = {
  in_lib : bool;  (** under lib/: L2 and L3 apply, and L1 in full *)
  in_core_engine : bool;  (** under lib/core or lib/engine: L5 applies *)
  in_net : bool;  (** lib/net: the real socket runtime, exempt from the L1 Unix ban *)
  allow_random : bool;  (** lib/engine/prng.ml: the one seeded PRNG *)
  allow_query : bool;  (** Exec/Problem/Dr_source/Source_server: the Q-metering boundary *)
}

val ctx_of_path : string -> ctx
(** Derive the rule context from a path ("lib/stats/table.ml", absolute
    paths and [..] segments included). *)

val lib_ctx : ctx
(** Plain lib/ context (for fixtures). *)

val core_ctx : ctx
(** lib/core-style context: everything in [lib_ctx] plus L5. *)

val collect : ctx:ctx -> file:string -> Ppxlib.structure -> Finding.t list
(** All findings, sorted by position. Pragmas are applied by {!Driver}. *)
