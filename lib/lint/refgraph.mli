(** The cross-module reference graph: which units read/write each
    inventoried module-level cell, and which units reference which other
    units — the evidence base for the R2 cross-zone checks. *)

type access_kind = Read | Write

val access_kind_name : access_kind -> string

type access = {
  a_key : string;  (** {!Inventory.key} of the cell *)
  a_unit : string;  (** accessing unit *)
  a_path : string;
  a_line : int;
  a_col : int;
  a_kind : access_kind;
  a_fn : string option;  (** enclosing module-level binding; [None] = toplevel eval *)
  a_in_fun : bool;  (** under a lambda: runs post-init, not at module init *)
}

type uref = {
  r_unit : string;  (** referenced unit *)
  r_ident : string;  (** first ident inside it, [""] for a bare module reference *)
  r_from : string;  (** referencing unit *)
  r_path : string;
  r_line : int;
  r_col : int;
}

val is_mutator : string list -> bool
(** Is this (Stdlib-stripped) head a known in-place mutator
    ([:=], [Hashtbl.replace], [Buffer.add_string], ...)? *)

val build :
  Symbols.table ->
  Symbols.unit_info list ->
  Inventory.item list ->
  access list * uref list
(** All cell accesses and cross-unit references, in deterministic
    (unit-order, then source-order) sequence. *)
