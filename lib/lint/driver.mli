(** Run the rules over sources, files, and trees. *)

exception Error of string
(** IO or parse failure; carries [path: reason]. *)

type file_report = {
  path : string;
  findings : Finding.t list;  (** after pragma suppression, sorted *)
  suppressed : (Finding.t * Pragma.t) list;
  unused_pragmas : Pragma.t list;
}

type report = {
  files : file_report list;  (** only files with findings/pragma activity *)
  files_scanned : int;
  total_findings : int;
  total_suppressed : int;
}

val lint_source : ?ctx:Rules.ctx -> path:string -> string -> file_report
(** Lint in-memory source. [ctx] defaults to [Rules.ctx_of_path path]. *)

val lint_file : ?ctx:Rules.ctx -> string -> file_report

val lint_paths : string list -> report
(** Walk directories (skipping [_build], dotdirs, and [lint_fixtures]),
    lint every [.ml], context derived per file from its path. *)

val pp_report : Format.formatter -> report -> unit
(** Findings as [file:line:col [RULE] message] lines plus a summary. *)

val clean : report -> bool
(** No findings and no unused pragmas. *)
