(** Run the rules over sources, files, and trees. *)

exception Error of string
(** IO or parse failure; carries [path: reason]. *)

type file_report = {
  path : string;
  findings : Finding.t list;  (** after pragma suppression, sorted *)
  suppressed : (Finding.t * Pragma.t) list;
  unused_pragmas : Pragma.t list;
}

type report = {
  files : file_report list;  (** only files with findings/pragma activity *)
  files_scanned : int;
  total_findings : int;
  total_suppressed : int;
}

val parse : path:string -> string -> Ppxlib.structure
(** Parse source into a Parsetree; raises {!Error} with the path on failure. *)

val read_file : string -> string
(** Whole-file read; raises {!Error} on IO failure. *)

val apply_pragmas : path:string -> pragmas:Pragma.t list -> Finding.t list -> file_report
(** Partition raw findings into kept/suppressed under the given pragmas,
    reporting pragmas that suppressed nothing — the shared second half of
    both the lint and race pipelines. *)

val lint_source : ?ctx:Rules.ctx -> path:string -> string -> file_report
(** Lint in-memory source. [ctx] defaults to [Rules.ctx_of_path path]. *)

val lint_file : ?ctx:Rules.ctx -> string -> file_report

val files_under : string list -> string list
(** Every [.ml] under the roots (skipping [_build], dotdirs, and fixture
    directories), globally sorted by byte order and deduplicated — the
    walk order is part of the report format, byte-identical across
    filesystems. *)

val lint_paths : string list -> report
(** Walk directories, lint every [.ml], context derived per file from its
    path. *)

val report_of_file_reports : file_report list -> report
(** Assemble per-file reports (e.g. from the race pipeline) into a report,
    sorted by path. *)

val pp_report : Format.formatter -> report -> unit
(** Findings as [file:line:col [RULE] message] lines plus a summary. *)

val pp_report_as : tool:string -> Format.formatter -> report -> unit
(** Same, with the summary line naming the given tool (dr_lint / dr_race). *)

val pp_report_json : Format.formatter -> report -> unit
(** Findings and unused pragmas as dr-lint/1 JSON lines, no summary. *)

val clean : report -> bool
(** No findings and no unused pragmas. *)
