(** Per-compilation-unit symbol information and name-based longident
    resolution — the lightweight (typer-free) substrate the whole-program
    race analysis runs on. *)

type unit_info = {
  path : string;  (** as given on the command line *)
  name : string;  (** "Metrics" for lib/engine/metrics.ml *)
  source : string;
  str : Ppxlib.structure;
  intf : Ppxlib.signature option;  (** the parsed .mli, when one exists *)
  aliases : (string * string list) list;
      (** top-level [module M = Some.Path] aliases, expanded during resolution *)
  submodules : string list;  (** top-level [module M = struct .. end] names *)
}

val module_name_of_path : string -> string
(** ["lib/engine/metrics.ml"] → ["Metrics"]. *)

val load :
  parse:(path:string -> string -> Ppxlib.structure) ->
  read:(string -> string) ->
  string ->
  unit_info
(** Parse one unit (and its [.mli] sibling if present). [parse]/[read] are
    passed in so this module stays independent of {!Driver}. *)

type table

exception Clash of string
(** Two units share a name: name-based resolution would be ambiguous. *)

val table : unit_info list -> table
val find : table -> string -> unit_info option

val resolve : table -> self:unit_info -> string list -> (string * string list) option
(** Resolve flattened longident parts to [(unit name, path inside unit)].
    Skips [Stdlib] and [Dr_*] library wrappers, expands [self]'s module
    aliases one step, maps bare idents to [self]'s own top level, and
    recognizes [self]'s nested modules. [None] for idents that belong to no
    known unit (locals, stdlib, external libraries). *)
