(** The mutable-state inventory: a syntactic census of module-level mutable
    values, mutable type declarations, and domain-unsafe stdlib singleton
    uses. The census is what the domain-sharding refactor partitions; the
    R1-R3 rules in {!Race_rules} enforce discipline over it. *)

type kind =
  | Ref
  | Hashtbl_t
  | Queue_t
  | Stack_t
  | Buffer_t
  | Array_t
  | Bytes_t
  | Mutable_record
  | Atomic_t
  | Mutex_t

val kind_name : kind -> string

val guarded : kind -> bool
(** Atomic/Mutex-bearing state: already domain-safe by construction. *)

type sort = Value | Type

val sort_name : sort -> string

type item = {
  unit_name : string;
  path : string;
  modpath : string list;  (** nested module path inside the unit *)
  ident : string;
  sort : sort;
  kind : kind;
  line : int;
  col : int;
  escaping : bool;  (** exported through the .mli (or no .mli exists) *)
}

val key : item -> string
(** ["Metrics.t"], ["Net_transport.Mailbox.t"], ["Bitarray.popcount_byte"] —
    the name zone declarations bind to. *)

val compare_item : item -> item -> int
val of_unit : Symbols.unit_info -> item list

type singleton = { s_path : string; s_ident : string; s_line : int; s_col : int }

val compare_singleton : singleton -> singleton -> int

val singleton_of_parts : string list -> string option
(** The domain-unsafe stdlib singleton a (Stdlib-stripped) longident
    touches, if any: [Format.std_formatter], default [Random] state, the
    implicit stdout/stderr channels. *)

val singletons_of_unit : Symbols.unit_info -> singleton list
