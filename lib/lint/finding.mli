(** Lint findings and the rule taxonomy (see DESIGN.md "Static invariants"). *)

type rule = L1 | L2 | L3 | L4 | L5

val rule_name : rule -> string
val rule_of_string : string -> rule option

val rule_doc : rule -> string
(** One-line statement of the invariant the rule machine-checks. *)

type t = { file : string; line : int; col : int; rule : rule; msg : string }

val make : file:string -> loc:Ppxlib.Location.t -> rule -> string -> t
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** [file:line:col [RULE] message] — the CLI output format. *)

val pp_short : Format.formatter -> t -> unit
(** [basename:line [RULE]] — the stable form golden tests compare against. *)

val to_short : t -> string
