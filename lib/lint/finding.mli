(** Lint findings and the rule taxonomy (see DESIGN.md "Static invariants"
    for L1-L5 and "Domain-safety zones" for R1-R3). *)

type rule = L1 | L2 | L3 | L4 | L5 | R1 | R2 | R3

val rule_name : rule -> string
val rule_of_string : string -> rule option
val rule_equal : rule -> rule -> bool

val rule_doc : rule -> string
(** One-line statement of the invariant the rule machine-checks. *)

val lint_rules : rule list
(** L1-L5: the per-file dr_lint rules. *)

val race_rules : rule list
(** R1-R3: the whole-program dr_race rules. *)

type t = { file : string; line : int; col : int; rule : rule; msg : string }

val make : file:string -> loc:Ppxlib.Location.t -> rule -> string -> t

val at : file:string -> line:int -> col:int -> rule -> string -> t
(** Build a finding from an explicit position — used by the whole-program
    race rules whose sites aren't always inside a parsed AST (e.g. stale
    declarations in the zones file itself). *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** [file:line:col [RULE] message] — the CLI output format. *)

val pp_short : Format.formatter -> t -> unit
(** [basename:line [RULE]] — the stable form golden tests compare against. *)

val to_short : t -> string

val json_schema : string
(** ["dr-lint/1"] — the schema tag stamped on every JSON finding line. *)

val json_escape : string -> string
(** JSON string-body escaping shared by the machine-readable emitters. *)

val to_json : t -> string
(** One self-contained JSON object (single line, schema [dr-lint/1]). *)
