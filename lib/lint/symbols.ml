(* A lightweight whole-program symbol table: one entry per compilation unit,
   no typer. Longident resolution is name-based — good enough because unit
   names are unique across this repo's libraries (checked at table build) —
   with [open]s and module aliases tracked per unit so both
   [Dr_engine.Metrics.bump] and a bare [Metrics.bump] under
   [open Dr_engine] resolve to the [Metrics] unit. *)

open Ppxlib

type unit_info = {
  path : string;  (* as given on the command line *)
  name : string;  (* "Metrics" for lib/engine/metrics.ml *)
  source : string;
  str : structure;
  intf : signature option;  (* the parsed .mli, when one exists *)
  aliases : (string * string list) list;  (* module M = Some.Path at unit top level *)
  submodules : string list;  (* top-level [module M = struct .. end] names *)
}

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let parse_intf ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  Ppxlib.Parse.interface lexbuf

let lident_parts txt = try Longident.flatten_exn txt with _ -> []

(* Top-level [module M = Longident] aliases (used to chase e.g.
   [module D = Dr_engine.Domain_safe] before resolving [D.Counter.incr]). *)
let aliases_of str =
  List.filter_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> Some (m, lident_parts txt)
        | _ -> None)
      | _ -> None)
    str

let submodules_of str =
  List.filter_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with Pmod_structure _ -> Some m | _ -> None)
      | _ -> None)
    str

let load ~parse ~read path =
  let source = read path in
  let str = parse ~path source in
  let mli = path ^ "i" in
  let intf =
    if Sys.file_exists mli then
      try Some (parse_intf ~path:mli (read mli)) with _ -> None
    else None
  in
  {
    path;
    name = module_name_of_path path;
    source;
    str;
    intf;
    aliases = aliases_of str;
    submodules = submodules_of str;
  }

(* ------------------------------------------------------------------ *)
(* Resolution                                                         *)
(* ------------------------------------------------------------------ *)

type table = { units : (string, unit_info) Hashtbl.t }

exception Clash of string

let table units =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun u ->
      match Hashtbl.find_opt tbl u.name with
      | Some other when not (String.equal other.path u.path) ->
        raise
          (Clash
             (Printf.sprintf
                "two compilation units named %s (%s, %s): name-based resolution would be \
                 ambiguous"
                u.name other.path u.path))
      | _ -> Hashtbl.replace tbl u.name u)
    units;
  { units = tbl }

let find t name = Hashtbl.find_opt t.units name

(* A library wrapper module (Dr_engine, Dr_core, ...): a path segment that
   merely namespaces the units of one dune library. *)
let is_wrapper part =
  String.length part > 3 && String.equal (String.sub part 0 3) "Dr_"

(* Resolve a longident path to (unit, path-inside-unit). Leading [Stdlib]
   and library wrappers are skipped; unit-local aliases are expanded one
   step. [self] is the unit the reference occurs in, so bare idents resolve
   to the unit's own top level. *)
let resolve t ~self parts =
  let expand parts =
    match parts with
    | head :: rest -> (
      match List.assoc_opt head self.aliases with
      | Some target -> target @ rest
      | None -> parts)
    | [] -> parts
  in
  let rec skip = function
    | "Stdlib" :: rest -> skip rest
    | part :: rest when is_wrapper part -> skip rest
    | parts -> parts
  in
  match skip (expand parts) with
  | head :: rest when Hashtbl.mem t.units head -> Some (head, rest)
  | [ _ ] as bare -> Some (self.name, bare)  (* unqualified: the unit's own scope *)
  | head :: _ as parts when List.exists (String.equal head) self.submodules ->
    Some (self.name, parts)  (* into one of the unit's own nested modules *)
  | _ -> None
