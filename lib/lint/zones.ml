(* Domain-safety zone declarations.

   The checked-in [dr-race.zones] file assigns every escaping mutable
   cell/type in the census to one of three zones:

     engine-shared   accessed only via the Domain_safe wrapper (Atomic /
                     Mutex guarded); the only state that may cross domains
     per-domain      one instance per domain; with an owner subtree
                     ([per-domain:lib/check]) the cell may only be
                     referenced from under that subtree
     init-only       written during setup, read-only afterward (values
                     only: verified by the write-reachability check)

   One declaration per line:

     value Bitarray.popcount_byte init-only -- precomputed byte table
     type  Metrics.t per-domain -- each domain owns its counter block
     type  Coverage.t per-domain:lib/check -- campaign-local maps

   A declaration can live inline instead, as a zone pragma directly above
   (or on) the declaring line — the dr-lint comment machinery under the
   dr-race marker, with [zone <zone> — reason] as the directive body. *)

type zone = Engine_shared | Per_domain of string option | Init_only

let zone_name = function
  | Engine_shared -> "engine-shared"
  | Per_domain None -> "per-domain"
  | Per_domain (Some owner) -> "per-domain:" ^ owner
  | Init_only -> "init-only"

let zone_of_string s =
  match s with
  | "engine-shared" -> Some Engine_shared
  | "per-domain" -> Some (Per_domain None)
  | "init-only" -> Some Init_only
  | _ ->
    let prefix = "per-domain:" in
    let np = String.length prefix in
    if String.length s > np && String.equal (String.sub s 0 np) prefix then
      Some (Per_domain (Some (String.sub s np (String.length s - np))))
    else None

type decl = {
  d_key : string;  (* "Metrics.t", "Bitarray.popcount_byte" *)
  d_sort : Inventory.sort;
  d_zone : zone;
  d_reason : string;
  d_file : string;  (* zones file, or the .ml carrying the pragma *)
  d_line : int;
}

(* ------------------------------------------------------------------ *)
(* The zones file                                                     *)
(* ------------------------------------------------------------------ *)

let split_words line =
  List.filter (fun s -> String.length s > 0) (String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line))

(* "value Key zone -- reason": words before the reason separator, then the
   free-text reason. *)
let split_reason line =
  let seps = [ " -- "; " \xe2\x80\x94 " ] in
  let rec find = function
    | [] -> (line, "")
    | sep :: rest -> (
      let nl = String.length line and ns = String.length sep in
      let rec go i =
        if i + ns > nl then None
        else if String.equal (String.sub line i ns) sep then Some i
        else go (i + 1)
      in
      match go 0 with
      | Some i -> (String.sub line 0 i, String.trim (String.sub line (i + ns) (nl - i - ns)))
      | None -> find rest)
  in
  find seps

exception Parse_error of string

let parse_file ~path content =
  let decls = ref [] in
  let fail line msg = raise (Parse_error (Printf.sprintf "%s:%d: %s" path line msg)) in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let body, reason = split_reason line in
      let body = String.trim body in
      if String.length body = 0 || body.[0] = '#' then ()
      else
        match split_words body with
        | [ sort_s; key; zone_s ] -> (
          let sort =
            match sort_s with
            | "value" -> Inventory.Value
            | "type" -> Inventory.Type
            | s -> fail lineno (Printf.sprintf "unknown sort %S (want value|type)" s)
          in
          match zone_of_string zone_s with
          | None ->
            fail lineno
              (Printf.sprintf "unknown zone %S (want engine-shared | per-domain[:subtree] | init-only)"
                 zone_s)
          | Some Init_only when (match sort with Inventory.Type -> true | Inventory.Value -> false) ->
            fail lineno "init-only applies to values (a type's instances have no single init window)"
          | Some zone ->
            decls :=
              { d_key = key; d_sort = sort; d_zone = zone; d_reason = reason; d_file = path; d_line = lineno }
              :: !decls)
        | _ -> fail lineno "want: <value|type> <Module.ident> <zone> [-- reason]")
    (String.split_on_char '\n' content);
  List.rev !decls

(* ------------------------------------------------------------------ *)
(* Inline zone pragmas                                                *)
(* ------------------------------------------------------------------ *)

(* An inline zone directive directly above (or on) the line of an
   inventoried declaration. Returns the matched declarations plus the
   pragma lines that matched nothing (stale — reported like unused
   pragmas). *)
let of_pragmas (u : Symbols.unit_info) (items : Inventory.item list) =
  let directives = Pragma.directives ~marker:Pragma.race_marker ~verb:"zone" u.source in
  let decls = ref [] and stale = ref [] in
  List.iter
    (fun (line, payload) ->
      let zone_s, reason =
        match String.index_opt payload ' ' with
        | Some i ->
          ( String.sub payload 0 i,
            String.trim (String.sub payload (i + 1) (String.length payload - i - 1)) )
        | None -> (payload, "")
      in
      let reason =
        (* payload already has the comment close stripped; drop a leading
           dash separator from the reason *)
        let r = reason in
        let drop p s =
          let np = String.length p and ns = String.length s in
          if ns >= np && String.equal (String.sub s 0 np) p then
            String.trim (String.sub s np (ns - np))
          else s
        in
        drop "\xe2\x80\x94" (drop "--" (drop "- " r))
      in
      match zone_of_string zone_s with
      | None -> stale := (line, Printf.sprintf "unknown zone %S" zone_s) :: !stale
      | Some zone -> (
        let covered =
          List.filter
            (fun (it : Inventory.item) ->
              String.equal it.path u.path && (it.line = line || it.line = line + 1))
            items
        in
        match covered with
        | [] -> stale := (line, "zone pragma covers no mutable declaration") :: !stale
        | covered ->
          List.iter
            (fun (it : Inventory.item) ->
              match (zone, it.sort) with
              | Init_only, Inventory.Type ->
                stale := (line, "init-only applies to values") :: !stale
              | _ ->
                decls :=
                  {
                    d_key = Inventory.key it;
                    d_sort = it.sort;
                    d_zone = zone;
                    d_reason = reason;
                    d_file = u.path;
                    d_line = line;
                  }
                  :: !decls)
            covered))
    directives;
  (List.rev !decls, List.rev !stale)

let find decls ~sort ~key =
  List.find_opt
    (fun d ->
      String.equal d.d_key key
      && (match (d.d_sort, sort) with
         | Inventory.Value, Inventory.Value | Inventory.Type, Inventory.Type -> true
         | _ -> false))
    decls
