(* The mutable-state inventory: a purely syntactic census of every
   module-level mutable value, every mutable type declaration, and every
   domain-unsafe stdlib singleton use in a compilation unit.

   Module-level values are [let]-bound cells at structure level (including
   nested [module M = struct .. end], excluding functor bodies — functor
   state is per-application). A binding counts when its right-hand side
   visibly constructs mutable storage ([ref e], [Hashtbl.create], [[| .. |]],
   ...), directly or under a [let]-chain whose result is a closure (the
   memo-table idiom: the closure captures the cell, so the cell is still
   module-level state).

   Type declarations count when they have a [mutable] field or mention a
   mutable constructor ([array], [Hashtbl.t], [ref], ...) anywhere in their
   definition: instances are exactly the state the domain-sharding refactor
   must partition, so they belong in the census even though each value is
   caller-owned. *)

open Ppxlib

type kind =
  | Ref
  | Hashtbl_t
  | Queue_t
  | Stack_t
  | Buffer_t
  | Array_t
  | Bytes_t
  | Mutable_record
  | Atomic_t
  | Mutex_t

let kind_name = function
  | Ref -> "ref"
  | Hashtbl_t -> "hashtbl"
  | Queue_t -> "queue"
  | Stack_t -> "stack"
  | Buffer_t -> "buffer"
  | Array_t -> "array"
  | Bytes_t -> "bytes"
  | Mutable_record -> "mutable-record"
  | Atomic_t -> "atomic"
  | Mutex_t -> "mutex"

(* Atomic/Mutex-bearing state is already guarded; it still must be zoned
   (engine-shared, normally), but R2's "must go through Domain_safe" check
   does not apply to the wrapper types themselves. *)
let guarded = function Atomic_t | Mutex_t -> true | _ -> false

type sort = Value | Type

let sort_name = function Value -> "value" | Type -> "type"

type item = {
  unit_name : string;
  path : string;
  modpath : string list;  (* nested module path inside the unit *)
  ident : string;
  sort : sort;
  kind : kind;
  line : int;
  col : int;
  escaping : bool;
}

let key it = String.concat "." ((it.unit_name :: it.modpath) @ [ it.ident ])

let compare_item a b =
  let c = String.compare a.path b.path in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare (key a) (key b)

(* ------------------------------------------------------------------ *)
(* Identifier helpers                                                 *)
(* ------------------------------------------------------------------ *)

let lident_parts txt = try Longident.flatten_exn txt with _ -> []
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

(* ------------------------------------------------------------------ *)
(* Value classification                                               *)
(* ------------------------------------------------------------------ *)

let array_makers = [ "make"; "init"; "create_float"; "make_matrix"; "copy"; "of_list"; "append" ]
let bytes_makers = [ "create"; "make"; "init"; "of_string"; "copy" ]

let creator_of_head parts =
  match parts with
  | [ "ref" ] -> Some Ref
  | [ "Hashtbl"; "create" ] -> Some Hashtbl_t
  | [ "Queue"; "create" ] -> Some Queue_t
  | [ "Stack"; "create" ] -> Some Stack_t
  | [ "Buffer"; "create" ] -> Some Buffer_t
  | [ "Array"; f ] when List.exists (String.equal f) array_makers -> Some Array_t
  | [ "Bytes"; f ] when List.exists (String.equal f) bytes_makers -> Some Bytes_t
  | [ "Atomic"; "make" ] -> Some Atomic_t
  | [ "Mutex"; "create" ] -> Some Mutex_t
  | _ -> None

let is_function e = match e.pexp_desc with Pexp_function _ -> true | _ -> false

(* Does this module-level right-hand side construct mutable storage? *)
let rec classify_value_rhs e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> classify_value_rhs e
  | Pexp_array _ -> Some Array_t
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    creator_of_head (strip_stdlib (lident_parts txt))
  | Pexp_let (_, bindings, body) when is_function body ->
    (* let cell = Hashtbl.create .. in fun x -> ..: the closure captures the
       cell; the binding is module-level mutable state under another name. *)
    List.find_map (fun vb -> classify_value_rhs vb.pvb_expr) bindings
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Type classification                                                *)
(* ------------------------------------------------------------------ *)

let constr_kind parts =
  match parts with
  | [ "array" ] | [ "Array"; "t" ] | [ "Float"; "Array"; "t" ] | [ "floatarray" ] -> Some Array_t
  | [ "bytes" ] | [ "Bytes"; "t" ] -> Some Bytes_t
  | [ "ref" ] -> Some Ref
  | [ "Hashtbl"; "t" ] -> Some Hashtbl_t
  | [ "Queue"; "t" ] -> Some Queue_t
  | [ "Stack"; "t" ] -> Some Stack_t
  | [ "Buffer"; "t" ] -> Some Buffer_t
  | [ "Atomic"; "t" ] -> Some Atomic_t
  | [ "Mutex"; "t" ] | [ "Condition"; "t" ] -> Some Mutex_t
  | _ -> None

(* All mutable constructors mentioned anywhere inside a core type. *)
let constrs_folder =
  object
    inherit [kind list] Ast_traverse.fold as super

    method! core_type ct acc =
      let acc =
        match ct.ptyp_desc with
        | Ptyp_constr ({ txt; _ }, _) -> (
          match constr_kind (strip_stdlib (lident_parts txt)) with
          | Some k -> k :: acc
          | None -> acc)
        | _ -> acc
      in
      super#core_type ct acc
  end

let constrs_of_core acc ct = constrs_folder#core_type ct acc

let classify_type_decl (td : type_declaration) =
  let mutable_field =
    match td.ptype_kind with
    | Ptype_record fields ->
      List.exists (fun f -> match f.pld_mutable with Mutable -> true | Immutable -> false) fields
    | _ -> false
  in
  if mutable_field then Some Mutable_record
  else begin
    let constrs =
      let from_manifest =
        match td.ptype_manifest with Some ct -> constrs_of_core [] ct | None -> []
      in
      let from_kind =
        match td.ptype_kind with
        | Ptype_record fields ->
          List.concat_map (fun f -> constrs_of_core [] f.pld_type) fields
        | Ptype_variant cds ->
          List.concat_map
            (fun cd ->
              match cd.pcd_args with
              | Pcstr_tuple cts -> List.concat_map (constrs_of_core []) cts
              | Pcstr_record fields ->
                List.concat_map (fun f -> constrs_of_core [] f.pld_type) fields)
            cds
        | _ -> []
      in
      from_manifest @ from_kind
    in
    (* Guarded wrappers first: a record of {queue; mutex; condition} is a
       guarded structure, not a bare queue. *)
    let priority = [ Atomic_t; Mutex_t; Hashtbl_t; Queue_t; Stack_t; Buffer_t; Array_t; Bytes_t; Ref ] in
    List.find_opt (fun k -> List.exists (fun c -> c = k) constrs) priority
  end

(* ------------------------------------------------------------------ *)
(* Escape analysis (against the .mli, when present)                   *)
(* ------------------------------------------------------------------ *)

let sig_names (sg : signature) =
  let values = ref [] and types = ref [] in
  let folder =
    object
      inherit [unit] Ast_traverse.fold as super

      method! signature_item item () =
        (match item.psig_desc with
        | Psig_value vd -> values := vd.pval_name.txt :: !values
        | Psig_type (_, tds) ->
          List.iter (fun td -> types := td.ptype_name.txt :: !types) tds
        | _ -> ());
        super#signature_item item ()
    end
  in
  folder#signature sg ();
  (!values, !types)

(* ------------------------------------------------------------------ *)
(* The census pass                                                    *)
(* ------------------------------------------------------------------ *)

let of_unit (u : Symbols.unit_info) : item list =
  let exported_values, exported_types =
    match u.intf with
    | None -> (None, None)  (* no .mli: everything escapes *)
    | Some sg ->
      let vs, ts = sig_names sg in
      (Some vs, Some ts)
  in
  let escapes exported name =
    match exported with None -> true | Some names -> List.exists (String.equal name) names
  in
  let acc = ref [] in
  let add ~modpath ~loc ~sort ~kind ident =
    let start = loc.Location.loc_start in
    acc :=
      {
        unit_name = u.name;
        path = u.path;
        modpath;
        ident;
        sort;
        kind;
        line = start.Lexing.pos_lnum;
        col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
        escaping =
          (match sort with
          | Value -> escapes exported_values ident
          | Type -> escapes exported_types ident);
      }
      :: !acc
  in
  let rec walk_structure modpath str =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, bindings) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; loc } | Ppat_constraint ({ ppat_desc = Ppat_var { txt; loc }; _ }, _)
                -> (
                match classify_value_rhs vb.pvb_expr with
                | Some kind -> add ~modpath ~loc ~sort:Value ~kind txt
                | None -> ())
              | _ -> ())
            bindings
        | Pstr_type (_, tds) ->
          List.iter
            (fun td ->
              match classify_type_decl td with
              | Some kind ->
                add ~modpath ~loc:td.ptype_name.loc ~sort:Type ~kind td.ptype_name.txt
              | None -> ())
            tds
        | Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_structure str -> walk_structure (modpath @ [ m ]) str
          | _ -> ()  (* aliases carry no state; functor state is per-application *))
        | _ -> ())
      str
  in
  walk_structure [] u.str;
  List.sort compare_item !acc

(* ------------------------------------------------------------------ *)
(* Domain-unsafe stdlib singletons                                    *)
(* ------------------------------------------------------------------ *)

type singleton = { s_path : string; s_ident : string; s_line : int; s_col : int }

let compare_singleton a b =
  let c = String.compare a.s_path b.s_path in
  if c <> 0 then c
  else
    let c = Int.compare a.s_line b.s_line in
    if c <> 0 then c
    else
      let c = Int.compare a.s_col b.s_col in
      if c <> 0 then c else String.compare a.s_ident b.s_ident

let random_default_state =
  [
    "int"; "int32"; "int64"; "nativeint"; "bits"; "bits32"; "bits64"; "float"; "bool";
    "self_init"; "init"; "full_init"; "get_state"; "set_state";
  ]

let chan_prints =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int"; "print_float";
    "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes";
  ]

(* The domain-unsafe singleton this identifier touches, if any: process-wide
   mutable stdlib state that two domains would race on. *)
let singleton_of_parts parts =
  match parts with
  | [ "Format"; ("std_formatter" | "err_formatter") ]
  | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline" | "print_flush") ] ->
    Some (String.concat "." parts)
  | [ "Printf"; ("printf" | "eprintf") ] -> Some (String.concat "." parts)
  | [ "Random"; f ] when List.exists (String.equal f) random_default_state ->
    Some ("Random." ^ f)
  | [ ("stdout" | "stderr") as c ] -> Some c
  | [ p ] when List.exists (String.equal p) chan_prints -> Some p
  | _ -> None

let singletons_of_unit (u : Symbols.unit_info) : singleton list =
  let acc = ref [] in
  let note ~loc ident =
    let start = loc.Location.loc_start in
    acc :=
      {
        s_path = u.path;
        s_ident = ident;
        s_line = start.Lexing.pos_lnum;
        s_col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
      }
      :: !acc
  in
  let iter =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } -> (
          match singleton_of_parts (strip_stdlib (lident_parts txt)) with
          | Some ident -> note ~loc ident
          | None -> ())
        | _ -> ());
        super#expression e
    end
  in
  iter#structure u.str;
  List.sort_uniq compare_singleton !acc
