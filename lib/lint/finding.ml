type rule = L1 | L2 | L3 | L4 | L5 | R1 | R2 | R3

let rule_name = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"

let rule_of_string = function
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "L4" -> Some L4
  | "L5" -> Some L5
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | _ -> None

let rule_equal a b =
  match (a, b) with
  | L1, L1 | L2, L2 | L3, L3 | L4, L4 | L5, L5 | R1, R1 | R2, R2 | R3, R3 -> true
  | _ -> false

let rule_doc = function
  | L1 -> "determinism: no ambient randomness or wall-clock in simulated code"
  | L2 -> "monomorphic compare: no polymorphic compare/=/min/max on structured operands"
  | L3 -> "no direct stdout/stderr in lib/: print through a formatter parameter"
  | L4 -> "query confinement: only Exec/Problem/Dr_source may touch Data_source.query"
  | L5 -> "fiber safety: no exit/blocking IO inside lib/core or lib/engine"
  | R1 -> "domain zones: every escaping mutable cell/type carries a dr-race.zones declaration"
  | R2 -> "cross-zone access: engine-shared via Domain_safe only; per-domain stays in its subtree; init-only is never written post-init"
  | R3 -> "domain-unsafe stdlib singleton (std_formatter, default Random state, ...) outside lib/stats and the binaries"

let lint_rules = [ L1; L2; L3; L4; L5 ]
let race_rules = [ R1; R2; R3 ]

type t = { file : string; line : int; col : int; rule : rule; msg : string }

let make ~file ~loc rule msg =
  let start = loc.Ppxlib.Location.loc_start in
  {
    file;
    line = start.Lexing.pos_lnum;
    col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
    rule;
    msg;
  }

let at ~file ~line ~col rule msg = { file; line; col; rule; msg }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_name a.rule) (rule_name b.rule)

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d [%s] %s" f.file f.line f.col (rule_name f.rule) f.msg

(* The short form the golden tests key on: [file:line [RULE]]. *)
let pp_short ppf f =
  Format.fprintf ppf "%s:%d [%s]" (Filename.basename f.file) f.line (rule_name f.rule)

let to_short f = Format.asprintf "%a" pp_short f

(* ------------------------------------------------------------------ *)
(* JSON lines (schema dr-lint/1)                                      *)
(* ------------------------------------------------------------------ *)

let json_schema = "dr-lint/1"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"schema\": \"%s\", \"kind\": \"finding\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
     \"rule\": \"%s\", \"msg\": \"%s\"}"
    json_schema (json_escape f.file) f.line f.col (rule_name f.rule) (json_escape f.msg)
