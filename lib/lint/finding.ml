type rule = L1 | L2 | L3 | L4 | L5

let rule_name = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"

let rule_of_string = function
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "L4" -> Some L4
  | "L5" -> Some L5
  | _ -> None

let rule_doc = function
  | L1 -> "determinism: no ambient randomness or wall-clock in simulated code"
  | L2 -> "monomorphic compare: no polymorphic compare/=/min/max on structured operands"
  | L3 -> "no direct stdout/stderr in lib/: print through a formatter parameter"
  | L4 -> "query confinement: only Exec/Problem/Dr_source may touch Data_source.query"
  | L5 -> "fiber safety: no exit/blocking IO inside lib/core or lib/engine"

type t = { file : string; line : int; col : int; rule : rule; msg : string }

let make ~file ~loc rule msg =
  let start = loc.Ppxlib.Location.loc_start in
  {
    file;
    line = start.Lexing.pos_lnum;
    col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
    rule;
    msg;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_name a.rule) (rule_name b.rule)

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d [%s] %s" f.file f.line f.col (rule_name f.rule) f.msg

(* The short form the golden tests key on: [file:line [RULE]]. *)
let pp_short ppf f =
  Format.fprintf ppf "%s:%d [%s]" (Filename.basename f.file) f.line (rule_name f.rule)

let to_short f = Format.asprintf "%a" pp_short f
