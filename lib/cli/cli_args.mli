(** Shared cmdliner vocabulary of the Download CLIs.

    [dr_download], [dr_sweep] and [dr_check] take the same
    [--protocol]/[--attack]/[--seed] flags and the same latency/crash-plan
    spec strings; this module is their single definition, resolved against
    {!Dr_core.Registry} so the help text and the error messages always list
    the live protocol set. *)

val protocol_arg : ?extra:string -> default:string -> unit -> string Cmdliner.Term.t
(** [-p]/[--protocol] with a default name. [extra] appends to the doc line
    (e.g. "or 'auto'."). *)

val protocol_opt_arg : ?extra:string -> unit -> string option Cmdliner.Term.t
(** [-p]/[--protocol] without a default (absent = caller's choice, e.g.
    "all protocols"). *)

val attack_arg : string Cmdliner.Term.t
(** [--attack], default ["default"]. Validated by the registry entry's
    runner, not here. *)

val seed_arg : int64 Cmdliner.Term.t
(** [--seed], default [1L]. *)

val resolve_protocol : string -> Dr_core.Registry.entry
(** {!Dr_core.Registry.find}, raising [Failure] with the known-name list on
    a miss. *)

val latency_arg : default:string -> string Cmdliner.Term.t

val latency_fn :
  seed:int64 -> fault:Dr_adversary.Fault.t -> b:int -> string -> Dr_adversary.Latency.fn
(** Parse a [--latency] policy: "unit", "jitter" (seeded), "rush" (Byzantine
    messages arrive first), "sized" (transmission-time proportional under the
    message bound [b]). Raises [Failure] on anything else. *)

val chaos_arg : string option Cmdliner.Term.t
(** [--chaos SEED:SPEC], the {!Dr_net.Faultnet} fault-schedule grammar.
    Parsed by the caller (via [Faultnet.parse_seeded]) so this module stays
    free of a net dependency. *)

val net_retries_arg : int option Cmdliner.Term.t
(** [--net-retries], overriding [Source_client.default_config.max_retries]. *)

val request_timeout_arg : float option Cmdliner.Term.t
(** [--request-timeout], overriding
    [Source_client.default_config.request_timeout]. *)

val crash_arg : default:string -> string Cmdliner.Term.t

val crash_plan : fault:Dr_adversary.Fault.t -> string -> Dr_adversary.Crash_plan.t
(** Parse a [--crash] plan: "none", "silent", "midcast:J", "staggered",
    "afterq:J". Raises [Failure] on anything else. *)
