open Cmdliner
module Registry = Dr_core.Registry
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan
module Fault = Dr_adversary.Fault
module Prng = Dr_engine.Prng

let protocol_doc =
  Printf.sprintf "Protocol: one of %s." (String.concat ", " Registry.names)

let protocol_arg ?(extra = "") ~default () =
  let doc = if extra = "" then protocol_doc else protocol_doc ^ " " ^ extra in
  Arg.(value & opt string default & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let protocol_opt_arg ?(extra = "") () =
  let doc = if extra = "" then protocol_doc else protocol_doc ^ " " ^ extra in
  Arg.(value & opt (some string) None & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let attack_doc =
  "Byzantine attack name from the protocol's registry catalog \
   (default, silent, flip, equivocate, collude, nearmiss, lie, flood); \
   protocols without an attack surface ignore it."

let attack_arg =
  Arg.(value & opt string "default" & info [ "attack" ] ~docv:"ATTACK" ~doc:attack_doc)

let seed_arg = Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let resolve_protocol name =
  match Registry.find name with
  | Some e -> e
  | None ->
    failwith
      (Printf.sprintf "unknown protocol %S (known: %s)" name (String.concat ", " Registry.names))

let latency_doc = "Latency policy: unit, jitter, rush (Byzantine messages fast), or sized."

let latency_arg ~default =
  Arg.(value & opt string default & info [ "latency" ] ~docv:"POLICY" ~doc:latency_doc)

let latency_fn ~seed ~fault ~b = function
  | "unit" -> Latency.unit_delay
  | "jitter" -> Latency.jittered (Prng.create seed)
  | "rush" -> Latency.rushing ~fast:(Fault.is_faulty fault) ~eps:0.01
  | "sized" -> Latency.size_proportional ~per_bit:(1. /. float_of_int b) ~floor:0.1
  | other -> failwith ("unknown latency policy: " ^ other)

let chaos_doc =
  "With --transport net: a seeded fault schedule SEED:SPEC, where SPEC is \
   comma-separated clauses drop=P, corrupt=P, stall=DUR@pI, disconnect=peerI@msgJ, \
   reply_loss=P, source_blackout=N@qJ (or DUR@tT). The same SEED:SPEC reproduces \
   the identical fault schedule; faults are masked by the runtime and never \
   change the verdict or Q."

let chaos_arg =
  Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SEED:SPEC" ~doc:chaos_doc)

let net_retries_arg =
  Arg.(value & opt (some int) None
       & info [ "net-retries" ] ~docv:"N"
           ~doc:"With --transport net: reconnect attempts per source request before the \
                 peer gives up as source-unreachable (default 8).")

let request_timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "request-timeout" ] ~docv:"SECONDS"
           ~doc:"With --transport net: per-attempt deadline on each source request \
                 (default 5; 0 = none).")

let crash_doc =
  "Crash plan for crash-model faulty peers: none, silent, midcast:J, staggered, or afterq:J."

let crash_arg ~default =
  Arg.(value & opt string default & info [ "crash" ] ~docv:"PLAN" ~doc:crash_doc)

let crash_plan ~fault = function
  | "none" -> Crash_plan.none
  | "silent" -> Crash_plan.mid_broadcast fault ~after_sends:0
  | "staggered" -> Crash_plan.staggered fault ~first:0.5 ~gap:2.0
  | spec -> (
    match String.split_on_char ':' spec with
    | [ "midcast"; j ] -> Crash_plan.mid_broadcast fault ~after_sends:(int_of_string j)
    | [ "afterq"; j ] -> Crash_plan.after_queries fault (int_of_string j)
    | _ -> failwith ("unknown crash plan: " ^ spec))
