(* The campaign's corpus: recorded arbiter scripts that lit up new coverage.

   An entry is a complete replayable recipe — the scenario (protocol, attack,
   instance parameters, seed, crash plan) plus the recorded choice script —
   together with how many signatures were new when it was admitted. The
   mutation phase picks entries at random (via the campaign's seeded Prng, so
   deterministically) and perturbs them; Mutate owns the perturbations.

   On disk a corpus is a directory of entry-NNNN.json files (schema
   dr-corpus/1, a superset of the dr-check repro fields minus the violation).
   File numbering is admission order, so saving the same campaign twice
   produces identical directories. *)

module Json = Dr_stats.Bench_io.Json
module Crash_plan = Dr_adversary.Crash_plan

type entry = { scenario : Repro.scenario; script : int list; new_signatures : int }

type t = { mutable rev_entries : entry list; mutable size : int }

let create () = { rev_entries = []; size = 0 }

let add t e =
  t.rev_entries <- e :: t.rev_entries;
  t.size <- t.size + 1

let size t = t.size

let to_list t = List.rev t.rev_entries

let pick prng t =
  if t.size = 0 then None
  else Some (List.nth t.rev_entries (Dr_engine.Prng.int prng t.size))

let schema_id = "dr-corpus/1"

let entry_to_json e =
  let s = e.scenario in
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"%s\",\n" schema_id);
  Buffer.add_string b (Printf.sprintf "  \"protocol\": \"%s\",\n" (Json.escape s.Repro.protocol));
  Buffer.add_string b (Printf.sprintf "  \"attack\": \"%s\",\n" (Json.escape s.Repro.attack));
  Buffer.add_string b
    (Printf.sprintf "  \"k\": %d, \"n\": %d, \"t\": %d,\n" s.Repro.k s.Repro.n s.Repro.t);
  Buffer.add_string b (Printf.sprintf "  \"seed\": \"%Ld\",\n" s.Repro.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"crash\": \"%s\",\n" (Crash_plan.descriptor_to_string s.Repro.crash));
  Buffer.add_string b
    (Printf.sprintf "  \"script\": [ %s ],\n"
       (String.concat ", " (List.map string_of_int e.script)));
  Buffer.add_string b (Printf.sprintf "  \"new_signatures\": %d\n" e.new_signatures);
  Buffer.add_string b "}\n";
  Buffer.contents b

let int_field root key =
  let f = Json.num root key in
  let i = int_of_float f in
  if float_of_int i <> f then
    failwith (Printf.sprintf "Corpus.entry_of_json: %s is not an integer" key);
  i

let entry_of_json text =
  let root = Json.parse text in
  let schema = Json.str root "schema" in
  if not (String.equal schema schema_id) then
    failwith
      (Printf.sprintf "Corpus.entry_of_json: unsupported schema %S (want %S)" schema schema_id);
  let crash_s = Json.str root "crash" in
  let crash =
    match Crash_plan.descriptor_of_string crash_s with
    | Some d -> d
    | None -> failwith (Printf.sprintf "Corpus.entry_of_json: unknown crash descriptor %S" crash_s)
  in
  let seed_s = Json.str root "seed" in
  let seed =
    match Int64.of_string_opt seed_s with
    | Some s -> s
    | None -> failwith (Printf.sprintf "Corpus.entry_of_json: malformed seed %S" seed_s)
  in
  let script =
    match Json.member root "script" with
    | Some (Json.Arr items) ->
      List.map
        (function
          | Json.Num f ->
            let i = int_of_float f in
            if float_of_int i <> f || i < 0 then
              failwith "Corpus.entry_of_json: script entries must be nonnegative integers";
            i
          | _ -> failwith "Corpus.entry_of_json: script entries must be numbers")
        items
    | _ -> failwith "Corpus.entry_of_json: missing script array"
  in
  {
    scenario =
      {
        Repro.protocol = Json.str root "protocol";
        attack = Json.str root "attack";
        k = int_field root "k";
        n = int_field root "n";
        t = int_field root "t";
        seed;
        crash;
      };
    script;
    new_signatures = int_field root "new_signatures";
  }

let entry_file i = Printf.sprintf "entry-%04d.json" i

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun i e ->
      let oc = open_out (Filename.concat dir (entry_file i)) in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (entry_to_json e)))
    (to_list t)

let load ~dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json" && String.length f > 6)
    |> List.filter (fun f -> String.equal (String.sub f 0 6) "entry-")
    |> List.sort String.compare
  in
  let t = create () in
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      add t (entry_of_json text))
    files;
  t
