(** The coverage map behind [dr_check --campaign].

    Keys are the 30-bit signatures of {!Dr_engine.Explore.signature}
    (protocol-phase × event-type × round-bucket); values count how many runs
    lit the signature ({!note} is fed each run's {e distinct} hits, so a
    count of 3 means three executions reached that region, not three raw
    events). Deterministic: every read-out is sorted by [Int.compare], so
    same runs ⇒ byte-identical {!to_json}. *)

type t

val create : unit -> t

val note : t -> int list -> int
(** [note t hits] folds one run's distinct signatures into the map and
    returns how many were {e new} — the campaign's corpus-admission
    criterion. *)

val distinct : t -> int
(** Distinct signatures seen. *)

val hits : t -> int
(** Total run-hits across all signatures. *)

val signatures : t -> int list
(** Sorted ascending. *)

val merge : into:t -> t -> unit
(** Add every binding of the second map into [into]. *)

val equal : t -> t -> bool
(** Same signatures with the same counts. *)

val to_json : t -> string
(** Schema ["dr-coverage/1"]: counts plus the sorted [[signature, count]]
    map. Byte-deterministic for a given map. *)
