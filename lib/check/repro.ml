module Json = Dr_stats.Bench_io.Json
module Crash_plan = Dr_adversary.Crash_plan

type scenario = {
  protocol : string;
  attack : string;
  k : int;
  n : int;
  t : int;
  seed : int64;
  crash : Crash_plan.descriptor;
}

type t = {
  scenario : scenario;
  script : int list;
  invariant : string;
  event : int;
  detail : string;
}

let schema_id = "dr-check/1"

let to_json r =
  let s = r.scenario in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"%s\",\n" schema_id);
  Buffer.add_string b (Printf.sprintf "  \"protocol\": \"%s\",\n" (Json.escape s.protocol));
  Buffer.add_string b (Printf.sprintf "  \"attack\": \"%s\",\n" (Json.escape s.attack));
  Buffer.add_string b (Printf.sprintf "  \"k\": %d, \"n\": %d, \"t\": %d,\n" s.k s.n s.t);
  Buffer.add_string b (Printf.sprintf "  \"seed\": \"%Ld\",\n" s.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"crash\": \"%s\",\n" (Crash_plan.descriptor_to_string s.crash));
  Buffer.add_string b
    (Printf.sprintf "  \"script\": [ %s ],\n"
       (String.concat ", " (List.map string_of_int r.script)));
  Buffer.add_string b (Printf.sprintf "  \"invariant\": \"%s\",\n" (Json.escape r.invariant));
  Buffer.add_string b (Printf.sprintf "  \"event\": %d,\n" r.event);
  Buffer.add_string b (Printf.sprintf "  \"detail\": \"%s\"\n" (Json.escape r.detail));
  Buffer.add_string b "}\n";
  Buffer.contents b

let int_field root key =
  let f = Json.num root key in
  let i = int_of_float f in
  if float_of_int i <> f then failwith (Printf.sprintf "Repro.of_json: %s is not an integer" key);
  i

let of_json text =
  let root = Json.parse text in
  let schema = Json.str root "schema" in
  if schema <> schema_id then
    failwith (Printf.sprintf "Repro.of_json: unsupported schema %S (want %S)" schema schema_id);
  let crash_s = Json.str root "crash" in
  let crash =
    match Crash_plan.descriptor_of_string crash_s with
    | Some d -> d
    | None -> failwith (Printf.sprintf "Repro.of_json: unknown crash descriptor %S" crash_s)
  in
  let seed_s = Json.str root "seed" in
  let seed =
    match Int64.of_string_opt seed_s with
    | Some s -> s
    | None -> failwith (Printf.sprintf "Repro.of_json: malformed seed %S" seed_s)
  in
  let script =
    match Json.member root "script" with
    | Some (Json.Arr items) ->
      List.map
        (function
          | Json.Num f ->
            let i = int_of_float f in
            if float_of_int i <> f || i < 0 then
              failwith "Repro.of_json: script entries must be nonnegative integers";
            i
          | _ -> failwith "Repro.of_json: script entries must be numbers")
        items
    | _ -> failwith "Repro.of_json: missing script array"
  in
  {
    scenario =
      {
        protocol = Json.str root "protocol";
        attack = Json.str root "attack";
        k = int_field root "k";
        n = int_field root "n";
        t = int_field root "t";
        seed;
        crash;
      };
    script;
    invariant = Json.str root "invariant";
    event = int_field root "event";
    detail = Json.str root "detail";
  }

let write ~path r =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json r))

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (really_input_string ic (in_channel_length ic)))

let pp ppf r =
  Format.fprintf ppf "%s/%s k=%d n=%d t=%d seed=%Ld crash=%s: %s at event %d (script length %d)"
    r.scenario.protocol r.scenario.attack r.scenario.k r.scenario.n r.scenario.t r.scenario.seed
    (Crash_plan.descriptor_to_string r.scenario.crash)
    r.invariant r.event (List.length r.script)
