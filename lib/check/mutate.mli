(** Mutation operators for the coverage campaign.

    {!mutate} perturbs a corpus entry into a new scenario plus a script
    {e prefix}; the campaign replays the prefix with
    {!Dr_engine.Explore.scripted_then_random} and improvises the suffix, so
    each mutant walks a schedule neighbourhood of a known-interesting run.

    The operators: [Truncate] (random prefix), [Splice] (base prefix +
    donor suffix), [Point] (rewrite one choice), [Crash_shift] (different
    crash descriptor, same schedule), [Attack_swap] (different attack name —
    the schedule shape changes, so only half the script is kept), [Reseed]
    (fresh instance seed, half the script). Deterministic given the Prng. *)

type op = Truncate | Splice | Point | Crash_shift | Attack_swap | Reseed

val all : op list
val to_string : op -> string

val mutate :
  prng:Dr_engine.Prng.t ->
  attacks:string list ->
  crashes:Dr_adversary.Crash_plan.descriptor list ->
  donor:Corpus.entry option ->
  Corpus.entry ->
  Repro.scenario * int list
(** Pick an operator with [prng] and apply it. [attacks] and [crashes] are
    the pools [Attack_swap] / [Crash_shift] draw replacements from; [donor]
    feeds [Splice]. Returns the mutated scenario and the script prefix to
    replay. *)
