(** The invariant oracle: the checkable property set of one execution.

    The paper's guarantees are universally quantified over schedules and
    adversary behaviours; the model checker searches for a schedule breaking
    one of these invariants:

    - {b agreement}: every nonfaulty peer that terminated output exactly [X];
    - {b termination}: no nonfaulty peer is blocked forever (deadlock) and
      the run did not hit the event limit;
    - {b spec-bound}: the measured query complexity Q respects the registry's
      {!Dr_core.Spec.bounds} — checked only for deterministic protocols
      inside their resilience regime (the randomized bounds hold w.h.p., so a
      single unlucky schedule is not a counterexample).

    The oracle runs post-hoc on a {!Dr_core.Problem.report}; [event] in a
    violation is the schedule length (events fired) of the checked execution,
    which deterministic replay reproduces exactly. *)

type t = Agreement | Termination | Spec_bound

val all : t list

val name : t -> string
(** ["agreement"] / ["termination"] / ["spec-bound"] — the vocabulary used in
    repro files. *)

val of_name : string -> t option

type violation = {
  invariant : t;
  event : int;  (** schedule length at which the invariant was judged broken *)
  detail : string;  (** deterministic human-readable diagnosis *)
}

val check :
  ?spec:Dr_core.Spec.bounds ->
  inst:Dr_core.Problem.instance ->
  events:int ->
  Dr_core.Problem.report ->
  violation option
(** First violated invariant, in the order termination, agreement,
    spec-bound. A deadlock that blocks only {e faulty} peers is the
    adversary's business and violates nothing. *)

val pp_violation : Format.formatter -> violation -> unit
