(** The [dr_check] model checker: schedule fuzzing with an invariant oracle
    and counterexample shrinking.

    A {!target} is anything checkable — normally a {!Dr_core.Registry} entry
    via {!of_registry}, or a hand-built record (the tests check a
    deliberately broken protocol stub this way). {!fuzz} searches for
    invariant violations in three moves:

    + a budgeted DFS prefix of the schedule tree ({!Dr_engine.Explore.dfs})
      on a fixed small scenario;
    + seeded random schedules ({!Dr_engine.Explore.random}) over randomized
      scenarios: instance parameters from the target's pool, attack names
      from its catalog, crash plans from the descriptor pool;
    + every failure is re-recorded as a choice script, minimized with
      {!Shrink}, and packaged as a replayable {!Repro.t}.

    Everything is deterministic given [seed]; {!replay} re-executes a repro
    and verifies that the {e same} invariant fails at the {e same} event
    index. *)

type target = {
  name : string;
  attacks : string list;  (** attack vocabulary accepted by [run] *)
  model : Dr_core.Problem.fault_model;
  spec : Dr_core.Spec.bounds option;
      (** enables the spec-bound invariant (see {!Invariant.check} for the
          randomized/resilience gating) *)
  pool : (int * int * int) list;
      (** admissible [(k, n, t)] instance parameters the fuzzer draws from;
          must be small — under an arbiter the simulator's event pool is a
          list, and every schedule re-executes the protocol *)
  run :
    ?observer:(Dr_engine.Sim.obs -> unit) ->
    attack:string ->
    crash:Dr_adversary.Crash_plan.t ->
    arbiter:Dr_engine.Sim.arbiter ->
    Dr_core.Problem.instance ->
    Dr_core.Problem.report;
      (** [observer] streams one {!Dr_engine.Sim.obs} per fired event — the
          campaign's coverage probe. Targets that ignore it still check, but
          contribute no coverage. *)
}

val of_registry : ?pool:(int * int * int) list -> Dr_core.Registry.entry -> target
(** Check a registry protocol. The default pool crosses k ∈ 2..5 with small
    n and every fault count the entry's [supports] precondition admits. *)

val resolve : ?targets:target list -> string -> target option
(** Look a target up by name — [targets] first, then the registry. *)

(** {2 Running one scenario} *)

type checked = {
  report : Dr_core.Problem.report;
  script : int list;  (** the full recorded schedule of this execution *)
  violation : Invariant.violation option;
}

val run_scenario :
  ?observer:(Dr_engine.Sim.obs -> unit) ->
  target ->
  Repro.scenario ->
  arbiter:Dr_engine.Sim.arbiter ->
  checked
(** Build the instance from the scenario, run under the given arbiter with
    the scenario's crash plan applied to the instance's faulty set, record
    the schedule and consult the {!Invariant} oracle. [observer] is passed
    through to the target (coverage probing). *)

val shrink : target -> Repro.scenario -> Invariant.violation -> script:int list -> Repro.t
(** Minimize a failing run: first the crash plan (drop it, then lower its
    parameter), then the choice script via {!Shrink.minimize} — each step
    keeps the {e same} invariant failing. The result replays bit-identically
    through {!Dr_engine.Explore.scripted}. *)

type replay_result =
  | Reproduced of Invariant.violation
      (** same invariant, same event index as recorded *)
  | Diverged of string  (** a violation, but not the recorded one *)
  | Vanished  (** no violation — the bug is gone (or the build changed) *)

val replay : ?targets:target list -> Repro.t -> replay_result

(** {2 The fuzz driver} *)

type outcome = {
  target_name : string;
  runs : int;  (** executions performed (DFS + random) *)
  dfs_runs : int;
  dfs_exhausted : bool;  (** the DFS scenario's whole schedule tree fit *)
  failures : Repro.t list;  (** shrunk, deduplicated by (invariant, scenario) *)
}

val fuzz :
  ?dfs_budget:int ->
  ?max_failures:int ->
  budget:int ->
  seed:int ->
  target ->
  outcome
(** [fuzz ~budget ~seed target] spends [budget] executions on the target:
    [dfs_budget] (default [budget / 4]) on the systematic prefix, the rest on
    random scenarios. Stops collecting after [max_failures] (default 5)
    shrunk counterexamples. Deterministic given [seed]. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {2 The coverage-guided campaign}

    [dr_check --campaign]'s driver: instead of [fuzz]'s fixed DFS + uniform
    random split, the campaign keeps a {!Coverage} map of hashed execution
    signatures and a {!Corpus} of the scripts that lit up new ones, and
    spends most of its budget mutating those ({!Mutate}) — replaying each
    mutant's script prefix exactly and improvising the suffix. Violations
    are shrunk and deduplicated exactly as in [fuzz]. Deterministic given
    [seed]: coverage map, corpus and failure list are all byte-reproducible. *)

type campaign = {
  target_name : string;
  budget : int;  (** requested executions *)
  seed : int;
  executed : int;  (** executions actually performed *)
  seed_runs : int;  (** phase-1 runs (round-robin pool × attack × crash) *)
  mutated_runs : int;  (** phase-2 runs (corpus mutants) *)
  new_coverage_runs : int;  (** runs that lit at least one new signature *)
  coverage : Coverage.t;
  corpus : Corpus.t;
  failures : Repro.t list;  (** shrunk, deduplicated by (invariant, scenario) *)
}

val campaign : ?max_failures:int -> ?bucket:int -> budget:int -> seed:int -> target -> campaign
(** [campaign ~budget ~seed target] spends [max 1 (budget / 4)] executions
    seeding the corpus (round-robin over every pool × attack × crash-plan
    combination) and the rest mutating it. [bucket] is the signature
    round-bucket width (see {!Dr_engine.Explore.signature}); [max_failures]
    (default 5) caps collected counterexamples. *)

val campaign_stats_json : campaign -> string
(** Schema ["dr-campaign/1"]: run counts, coverage totals, corpus size and
    one summary object per shrunk violation. Deterministic given the
    campaign (no timestamps, no host state) — suitable as a golden. *)

val pp_campaign : Format.formatter -> campaign -> unit
