(** The campaign's corpus of coverage-interesting schedules.

    An {!entry} is a fully replayable recipe — a {!Repro.scenario} plus the
    recorded arbiter script — admitted when the run lit up signatures the
    {!Coverage} map had not seen. The mutation phase of
    {!Check.campaign} draws entries with the campaign Prng and perturbs
    them (see {!Mutate}). Persisted as a directory of [entry-NNNN.json]
    files (schema ["dr-corpus/1"]) in admission order, so the same campaign
    saves the same bytes. *)

type entry = {
  scenario : Repro.scenario;
  script : int list;  (** the recorded schedule that produced the coverage *)
  new_signatures : int;  (** how many signatures were new at admission *)
}

type t

val create : unit -> t
val add : t -> entry -> unit
val size : t -> int

val to_list : t -> entry list
(** In admission order. *)

val pick : Dr_engine.Prng.t -> t -> entry option
(** Uniform draw, [None] on an empty corpus. *)

val entry_to_json : entry -> string
val entry_of_json : string -> entry

val save : t -> dir:string -> unit
(** Write [dir/entry-0000.json] … in admission order, creating [dir] if
    needed. *)

val load : dir:string -> t
(** Read every [entry-*.json] in [dir], sorted by filename. *)
