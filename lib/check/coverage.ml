(* The campaign's coverage map: signature -> hit count.

   Signatures come from Dr_engine.Explore.signature (hashed
   phase × event-kind × round-bucket keys); the map only ever sees the
   distinct signatures of one run at a time (a probe's hits), so a "hit"
   counts runs that lit a signature, not raw events. All read-out orders are
   sorted with Int.compare — never Hashtbl iteration order — so two maps
   built from the same runs serialize byte-identically. *)

type t = (int, int) Hashtbl.t

let create () = Hashtbl.create 256

let note t sigs =
  List.fold_left
    (fun fresh s ->
      match Hashtbl.find_opt t s with
      | Some c ->
        Hashtbl.replace t s (c + 1);
        fresh
      | None ->
        Hashtbl.add t s 1;
        fresh + 1)
    0 sigs

let distinct t = Hashtbl.length t

let hits t = Hashtbl.fold (fun _ c acc -> acc + c) t 0

let bindings t =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun s c acc -> (s, c) :: acc) t [])

let signatures t = List.map fst (bindings t)

let merge ~into t =
  Hashtbl.iter
    (fun s c ->
      match Hashtbl.find_opt into s with
      | Some c0 -> Hashtbl.replace into s (c0 + c)
      | None -> Hashtbl.add into s c)
    t

let equal a b =
  List.equal
    (fun (s1, c1) (s2, c2) -> Int.equal s1 s2 && Int.equal c1 c2)
    (bindings a) (bindings b)

let schema_id = "dr-coverage/1"

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"%s\",\n" schema_id);
  Buffer.add_string b (Printf.sprintf "  \"distinct\": %d,\n" (distinct t));
  Buffer.add_string b (Printf.sprintf "  \"hits\": %d,\n" (hits t));
  Buffer.add_string b "  \"map\": [";
  List.iteri
    (fun i (s, c) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf " [%d, %d]" s c))
    (bindings t);
  Buffer.add_string b " ]\n}\n";
  Buffer.contents b
