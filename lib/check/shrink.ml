let remove_chunk s ~pos ~len =
  List.filteri (fun i _ -> i < pos || i >= pos + len) s

let set_nth s i v = List.mapi (fun j x -> if j = i then v else x) s

let minimize_counting ?(max_tests = 20_000) ~fails script =
  let tests = ref 0 in
  let try_fails s =
    if !tests >= max_tests then false
    else begin
      incr tests;
      fails s
    end
  in
  if not (try_fails script) then (script, !tests)
  else begin
    let cur = ref script in
    let changed = ref true in
    while !changed && !tests < max_tests do
      changed := false;
      (* Deletion pass: ddmin-style, chunks of halving size down to single
         elements. On a successful removal the same position is retried (the
         next chunk shifted into place). *)
      let size = ref (max 1 (List.length !cur / 2)) in
      while !size >= 1 do
        let pos = ref 0 in
        while !pos < List.length !cur do
          let cand = remove_chunk !cur ~pos:!pos ~len:!size in
          if try_fails cand then begin
            cur := cand;
            changed := true
          end
          else pos := !pos + !size
        done;
        size := !size / 2
      done;
      (* Lowering pass: drive each surviving choice toward 0 — straight to 0
         when that still fails, by single decrements otherwise. *)
      List.iteri
        (fun i _ ->
          let v () = List.nth !cur i in
          if v () > 0 && try_fails (set_nth !cur i 0) then begin
            cur := set_nth !cur i 0;
            changed := true
          end
          else
            while v () > 0 && try_fails (set_nth !cur i (v () - 1)) do
              cur := set_nth !cur i (v () - 1);
              changed := true
            done)
        !cur
    done;
    (!cur, !tests)
  end

let minimize ?max_tests ~fails script = fst (minimize_counting ?max_tests ~fails script)
let tests_used script ~fails = snd (minimize_counting ~fails script)
