(** Delta-debugging minimizer for failing choice scripts.

    A counterexample found by the fuzzer is a choice script (see
    {!Dr_engine.Explore}): one arbiter decision per event. Most of its
    entries are irrelevant to the failure; this module removes and lowers
    them until the script is locally minimal.

    Every candidate transformation is validated by re-running the predicate —
    nothing is assumed equivalent, so the result provably still fails. *)

val minimize : ?max_tests:int -> fails:(int list -> bool) -> int list -> int list
(** [minimize ~fails script] returns a script [s] with [fails s = true] that
    is locally minimal: deleting any single element or decrementing any
    single choice makes the failure disappear. Deletion runs ddmin-style
    (chunks of halving size), then choices are lowered pointwise toward 0;
    the two passes repeat to a fixpoint.

    If [fails script] is already false, the script is returned unchanged
    (shrinking a passing run is a no-op). [max_tests] (default [20_000])
    bounds the number of predicate evaluations; when exhausted, the current
    — still failing — script is returned even if not yet minimal. *)

val tests_used : int list -> fails:(int list -> bool) -> int
(** [tests_used script ~fails] runs {!minimize} and returns how many
    predicate evaluations it consumed — instrumentation for tuning fuzz
    budgets. *)
