module Sim = Dr_engine.Sim
module Explore = Dr_engine.Explore
module Prng = Dr_engine.Prng
module Problem = Dr_core.Problem
module Exec = Dr_core.Exec
module Registry = Dr_core.Registry
module Spec = Dr_core.Spec
module Crash_plan = Dr_adversary.Crash_plan

type target = {
  name : string;
  attacks : string list;
  model : Problem.fault_model;
  spec : Spec.bounds option;
  pool : (int * int * int) list;
  run :
    attack:string ->
    crash:Crash_plan.t ->
    arbiter:Sim.arbiter ->
    Problem.instance ->
    Problem.report;
}

let default_pool entry model =
  let candidates =
    List.concat_map
      (fun (k, n) -> List.init k (fun t -> (k, n, t)))
      [ (2, 4); (3, 5); (4, 8); (5, 10) ]
  in
  List.filter
    (fun (k, n, t) ->
      let inst = Problem.random_instance ~seed:1L ~model ~k ~n ~t () in
      Registry.admits entry inst = Ok ())
    candidates

let of_registry ?pool entry =
  let model = entry.Registry.model in
  let pool = match pool with Some p -> p | None -> default_pool entry model in
  {
    name = Registry.name entry;
    attacks = Registry.attacks entry;
    model;
    spec = Some entry.Registry.spec;
    pool;
    run =
      (fun ~attack ~crash ~arbiter inst ->
        let opts = Exec.make_opts ~crash ~arbiter () in
        entry.Registry.run ~opts ~attack inst);
  }

let resolve ?(targets = []) name =
  match List.find_opt (fun t -> t.name = name) targets with
  | Some t -> Some t
  | None -> Option.map of_registry (Registry.find name)

(* ------------------------------------------------------------------ *)
(* Running one scenario                                               *)
(* ------------------------------------------------------------------ *)

type checked = {
  report : Problem.report;
  script : int list;
  violation : Invariant.violation option;
}

let instance_of target (s : Repro.scenario) =
  Problem.random_instance ~seed:s.Repro.seed ~model:target.model ~k:s.Repro.k ~n:s.Repro.n
    ~t:s.Repro.t ()

let run_scenario target (s : Repro.scenario) ~arbiter =
  let inst = instance_of target s in
  let recording, recorded = Explore.record arbiter in
  let crash = Crash_plan.apply s.Repro.crash inst.Problem.fault in
  let report = target.run ~attack:s.Repro.attack ~crash ~arbiter:recording inst in
  let script = recorded () in
  let violation =
    Invariant.check ?spec:target.spec ~inst ~events:(List.length script) report
  in
  { report; script; violation }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

let same_violation inv (c : checked) =
  match c.violation with
  | Some v -> Invariant.name v.Invariant.invariant = inv
  | None -> false

let shrink target (s : Repro.scenario) (v : Invariant.violation) ~script =
  let inv = Invariant.name v.Invariant.invariant in
  let fails_with crash script =
    same_violation inv
      (run_scenario target { s with Repro.crash } ~arbiter:(Explore.scripted script))
  in
  (* Fault plan first: no crash at all, else a lower parameter. *)
  let crash =
    if s.Repro.crash <> Crash_plan.No_crash && fails_with Crash_plan.No_crash script then
      Crash_plan.No_crash
    else begin
      let lower rebuild j =
        let j' = ref j in
        while !j' > 0 && fails_with (rebuild (!j' - 1)) script do
          decr j'
        done;
        rebuild !j'
      in
      match s.Repro.crash with
      | Crash_plan.No_crash -> Crash_plan.No_crash
      | Crash_plan.Mid_broadcast j -> lower (fun j -> Crash_plan.Mid_broadcast j) j
      | Crash_plan.After_queries j -> lower (fun j -> Crash_plan.After_queries j) j
    end
  in
  let script = Shrink.minimize ~fails:(fails_with crash) script in
  let s = { s with Repro.crash } in
  match run_scenario target s ~arbiter:(Explore.scripted script) with
  | { violation = Some v; _ } ->
    {
      Repro.scenario = s;
      script;
      invariant = Invariant.name v.Invariant.invariant;
      event = v.Invariant.event;
      detail = v.Invariant.detail;
    }
  | { violation = None; _ } ->
    (* Shrink validated every step against the predicate; an unreproducible
       result here means the target is nondeterministic. *)
    failwith (Printf.sprintf "Check.shrink: %s is not deterministic under replay" target.name)

(* ------------------------------------------------------------------ *)
(* Replay                                                             *)
(* ------------------------------------------------------------------ *)

type replay_result =
  | Reproduced of Invariant.violation
  | Diverged of string
  | Vanished

let replay ?targets (r : Repro.t) =
  match resolve ?targets r.Repro.scenario.Repro.protocol with
  | None -> Diverged (Printf.sprintf "unknown protocol %S" r.Repro.scenario.Repro.protocol)
  | Some target ->
    (match run_scenario target r.Repro.scenario ~arbiter:(Explore.scripted r.Repro.script) with
    | { violation = None; _ } -> Vanished
    | { violation = Some v; _ } ->
      let name = Invariant.name v.Invariant.invariant in
      if name <> r.Repro.invariant then
        Diverged
          (Printf.sprintf "expected %s to fail, got %s: %s" r.Repro.invariant name
             v.Invariant.detail)
      else if v.Invariant.event <> r.Repro.event then
        Diverged
          (Printf.sprintf "%s fails at event %d, recorded at %d" name v.Invariant.event
             r.Repro.event)
      else Reproduced v)

(* ------------------------------------------------------------------ *)
(* The fuzz driver                                                    *)
(* ------------------------------------------------------------------ *)

type outcome = {
  target_name : string;
  runs : int;
  dfs_runs : int;
  dfs_exhausted : bool;
  failures : Repro.t list;
}

let crash_descriptors =
  [
    Crash_plan.No_crash;
    Crash_plan.Mid_broadcast 0;
    Crash_plan.Mid_broadcast 1;
    Crash_plan.Mid_broadcast 2;
    Crash_plan.After_queries 0;
    Crash_plan.After_queries 1;
  ]

let pick prng l = List.nth l (Prng.int prng (List.length l))

let fuzz ?dfs_budget ?(max_failures = 5) ~budget ~seed target =
  if target.pool = [] then
    failwith (Printf.sprintf "Check.fuzz: %s has no admissible small instance" target.name);
  let dfs_budget = match dfs_budget with Some d -> min d budget | None -> budget / 4 in
  let failures = ref [] in
  let seen = ref [] in
  let note_failure (s : Repro.scenario) (c : checked) =
    match c.violation with
    | None -> ()
    | Some v ->
      let key = (Invariant.name v.Invariant.invariant, s) in
      if List.length !failures < max_failures && not (List.mem key !seen) then begin
        seen := key :: !seen;
        failures := shrink target s v ~script:c.script :: !failures
      end
  in
  (* Phase 1: systematic DFS prefix on one fixed scenario — the first pool
     entry with faults (faults exercise the interesting schedules), default
     attack, the mildest interesting crash plan. *)
  let dfs_scenario =
    let k, n, t =
      match List.find_opt (fun (_, _, t) -> t > 0) target.pool with
      | Some p -> p
      | None -> List.hd target.pool
    in
    let crash =
      if t > 0 && target.model = Problem.Crash then Crash_plan.Mid_broadcast 1
      else Crash_plan.No_crash
    in
    {
      Repro.protocol = target.name;
      attack = (match target.attacks with a :: _ -> a | [] -> "default");
      k;
      n;
      t;
      seed = 1L;
      crash;
    }
  in
  let dfs =
    if dfs_budget <= 0 then None
    else
      Some
        (Explore.dfs ~budget:dfs_budget ~run:(fun ~arbiter ->
             let c = run_scenario target dfs_scenario ~arbiter in
             (* dfs re-finds its own failing script; record the first one. *)
             if c.violation <> None then note_failure dfs_scenario c;
             c.violation = None))
  in
  let dfs_runs, dfs_exhausted =
    match dfs with
    | None -> (0, false)
    | Some o -> (o.Explore.schedules_run, o.Explore.exhausted)
  in
  (* Phase 2: seeded random scenarios for the remaining budget. *)
  let prng = Prng.create (Int64.of_int (seed + 0x5eed)) in
  let random_runs = max 0 (budget - dfs_runs) in
  for _ = 1 to random_runs do
    let k, n, t = pick prng target.pool in
    let scenario =
      {
        Repro.protocol = target.name;
        attack = pick prng target.attacks;
        k;
        n;
        t;
        seed = Int64.of_int (1 + Prng.int prng 1_000_000);
        crash = pick prng crash_descriptors;
      }
    in
    let arbiter = Explore.random (Prng.create (Int64.of_int (1 + Prng.int prng 1_000_000))) in
    note_failure scenario (run_scenario target scenario ~arbiter)
  done;
  {
    target_name = target.name;
    runs = dfs_runs + random_runs;
    dfs_runs;
    dfs_exhausted;
    failures = List.rev !failures;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "%s: %d runs (dfs %d%s), %d violation%s" o.target_name o.runs o.dfs_runs
    (if o.dfs_exhausted then ", exhausted" else "")
    (List.length o.failures)
    (if List.length o.failures = 1 then "" else "s");
  List.iter (fun r -> Format.fprintf ppf "@.  %a" Repro.pp r) o.failures
