module Sim = Dr_engine.Sim
module Explore = Dr_engine.Explore
module Prng = Dr_engine.Prng
module Problem = Dr_core.Problem
module Exec = Dr_core.Exec
module Registry = Dr_core.Registry
module Spec = Dr_core.Spec
module Crash_plan = Dr_adversary.Crash_plan

type target = {
  name : string;
  attacks : string list;
  model : Problem.fault_model;
  spec : Spec.bounds option;
  pool : (int * int * int) list;
  run :
    ?observer:(Sim.obs -> unit) ->
    attack:string ->
    crash:Crash_plan.t ->
    arbiter:Sim.arbiter ->
    Problem.instance ->
    Problem.report;
}

let default_pool entry model =
  let candidates =
    List.concat_map
      (fun (k, n) -> List.init k (fun t -> (k, n, t)))
      [ (2, 4); (3, 5); (4, 8); (5, 10) ]
  in
  List.filter
    (fun (k, n, t) ->
      let inst = Problem.random_instance ~seed:1L ~model ~k ~n ~t () in
      Registry.admits entry inst = Ok ())
    candidates

let of_registry ?pool entry =
  let model = entry.Registry.model in
  let pool = match pool with Some p -> p | None -> default_pool entry model in
  {
    name = Registry.name entry;
    attacks = Registry.attacks entry;
    model;
    spec = Some entry.Registry.spec;
    pool;
    run =
      (fun ?observer ~attack ~crash ~arbiter inst ->
        let opts = Exec.make_opts ?observer ~crash ~arbiter () in
        entry.Registry.run ~opts ~attack inst);
  }

let resolve ?(targets = []) name =
  match List.find_opt (fun t -> t.name = name) targets with
  | Some t -> Some t
  | None -> Option.map of_registry (Registry.find name)

(* ------------------------------------------------------------------ *)
(* Running one scenario                                               *)
(* ------------------------------------------------------------------ *)

type checked = {
  report : Problem.report;
  script : int list;
  violation : Invariant.violation option;
}

let instance_of target (s : Repro.scenario) =
  Problem.random_instance ~seed:s.Repro.seed ~model:target.model ~k:s.Repro.k ~n:s.Repro.n
    ~t:s.Repro.t ()

let run_scenario ?observer target (s : Repro.scenario) ~arbiter =
  let inst = instance_of target s in
  let recording, recorded = Explore.record arbiter in
  let crash = Crash_plan.apply s.Repro.crash inst.Problem.fault in
  let report = target.run ?observer ~attack:s.Repro.attack ~crash ~arbiter:recording inst in
  let script = recorded () in
  let violation =
    Invariant.check ?spec:target.spec ~inst ~events:(List.length script) report
  in
  { report; script; violation }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

let same_violation inv (c : checked) =
  match c.violation with
  | Some v -> Invariant.name v.Invariant.invariant = inv
  | None -> false

let shrink target (s : Repro.scenario) (v : Invariant.violation) ~script =
  let inv = Invariant.name v.Invariant.invariant in
  let fails_with crash script =
    same_violation inv
      (run_scenario target { s with Repro.crash } ~arbiter:(Explore.scripted script))
  in
  (* Fault plan first: no crash at all, else a lower parameter. *)
  let crash =
    if s.Repro.crash <> Crash_plan.No_crash && fails_with Crash_plan.No_crash script then
      Crash_plan.No_crash
    else begin
      let lower rebuild j =
        let j' = ref j in
        while !j' > 0 && fails_with (rebuild (!j' - 1)) script do
          decr j'
        done;
        rebuild !j'
      in
      match s.Repro.crash with
      | Crash_plan.No_crash -> Crash_plan.No_crash
      | Crash_plan.Mid_broadcast j -> lower (fun j -> Crash_plan.Mid_broadcast j) j
      | Crash_plan.After_queries j -> lower (fun j -> Crash_plan.After_queries j) j
    end
  in
  let script = Shrink.minimize ~fails:(fails_with crash) script in
  let s = { s with Repro.crash } in
  match run_scenario target s ~arbiter:(Explore.scripted script) with
  | { violation = Some v; _ } ->
    {
      Repro.scenario = s;
      script;
      invariant = Invariant.name v.Invariant.invariant;
      event = v.Invariant.event;
      detail = v.Invariant.detail;
    }
  | { violation = None; _ } ->
    (* Shrink validated every step against the predicate; an unreproducible
       result here means the target is nondeterministic. *)
    failwith (Printf.sprintf "Check.shrink: %s is not deterministic under replay" target.name)

(* ------------------------------------------------------------------ *)
(* Replay                                                             *)
(* ------------------------------------------------------------------ *)

type replay_result =
  | Reproduced of Invariant.violation
  | Diverged of string
  | Vanished

let replay ?targets (r : Repro.t) =
  match resolve ?targets r.Repro.scenario.Repro.protocol with
  | None -> Diverged (Printf.sprintf "unknown protocol %S" r.Repro.scenario.Repro.protocol)
  | Some target ->
    (match run_scenario target r.Repro.scenario ~arbiter:(Explore.scripted r.Repro.script) with
    | { violation = None; _ } -> Vanished
    | { violation = Some v; _ } ->
      let name = Invariant.name v.Invariant.invariant in
      if name <> r.Repro.invariant then
        Diverged
          (Printf.sprintf "expected %s to fail, got %s: %s" r.Repro.invariant name
             v.Invariant.detail)
      else if v.Invariant.event <> r.Repro.event then
        Diverged
          (Printf.sprintf "%s fails at event %d, recorded at %d" name v.Invariant.event
             r.Repro.event)
      else Reproduced v)

(* ------------------------------------------------------------------ *)
(* The fuzz driver                                                    *)
(* ------------------------------------------------------------------ *)

type outcome = {
  target_name : string;
  runs : int;
  dfs_runs : int;
  dfs_exhausted : bool;
  failures : Repro.t list;
}

let crash_descriptors =
  [
    Crash_plan.No_crash;
    Crash_plan.Mid_broadcast 0;
    Crash_plan.Mid_broadcast 1;
    Crash_plan.Mid_broadcast 2;
    Crash_plan.After_queries 0;
    Crash_plan.After_queries 1;
  ]

let pick prng l = List.nth l (Prng.int prng (List.length l))

(* Shared by [fuzz] and [campaign]: dedup by (invariant, scenario), shrink on
   admission, stop collecting past [max_failures]. *)
let failure_collector target ~max_failures =
  let failures = ref [] in
  let seen = ref [] in
  let note (s : Repro.scenario) (c : checked) =
    match c.violation with
    | None -> ()
    | Some v ->
      let key = (Invariant.name v.Invariant.invariant, s) in
      if List.length !failures < max_failures && not (List.mem key !seen) then begin
        seen := key :: !seen;
        failures := shrink target s v ~script:c.script :: !failures
      end
  in
  (note, fun () -> List.rev !failures)

let fuzz ?dfs_budget ?(max_failures = 5) ~budget ~seed target =
  if target.pool = [] then
    failwith (Printf.sprintf "Check.fuzz: %s has no admissible small instance" target.name);
  let dfs_budget = match dfs_budget with Some d -> min d budget | None -> budget / 4 in
  let note_failure, collected = failure_collector target ~max_failures in
  (* Phase 1: systematic DFS prefix on one fixed scenario — the first pool
     entry with faults (faults exercise the interesting schedules), default
     attack, the mildest interesting crash plan. *)
  let dfs_scenario =
    let k, n, t =
      match List.find_opt (fun (_, _, t) -> t > 0) target.pool with
      | Some p -> p
      | None -> List.hd target.pool
    in
    let crash =
      if t > 0 && target.model = Problem.Crash then Crash_plan.Mid_broadcast 1
      else Crash_plan.No_crash
    in
    {
      Repro.protocol = target.name;
      attack = (match target.attacks with a :: _ -> a | [] -> "default");
      k;
      n;
      t;
      seed = 1L;
      crash;
    }
  in
  let dfs =
    if dfs_budget <= 0 then None
    else
      Some
        (Explore.dfs ~budget:dfs_budget ~run:(fun ~arbiter ->
             let c = run_scenario target dfs_scenario ~arbiter in
             (* dfs re-finds its own failing script; record the first one. *)
             if c.violation <> None then note_failure dfs_scenario c;
             c.violation = None))
  in
  let dfs_runs, dfs_exhausted =
    match dfs with
    | None -> (0, false)
    | Some o -> (o.Explore.schedules_run, o.Explore.exhausted)
  in
  (* Phase 2: seeded random scenarios for the remaining budget. *)
  let prng = Prng.create (Int64.of_int (seed + 0x5eed)) in
  let random_runs = max 0 (budget - dfs_runs) in
  for _ = 1 to random_runs do
    let k, n, t = pick prng target.pool in
    let scenario =
      {
        Repro.protocol = target.name;
        attack = pick prng target.attacks;
        k;
        n;
        t;
        seed = Int64.of_int (1 + Prng.int prng 1_000_000);
        crash = pick prng crash_descriptors;
      }
    in
    let arbiter = Explore.random (Prng.create (Int64.of_int (1 + Prng.int prng 1_000_000))) in
    note_failure scenario (run_scenario target scenario ~arbiter)
  done;
  {
    target_name = target.name;
    runs = dfs_runs + random_runs;
    dfs_runs;
    dfs_exhausted;
    failures = collected ();
  }

let pp_outcome ppf o =
  Format.fprintf ppf "%s: %d runs (dfs %d%s), %d violation%s" o.target_name o.runs o.dfs_runs
    (if o.dfs_exhausted then ", exhausted" else "")
    (List.length o.failures)
    (if List.length o.failures = 1 then "" else "s");
  List.iter (fun r -> Format.fprintf ppf "@.  %a" Repro.pp r) o.failures

(* ------------------------------------------------------------------ *)
(* The coverage-guided campaign                                        *)
(* ------------------------------------------------------------------ *)

type campaign = {
  target_name : string;
  budget : int;
  seed : int;
  executed : int;
  seed_runs : int;
  mutated_runs : int;
  new_coverage_runs : int;
  coverage : Coverage.t;
  corpus : Corpus.t;
  failures : Repro.t list;
}

let campaign ?(max_failures = 5) ?bucket ~budget ~seed target =
  if target.pool = [] then
    failwith (Printf.sprintf "Check.campaign: %s has no admissible small instance" target.name);
  let coverage = Coverage.create () in
  let corpus = Corpus.create () in
  let note_failure, collected = failure_collector target ~max_failures in
  let prng = Prng.create (Int64.of_int (seed + 0xc0de)) in
  let executed = ref 0 in
  let new_coverage_runs = ref 0 in
  (* One observed execution: probe the engine, fold the run's distinct
     signatures into the map, admit coverage-fresh scripts to the corpus,
     hand any violation to the collector. *)
  let observe scenario ~arbiter =
    let p = Explore.probe ?bucket () in
    let c = run_scenario ~observer:p.Explore.observer target scenario ~arbiter in
    incr executed;
    let fresh = Coverage.note coverage (p.Explore.hits ()) in
    if fresh > 0 then incr new_coverage_runs;
    if fresh > 0 || Corpus.size corpus = 0 then
      Corpus.add corpus { Corpus.scenario; script = c.script; new_signatures = fresh };
    note_failure scenario c
  in
  let fresh_seed () = Int64.of_int (1 + Prng.int prng 1_000_000) in
  let fresh_arbiter () = Explore.random (Prng.create (fresh_seed ())) in
  (* Phase 1: seed the corpus round-robin over pool × attack × crash, pool
     varying fastest (a mixed-radix counter with the pool as the least
     significant digit): instance shapes — the dominant coverage axis — are
     all visited before the attack catalog starts cycling, so even a small
     seed budget populates the corpus across every (k, n, t). *)
  let np = List.length target.pool in
  let na = List.length target.attacks in
  let nc = List.length crash_descriptors in
  let seed_runs = max 1 (budget / 4) in
  for i = 0 to seed_runs - 1 do
    let k, n, t = List.nth target.pool (i mod np) in
    let attack = List.nth target.attacks (i / np mod na) in
    let crash = List.nth crash_descriptors (i / (np * na) mod nc) in
    let scenario =
      { Repro.protocol = target.name; attack; k; n; t; seed = fresh_seed (); crash }
    in
    observe scenario ~arbiter:(fresh_arbiter ())
  done;
  (* Phase 2: mutate coverage-interesting entries for the rest of the
     budget — replay the mutated prefix exactly, improvise the suffix. *)
  let mutated_runs = max 0 (budget - seed_runs) in
  for _ = 1 to mutated_runs do
    match Corpus.pick prng corpus with
    | None -> ()
    | Some base ->
      let donor = Corpus.pick prng corpus in
      let scenario, prefix =
        Mutate.mutate ~prng ~attacks:target.attacks ~crashes:crash_descriptors ~donor base
      in
      observe scenario
        ~arbiter:(Explore.scripted_then_random prefix (Prng.create (fresh_seed ())))
  done;
  {
    target_name = target.name;
    budget;
    seed;
    executed = !executed;
    seed_runs;
    mutated_runs;
    new_coverage_runs = !new_coverage_runs;
    coverage;
    corpus;
    failures = collected ();
  }

let campaign_stats_json c =
  let module Json = Dr_stats.Bench_io.Json in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"dr-campaign/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"target\": \"%s\",\n" (Json.escape c.target_name));
  Buffer.add_string b
    (Printf.sprintf "  \"budget\": %d, \"seed\": %d, \"executed\": %d,\n" c.budget c.seed
       c.executed);
  Buffer.add_string b
    (Printf.sprintf "  \"seed_runs\": %d, \"mutated_runs\": %d, \"new_coverage_runs\": %d,\n"
       c.seed_runs c.mutated_runs c.new_coverage_runs);
  Buffer.add_string b
    (Printf.sprintf "  \"distinct_signatures\": %d, \"coverage_hits\": %d,\n"
       (Coverage.distinct c.coverage) (Coverage.hits c.coverage));
  Buffer.add_string b (Printf.sprintf "  \"corpus_size\": %d,\n" (Corpus.size c.corpus));
  Buffer.add_string b "  \"violations\": [";
  List.iteri
    (fun i (r : Repro.t) ->
      if i > 0 then Buffer.add_string b ",";
      let s = r.Repro.scenario in
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"invariant\": \"%s\", \"attack\": \"%s\", \"k\": %d, \"n\": %d, \"t\": \
            %d, \"crash\": \"%s\", \"event\": %d }"
           (Json.escape r.Repro.invariant) (Json.escape s.Repro.attack) s.Repro.k s.Repro.n
           s.Repro.t
           (Crash_plan.descriptor_to_string s.Repro.crash)
           r.Repro.event))
    c.failures;
  if c.failures <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

let pp_campaign ppf c =
  Format.fprintf ppf
    "%s: %d runs (%d seed + %d mutated), %d signatures (%d runs hit new coverage), corpus %d, \
     %d violation%s"
    c.target_name c.executed c.seed_runs c.mutated_runs
    (Coverage.distinct c.coverage)
    c.new_coverage_runs (Corpus.size c.corpus) (List.length c.failures)
    (if List.length c.failures = 1 then "" else "s");
  List.iter (fun r -> Format.fprintf ppf "@.  %a" Repro.pp r) c.failures
