module Problem = Dr_core.Problem
module Spec = Dr_core.Spec
module Sim = Dr_engine.Sim

type t = Agreement | Termination | Spec_bound

let all = [ Agreement; Termination; Spec_bound ]

let name = function
  | Agreement -> "agreement"
  | Termination -> "termination"
  | Spec_bound -> "spec-bound"

let of_name = function
  | "agreement" -> Some Agreement
  | "termination" -> Some Termination
  | "spec-bound" -> Some Spec_bound
  | _ -> None

type violation = { invariant : t; event : int; detail : string }

let ints l = String.concat "," (List.map string_of_int l)

let check ?spec ~inst ~events (r : Problem.report) =
  let fail invariant detail = Some { invariant; event = events; detail } in
  let honest_blocked =
    match r.Problem.status with
    | Sim.Deadlock blocked -> List.filter (Problem.honest inst) blocked
    | Sim.Completed | Sim.Event_limit_reached -> []
  in
  if honest_blocked <> [] then
    fail Termination
      (Printf.sprintf "deadlock: honest peers [%s] blocked forever" (ints honest_blocked))
  else if r.Problem.status = Sim.Event_limit_reached then
    fail Termination "event limit reached before the run quiesced"
  else if not r.Problem.ok then
    fail Agreement
      (Printf.sprintf "honest peers [%s] output something other than X" (ints r.Problem.wrong))
  else
    match spec with
    | None -> None
    | Some b ->
      let k = inst.Problem.k in
      let t = Problem.t inst in
      let n = Problem.n inst in
      if b.Spec.randomized || not (b.Spec.resilience ~k ~t) then None
      else begin
        let bound = b.Spec.q_bound ~k ~n ~t ~b:inst.Problem.b in
        if float_of_int r.Problem.q_max <= bound then None
        else
          fail Spec_bound
            (Printf.sprintf "measured Q = %d exceeds the %s bound %.1f" r.Problem.q_max
               b.Spec.theorem bound)
      end

let pp_violation ppf v =
  Format.fprintf ppf "%s violated at event %d: %s" (name v.invariant) v.event v.detail
