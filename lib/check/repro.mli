(** Replayable counterexample files: the [*.repro.json] schema.

    A repro is everything needed to re-run a failing execution bit-identically:
    the scenario (protocol, attack name, instance parameters, seed, crash
    plan) plus the minimized choice script, and what is expected to happen
    (which invariant fails, at which event index). The JSON is written and
    parsed with the same machinery as the bench files
    ({!Dr_stats.Bench_io.Json}); no external dependency.

    {v
    {
      "schema": "dr-check/1",
      "protocol": "broken-order",
      "attack": "default",
      "k": 3, "n": 2, "t": 0,
      "seed": "1",
      "crash": "none",
      "script": [ 2 ],
      "invariant": "agreement",
      "event": 14,
      "detail": "honest peers [0] output something other than X"
    }
    v} *)

type scenario = {
  protocol : string;  (** resolved against {!Check.target} names *)
  attack : string;  (** registry attack vocabulary; ["default"] if none *)
  k : int;
  n : int;
  t : int;
  seed : int64;  (** instance seed — input array and fault spread *)
  crash : Dr_adversary.Crash_plan.descriptor;
}

type t = {
  scenario : scenario;
  script : int list;  (** minimized choice script; replay pads with 0 *)
  invariant : string;  (** {!Invariant.name} of the expected violation *)
  event : int;  (** schedule length at which the violation is detected *)
  detail : string;
}

val schema_id : string

val to_json : t -> string
(** Stable field order; byte-identical for equal values (golden-testable). *)

val of_json : string -> t
(** Raises [Failure] on malformed input, unknown schema, unknown crash
    descriptor or non-integer script entries. *)

val write : path:string -> t -> unit
val read : string -> t

val pp : Format.formatter -> t -> unit
(** One-line summary (no script) for CLI output. *)
