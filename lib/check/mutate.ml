(* Mutation operators over corpus entries.

   A mutation produces a new scenario plus a script *prefix*: the campaign
   replays the prefix exactly (Explore.scripted_then_random) and lets the
   seeded Prng improvise the rest, so every mutant explores a schedule
   neighbourhood of a known-interesting run instead of a fresh random point.
   All randomness comes from the caller's Prng — same seed, same mutants. *)

module Prng = Dr_engine.Prng
module Crash_plan = Dr_adversary.Crash_plan

type op = Truncate | Splice | Point | Crash_shift | Attack_swap | Reseed

let all = [ Truncate; Splice; Point; Crash_shift; Attack_swap; Reseed ]

let to_string = function
  | Truncate -> "truncate"
  | Splice -> "splice"
  | Point -> "point"
  | Crash_shift -> "crash-shift"
  | Attack_swap -> "attack-swap"
  | Reseed -> "reseed"

let take n l = List.filteri (fun i _ -> i < n) l

let drop n l = List.filteri (fun i _ -> i >= n) l

let truncate prng script =
  match script with [] -> [] | _ -> take (Prng.int prng (List.length script)) script

(* Prefix of the base up to a cut point, then the donor from its own cut
   point on — the classic crossover. Degenerates to truncation without a
   donor. *)
let splice prng script donor =
  match donor with
  | None | Some [] -> truncate prng script
  | Some d ->
    let cut_base = if script = [] then 0 else Prng.int prng (List.length script + 1) in
    let cut_donor = Prng.int prng (List.length d) in
    take cut_base script @ drop cut_donor d

(* Rewrite one choice to a fresh small value; the simulator clamps
   out-of-range choices, so any nonnegative value is legal. *)
let point prng script =
  match script with
  | [] -> [ Prng.int prng 4 ]
  | _ ->
    let at = Prng.int prng (List.length script) in
    List.mapi (fun i c -> if Int.equal i at then Prng.int prng 4 else c) script

let other prng ~eq pool current =
  match List.filter (fun x -> not (eq x current)) pool with
  | [] -> current
  | rest -> List.nth rest (Prng.int prng (List.length rest))

let mutate ~prng ~attacks ~crashes ~donor (e : Corpus.entry) =
  let s = e.Corpus.scenario in
  let op = List.nth all (Prng.int prng (List.length all)) in
  match op with
  | Truncate -> (s, truncate prng e.Corpus.script)
  | Splice -> (s, splice prng e.Corpus.script (Option.map (fun d -> d.Corpus.script) donor))
  | Point -> (s, point prng e.Corpus.script)
  | Crash_shift ->
    let crash =
      other prng
        ~eq:(fun a b -> String.equal (Crash_plan.descriptor_to_string a)
                          (Crash_plan.descriptor_to_string b))
        crashes s.Repro.crash
    in
    ({ s with Repro.crash }, e.Corpus.script)
  | Attack_swap ->
    let attack = other prng ~eq:String.equal attacks s.Repro.attack in
    ({ s with Repro.attack }, take (List.length e.Corpus.script / 2) e.Corpus.script)
  | Reseed ->
    let seed = Int64.of_int (1 + Prng.int prng 1_000_000) in
    ({ s with Repro.seed }, take (List.length e.Corpus.script / 2) e.Corpus.script)
