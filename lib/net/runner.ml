module Problem = Dr_core.Problem
module Transport = Dr_core.Transport
module Bitarray = Dr_source.Bitarray
module Prng = Dr_engine.Prng

type source = { host : string; port : int }
type chaos = { chaos_seed : int64; plan : Faultnet.plan }

type outcome =
  | Completed
  | Crashed
  | Link_lost
  | Source_unreachable
  | Timed_out
  | Corrupt_frame
  | Failed of string

let outcome_to_string = function
  | Completed -> "completed"
  | Crashed -> "crashed"
  | Link_lost -> "link-lost"
  | Source_unreachable -> "source-unreachable"
  | Timed_out -> "timed-out"
  | Corrupt_frame -> "corrupt-frame"
  | Failed msg -> "failed(" ^ msg ^ ")"

type child_result = {
  output : Bitarray.t option;
  msgs : int;
  bits : int;
  max_msg_bits : int;
  wakeups : int;
  retrans : int;
  corrupt_rx : int;
  outcome : outcome;
}

let failed_result outcome =
  {
    output = None;
    msgs = 0;
    bits = 0;
    max_msg_bits = 0;
    wakeups = 0;
    retrans = 0;
    corrupt_rx = 0;
    outcome;
  }

(* Classify a peer-fatal exception into the failure taxonomy. Injected
   crashes and voluntary halts are expected protocol behaviour; everything
   else names the infrastructure component that gave out. *)
let classify = function
  | Net_transport.Crashed | Dr_engine.Sim.Halted -> Crashed
  | Net_transport.Link_lost -> Link_lost
  | Source_client.Unreachable _ -> Source_unreachable
  | Frame.Corrupt _ | Frame.Desync _ -> Corrupt_frame
  | e -> Failed (Printexc.to_string e)

(* Restart syscalls interrupted by signals (the parent gets SIGCHLD-adjacent
   noise from k children; a stray signal must not abort supervision). *)
let rec eintr f = match f () with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> eintr f

(* The peer's private random stream: the (me+1)-th split of the master —
   identical to the simulator's per-peer assignment, so randomized protocol
   cores draw the same coin flips on both transports. *)
let peer_prng ~seed me =
  let master = Prng.create seed in
  let prng = ref (Prng.split master) in
  for _ = 1 to me do
    prng := Prng.split master
  done;
  !prng

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let listener () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  (fd, port)

(* Full-mesh setup for peer [me]: connect to every lower peer (announcing
   ourselves with a Hello frame), accept one connection from every higher
   peer (learning who from its Hello). Connects never deadlock against
   accepts: the kernel completes handshakes out of the listen backlog. *)
let build_mesh ~me ~k ~listeners ~ports =
  let links = Array.make k None in
  Array.iteri (fun j fd -> if j <> me then close_quietly fd) listeners;
  for j = 0 to me - 1 do
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    eintr (fun () -> Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(j))));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    Frame.send_value fd (me : int);
    links.(j) <- Some fd
  done;
  for _ = me + 1 to k - 1 do
    let fd, _ = eintr (fun () -> Unix.accept listeners.(me)) in
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    match (Frame.recv_value fd : int) with
    | j when j > me && j < k && links.(j) = None -> links.(j) <- Some fd
    | _ -> failwith "mesh handshake violation"
  done;
  close_quietly listeners.(me);
  links

let child_main (module C : Transport.CORE) ~inst ~me ~host ~source_port ~listeners ~ports
    ~crash_spec ~chaos ~client_cfg =
  let k = inst.Problem.k in
  let injector =
    match chaos with
    | Some { chaos_seed; plan } when not (Faultnet.is_none plan) ->
      Some (Faultnet.make ~seed:chaos_seed ~peer:me plan)
    | _ -> None
  in
  let source =
    Source_client.connect ~host ~port:source_port ~peer:me ~cfg:client_cfg ?chaos:injector ()
  in
  let links = build_mesh ~me ~k ~listeners ~ports in
  let env =
    Net_transport.make_env ~me ~k ~links ~source
      ~prng:(peer_prng ~seed:inst.Problem.seed me)
      ~crash:crash_spec ?chaos:injector ()
  in
  Net_transport.start_receivers env;
  let module T =
    Net_transport.Make
      (C.Msg)
      (struct
        let env = env
      end)
  in
  let module P = C.Process (T) in
  let output, outcome =
    match P.run inst me with
    | y -> (Some y, Completed)
    | exception e -> (None, classify e)
  in
  let c = env.Net_transport.counters in
  let result =
    {
      output;
      msgs = c.Net_transport.msgs;
      bits = c.Net_transport.bits;
      max_msg_bits = c.Net_transport.max_msg_bits;
      wakeups = c.Net_transport.wakeups;
      retrans = c.Net_transport.retrans;
      corrupt_rx = c.Net_transport.corrupt_rx;
      outcome;
    }
  in
  Array.iter (function Some fd -> close_quietly fd | None -> ()) links;
  Source_client.close source;
  result

(* Supervise the k result pipes until every child has reported, died, or the
   deadline passed. A child that exits without reporting surfaces as an
   immediate pipe EOF — classified via [waitpid], not waited out. *)
let collect_results ~k ~deadline ~pids read_ends =
  let results = Array.make k None in
  let pending = ref (Array.to_list (Array.mapi (fun i fd -> (i, fd)) read_ends)) in
  let now = Unix.gettimeofday in
  let dead_without_report i =
    match eintr (fun () -> Unix.waitpid [ Unix.WNOHANG ] pids.(i)) with
    | 0, _ -> Failed "peer process died without reporting"
    | _, Unix.WSIGNALED sg -> Failed (Printf.sprintf "peer process killed by signal %d" sg)
    | _, Unix.WEXITED code when code <> 0 ->
      Failed (Printf.sprintf "peer process exited with code %d" code)
    | _, _ -> Failed "peer process died without reporting"
    | exception Unix.Unix_error _ -> Failed "peer process died without reporting"
  in
  while !pending <> [] && now () < deadline do
    let fds = List.map snd !pending in
    let ready, _, _ = eintr (fun () -> Unix.select fds [] [] (max 0.01 (deadline -. now ()))) in
    pending :=
      List.filter
        (fun (i, fd) ->
          if List.mem fd ready then begin
            (match (Frame.recv_value fd : child_result) with
            | r -> results.(i) <- Some r
            | exception _ -> results.(i) <- Some (failed_result (dead_without_report i)));
            false
          end
          else true)
        !pending
  done;
  results

let run_detailed ?(timeout = 60.) ?source ?(crash = Dr_adversary.Crash_plan.none) ?chaos
    ?(client_cfg = Source_client.default_config) (module C : Transport.CORE) inst =
  (match C.supports inst with
  | Ok () -> ()
  | Error e -> failwith (C.name ^ ": " ^ e));
  let k = inst.Problem.k in
  let crash_specs =
    Array.init k (fun i ->
        match crash i with
        | Dr_engine.Sim.At_time _ ->
          failwith "net transport does not support At_time crash plans"
        | spec -> spec)
  in
  (* Sends to a peer that already exited surface as EPIPE on the writer;
     without this the default SIGPIPE disposition would kill the process. *)
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let t0 = Unix.gettimeofday () in
  let server, host, source_port =
    match source with
    | Some { host; port } -> (None, host, port)
    | None ->
      let s = Source_server.create ~k inst.Problem.x in
      Source_server.start s;
      (Some s, "127.0.0.1", Source_server.port s)
  in
  let control =
    Source_client.connect ~host ~port:source_port ~peer:Source_proto.control_peer
      ~cfg:client_cfg ()
  in
  (* Stats are deltas so an external long-running server works too. *)
  let base_stats, _, _ = Source_client.stats control in
  let listeners_ports = Array.init k (fun _ -> listener ()) in
  let listeners = Array.map fst listeners_ports in
  let ports = Array.map snd listeners_ports in
  let pipes = Array.init k (fun _ -> Unix.pipe ()) in
  let pids =
    Array.init k (fun i ->
        match Unix.fork () with
        | 0 ->
          (* Child: runs the peer process and ships one result frame back.
             [_exit], not [exit]: flushing channels inherited from the
             parent would duplicate its buffered output. *)
          Array.iteri
            (fun j (r, w) ->
              close_quietly r;
              if j <> i then close_quietly w)
            pipes;
          (try
             let result =
               try
                 child_main
                   (module C)
                   ~inst ~me:i ~host ~source_port ~listeners ~ports
                   ~crash_spec:crash_specs.(i) ~chaos ~client_cfg
               with e -> failed_result (classify e)
             in
             Frame.send_value (snd pipes.(i)) result
           with _ -> ());
          Unix._exit 0
        | pid -> pid)
  in
  Array.iter close_quietly listeners;
  Array.iter (fun (_, w) -> close_quietly w) pipes;
  let read_ends = Array.map fst pipes in
  let results = collect_results ~k ~deadline:(t0 +. timeout) ~pids read_ends in
  Array.iter close_quietly read_ends;
  Array.iter
    (fun pid ->
      match eintr (fun () -> Unix.waitpid [ Unix.WNOHANG ] pid) with
      | 0, _ ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (eintr (fun () -> Unix.waitpid [] pid))
      | _ -> ()
      | exception Unix.Unix_error _ -> ())
    pids;
  let final_stats, _, _ = Source_client.stats control in
  (match server with
  | Some s ->
    Source_client.shutdown control;
    Source_server.stop s
  | None -> ());
  Source_client.close control;
  let time = Unix.gettimeofday () -. t0 in
  ignore (Sys.signal Sys.sigpipe prev_sigpipe);
  let outcomes =
    Array.init k (fun i ->
        match results.(i) with Some r -> r.outcome | None -> Timed_out)
  in
  (* Report errors that are neither injected crashes nor voluntary halts. *)
  Array.iteri
    (fun i o ->
      match o with
      | Failed e ->
        (* dr-lint: allow L3 — a child process died unexpectedly; stderr is the only channel left *)
        Printf.eprintf "dr_net: peer %d failed: %s\n%!" i e (* dr-race: allow R3 — single-domain net runtime; same justification as the L3 waiver *)
      | _ -> ())
    outcomes;
  let honest = Problem.honest inst in
  let wrong = ref [] in
  let timed_out = ref [] in
  let msgs = ref 0 and bits = ref 0 and max_msg_bits = ref 0 and wakeups_max = ref 0 in
  let q_total = ref 0 and q_max = ref 0 and honest_count = ref 0 in
  for i = k - 1 downto 0 do
    if honest i then begin
      incr honest_count;
      let q = final_stats.(i) - base_stats.(i) in
      q_total := !q_total + q;
      if q > !q_max then q_max := q;
      match results.(i) with
      | Some { output; msgs = m; bits = b; max_msg_bits = mb; wakeups = w; _ } ->
        msgs := !msgs + m;
        bits := !bits + b;
        if mb > !max_msg_bits then max_msg_bits := mb;
        if w > !wakeups_max then wakeups_max := w;
        (match output with
        | Some y -> if not (Bitarray.equal y inst.Problem.x) then wrong := i :: !wrong
        | None -> wrong := i :: !wrong)
      | None ->
        timed_out := i :: !timed_out;
        wrong := i :: !wrong
    end
  done;
  let report =
    {
      Problem.protocol = C.name;
      ok = !wrong = [];
      wrong = !wrong;
      q_max = !q_max;
      q_mean =
        (if !honest_count = 0 then 0. else float_of_int !q_total /. float_of_int !honest_count);
      q_total = !q_total;
      msgs = !msgs;
      bits_sent = !bits;
      max_msg_bits = !max_msg_bits;
      time;
      wakeups_max = !wakeups_max;
      status =
        (if !timed_out = [] then Dr_engine.Sim.Completed else Dr_engine.Sim.Deadlock !timed_out);
    }
  in
  (report, outcomes)

let run ?timeout ?source ?crash ?chaos ?client_cfg core inst =
  fst (run_detailed ?timeout ?source ?crash ?chaos ?client_cfg core inst)
