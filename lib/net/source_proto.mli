(** The request/response vocabulary of the data-source service.

    One {!Frame} per value, [Marshal]-encoded. A connection starts with a
    single [Hello peer] identifying the querying peer (queries on that
    connection are charged to it), followed by any number of requests, each
    answered with exactly one response. *)

type request =
  | Hello of int
      (** peer id in [0, k); {!control_peer} opens an accounting/control
          connection that may not query *)
  | Query of int  (** the model's [Query(i)]: read bit [i] of the input *)
  | Stats  (** per-peer query counters *)
  | Describe  (** the served instance's dimensions *)
  | Shutdown  (** stop the server (control connections only) *)

type response =
  | Bit of bool
  | Stats_reply of { per_peer : int array; total : int }
  | Description of { n : int; k : int }
  | Bye  (** acknowledges [Shutdown] *)
  | Err of string  (** protocol violation or out-of-range argument *)

val control_peer : int
(** [-1]: the [Hello] id of a non-querying control connection. *)
