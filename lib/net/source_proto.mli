(** The request/response vocabulary of the data-source service.

    One {!Frame} per value, [Marshal]-encoded. A connection starts with a
    single [Hello peer] identifying the querying peer (queries on that
    connection are charged to it), followed by any number of requests, each
    answered with exactly one response.

    Queries carry a per-peer sequence number that increases monotonically
    across {e reconnects}: a client that loses a connection (or a reply)
    retries the same request under the same [seq], and the server answers a
    [seq] it has already processed from its replay cache {e without
    consulting the data source again} — so transport retries can never
    inflate the paper's Q meter. *)

type request =
  | Hello of int
      (** peer id in [0, k); {!control_peer} opens an accounting/control
          connection that may not query *)
  | Query of { seq : int; index : int }
      (** the model's [Query(i)]: read bit [index] of the input. [seq] is
          the peer's monotonically-increasing request number; a repeat of
          the last processed [seq] is answered from the replay cache and
          charged nothing, a [seq] older than that is a protocol error. *)
  | Stats  (** per-peer query counters *)
  | Describe  (** the served instance's dimensions *)
  | Shutdown  (** stop the server (control connections only) *)

type response =
  | Bit of bool
  | Stats_reply of { per_peer : int array; total : int; replays : int }
      (** [replays] counts queries answered from the replay cache — retries
          that were {e not} charged to any peer's meter *)
  | Description of { n : int; k : int }
  | Bye  (** acknowledges [Shutdown] *)
  | Err of string  (** protocol violation or out-of-range argument *)

val control_peer : int
(** [-1]: the [Hello] id of a non-querying control connection. *)
