(** The standalone external data source: [Query(i)] over TCP.

    Serves one input array to [k] peers with per-peer query accounting —
    the socket-transport incarnation of {!Dr_source.Data_source} (which it
    wraps; the paper's Q is read off {!stats}). Thread-per-connection;
    connections speak {!Source_proto} in {!Frame}s.

    Queries are answered through a per-peer replay cache keyed on the
    client's monotonically-increasing sequence number: a retried [Query]
    (after a reconnect or a lost reply) returns the cached response and is
    charged to the peer's meter {e exactly once} — transport faults can
    never inflate the paper's central cost metric. *)

type t

val create : ?addr:Unix.inet_addr -> ?port:int -> k:int -> Dr_source.Bitarray.t -> t
(** Bind and listen (not yet accepting). Defaults: loopback, an ephemeral
    port — read it back with {!port} before forking peers. *)

val port : t -> int

val serve : t -> unit
(** Accept loop in the calling thread; returns after a [Shutdown] request
    (the [dr_source_server] executable's main loop). *)

val start : t -> unit
(** {!serve} on a background thread (the in-process server of
    [Runner.run]). *)

val stop : t -> unit
(** Stop accepting and join the background thread. Established peer
    connections are not torn down forcibly; peers are expected to have
    disconnected. *)

val stats : t -> int array
(** Queries charged to each peer so far. *)

val total_queries : t -> int

val replay_hits : t -> int
(** Queries answered from the replay cache (retries charged to no meter). *)
