(** Checksummed, length-prefixed frame I/O over file descriptors.

    Every byte exchanged by the socket transport — peer links, source
    queries, child result pipes — travels in one of these frames: the
    {!Dr_core.Wire.Frame} header (magic, big-endian payload length, payload
    CRC-32) followed by the payload. Reads block until the full frame has
    arrived, retry transparently on [EINTR], and raise [End_of_file] on a
    connection closed mid-frame.

    Corruption surfaces as a {e typed} error, never as garbage handed to
    [Marshal]: a frame whose checksum fails raises {!Corrupt} after the
    frame has been consumed (the stream is still in sync — skip it and keep
    reading), while a header whose magic or length cannot be trusted raises
    {!Desync} before anything is allocated (the connection is lost). *)

exception Corrupt of string
(** Well-framed payload with a CRC mismatch. Recoverable: the frame was
    fully consumed, the next read starts at a frame boundary. *)

exception Desync of string
(** Bad magic or a length outside the {!Dr_core.Wire.Frame.max_payload}
    bound — raised {e before} allocating the payload, so a hostile 4-GB
    length cannot provoke the allocation. The stream position is unknown;
    treat the connection as dead. *)

val really_read : Unix.file_descr -> bytes -> int -> int -> unit
(** Read exactly [len] bytes, restarting on partial reads and [EINTR];
    [End_of_file] if the descriptor closes first. Exposed for tests. *)

val write_all : Unix.file_descr -> bytes -> int -> int -> unit
(** Write exactly [len] bytes, restarting on partial writes and [EINTR].
    Exposed for tests. *)

val send_bytes : Unix.file_descr -> bytes -> unit
val recv_bytes : Unix.file_descr -> bytes

val send_corrupted : Unix.file_descr -> bytes -> unit
(** Fault injection: transmit a frame whose header is intact (correct
    length, CRC of the {e intended} payload) but whose payload has a bit
    flipped, so the receiver reads a well-framed message, detects the
    mismatch and raises {!Corrupt} — framing never desynchronizes. *)

val send_value : Unix.file_descr -> 'a -> unit
(** [Marshal] the value into one frame. *)

val recv_value : Unix.file_descr -> 'a
(** Unmarshal one frame. As with [Marshal.from_bytes] the result type is
    trusted, not checked — only use on channels whose peer is this library
    (both ends of every connection here are). *)
