(** Length-prefixed frame I/O over file descriptors.

    Every byte exchanged by the socket transport — peer links, source
    queries, child result pipes — travels in one of these frames: the
    {!Dr_core.Wire.Frame} 4-byte big-endian length header followed by the
    payload. Reads block until the full frame has arrived and raise
    [End_of_file] on a connection closed mid-frame. *)

val send_bytes : Unix.file_descr -> bytes -> unit
val recv_bytes : Unix.file_descr -> bytes

val send_value : Unix.file_descr -> 'a -> unit
(** [Marshal] the value into one frame. *)

val recv_value : Unix.file_descr -> 'a
(** Unmarshal one frame. As with [Marshal.from_bytes] the result type is
    trusted, not checked — only use on channels whose peer is this library
    (both ends of every connection here are). *)
