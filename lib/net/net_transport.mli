(** {!Dr_core.Transport.S} over real sockets.

    One peer = one OS process; every peer link is a TCP connection carrying
    {!Frame}s of [Marshal]-encoded protocol messages; [query] is a blocking
    round-trip to the {!Source_server} through the retrying
    {!Source_client}. Per-link receiver threads feed a blocking inbox so
    [receive] has the same "next delivered message" semantics as the
    simulator.

    Crash injection honours the event-counted {!Dr_engine.Sim.crash_spec}s:
    [After_sends j] raises {!Crashed} on the (j+1)-th send attempt (the
    message is lost), [After_queries j] right after the j-th query's reply.
    [At_time] is rejected upstream by {!Runner} — wall-clock crash times are
    not meaningful in an asynchronous run.

    Fault injection ({!Faultnet}) sits below the reliability the protocols
    assume: a send may stall, be dropped (and silently retransmitted after a
    pause) or first go out with a flipped bit (the receiver discards it by
    CRC and the good copy follows) — the protocol still sees exactly one
    logical delivery, charged once to the M meter. A receiver thread whose
    link dies retires it with a sentinel; once every link is down and the
    inbox is drained, [receive] raises {!Link_lost} instead of blocking
    forever, so the runner can classify the peer's outcome.

    The peer's random stream reproduces the simulator's discipline: the
    (me+1)-th [Prng.split] of [Prng.create seed], so protocol coin flips
    agree across the two transports. *)

exception Crashed
(** Raised by the crash hooks; the peer process unwinds and reports no
    output. Protocol code must not catch it. [die] raises
    {!Dr_engine.Sim.Halted}, as on the simulator. *)

exception Link_lost
(** Raised by [receive] when every peer link is down and no queued message
    remains — the peer is partitioned and can never be woken again. *)

module Bqueue : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a
  val try_pop : 'a t -> 'a option
end

type inbox_item = Msg of int * bytes | Link_down of int

type counters = {
  mutable msgs : int;
  mutable bits : int;
  mutable max_msg_bits : int;
  mutable wakeups : int;
  mutable queries : int;
  mutable retrans : int;
      (** injected-fault retransmissions on peer links (drops + corrupted
          first copies) — infrastructure traffic, not charged to [msgs] *)
  mutable corrupt_rx : int;  (** received frames discarded by CRC *)
}

type env = {
  me : int;
  k : int;
  links : Unix.file_descr option array;  (** [links.(me) = None] *)
  inbox : inbox_item Bqueue.t;
  source : Source_client.t;
  prng : Dr_engine.Prng.t;
  crash : Dr_engine.Sim.crash_spec;
  chaos : Faultnet.t option;
  counters : counters;
  start : float;
  mutable links_down : int;
}

val make_env :
  me:int ->
  k:int ->
  links:Unix.file_descr option array ->
  source:Source_client.t ->
  prng:Dr_engine.Prng.t ->
  crash:Dr_engine.Sim.crash_spec ->
  ?chaos:Faultnet.t ->
  unit ->
  env

val start_receivers : env -> unit
(** Spawn one reader thread per open link, feeding [env.inbox]. *)

module Make (M : Dr_core.Transport.MSG) (_ : sig
  val env : env
end) : Dr_core.Transport.S with type msg = M.t
