(** {!Dr_core.Transport.S} over real sockets.

    One peer = one OS process; every peer link is a TCP connection carrying
    {!Frame}s of [Marshal]-encoded protocol messages; [query] is a blocking
    round-trip to the {!Source_server}. Per-link receiver threads feed a
    blocking inbox so [receive] has the same "next delivered message"
    semantics as the simulator.

    Crash injection honours the event-counted {!Dr_engine.Sim.crash_spec}s:
    [After_sends j] raises {!Crashed} on the (j+1)-th send attempt (the
    message is lost), [After_queries j] right after the j-th query's reply.
    [At_time] is rejected upstream by {!Runner} — wall-clock crash times are
    not meaningful in an asynchronous run.

    The peer's random stream reproduces the simulator's discipline: the
    (me+1)-th [Prng.split] of [Prng.create seed], so protocol coin flips
    agree across the two transports. *)

exception Crashed
(** Raised by the crash hooks; the peer process unwinds and reports no
    output. Protocol code must not catch it. [die] raises
    {!Dr_engine.Sim.Halted}, as on the simulator. *)

module Bqueue : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a
end

type counters = {
  mutable msgs : int;
  mutable bits : int;
  mutable max_msg_bits : int;
  mutable wakeups : int;
  mutable queries : int;
}

type env = {
  me : int;
  k : int;
  links : Unix.file_descr option array;  (** [links.(me) = None] *)
  inbox : (int * bytes) Bqueue.t;
  source : Source_client.t;
  prng : Dr_engine.Prng.t;
  crash : Dr_engine.Sim.crash_spec;
  counters : counters;
  start : float;
}

val make_env :
  me:int ->
  k:int ->
  links:Unix.file_descr option array ->
  source:Source_client.t ->
  prng:Dr_engine.Prng.t ->
  crash:Dr_engine.Sim.crash_spec ->
  env

val start_receivers : env -> unit
(** Spawn one reader thread per open link, feeding [env.inbox]. *)

module Make (M : Dr_core.Transport.MSG) (_ : sig
  val env : env
end) : Dr_core.Transport.S with type msg = M.t
