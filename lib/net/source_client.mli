(** Client side of the {!Source_server} service: one connection, one peer
    identity, blocking request/response — hardened against a slow or
    transiently unreachable source.

    Every request runs under a per-attempt deadline; a timeout, connection
    loss or corrupt frame tears the connection down and the request is
    retried over a fresh connection after a capped exponential backoff with
    PRNG jitter, up to [max_retries] reconnects (then {!Unreachable}).
    Queries carry a monotonically-increasing sequence number, so a retry of
    a request the server already processed is answered from the server's
    replay cache and charged to the peer's Q meter exactly once. *)

exception Unreachable of string
(** The source could not be reached (or a request could not complete)
    within the configured retry budget. *)

type config = {
  request_timeout : float;  (** per-attempt deadline in seconds; [0.] = none *)
  max_retries : int;  (** reconnect attempts per request *)
  backoff_base : float;  (** first backoff, seconds *)
  backoff_cap : float;  (** backoff ceiling, seconds *)
}

val default_config : config
(** 5 s deadline, 8 retries, backoff 0.05 s doubling up to 1 s. *)

type t

val connect :
  ?host:string -> port:int -> peer:int -> ?cfg:config -> ?chaos:Faultnet.t -> unit -> t
(** Connect (eagerly, with the retry discipline above) and send
    [Hello peer]. [peer = Source_proto.control_peer] opens an
    accounting/control connection. [chaos] injects the {!Faultnet} fault
    schedule into every subsequent query. Raises {!Unreachable}. *)

val query : t -> int -> bool
(** [Query(i)], retried across reconnects under one sequence number.
    Raises [Failure] on a server-side error, {!Unreachable} on retry
    exhaustion. *)

val describe : t -> int * int
(** [(n, k)] of the served instance. *)

val stats : t -> int array * int * int
(** [(per_peer, total, replay_hits)] query counters. *)

val shutdown : t -> unit
(** Ask the server to stop (control connections). Not retried. *)

val reconnects : t -> int
(** Connections re-established since [connect] returned. *)

val sequence : t -> int
(** Highest query sequence number issued so far. *)

val close : t -> unit
