(** Client side of the {!Source_server} service: one connection, one peer
    identity, blocking request/response. *)

type t

val connect : ?host:string -> port:int -> peer:int -> unit -> t
(** Connect and send [Hello peer]. [peer = Source_proto.control_peer] opens
    an accounting/control connection. *)

val query : t -> int -> bool
(** [Query(i)]. Raises [Failure] on a server-side error. *)

val describe : t -> int * int
(** [(n, k)] of the served instance. *)

val stats : t -> int array * int
(** [(per_peer, total)] query counters. *)

val shutdown : t -> unit
(** Ask the server to stop (control connections). *)

val close : t -> unit
