(** Deterministic network fault injection for the socket runtime.

    A {!plan} is a seeded schedule of infrastructure faults — dropped or
    corrupted link transmissions, per-send stalls, a forced source-link
    disconnect, lost source replies, a source blackout window — parsed from
    the compact spec grammar of [dr_download --chaos SEED:SPEC]:

    {v
    drop=P                 P(peer-link send attempt is dropped and must be
                           retransmitted), per attempt
    corrupt=P              P(a send first transmits a copy with a flipped
                           payload bit; the receiver discards it by CRC)
    stall=DUR[@pN]         sleep DUR before every send (of peer N only,
                           with @pN); DUR = 50ms | 2s | 1.5
    disconnect=peerN@msgM  peer N's source connection is torn down when its
                           M-th outbound operation (sends + source requests)
                           completes; the client must reconnect
    reply_loss=P           P(a source reply is delivered but lost by the
                           client, forcing a same-sequence retry that the
                           server must answer from its replay cache)
    source_blackout=N@qJ   source requests J..J+N-1 (0-based, per peer) are
                           refused before reaching the wire
    source_blackout=D@tT   requests issued in the wall-clock window
                           [T, T+D) from peer start are refused
    v}

    Every PRNG-based decision is drawn from a dedicated split of the chaos
    seed — the (peer+1)-th split of the master, mirroring the runner's
    per-peer protocol streams — keyed only on the peer id and the operation
    index. A given [SEED:SPEC] therefore reproduces the identical fault
    schedule on every run, independently of scheduling; only the [@tT]
    blackout form consults the wall clock (documented above), and it never
    changes a verdict because refused requests are retried until the window
    passes.

    Faults are injected {e below} the reliability the protocols assume:
    dropped and corrupted transmissions are retransmitted by the sender,
    lost replies are re-requested under the same sequence number, so honest
    peers still terminate with the right output and the paper's Q meter is
    charged exactly once per logical query — chaos may slow a run, never
    change its verdict. *)

type blackout =
  | Time_window of { at : float; dur : float }
  | Query_window of { at : int; count : int }

type plan = {
  drop : float;
  corrupt : float;
  stall : float;
  stall_peer : int option;
  disconnect : (int * int) option;  (** (peer, outbound-op index) *)
  reply_loss : float;
  blackout : blackout option;
}

val none : plan
val is_none : plan -> bool

val parse : string -> (plan, string) result
(** Parse a comma-separated clause list; [""] is {!none}. *)

val parse_seeded : string -> (int64 * plan, string) result
(** Parse the [SEED:SPEC] argument form of [--chaos]. *)

val describe : plan -> string
(** Canonical spec string; [parse (describe p)] reproduces [p]. *)

(** {1 The per-process injector} *)

type t

val make : seed:int64 -> peer:int -> plan -> t
(** One injector per peer process, drawing from the (peer+1)-th split of
    the chaos master. *)

val max_pre_drops : int
(** Cap on consecutive injected drops of one send (keeps retransmission
    loops finite even under [drop=1]). *)

type link_action = {
  stall : float;  (** sleep this long before transmitting *)
  pre_drops : int;  (** failed (dropped) transmissions before the real one *)
  corrupt_first : bool;  (** first transmit a corrupted copy *)
}

val on_send : t -> link_action
(** Decision for the next protocol send (advances the op counter). *)

type source_action = {
  refuse : bool;  (** blackout: fail the attempt before touching the wire *)
  drop_link : bool;  (** injected disconnect: tear the connection down first *)
  lose_reply : bool;  (** read the server's reply, then discard it *)
}

val on_source_request : t -> elapsed:float -> source_action
(** Decision for the next logical source request (advances the op and query
    counters). [elapsed] is seconds since peer start, used only by the
    [@tT] blackout form. *)

val in_blackout : t -> elapsed:float -> bool
(** Is the wall-clock blackout window active? (Used to keep {e retries} of
    a refused request failing until the window passes.) *)
