(** Run a transport-generic protocol core as [k] real OS processes, under
    supervision.

    The runner forks one child per peer; children wire themselves into a
    full TCP mesh over loopback (ports are bound by the parent before
    forking, so there is no registration round), connect to the data-source
    server through the retrying {!Source_client}, and execute
    [Core.Process(Net_transport).run]. Each child ships its output array,
    message counters and a {!outcome} classification back over a pipe; the
    paper's Q is read from the {e server's} per-peer accounting, the
    authoritative meter (whose replay cache guarantees transport retries are
    charged exactly once).

    Supervision: the parent watches all result pipes together; a child that
    dies without reporting is detected by pipe EOF and classified through
    [waitpid] immediately, not waited out, and every supervision syscall
    restarts on [EINTR]. Peers missing at the deadline are killed and
    reported [Timed_out].

    The resulting {!Dr_core.Problem.report} has the same correctness verdict
    semantics as the simulator path ([Exec.finish]): [ok] iff every honest
    peer terminated with output = X. [time] is wall-clock seconds (not
    comparable with the simulator's virtual T), and message/timing totals
    reflect this particular real schedule — only schedule-invariant
    quantities (the verdict; query counts of schedule-invariant protocol
    configurations) are comparable across transports. *)

type source = { host : string; port : int }

type chaos = { chaos_seed : int64; plan : Faultnet.plan }
(** A {!Faultnet} fault schedule: each child draws its own deterministic
    stream from [chaos_seed], so the same [{chaos_seed; plan}] reproduces
    the identical fault schedule on every run. *)

type outcome =
  | Completed  (** the peer process returned an output (possibly wrong) *)
  | Crashed  (** injected crash ([After_sends]/[After_queries]) or [die ()] *)
  | Link_lost  (** every peer link went down; [receive] could never return *)
  | Source_unreachable  (** source retry budget exhausted *)
  | Timed_out  (** no report by the deadline; the child was killed *)
  | Corrupt_frame  (** an unrecoverable corrupt/desynchronized stream *)
  | Failed of string  (** anything else, verbatim *)

val outcome_to_string : outcome -> string

val run :
  ?timeout:float ->
  ?source:source ->
  ?crash:Dr_adversary.Crash_plan.t ->
  ?chaos:chaos ->
  ?client_cfg:Source_client.config ->
  (module Dr_core.Transport.CORE) ->
  Dr_core.Problem.instance ->
  Dr_core.Problem.report
(** Defaults: [timeout = 60.] seconds of wall clock, after which stuck
    children are killed and reported in a [Deadlock] status; [source] — a
    {!Source_server} spawned in-process for the instance's array (pass an
    address to use an external [dr_source_server], whose query counters are
    then read as deltas); [crash] — no crashes; [chaos] — no injected
    faults; [client_cfg] — {!Source_client.default_config}. Raises
    [Failure] when the core rejects the instance ([supports]) or the crash
    plan contains an [At_time] spec (wall-clock crash instants are not
    meaningful here — use the event-counted specs), and
    {!Source_client.Unreachable} when an external source cannot be reached
    at all. *)

val run_detailed :
  ?timeout:float ->
  ?source:source ->
  ?crash:Dr_adversary.Crash_plan.t ->
  ?chaos:chaos ->
  ?client_cfg:Source_client.config ->
  (module Dr_core.Transport.CORE) ->
  Dr_core.Problem.instance ->
  Dr_core.Problem.report * outcome array
(** Like {!run}, also returning each peer's {!outcome} (indexed by peer id,
    faulty peers included) — the failure taxonomy behind the report's flat
    [wrong] list. *)
