(** Run a transport-generic protocol core as [k] real OS processes.

    The runner forks one child per peer; children wire themselves into a
    full TCP mesh over loopback (ports are bound by the parent before
    forking, so there is no registration round), connect to the data-source
    server, and execute [Core.Process(Net_transport).run]. Each child ships
    its output array and message counters back over a pipe; the paper's Q is
    read from the {e server's} per-peer accounting, the authoritative meter.

    The resulting {!Dr_core.Problem.report} has the same correctness verdict
    semantics as the simulator path ([Exec.finish]): [ok] iff every honest
    peer terminated with output = X. [time] is wall-clock seconds (not
    comparable with the simulator's virtual T), and message/timing totals
    reflect this particular real schedule — only schedule-invariant
    quantities (the verdict; query counts of schedule-invariant protocol
    configurations) are comparable across transports. *)

type source = { host : string; port : int }

val run :
  ?timeout:float ->
  ?source:source ->
  ?crash:Dr_adversary.Crash_plan.t ->
  (module Dr_core.Transport.CORE) ->
  Dr_core.Problem.instance ->
  Dr_core.Problem.report
(** Defaults: [timeout = 60.] seconds of wall clock, after which stuck
    children are killed and reported in a [Deadlock] status; [source] — a
    {!Source_server} spawned in-process for the instance's array (pass an
    address to use an external [dr_source_server], whose query counters are
    then read as deltas); [crash] — no crashes. Raises [Failure] when the
    core rejects the instance ([supports]) or the crash plan contains an
    [At_time] spec (wall-clock crash instants are not meaningful here — use
    the event-counted specs). *)
