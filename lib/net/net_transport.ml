module Prng = Dr_engine.Prng
module Transport = Dr_core.Transport

exception Crashed

(* A simple blocking queue: receiver threads push raw frames, the protocol
   thread pops them in [receive]. *)
module Bqueue = struct
  type 'a t = { q : 'a Queue.t; m : Mutex.t; c : Condition.t }

  let create () = { q = Queue.create (); m = Mutex.create (); c = Condition.create () }

  let push t v =
    Mutex.lock t.m;
    Queue.push v t.q;
    Condition.signal t.c;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.c t.m
    done;
    let v = Queue.pop t.q in
    Mutex.unlock t.m;
    v
end

type counters = {
  mutable msgs : int;
  mutable bits : int;
  mutable max_msg_bits : int;
  mutable wakeups : int;
  mutable queries : int;
}

type env = {
  me : int;
  k : int;
  links : Unix.file_descr option array;
  inbox : (int * bytes) Bqueue.t;
  source : Source_client.t;
  prng : Prng.t;
  crash : Dr_engine.Sim.crash_spec;
  counters : counters;
  start : float;
}

let make_counters () = { msgs = 0; bits = 0; max_msg_bits = 0; wakeups = 0; queries = 0 }

let make_env ~me ~k ~links ~source ~prng ~crash =
  {
    me;
    k;
    links;
    inbox = Bqueue.create ();
    source;
    prng;
    crash;
    counters = make_counters ();
    start = Unix.gettimeofday ();
  }

(* Feed one peer link into the inbox until the remote end closes. Runs on
   its own thread; [Marshal] decoding happens on the protocol thread (in
   [receive]), keyed by the protocol's own message type. *)
let receiver env ~src fd =
  let rec loop () =
    match Frame.recv_bytes fd with
    | payload ->
      Bqueue.push env.inbox (src, payload);
      loop ()
    | exception (End_of_file | Unix.Unix_error _) -> ()
  in
  loop ()

let start_receivers env =
  Array.iteri
    (fun src link ->
      match link with
      | Some fd -> ignore (Thread.create (fun () -> receiver env ~src fd) ())
      | None -> ())
    env.links

module Make (M : Transport.MSG) (E : sig
  val env : env
end) : Transport.S with type msg = M.t = struct
  type msg = M.t

  let e = E.env
  let me () = e.me
  let peer_count () = e.k

  let send dst m =
    (match e.crash with
    | Dr_engine.Sim.After_sends j when e.counters.msgs >= j -> raise Crashed
    | _ -> ());
    let sz = M.size_bits m in
    e.counters.msgs <- e.counters.msgs + 1;
    e.counters.bits <- e.counters.bits + sz;
    if sz > e.counters.max_msg_bits then e.counters.max_msg_bits <- sz;
    match e.links.(dst) with
    | Some fd -> (
      (* A peer that already terminated may have closed its end; like the
         simulator, which drops deliveries to finished peers, treat that as
         a successful (lost) send. *)
      try Frame.send_bytes fd (Marshal.to_bytes m [])
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())
    | None -> invalid_arg "Net_transport.send: bad destination"

  let broadcast m =
    for dst = 0 to e.k - 1 do
      if dst <> e.me then send dst m
    done

  let receive () =
    e.counters.wakeups <- e.counters.wakeups + 1;
    let src, payload = Bqueue.pop e.inbox in
    (src, (Marshal.from_bytes payload 0 : M.t))

  let query i =
    let v = Source_client.query e.source i in
    e.counters.queries <- e.counters.queries + 1;
    (match e.crash with
    | Dr_engine.Sim.After_queries j when e.counters.queries >= j -> raise Crashed
    | _ -> ());
    v

  let clock () = Unix.gettimeofday () -. e.start
  let rng () = e.prng
  let sleep d = if d > 0. then Thread.delay d
  let note _ = ()
  let die () = raise Dr_engine.Sim.Halted
end
