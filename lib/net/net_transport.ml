module Prng = Dr_engine.Prng
module Transport = Dr_core.Transport

exception Crashed
exception Link_lost

(* A simple blocking queue: receiver threads push raw frames, the protocol
   thread pops them in [receive]. *)
module Bqueue = struct
  type 'a t = { q : 'a Queue.t; m : Mutex.t; c : Condition.t }

  let create () = { q = Queue.create (); m = Mutex.create (); c = Condition.create () }

  let push t v =
    Mutex.lock t.m;
    Queue.push v t.q;
    Condition.signal t.c;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.c t.m
    done;
    let v = Queue.pop t.q in
    Mutex.unlock t.m;
    v

  let try_pop t =
    Mutex.lock t.m;
    let v = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.m;
    v
end

type inbox_item = Msg of int * bytes | Link_down of int

type counters = {
  mutable msgs : int;
  mutable bits : int;
  mutable max_msg_bits : int;
  mutable wakeups : int;
  mutable queries : int;
  mutable retrans : int;  (** injected-fault retransmissions on peer links *)
  mutable corrupt_rx : int;  (** frames discarded by CRC on receive *)
}

type env = {
  me : int;
  k : int;
  links : Unix.file_descr option array;
  inbox : inbox_item Bqueue.t;
  source : Source_client.t;
  prng : Prng.t;
  crash : Dr_engine.Sim.crash_spec;
  chaos : Faultnet.t option;
  counters : counters;
  start : float;
  mutable links_down : int;  (** links whose receiver has exited; protocol thread only *)
}

let make_counters () =
  { msgs = 0; bits = 0; max_msg_bits = 0; wakeups = 0; queries = 0; retrans = 0; corrupt_rx = 0 }

let make_env ~me ~k ~links ~source ~prng ~crash ?chaos () =
  {
    me;
    k;
    links;
    inbox = Bqueue.create ();
    source;
    prng;
    crash;
    chaos;
    counters = make_counters ();
    start = Unix.gettimeofday ();
    links_down = 0;
  }

let open_links env =
  Array.fold_left (fun n l -> if Option.is_some l then n + 1 else n) 0 env.links

(* Feed one peer link into the inbox until the remote end closes. Runs on
   its own thread; [Marshal] decoding happens on the protocol thread (in
   [receive]), keyed by the protocol's own message type. A frame whose CRC
   fails is counted and dropped — the stream stays in sync and the sender's
   fault layer retransmits — while a desynchronized or closed stream
   retires the link with a [Link_down] sentinel so blocked receivers can
   learn the topology shrank. *)
let receiver env ~src fd =
  let rec loop () =
    match Frame.recv_bytes fd with
    | payload ->
      Bqueue.push env.inbox (Msg (src, payload));
      loop ()
    | exception Frame.Corrupt _ ->
      env.counters.corrupt_rx <- env.counters.corrupt_rx + 1;
      loop ()
    | exception (End_of_file | Unix.Unix_error _ | Frame.Desync _) ->
      Bqueue.push env.inbox (Link_down src)
  in
  loop ()

let start_receivers env =
  Array.iteri
    (fun src link ->
      match link with
      | Some fd -> ignore (Thread.create (fun () -> receiver env ~src fd) ())
      | None -> ())
    env.links

(* Pacing between injected-fault retransmissions: fixed small backoff,
   doubling and capped — wall-clock only, never protocol-visible. *)
let retrans_delay attempt =
  let d = 0.0005 *. (2. ** float_of_int (min attempt 6)) in
  Thread.delay d

module Make (M : Transport.MSG) (E : sig
  val env : env
end) : Transport.S with type msg = M.t = struct
  type msg = M.t

  let e = E.env
  let me () = e.me
  let peer_count () = e.k

  let transmit fd payload =
    match e.chaos with
    | None -> Frame.send_bytes fd payload
    | Some c ->
      let a = Faultnet.on_send c in
      if a.Faultnet.stall > 0. then Thread.delay a.Faultnet.stall;
      for i = 0 to a.Faultnet.pre_drops - 1 do
        (* The attempt is dropped before reaching the wire; all the sender
           observes is the retransmission pause. *)
        e.counters.retrans <- e.counters.retrans + 1;
        retrans_delay i
      done;
      if a.Faultnet.corrupt_first then begin
        Frame.send_corrupted fd payload;
        e.counters.retrans <- e.counters.retrans + 1;
        retrans_delay 0
      end;
      Frame.send_bytes fd payload

  let send dst m =
    (match e.crash with
    | Dr_engine.Sim.After_sends j when e.counters.msgs >= j -> raise Crashed
    | _ -> ());
    let sz = M.size_bits m in
    e.counters.msgs <- e.counters.msgs + 1;
    e.counters.bits <- e.counters.bits + sz;
    if sz > e.counters.max_msg_bits then e.counters.max_msg_bits <- sz;
    match e.links.(dst) with
    | Some fd -> (
      (* A peer that already terminated may have closed its end; like the
         simulator, which drops deliveries to finished peers, treat that as
         a successful (lost) send. *)
      try transmit fd (Marshal.to_bytes m [])
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())
    | None -> invalid_arg "Net_transport.send: bad destination"

  let broadcast m =
    for dst = 0 to e.k - 1 do
      if dst <> e.me then send dst m
    done

  let receive () =
    e.counters.wakeups <- e.counters.wakeups + 1;
    let rec next () =
      if e.links_down >= open_links e then
        (* Every receiver thread has exited, so nothing can be pushed
           anymore: drain what is left, then report the partition. *)
        match Bqueue.try_pop e.inbox with
        | Some (Msg (src, payload)) -> (src, payload)
        | Some (Link_down _) | None -> raise Link_lost
      else
        match Bqueue.pop e.inbox with
        | Msg (src, payload) -> (src, payload)
        | Link_down _ ->
          e.links_down <- e.links_down + 1;
          next ()
    in
    let src, payload = next () in
    (src, (Marshal.from_bytes payload 0 : M.t))

  let query i =
    let v = Source_client.query e.source i in
    e.counters.queries <- e.counters.queries + 1;
    (match e.crash with
    | Dr_engine.Sim.After_queries j when e.counters.queries >= j -> raise Crashed
    | _ -> ());
    v

  let clock () = Unix.gettimeofday () -. e.start
  let rng () = e.prng
  let sleep d = if d > 0. then Thread.delay d
  let note _ = ()
  let die () = raise Dr_engine.Sim.Halted
end
