type request =
  | Hello of int
  | Query of { seq : int; index : int }
  | Stats
  | Describe
  | Shutdown

type response =
  | Bit of bool
  | Stats_reply of { per_peer : int array; total : int; replays : int }
  | Description of { n : int; k : int }
  | Bye
  | Err of string

let control_peer = -1
