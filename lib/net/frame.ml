module Wire = Dr_core.Wire

let rec really_read fd buf off len =
  if len > 0 then begin
    let r = Unix.read fd buf off len in
    if r = 0 then raise End_of_file;
    really_read fd buf (off + r) (len - r)
  end

let rec write_all fd buf off len =
  if len > 0 then begin
    let w = Unix.write fd buf off len in
    write_all fd buf (off + w) (len - w)
  end

let send_bytes fd payload =
  let len = Bytes.length payload in
  let header = Wire.Frame.encode_header len in
  write_all fd header 0 (Bytes.length header);
  write_all fd payload 0 len

let recv_bytes fd =
  let header = Bytes.create Wire.Frame.header_len in
  really_read fd header 0 (Bytes.length header);
  let len = Wire.Frame.decode_header header in
  let payload = Bytes.create len in
  really_read fd payload 0 len;
  payload

let send_value fd v = send_bytes fd (Marshal.to_bytes v [])
let recv_value fd = Marshal.from_bytes (recv_bytes fd) 0
