module Wire = Dr_core.Wire

exception Corrupt of string
exception Desync of string

(* Restart a syscall interrupted by a signal: a stray SIGCHLD must never
   surface as Unix_error(EINTR) and kill a peer mid-protocol. *)
let rec eintr f x =
  match f x with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> eintr f x

let read_eintr fd buf off len = eintr (fun () -> Unix.read fd buf off len) ()
let write_eintr fd buf off len = eintr (fun () -> Unix.write fd buf off len) ()

let rec really_read fd buf off len =
  if len > 0 then begin
    let r = read_eintr fd buf off len in
    if r = 0 then raise End_of_file;
    really_read fd buf (off + r) (len - r)
  end

let rec write_all fd buf off len =
  if len > 0 then begin
    let w = write_eintr fd buf off len in
    write_all fd buf (off + w) (len - w)
  end

let send_bytes fd payload =
  let len = Bytes.length payload in
  let header = Wire.Frame.encode_header ~len ~crc:(Wire.Crc32.bytes payload) in
  write_all fd header 0 (Bytes.length header);
  write_all fd payload 0 len

let send_corrupted fd payload =
  let len = Bytes.length payload in
  (* The header carries the CRC of the *intended* payload, so the receiver
     sees a well-framed message whose checksum fails: framing stays intact
     and the corruption is detected, not interpreted. *)
  let header = Wire.Frame.encode_header ~len ~crc:(Wire.Crc32.bytes payload) in
  let garbled = Bytes.copy payload in
  if len > 0 then Bytes.set_uint8 garbled (len / 2) (Bytes.get_uint8 payload (len / 2) lxor 0x55)
  else Bytes.set_uint8 header (Wire.Frame.header_len - 1)
         (Bytes.get_uint8 header (Wire.Frame.header_len - 1) lxor 0x55);
  write_all fd header 0 (Bytes.length header);
  write_all fd garbled 0 len

let recv_bytes fd =
  let header = Bytes.create Wire.Frame.header_len in
  really_read fd header 0 (Bytes.length header);
  match Wire.Frame.decode_header header with
  | Error ((Wire.Frame.Bad_magic | Wire.Frame.Length_out_of_range _) as e) ->
    (* Either the stream is out of sync or the length cannot be trusted; in
       both cases nothing after this header can be located. Refuse before
       allocating anything. *)
    raise (Desync (Wire.Frame.describe_header_error e))
  | Error Wire.Frame.Short_header -> assert false (* we read header_len bytes *)
  | Ok (len, crc) ->
    let payload = Bytes.create len in
    really_read fd payload 0 len;
    if Wire.Crc32.bytes payload <> crc then
      raise (Corrupt (Printf.sprintf "payload CRC mismatch (%d bytes)" len))
    else payload

let send_value fd v = send_bytes fd (Marshal.to_bytes v [])
let recv_value fd = Marshal.from_bytes (recv_bytes fd) 0
