type t = { fd : Unix.file_descr }

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
    | _ -> failwith ("cannot resolve host: " ^ host))

let connect ?(host = "127.0.0.1") ~port ~peer () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (resolve host, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  Frame.send_value fd (Source_proto.Hello peer);
  { fd }

let request t (r : Source_proto.request) : Source_proto.response =
  Frame.send_value t.fd r;
  Frame.recv_value t.fd

let query t i =
  match request t (Source_proto.Query i) with
  | Source_proto.Bit v -> v
  | Source_proto.Err e -> failwith ("source: " ^ e)
  | _ -> failwith "source: protocol violation (expected Bit)"

let describe t =
  match request t Source_proto.Describe with
  | Source_proto.Description { n; k } -> (n, k)
  | Source_proto.Err e -> failwith ("source: " ^ e)
  | _ -> failwith "source: protocol violation (expected Description)"

let stats t =
  match request t Source_proto.Stats with
  | Source_proto.Stats_reply { per_peer; total } -> (per_peer, total)
  | Source_proto.Err e -> failwith ("source: " ^ e)
  | _ -> failwith "source: protocol violation (expected Stats_reply)"

let shutdown t =
  match request t Source_proto.Shutdown with
  | Source_proto.Bye -> ()
  | exception End_of_file -> ()
  | _ -> failwith "source: protocol violation (expected Bye)"

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
