module Prng = Dr_engine.Prng

exception Unreachable of string

type config = {
  request_timeout : float;
  max_retries : int;
  backoff_base : float;
  backoff_cap : float;
}

let default_config =
  { request_timeout = 5.0; max_retries = 8; backoff_base = 0.05; backoff_cap = 1.0 }

type t = {
  host : string;
  port : int;
  peer : int;
  cfg : config;
  rng : Prng.t;  (** backoff jitter only — never protocol-visible *)
  chaos : Faultnet.t option;
  started : float;
  mutable fd : Unix.file_descr option;
  mutable seq : int;
  mutable reconnects : int;
}

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
    | _ -> failwith ("cannot resolve host: " ^ host))

let elapsed t = Unix.gettimeofday () -. t.started

(* Capped exponential backoff with multiplicative jitter in [0.5, 1.0):
   retries spread out instead of thundering back in lockstep. *)
let backoff t attempt =
  let d = t.cfg.backoff_base *. (2. ** float_of_int attempt) in
  let d = Float.min d t.cfg.backoff_cap in
  let d = d *. (0.5 +. Prng.float t.rng 0.5) in
  if d > 0. then Thread.delay d

let drop_connection t =
  match t.fd with
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let dial t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (resolve t.host, t.port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    if t.cfg.request_timeout > 0. then
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.request_timeout;
    Frame.send_value fd (Source_proto.Hello t.peer)
  with
  | () -> t.fd <- Some fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let ensure_connected t =
  match t.fd with
  | Some fd -> fd
  | None ->
    dial t;
    t.reconnects <- t.reconnects + 1;
    Option.get t.fd

let describe_exn = function
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> "request timed out"
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | End_of_file -> "connection closed by server"
  | Frame.Corrupt m -> "corrupt frame: " ^ m
  | Frame.Desync m -> "desynchronized stream: " ^ m
  | e -> Printexc.to_string e

(* Run one request to completion: attempt, and on any transport-level
   failure tear the connection down, back off and retry — up to
   [max_retries] reconnects, then {!Unreachable}. [attempt] receives the
   0-based attempt index (chaos decisions may key on it). Semantic errors
   (an [Err] response, a protocol violation) raise [Failure] and are never
   retried. *)
let with_retries t ~what (attempt : int -> Unix.file_descr -> 'a) : 'a =
  let rec go n =
    match attempt n (ensure_connected t) with
    | v -> v
    | exception
        ((Unix.Unix_error _ | End_of_file | Frame.Corrupt _ | Frame.Desync _) as e) ->
      drop_connection t;
      if n >= t.cfg.max_retries then
        raise
          (Unreachable
             (Printf.sprintf "source %s:%d unreachable: %s failed after %d attempt(s): %s"
                t.host t.port what (n + 1) (describe_exn e)))
      else begin
        backoff t n;
        go (n + 1)
      end
  in
  go 0

let simulated_failure what = Unix.Unix_error (Unix.ECONNRESET, "faultnet", what)

let connect ?(host = "127.0.0.1") ~port ~peer ?(cfg = default_config) ?chaos () =
  let t =
    {
      host;
      port;
      peer;
      cfg;
      rng = Prng.create (Int64.of_int ((peer + 2) * 7919));
      chaos;
      started = Unix.gettimeofday ();
      fd = None;
      seq = 0;
      reconnects = 0;
    }
  in
  (* Eager first dial so an unreachable source is a clean, early, typed
     failure rather than a mid-protocol surprise. *)
  ignore (with_retries t ~what:"connect" (fun _ fd -> fd));
  t.reconnects <- 0;
  t

let query t i =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let action =
    match t.chaos with
    | Some c -> Faultnet.on_source_request c ~elapsed:(elapsed t)
    | None -> { Faultnet.refuse = false; drop_link = false; lose_reply = false }
  in
  if action.Faultnet.drop_link then drop_connection t;
  let lose_reply = ref action.Faultnet.lose_reply in
  with_retries t ~what:(Printf.sprintf "Query(%d)" i) (fun attempt fd ->
      let refused =
        match t.chaos with
        | None -> false
        | Some c ->
          (Int.equal attempt 0 && action.Faultnet.refuse)
          || Faultnet.in_blackout c ~elapsed:(elapsed t)
      in
      if refused then raise (simulated_failure "source blackout");
      Frame.send_value fd (Source_proto.Query { seq; index = i });
      let resp : Source_proto.response = Frame.recv_value fd in
      if !lose_reply then begin
        (* The reply arrived and the server has charged (and cached) this
           seq; the client loses it anyway. The retry must come back with
           the same seq and be answered from the replay cache. *)
        lose_reply := false;
        raise (simulated_failure "injected reply loss")
      end;
      match resp with
      | Source_proto.Bit v -> v
      | Source_proto.Err e -> failwith ("source: " ^ e)
      | _ -> failwith "source: protocol violation (expected Bit)")

(* Unsequenced idempotent requests (control plane): same retry discipline,
   no replay-cache interaction. *)
let rpc t ~what (req : Source_proto.request) : Source_proto.response =
  with_retries t ~what (fun _ fd ->
      Frame.send_value fd req;
      (Frame.recv_value fd : Source_proto.response))

let describe t =
  match rpc t ~what:"Describe" Source_proto.Describe with
  | Source_proto.Description { n; k } -> (n, k)
  | Source_proto.Err e -> failwith ("source: " ^ e)
  | _ -> failwith "source: protocol violation (expected Description)"

let stats t =
  match rpc t ~what:"Stats" Source_proto.Stats with
  | Source_proto.Stats_reply { per_peer; total; replays } -> (per_peer, total, replays)
  | Source_proto.Err e -> failwith ("source: " ^ e)
  | _ -> failwith "source: protocol violation (expected Stats_reply)"

let shutdown t =
  match
    (let fd = ensure_connected t in
     Frame.send_value fd Source_proto.Shutdown;
     (Frame.recv_value fd : Source_proto.response))
  with
  | Source_proto.Bye -> ()
  | exception (End_of_file | Unix.Unix_error _) -> ()
  | _ -> failwith "source: protocol violation (expected Bye)"

let reconnects t = t.reconnects
let sequence t = t.seq

let close t = drop_connection t
