module Prng = Dr_engine.Prng

type blackout =
  | Time_window of { at : float; dur : float }
  | Query_window of { at : int; count : int }

type plan = {
  drop : float;
  corrupt : float;
  stall : float;
  stall_peer : int option;
  disconnect : (int * int) option;
  reply_loss : float;
  blackout : blackout option;
}

let none =
  {
    drop = 0.;
    corrupt = 0.;
    stall = 0.;
    stall_peer = None;
    disconnect = None;
    reply_loss = 0.;
    blackout = None;
  }

let is_none p =
  Float.equal p.drop 0. && Float.equal p.corrupt 0. && Float.equal p.stall 0.
  && Option.is_none p.disconnect
  && Float.equal p.reply_loss 0.
  && Option.is_none p.blackout

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                       *)
(* ------------------------------------------------------------------ *)

let duration_of_string s =
  let num_of t =
    match float_of_string_opt t with
    | Some v when v >= 0. -> Ok v
    | _ -> Error (Printf.sprintf "bad duration %S" s)
  in
  let n = String.length s in
  if n >= 2 && String.equal (String.sub s (n - 2) 2) "ms" then
    Result.map (fun v -> v /. 1000.) (num_of (String.sub s 0 (n - 2)))
  else if n >= 1 && s.[n - 1] = 's' then num_of (String.sub s 0 (n - 1))
  else num_of s

let probability_of_string key s =
  match float_of_string_opt s with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | _ -> Error (Printf.sprintf "%s expects a probability in [0,1], got %S" key s)

let int_after prefix s =
  let pn = String.length prefix and n = String.length s in
  if n > pn && String.equal (String.sub s 0 pn) prefix then
    match int_of_string_opt (String.sub s pn (n - pn)) with
    | Some v when v >= 0 -> Some v
    | _ -> None
  else None

let split1 ch s =
  match String.index_opt s ch with
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> None

let ( let* ) = Result.bind

let parse_clause plan clause =
  match split1 '=' clause with
  | None -> Error (Printf.sprintf "clause %S is not key=value" clause)
  | Some (key, value) -> (
    match key with
    | "drop" ->
      let* p = probability_of_string key value in
      Ok { plan with drop = p }
    | "corrupt" ->
      let* p = probability_of_string key value in
      Ok { plan with corrupt = p }
    | "reply_loss" ->
      let* p = probability_of_string key value in
      Ok { plan with reply_loss = p }
    | "stall" -> (
      match split1 '@' value with
      | None ->
        let* d = duration_of_string value in
        Ok { plan with stall = d; stall_peer = None }
      | Some (dur, target) -> (
        let* d = duration_of_string dur in
        match int_after "p" target with
        | Some peer -> Ok { plan with stall = d; stall_peer = Some peer }
        | None -> Error (Printf.sprintf "stall target %S: expected pN" target)))
    | "disconnect" -> (
      match split1 '@' value with
      | Some (who, when_) -> (
        match (int_after "peer" who, int_after "msg" when_) with
        | Some peer, Some op -> Ok { plan with disconnect = Some (peer, op) }
        | _ -> Error (Printf.sprintf "disconnect expects peerN@msgM, got %S" value))
      | None -> Error (Printf.sprintf "disconnect expects peerN@msgM, got %S" value))
    | "source_blackout" -> (
      match split1 '@' value with
      | Some (span, at) -> (
        match int_after "q" at with
        | Some q -> (
          match int_of_string_opt span with
          | Some count when count >= 0 ->
            Ok { plan with blackout = Some (Query_window { at = q; count }) }
          | _ -> Error (Printf.sprintf "source_blackout N@qJ needs integer N, got %S" span))
        | None ->
          if String.length at > 1 && at.[0] = 't' then
            let* dur = duration_of_string span in
            let* start = duration_of_string (String.sub at 1 (String.length at - 1)) in
            Ok { plan with blackout = Some (Time_window { at = start; dur }) }
          else Error (Printf.sprintf "source_blackout target %S: expected tT or qJ" at))
      | None -> Error (Printf.sprintf "source_blackout expects DUR@tT or N@qJ, got %S" value))
    | _ -> Error (Printf.sprintf "unknown fault clause %S" key))

let parse spec =
  if String.equal (String.trim spec) "" then Ok none
  else
    List.fold_left
      (fun acc clause ->
        let* plan = acc in
        parse_clause plan (String.trim clause))
      (Ok none)
      (String.split_on_char ',' spec)

let parse_seeded s =
  match split1 ':' s with
  | None -> Error "expected SEED:SPEC (e.g. 7:drop=0.01,corrupt=0.001)"
  | Some (seed, spec) -> (
    match Int64.of_string_opt seed with
    | None -> Error (Printf.sprintf "bad chaos seed %S" seed)
    | Some seed ->
      let* plan = parse spec in
      Ok (seed, plan))

let describe plan =
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  (match plan.blackout with
  | Some (Time_window { at; dur }) -> add (Printf.sprintf "source_blackout=%gs@t%gs" dur at)
  | Some (Query_window { at; count }) -> add (Printf.sprintf "source_blackout=%d@q%d" count at)
  | None -> ());
  if plan.reply_loss > 0. then add (Printf.sprintf "reply_loss=%g" plan.reply_loss);
  (match plan.disconnect with
  | Some (peer, op) -> add (Printf.sprintf "disconnect=peer%d@msg%d" peer op)
  | None -> ());
  if plan.stall > 0. then
    add
      (match plan.stall_peer with
      | Some p -> Printf.sprintf "stall=%gs@p%d" plan.stall p
      | None -> Printf.sprintf "stall=%gs" plan.stall);
  if plan.corrupt > 0. then add (Printf.sprintf "corrupt=%g" plan.corrupt);
  if plan.drop > 0. then add (Printf.sprintf "drop=%g" plan.drop);
  String.concat "," !clauses

(* ------------------------------------------------------------------ *)
(* The per-process injector                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  plan : plan;
  peer : int;
  link_rng : Prng.t;
  source_rng : Prng.t;
  mutable ops : int;  (** outbound operations: protocol sends + source requests *)
  mutable queries : int;
  mutable tripped : bool;  (** the [disconnect] clause has fired, not yet consumed *)
}

(* The (peer+1)-th split of the chaos master, mirroring [Runner.peer_prng]'s
   per-peer stream assignment: every peer draws its fault schedule from its
   own stream, so schedules do not depend on scheduling order across
   processes. Two sub-splits keep link decisions and source decisions
   independent of each other. *)
let make ~seed ~peer plan =
  let master = Prng.create seed in
  let base = ref (Prng.split master) in
  for _ = 1 to peer do
    base := Prng.split master
  done;
  let link_rng = Prng.split !base in
  let source_rng = Prng.split !base in
  { plan; peer; link_rng; source_rng; ops = 0; queries = 0; tripped = false }

let bernoulli rng p = p > 0. && Prng.float rng 1.0 < p

let max_pre_drops = 16

let check_disconnect t =
  match t.plan.disconnect with
  | Some (peer, op) when Int.equal peer t.peer && t.ops >= op && not t.tripped ->
    t.tripped <- true
  | _ -> ()

type link_action = { stall : float; pre_drops : int; corrupt_first : bool }

let on_send t =
  t.ops <- t.ops + 1;
  check_disconnect t;
  let stall =
    if t.plan.stall > 0. then
      match t.plan.stall_peer with
      | Some p when not (Int.equal p t.peer) -> 0.
      | _ -> t.plan.stall
    else 0.
  in
  let corrupt_first = t.plan.corrupt > 0. && bernoulli t.link_rng t.plan.corrupt in
  let pre_drops =
    if t.plan.drop > 0. then begin
      let d = ref 0 in
      while !d < max_pre_drops && bernoulli t.link_rng t.plan.drop do
        incr d
      done;
      !d
    end
    else 0
  in
  { stall; pre_drops; corrupt_first }

type source_action = { refuse : bool; drop_link : bool; lose_reply : bool }

let on_source_request t ~elapsed =
  t.ops <- t.ops + 1;
  let qidx = t.queries in
  t.queries <- t.queries + 1;
  check_disconnect t;
  let drop_link = t.tripped in
  if drop_link then t.tripped <- false;
  let refuse =
    match t.plan.blackout with
    | Some (Time_window { at; dur }) -> elapsed >= at && elapsed < at +. dur
    | Some (Query_window { at; count }) -> qidx >= at && qidx < at + count
    | None -> false
  in
  let lose_reply = t.plan.reply_loss > 0. && bernoulli t.source_rng t.plan.reply_loss in
  { refuse; drop_link; lose_reply }

let in_blackout t ~elapsed =
  match t.plan.blackout with
  | Some (Time_window { at; dur }) -> elapsed >= at && elapsed < at +. dur
  | _ -> false
