module Data_source = Dr_source.Data_source

type t = {
  source : Data_source.t;
  k : int;
  lsock : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  replay : (int * Source_proto.response) option array;
      (* per peer: last processed Query seq and its response. Sequence
         numbers increase monotonically per peer, and a retry always
         re-sends the highest one, so one slot per peer suffices. *)
  mutable replays : int;
  mutable stopping : bool;
  mutable accepter : Thread.t option;
}

let create ?(addr = Unix.inet_addr_loopback) ?(port = 0) ~k x =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (addr, port));
  Unix.listen lsock 64;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  {
    source = Data_source.create ~k x;
    k;
    lsock;
    port;
    lock = Mutex.create ();
    replay = Array.make (max k 1) None;
    replays = 0;
    stopping = false;
    accepter = None;
  }

let port t = t.port

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let stats t =
  locked t (fun () -> Array.init t.k (Data_source.queries_by t.source))

let total_queries t = locked t (fun () -> Data_source.total_queries t.source)
let replay_hits t = locked t (fun () -> t.replays)

(* Answer one Query under the lock: either replay the cached response for a
   sequence number already processed (a transport retry — charged nothing),
   or consult the metered Data_source and cache the result. This call is the
   net runtime's whole Q-accounting boundary (lint rule L4 confines
   [Data_source.query] here). *)
let answer_query t ~peer ~seq ~index : Source_proto.response =
  locked t (fun () ->
      match t.replay.(peer) with
      | Some (s, cached) when Int.equal s seq ->
        t.replays <- t.replays + 1;
        cached
      | Some (s, _) when seq < s ->
        Source_proto.Err (Printf.sprintf "stale sequence %d (last processed %d)" seq s)
      | _ ->
        let resp : Source_proto.response =
          match Data_source.query t.source ~peer index with
          | v -> Bit v
          | exception Invalid_argument e -> Err e
        in
        t.replay.(peer) <- Some (seq, resp);
        resp)

let handle t fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let reply (r : Source_proto.response) = Frame.send_value fd r in
  (try
     match (Frame.recv_value fd : Source_proto.request) with
     | Hello peer when peer >= -1 && peer < t.k ->
       let rec loop () =
         match (Frame.recv_value fd : Source_proto.request) with
         | Query { seq; index } ->
           (if peer < 0 then reply (Err "control connection cannot query")
            else reply (answer_query t ~peer ~seq ~index));
           loop ()
         | Stats ->
           reply
             (Stats_reply
                { per_peer = stats t; total = total_queries t; replays = replay_hits t });
           loop ()
         | Describe ->
           reply (Description { n = Data_source.n t.source; k = t.k });
           loop ()
         | Shutdown ->
           t.stopping <- true;
           reply Bye
         | Hello _ -> reply (Err "already greeted")
       in
       loop ()
     | Hello _ -> reply (Err "peer id out of range")
     | _ -> reply (Err "expected Hello")
   with End_of_file | Unix.Unix_error _ | Frame.Corrupt _ | Frame.Desync _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve t =
  let rec loop () =
    if not t.stopping then begin
      match Unix.accept t.lsock with
      | fd, _ ->
        if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          ignore (Thread.create (fun () -> handle t fd) ());
          loop ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
    end
  in
  loop ();
  try Unix.close t.lsock with Unix.Unix_error _ -> ()

let start t = t.accepter <- Some (Thread.create serve t)

let stop t =
  t.stopping <- true;
  (* Wake the accept loop with a throwaway connection. *)
  (try
     let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     (try Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
      with Unix.Unix_error _ -> ());
     Unix.close s
   with Unix.Unix_error _ -> ());
  match t.accepter with
  | Some th ->
    Thread.join th;
    t.accepter <- None
  | None -> ( try Unix.close t.lsock with Unix.Unix_error _ -> ())
