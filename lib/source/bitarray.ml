type t = { len : int; data : Bytes.t }

let bytes_for len = (len + 7) / 8

let create len =
  if len < 0 then invalid_arg "Bitarray.create";
  { len; data = Bytes.make (bytes_for len) '\000' }

let length t = t.len

let check t i = if i < 0 || i >= t.len then invalid_arg "Bitarray: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i b =
  check t i;
  let byte = Char.code (Bytes.get t.data (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.set t.data (i lsr 3) (Char.chr byte)

let copy t = { len = t.len; data = Bytes.copy t.data }
let equal a b = a.len = b.len && Bytes.equal a.data b.data

let compare a b =
  let c = Int.compare a.len b.len in
  if c <> 0 then c else Bytes.compare a.data b.data

let random prng len =
  let t = create len in
  for i = 0 to len - 1 do
    set t i (Dr_engine.Prng.bool prng)
  done;
  t

let init len f =
  let t = create len in
  for i = 0 to len - 1 do
    if f i then set t i true
  done;
  t

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | _ -> invalid_arg "Bitarray.of_string: expected only '0'/'1'")

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Bitarray.sub";
  init len (fun i -> get t (pos + i))

let blit ~src ~dst ~pos =
  if pos < 0 || pos + src.len > dst.len then invalid_arg "Bitarray.blit";
  for i = 0 to src.len - 1 do
    set dst (pos + i) (get src i)
  done

let append a b =
  let t = create (a.len + b.len) in
  blit ~src:a ~dst:t ~pos:0;
  blit ~src:b ~dst:t ~pos:a.len;
  t

let first_diff a b =
  if a.len <> b.len then invalid_arg "Bitarray.first_diff: length mismatch";
  let rec byte_scan i =
    if i >= Bytes.length a.data then None
    else if Bytes.get a.data i <> Bytes.get b.data i then begin
      let rec bit_scan j =
        if j >= a.len then None
        else if not (Bool.equal (get a j) (get b j)) then Some j
        else bit_scan (j + 1)
      in
      bit_scan (i * 8)
    end
    else byte_scan (i + 1)
  in
  byte_scan 0

let popcount_byte = Array.init 256 (fun b ->
    let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
    go b 0)

let count_ones t =
  let acc = ref 0 in
  for i = 0 to Bytes.length t.data - 1 do
    acc := !acc + popcount_byte.(Char.code (Bytes.get t.data i))
  done;
  !acc

let diff_count a b =
  if a.len <> b.len then invalid_arg "Bitarray.diff_count: length mismatch";
  let acc = ref 0 in
  for i = 0 to Bytes.length a.data - 1 do
    let x = Char.code (Bytes.get a.data i) lxor Char.code (Bytes.get b.data i) in
    acc := !acc + popcount_byte.(x)
  done;
  !acc

let flip t i =
  let t' = copy t in
  set t' i (not (get t' i));
  t'

let pp ppf t =
  if t.len <= 64 then Format.pp_print_string ppf (to_string t)
  else Format.fprintf ppf "%s… (%d bits)" (to_string (sub t ~pos:0 ~len:64)) t.len
