module Bitarray = Dr_source.Bitarray
module Fault = Dr_adversary.Fault
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan
module Trace = Dr_engine.Trace
open Dr_core

type evidence = {
  victim : int;
  hidden_bit : int;
  faulty_f : int list;
  corrupted : int list;
  e1 : Problem.report;
  e1_victim_queries : int;
  e2 : Problem.report;
  victim_fooled : bool;
  views_identical : bool;
}

type runner = ?opts:Exec.opts -> Problem.instance -> Problem.report

let demonstrate ~(run : runner) ?(victim = 0) ?f_set ?(seed = 1L) ?b ~k ~n () =
  let f_set =
    match f_set with
    | Some f -> f
    | None -> List.init (k / 2) (fun i -> k - 1 - i)
  in
  if List.mem victim f_set then Error "victim must not be in F"
  else begin
    let zeros = Bitarray.create n in
    (* ---- Execution E1: zeros input, F silent-crashed. ---- *)
    let fault1 = Fault.choose ~k (Fault.Explicit f_set) in
    let inst1 = Problem.make ~seed ?b ~model:Problem.Crash ~k ~x:zeros fault1 in
    let trace1 = Trace.create () in
    let opts1 =
      Exec.default
      |> Exec.with_crash (Crash_plan.mid_broadcast fault1 ~after_sends:0)
      |> Exec.with_trace trace1
    in
    let e1 = run ~opts:opts1 inst1 in
    if List.mem victim e1.Problem.wrong then
      Error "protocol failed E1 outright (victim has no correct output under crashes)"
    else begin
      let queried =
        List.sort_uniq Int.compare (List.map fst (Trace.query_view trace1 victim))
      in
      let e1_victim_queries = List.length queried in
      if e1_victim_queries >= n then
        Error "victim queried every bit: the protocol is naive, the bound is tight"
      else begin
        (* The first bit the victim never looked at. *)
        let hidden_bit =
          let rec scan i rest =
            match rest with
            | q :: tl when q = i -> scan (i + 1) tl
            | _ -> i
          in
          scan 0 queried
        in
        (* ---- Execution E2: bit flipped, C simulates the zero world. ---- *)
        let corrupted =
          List.filter (fun i -> i <> victim && not (List.mem i f_set)) (List.init k Fun.id)
        in
        let x2 = Bitarray.flip zeros hidden_bit in
        let fault2 = Fault.choose ~k (Fault.Explicit corrupted) in
        let inst2 = Problem.make ~seed ?b ~model:Problem.Byzantine ~k ~x:x2 fault2 in
        let stall = (e1.Problem.time +. 10.) *. 10. in
        let trace2 = Trace.create () in
        let in_f i = List.mem i f_set in
        let is_corrupt i = List.mem i corrupted in
        let opts2 =
          Exec.make_opts
            ~latency:(Latency.targeted ~slow:in_f ~delay:stall)
            ~trace:trace2
            ~query_override:(fun ~peer i ->
              if is_corrupt peer then false (* the simulated all-zeros source *)
              else Bitarray.get x2 i)
            ()
        in
        let e2 = run ~opts:opts2 inst2 in
        let victim_fooled = List.mem victim e2.Problem.wrong in
        let view tr =
          (* The victim's deliveries, which with a deterministic protocol
             and schedule fully determine its behaviour. *)
          Trace.received_view tr victim
        in
        let delivery_equal (t1, s1, g1) (t2, s2, g2) =
          Float.equal t1 t2 && Int.equal s1 s2 && String.equal g1 g2
        in
        let views_identical = List.equal delivery_equal (view trace1) (view trace2) in
        Ok
          {
            victim;
            hidden_bit;
            faulty_f = f_set;
            corrupted;
            e1;
            e1_victim_queries;
            e2;
            victim_fooled;
            views_identical;
          }
      end
    end
  end
