module Bitarray = Dr_source.Bitarray
module Fault = Dr_adversary.Fault
module Latency = Dr_adversary.Latency
module Trace = Dr_engine.Trace
module Prng = Dr_engine.Prng
open Dr_core

type result = {
  runs : int;
  failures : int;
  failure_rate : float;
  victim_hit_rate : float;
  q_mean : float;
  predicted_failure_floor : float;
  n : int;
}

type runner = ?opts:Exec.opts -> Problem.instance -> Problem.report

let attack ~(run : runner) ?(victim = 0) ?f_count ?(hidden = `Uniform) ~k ~n ~seeds () =
  let f_count = match f_count with Some f -> f | None -> (k - 1) / 2 in
  let f_set = List.init f_count (fun i -> k - 1 - i) in
  if List.mem victim f_set then invalid_arg "Rand_lower.attack: victim inside F";
  let corrupted =
    List.filter (fun i -> i <> victim && not (List.mem i f_set)) (List.init k Fun.id)
  in
  let fault = Fault.choose ~k (Fault.Explicit corrupted) in
  let in_f i = List.mem i f_set in
  let is_corrupt i = List.mem i corrupted in
  let failures = ref 0 and hits = ref 0 and q_sum = ref 0 in
  let runs = List.length seeds in
  List.iter
    (fun seed ->
      let adv = Prng.create (Int64.lognot seed) in
      let hidden_bit = match hidden with `Uniform -> Prng.int adv n | `Fixed i -> i in
      let x = Bitarray.flip (Bitarray.create n) hidden_bit in
      let inst = Problem.make ~seed ~model:Problem.Byzantine ~k ~x fault in
      let trace = Trace.create () in
      let opts =
        Exec.make_opts
          ~latency:(Latency.targeted ~slow:in_f ~delay:1e6)
          ~trace
          ~query_override:(fun ~peer i ->
            if is_corrupt peer then false else Bitarray.get x i)
          ()
      in
      let report = run ~opts inst in
      if List.mem victim report.Problem.wrong then incr failures;
      let queried = List.map fst (Trace.query_view trace victim) in
      if List.mem hidden_bit queried then incr hits;
      q_sum := !q_sum + List.length (List.sort_uniq Int.compare queried))
    seeds;
  let q_mean = if runs = 0 then 0. else float_of_int !q_sum /. float_of_int runs in
  {
    runs;
    failures = !failures;
    failure_rate = (if runs = 0 then 0. else float_of_int !failures /. float_of_int runs);
    victim_hit_rate = (if runs = 0 then 0. else float_of_int !hits /. float_of_int runs);
    q_mean;
    predicted_failure_floor = 1. -. (q_mean /. float_of_int n);
    n;
  }
