(** Crash schedules for the crash-fault model.

    Builds the [crash] field of a simulator configuration from a faulty-set
    partition. The model lets the adversary stop a peer at any point,
    including between the individual sends of a broadcast — [mid_broadcast]
    exercises exactly that worst case (a peer that informed {e some} of the
    others before dying). *)

type t = int -> Dr_engine.Sim.crash_spec

val none : t

val at_times : (int * float) list -> t
(** Explicit (peer, time) pairs; other peers never crash. *)

val all_at : Fault.t -> float -> t
(** Every faulty peer crashes at the given instant. *)

val staggered : Fault.t -> first:float -> gap:float -> t
(** The i-th faulty peer (in ID order) crashes at [first + i·gap] — one
    failure per "phase", the schedule that forces the crash protocol through
    its maximum number of reassignment rounds. *)

val mid_broadcast : Fault.t -> after_sends:int -> t
(** Every faulty peer completes exactly [after_sends] sends and dies
    attempting the next: a partial broadcast. [after_sends <= 0] silences
    them from the start (they still may query). *)

val after_queries : Fault.t -> int -> t
(** Faulty peers die after issuing that many queries — they paid for data
    they will never share. *)

(** {2 Serializable descriptors}

    First-class, printable crash plans for tooling that must store and replay
    fault schedules (the [dr_check] repro files). Only the event-counted
    plans are representable: timed crashes are meaningless under a schedule
    arbiter (see {!Dr_engine.Sim.arbiter}). *)

type descriptor =
  | No_crash
  | Mid_broadcast of int  (** {!mid_broadcast} with that [after_sends] *)
  | After_queries of int  (** {!after_queries} with that query count *)

val apply : descriptor -> Fault.t -> t

val descriptor_to_string : descriptor -> string
(** ["none"], ["mid-broadcast:J"], ["after-queries:J"]. *)

val descriptor_of_string : string -> descriptor option
(** Inverse of {!descriptor_to_string}; [None] on anything else. *)
