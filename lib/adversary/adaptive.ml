(* Adaptive Byzantine corruption policies.

   The catalog attacks (near-miss, consistent lie, flood, ...) decide what
   to forge before the run starts. An adaptive adversary instead listens to
   the traffic the schedule actually delivers and corrupts *that* — the
   alter_path / limited_broadcast behaviours of the Bracha-broadcast
   testbeds, transplanted to the Download protocols: echo an observed
   report with a flipped bit, either to everyone or to only half the peers
   so the honest views split. The protocol modules own the message types;
   this module owns the policy decisions so every protocol corrupts the
   same way. *)

type plan = Echo_corrupt | Split_brain

let all = [ Echo_corrupt; Split_brain ]

let to_string = function Echo_corrupt -> "adaptive" | Split_brain -> "splitcast"

let of_string = function
  | "adaptive" -> Some Echo_corrupt
  | "splitcast" -> Some Split_brain
  | _ -> None

let corrupt_index ~rank ~len =
  if len <= 0 then invalid_arg "Adaptive.corrupt_index: empty payload";
  rank mod len

let split_targets ~k ~me =
  if k <= 0 then invalid_arg "Adaptive.split_targets: k must be positive";
  let half = (k + 1) / 2 in
  List.filter (fun dst -> dst <> me) (List.init half Fun.id)
