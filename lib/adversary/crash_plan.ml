type t = int -> Dr_engine.Sim.crash_spec

let none _ = Dr_engine.Sim.Never

let at_times pairs peer =
  match List.assoc_opt peer pairs with
  | Some time -> Dr_engine.Sim.At_time time
  | None -> Dr_engine.Sim.Never

let all_at fault time peer =
  if Fault.is_faulty fault peer then Dr_engine.Sim.At_time time else Dr_engine.Sim.Never

let staggered fault ~first ~gap peer =
  if not (Fault.is_faulty fault peer) then Dr_engine.Sim.Never
  else begin
    let rank = ref 0 in
    List.iteri (fun i p -> if p = peer then rank := i) fault.Fault.faulty_ids;
    Dr_engine.Sim.At_time (first +. (float_of_int !rank *. gap))
  end

let mid_broadcast fault ~after_sends peer =
  if Fault.is_faulty fault peer then Dr_engine.Sim.After_sends (max after_sends 0)
  else Dr_engine.Sim.Never

let after_queries fault j peer =
  if Fault.is_faulty fault peer then Dr_engine.Sim.After_queries (max j 0)
  else Dr_engine.Sim.Never

type descriptor = No_crash | Mid_broadcast of int | After_queries of int

let apply d fault =
  match d with
  | No_crash -> none
  | Mid_broadcast after_sends -> mid_broadcast fault ~after_sends
  | After_queries j -> after_queries fault j

let descriptor_to_string = function
  | No_crash -> "none"
  | Mid_broadcast j -> Printf.sprintf "mid-broadcast:%d" j
  | After_queries j -> Printf.sprintf "after-queries:%d" j

let descriptor_of_string s =
  match String.index_opt s ':' with
  | None -> if s = "none" then Some No_crash else None
  | Some i ->
    let kind = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    (match (kind, int_of_string_opt arg) with
    | "mid-broadcast", Some j when j >= 0 -> Some (Mid_broadcast j)
    | "after-queries", Some j when j >= 0 -> Some (After_queries j)
    | _ -> None)
