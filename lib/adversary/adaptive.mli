(** Adaptive Byzantine corruption policies: choose what to corrupt online
    from observed traffic instead of from a fixed pre-run catalog.

    A faulty peer running an adaptive plan first {e receives} — so the
    corruption it emits depends on which honest report the schedule happened
    to deliver first, putting the choice in the arbiter's (and therefore the
    model checker's) hands. The two plans mirror the [alter_path] and
    [limited_broadcast] behaviours of the Bracha reliable-broadcast
    testbeds:

    - {!Echo_corrupt} rebroadcasts the first observed report with one bit
      flipped — a near-miss forgery of whatever the network actually
      carries, not of a segment fixed in advance;
    - {!Split_brain} sends that same corrupted echo to only the lower half
      of the peer ids, so part of the network sees a forgery the rest never
      hears about.

    The protocol modules ([Byz_2cycle], [Byz_multicycle]) dispatch on the
    plan; this module owns the policy parameters so every protocol corrupts
    identically. Registered in the {!Dr_core.Registry} attack catalogs as
    ["adaptive"] and ["splitcast"]. *)

type plan = Echo_corrupt | Split_brain

val all : plan list

val to_string : plan -> string
(** ["adaptive"] / ["splitcast"] — the registry catalog names. *)

val of_string : string -> plan option

val corrupt_index : rank:int -> len:int -> int
(** Which bit of an observed [len]-bit payload attacker number [rank]
    (its position among the faulty ids) flips — rank-dependent so a
    coalition's forgeries are distinct decision-tree leaves.
    Raises [Invalid_argument] on an empty payload. *)

val split_targets : k:int -> me:int -> int list
(** The {!Split_brain} audience: the lower half of the id space
    (⌈k/2⌉ peers), minus the attacker itself. *)
