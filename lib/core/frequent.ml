module Bitarray = Dr_source.Bitarray

module Strmap = Map.Make (struct
  type t = Bitarray.t

  let compare = Bitarray.compare
end)

type t = {
  mutable per_seg : int Strmap.t array;  (** segment -> string -> reporter count *)
  seen : (int, unit) Hashtbl.t;  (** peers that already reported *)
  mutable totals : int array;
}

let create () = { per_seg = [||]; seen = Hashtbl.create 64; totals = [||] }

let ensure t seg =
  let cur = Array.length t.per_seg in
  if seg >= cur then begin
    let grown = Array.make (Int.max (seg + 1) (Int.max 4 (2 * cur))) Strmap.empty in
    Array.blit t.per_seg 0 grown 0 cur;
    t.per_seg <- grown;
    let totals = Array.make (Array.length grown) 0 in
    Array.blit t.totals 0 totals 0 cur;
    t.totals <- totals
  end

let add t ~seg ~peer s =
  if seg < 0 then invalid_arg "Frequent.add: negative segment";
  if Hashtbl.mem t.seen peer then false
  else begin
    Hashtbl.add t.seen peer ();
    ensure t seg;
    let m = t.per_seg.(seg) in
    let count = match Strmap.find_opt s m with Some c -> c | None -> 0 in
    t.per_seg.(seg) <- Strmap.add s (count + 1) m;
    t.totals.(seg) <- t.totals.(seg) + 1;
    true
  end

let reporters t = Hashtbl.length t.seen
let total_for t ~seg = if seg < Array.length t.totals then t.totals.(seg) else 0

let strings_for t ~seg =
  if seg >= Array.length t.per_seg then []
  else Strmap.fold (fun s c acc -> (s, c) :: acc) t.per_seg.(seg) []

let frequent t ~seg ~rho =
  List.filter_map (fun (s, c) -> if c >= rho then Some s else None) (strings_for t ~seg)

let covered t ~segments ~rho =
  let rec go seg = seg >= segments || (frequent t ~seg ~rho <> [] && go (seg + 1)) in
  go 0
