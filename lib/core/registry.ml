type entry = {
  proto : (module Exec.PROTOCOL);
  model : Problem.fault_model;
  beta_sup : float;
  spec : Spec.bounds;
  attacks : string list;
  run :
    ?opts:Exec.opts ->
    ?attack:string ->
    ?segments:int ->
    ?rho:int ->
    Problem.instance ->
    Problem.report;
  core :
    ?attack:string ->
    ?segments:int ->
    ?rho:int ->
    Problem.instance ->
    (module Transport.CORE);
}

exception Unknown_attack of { protocol : string; attack : string; known : string list }

let attack_error ~protocol ~attack ~known =
  Printf.sprintf "unknown attack %S for %s (known: %s)" attack protocol
    (String.concat ", " known)

let () =
  Printexc.register_printer (function
    | Unknown_attack { protocol; attack; known } ->
      Some (attack_error ~protocol ~attack ~known)
    | _ -> None)

let committee_attacks = [ "equivocate"; "silent"; "flip"; "collude" ]
let cycle_attacks = [ "nearmiss"; "silent"; "lie"; "equivocate"; "flood"; "adaptive"; "splitcast" ]

let unknown ~protocol ~known attack =
  raise (Unknown_attack { protocol; attack; known = "default" :: known })

(* One parser per Byzantine attack vocabulary, shared by [run] (simulator
   convenience runner) and [core] (transport-generic constructor) so the two
   can never drift. An out-of-catalog name raises {!Unknown_attack} — a
   structured error the CLIs turn into a clean usage message — never a bare
   [Failure]. *)
let committee_attack = function
  | "default" | "equivocate" -> Committee.Equivocate
  | "silent" -> Committee.Honest_but_silent
  | "flip" -> Committee.Flip
  | "collude" -> Committee.Collude
  | other -> unknown ~protocol:"byz-committee" ~known:committee_attacks other

let byz_2cycle_attack ~t = function
  | "default" | "nearmiss" -> Byz_2cycle.Near_miss
  | "silent" -> Byz_2cycle.Silent
  | "lie" -> Byz_2cycle.Consistent_lie
  | "equivocate" -> Byz_2cycle.Equivocate
  | "flood" -> Byz_2cycle.Flood (max 1 t)
  | "adaptive" -> Byz_2cycle.Adaptive Dr_adversary.Adaptive.Echo_corrupt
  | "splitcast" -> Byz_2cycle.Adaptive Dr_adversary.Adaptive.Split_brain
  | other -> unknown ~protocol:"byz-2cycle" ~known:cycle_attacks other

let byz_multicycle_attack ~t = function
  | "default" | "nearmiss" -> Byz_multicycle.Near_miss
  | "silent" -> Byz_multicycle.Silent
  | "lie" -> Byz_multicycle.Consistent_lie
  | "equivocate" -> Byz_multicycle.Equivocate
  | "flood" -> Byz_multicycle.Flood (max 1 t)
  | "adaptive" -> Byz_multicycle.Adaptive Dr_adversary.Adaptive.Echo_corrupt
  | "splitcast" -> Byz_multicycle.Adaptive Dr_adversary.Adaptive.Split_brain
  | other -> unknown ~protocol:"byz-multicycle" ~known:cycle_attacks other

(* Protocols without an attack surface accept (and ignore) any attack name,
   matching the CLI's historical behavior of only routing --attack to the
   Byzantine protocols. *)
let plain (module P : Exec.PROTOCOL) ~core ~model ~beta_sup ~spec =
  {
    proto = (module P);
    model;
    beta_sup;
    spec;
    attacks = [ "default" ];
    run = (fun ?opts ?attack:_ ?segments:_ ?rho:_ inst -> P.run ?opts inst);
    core = (fun ?attack:_ ?segments:_ ?rho:_ _inst -> core ());
  }

let committee_entry =
  {
    proto = (module Committee : Exec.PROTOCOL);
    model = Problem.Byzantine;
    beta_sup = 0.5;
    spec = Spec.committee;
    attacks = committee_attacks;
    run =
      (fun ?opts ?(attack = "default") ?segments:_ ?rho:_ inst ->
        Committee.run_with ?opts ~attack:(committee_attack attack) inst);
    core =
      (fun ?(attack = "default") ?segments:_ ?rho:_ _inst ->
        Committee.core ~attack:(committee_attack attack) ());
  }

let byz_2cycle_entry =
  {
    proto = (module Byz_2cycle : Exec.PROTOCOL);
    model = Problem.Byzantine;
    beta_sup = 0.5;
    spec = Spec.byz_2cycle;
    attacks = cycle_attacks;
    run =
      (fun ?opts ?(attack = "default") ?segments ?rho inst ->
        let attack = byz_2cycle_attack ~t:(Problem.t inst) attack in
        Byz_2cycle.run_with ?opts ~attack ?segments ?rho inst);
    core =
      (fun ?(attack = "default") ?segments ?rho inst ->
        let attack = byz_2cycle_attack ~t:(Problem.t inst) attack in
        Byz_2cycle.core ~attack ?segments ?rho ());
  }

let byz_multicycle_entry =
  {
    proto = (module Byz_multicycle : Exec.PROTOCOL);
    model = Problem.Byzantine;
    beta_sup = 0.5;
    spec = Spec.byz_multicycle;
    attacks = cycle_attacks;
    run =
      (fun ?opts ?(attack = "default") ?segments ?rho inst ->
        let attack = byz_multicycle_attack ~t:(Problem.t inst) attack in
        Byz_multicycle.run_with ?opts ~attack ?segments ?rho inst);
    core =
      (fun ?(attack = "default") ?segments ?rho inst ->
        let attack = byz_multicycle_attack ~t:(Problem.t inst) attack in
        Byz_multicycle.core ~attack ?segments ?rho ());
  }

let all =
  [
    plain (module Naive) ~core:Naive.core ~model:Problem.Crash ~beta_sup:1. ~spec:Spec.naive;
    plain (module Balanced) ~core:Balanced.core ~model:Problem.Crash ~beta_sup:0.
      ~spec:Spec.balanced;
    plain (module Crash_single) ~core:Crash_single.core ~model:Problem.Crash ~beta_sup:0.
      ~spec:Spec.crash_single;
    plain
      (module Crash_general)
      ~core:(fun () -> Crash_general.core ())
      ~model:Problem.Crash ~beta_sup:1. ~spec:Spec.crash_general;
    committee_entry;
    byz_2cycle_entry;
    byz_multicycle_entry;
  ]

let name e =
  let (module P : Exec.PROTOCOL) = e.proto in
  P.name

let randomized e = e.spec.Spec.randomized
let attacks e = e.attacks

let find n = List.find_opt (fun e -> name e = n) all
let find_exn n =
  match find n with Some e -> e | None -> failwith ("unknown protocol: " ^ n)

let validate_attack e attack =
  match e.attacks with
  | [ "default" ] -> Ok () (* no attack surface: any name is accepted and ignored *)
  | known ->
    if String.equal attack "default" || List.exists (String.equal attack) known then Ok ()
    else Error (attack_error ~protocol:(name e) ~attack ~known:("default" :: known))

let admits e inst =
  let (module P : Exec.PROTOCOL) = e.proto in
  P.supports inst

let protocols = List.map (fun e -> e.proto) all
let names = List.map name all
let specs = List.map (fun e -> e.spec) all
let spec_of n = Option.map (fun e -> e.spec) (find n)
