(** The multi-cycle randomized Byzantine Download protocol (Theorem 3.12).

    Cycle 1 is the 2-cycle protocol's sampling step over s₁ segments (s₁ a
    power of two). In every later cycle r the segments double in size
    (s_r = s₁/2^(r−1)); each peer picks an r-segment uniformly, waits until
    it has heard k−t cycle-(r−1) reports and both (r−1)-children of its pick
    have a ρ_(r−1)-frequent string, resolves the two children with decision
    trees, broadcasts their concatenation, and moves on. After 1 + log₂ s₁
    cycles the segments are the whole input and every peer outputs what it
    determined.

    Compared to the 2-cycle protocol a peer resolves only the {e two}
    children of its own pick per cycle instead of every segment at once, so
    its decision-tree spend is proportional to the reports that happen to
    fall on its picks — the expectation argument behind the paper's expected
    query bound Õ(n/(γk)). Correct w.h.p. for β < 1/2. Message size grows to
    Θ(n) in the final cycle, as in the paper. *)

include Exec.PROTOCOL

type attack =
  | Silent
  | Near_miss
  | Consistent_lie
  | Equivocate
  | Flood of int
  | Adaptive of Dr_adversary.Adaptive.plan
      (** receive first, then echo the observed report (same cycle and
          segment) with one bit flipped — see {!Dr_adversary.Adaptive} *)
(** Same attack catalog as {!Byz_2cycle}, applied in every cycle. *)

val run_with :
  ?opts:Exec.opts ->
  ?attack:attack ->
  ?segments:int ->
  ?rho:int ->
  Problem.instance ->
  Problem.report
(** [segments] overrides s₁ (rounded down to a power of two); [rho]
    overrides the cycle-1 frequency threshold (later cycles double it as
    the segment count halves). Defaults: [attack = Near_miss], s₁ and ρ
    from the same case analysis as the 2-cycle protocol. *)

val core : ?attack:attack -> ?segments:int -> ?rho:int -> unit -> (module Transport.CORE)
(** The transport-generic protocol core (see {!Transport.CORE}) with the
    attack and plan overrides baked in. *)

val plan : k:int -> n:int -> t:int -> int * int
(** [(s₁, cycles)]: the initial segment count (a power of two) and the
    total number of cycles 1 + log₂ s₁. *)
