(** Regime-based protocol selection (the paper's case analysis as code).

    Given an instance's fault model and resilience, picks the protocol the
    paper would: balanced when nothing fails; Algorithm 1 or 2 under
    crashes; committees (deterministic) or segment sampling (randomized) for
    a Byzantine minority; and — per Theorems 3.1/3.2 — nothing better than
    naive once the Byzantine peers reach half. *)

type preference = Deterministic | Randomized

val for_instance : ?prefer:preference -> Problem.instance -> (module Exec.PROTOCOL)
(** The protocol whose [supports] accepts the instance and whose query
    complexity is the best the paper offers for the regime.
    [prefer] breaks the deterministic/randomized tie for β < 1/2 Byzantine
    instances (default [Randomized], the asymptotically better choice). *)

val all : (module Exec.PROTOCOL) list
(** Every Download protocol in the library, baselines included
    (= [Registry.protocols]). *)

val by_name : string -> (module Exec.PROTOCOL) option
(** Registry lookup by protocol name. *)
