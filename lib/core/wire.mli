(** Packetization of bit strings under the message bound B.

    Protocols that ship whole segments or arrays split them into parts of at
    most [payload] bits each and reassemble on the receiving side. Part
    indices are carried explicitly, so parts may arrive in any order (and
    some may be missing after a mid-broadcast crash). *)

val parts : b:int -> int -> int
(** [parts ~b len] is the number of packets needed for [len] bits. *)

val split : b:int -> Dr_source.Bitarray.t -> (int * Dr_source.Bitarray.t) list
(** [(part_index, payload)] covering the array in order. Empty arrays yield
    a single empty part so that "I sent you my (empty) share" is still a
    message. *)

module Assembly : sig
  (** Reassembly buffer for one logical string. *)

  type t

  val create : len:int -> b:int -> t
  val add : t -> part:int -> Dr_source.Bitarray.t -> unit
  (** Ignores a duplicate part carrying the same payload as the first copy;
      raises [Invalid_argument] on a part whose size is inconsistent with the
      declared length, or on a duplicate whose payload {e differs} from the
      copy already assembled (an equivocation — under crash faults a sender
      never legitimately re-sends different bits for the same part). *)

  val complete : t -> bool
  val get : t -> Dr_source.Bitarray.t
  (** The reassembled string; raises [Invalid_argument] when incomplete. *)

  val received_parts : t -> int
end

module Crc32 : sig
  (** Reflected CRC-32 (IEEE 802.3 / zlib). Every socket frame carries the
      checksum of its payload so that corruption — injected by {!Dr_net}'s
      fault layer or real — surfaces as a typed decode error, never as
      garbage handed to [Marshal]. *)

  val bytes : ?off:int -> ?len:int -> bytes -> int
  (** CRC of the byte range; defaults cover the whole buffer. Raises
      [Invalid_argument] on an out-of-bounds range. *)

  val string : string -> int
end

module Frame : sig
  (** Pure header codec for the framed byte streams of the socket transport
      ([Dr_net]): a 4-byte magic, a 4-byte big-endian payload length and the
      payload's big-endian {!Crc32}. Kept here so the encoding is defined
      (and unit-testable) without any [Unix] dependency; [Dr_net.Frame] does
      the actual descriptor I/O. *)

  val header_len : int
  (** 12: magic, length, CRC. *)

  val max_payload : int
  (** Sanity cap on the decoded length (64 MiB) — a corrupt or hostile
      header fails fast instead of provoking a giant allocation. *)

  val magic : string
  (** ["DRF1"]. *)

  type header_error =
    | Short_header
    | Bad_magic  (** stream out of sync; the connection cannot be trusted *)
    | Length_out_of_range of int
        (** decoded length outside [0, max_payload] — reject {e before}
            allocating *)

  val describe_header_error : header_error -> string

  val encode_header : len:int -> crc:int -> bytes
  (** Raises [Invalid_argument] on a length outside [0, max_payload] (a
      sender-side bug, unlike the typed receive errors). *)

  val decode_header : bytes -> (int * int, header_error) result
  (** [(len, crc)] from the first [header_len] bytes. *)
end
