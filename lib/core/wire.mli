(** Packetization of bit strings under the message bound B.

    Protocols that ship whole segments or arrays split them into parts of at
    most [payload] bits each and reassemble on the receiving side. Part
    indices are carried explicitly, so parts may arrive in any order (and
    some may be missing after a mid-broadcast crash). *)

val parts : b:int -> int -> int
(** [parts ~b len] is the number of packets needed for [len] bits. *)

val split : b:int -> Dr_source.Bitarray.t -> (int * Dr_source.Bitarray.t) list
(** [(part_index, payload)] covering the array in order. Empty arrays yield
    a single empty part so that "I sent you my (empty) share" is still a
    message. *)

module Assembly : sig
  (** Reassembly buffer for one logical string. *)

  type t

  val create : len:int -> b:int -> t
  val add : t -> part:int -> Dr_source.Bitarray.t -> unit
  (** Ignores a duplicate part carrying the same payload as the first copy;
      raises [Invalid_argument] on a part whose size is inconsistent with the
      declared length, or on a duplicate whose payload {e differs} from the
      copy already assembled (an equivocation — under crash faults a sender
      never legitimately re-sends different bits for the same part). *)

  val complete : t -> bool
  val get : t -> Dr_source.Bitarray.t
  (** The reassembled string; raises [Invalid_argument] when incomplete. *)

  val received_parts : t -> int
end

module Frame : sig
  (** Pure header codec for the length-prefixed byte frames of the socket
      transport ([Dr_net]): a 4-byte big-endian payload length. Kept here so
      the encoding is defined (and unit-testable) without any [Unix]
      dependency; [Dr_net.Frame] does the actual descriptor I/O. *)

  val header_len : int
  (** 4. *)

  val max_payload : int
  (** Sanity cap on the decoded length (64 MiB) — a corrupt or hostile
      header fails fast instead of provoking a giant allocation. *)

  val encode_header : int -> bytes
  (** Raises [Invalid_argument] outside [0, max_payload]. *)

  val decode_header : bytes -> int
  (** Reads the first [header_len] bytes; raises [Invalid_argument] on a
      short buffer or an over-cap length. *)
end
