type preference = Deterministic | Randomized

(* Every module reference goes through the registry: this file holds the
   regime case analysis only, not a protocol list. *)
let proto n = (Registry.find_exn n).Registry.proto

let all = Registry.protocols
let by_name n = Option.map (fun e -> e.Registry.proto) (Registry.find n)

let for_instance ?(prefer = Randomized) inst =
  let t = Problem.t inst in
  match inst.Problem.model with
  | Problem.Crash ->
    if t = 0 then proto "balanced"
    else if t = 1 then proto "crash-single"
    else proto "crash-general"
  | Problem.Byzantine ->
    if t = 0 then proto "balanced"
    else if 2 * t < inst.Problem.k then begin
      match prefer with
      | Deterministic -> proto "byz-committee"
      | Randomized -> proto "byz-2cycle"
    end
    else proto "naive"
