module Bitarray = Dr_source.Bitarray
module Segment = Dr_source.Segment
module Prng = Dr_engine.Prng

type msg =
  | Request1 of { phase : int; idx : int array; part : int; parts : int }
      (** pull request: "send me the values of these bits" *)
  | Reply1 of { phase : int; idx : int array; vals : Bitarray.t; part : int; parts : int }
  | Request2 of { phase : int; missing : int array }
  | Reply2 of {
      phase : int;
      about : int;
      known : bool;  (** [false] = "me neither" ([idx] empty) *)
      idx : int array;
      vals : Bitarray.t;
      part : int;
      parts : int;
    }
  | Full of { part : int; bits : Bitarray.t }  (** termination flood: whole array *)

let ceil_log2 v =
  let rec go acc p = if p >= v then acc else go (acc + 1) (p * 2) in
  max 1 (go 0 1)

module Msg = struct
  type t = msg

  let header = 64

  (* Index entries are charged ⌈log2 n⌉ bits each; values 1 bit each. The
     size is data-dependent, so compute it from the payload itself (n is
     recovered conservatively from the largest index). *)
  let idx_cost idx =
    Array.fold_left (fun acc i -> acc + ceil_log2 (i + 2)) 0 idx

  let size_bits = function
    | Request1 { idx; _ } -> header + idx_cost idx
    | Reply1 { idx; vals; _ } -> header + idx_cost idx + Bitarray.length vals
    | Request2 { missing; _ } -> header + (16 * Array.length missing)
    | Reply2 { idx; vals; _ } -> header + idx_cost idx + Bitarray.length vals
    | Full { bits; _ } -> header + Bitarray.length bits

  let tag = function
    | Request1 { phase; part; _ } -> Printf.sprintf "req1(p%d.%d)" phase part
    | Reply1 { phase; part; _ } -> Printf.sprintf "rep1(p%d.%d)" phase part
    | Request2 { phase; _ } -> Printf.sprintf "req2(p%d)" phase
    | Reply2 { phase; about; known; part; _ } ->
      Printf.sprintf "rep2(p%d,u%d,%s.%d)" phase about (if known then "bits" else "none") part
    | Full { part; _ } -> Printf.sprintf "full(.%d)" part
end

let name = "crash-general"

let supports inst =
  if inst.Problem.model <> Problem.Crash then Error "crash-general handles crash faults only"
  else if Problem.t inst >= inst.Problem.k then Error "crash-general needs at least one honest peer"
  else Ok ()

let phases_upper_bound ~k ~t =
  if t = 0 then 2
  else begin
    let beta = float_of_int t /. float_of_int k in
    let r = ceil (log (float_of_int (max k 2)) /. log (1. /. beta)) in
    int_of_float r + 2
  end

(* The common re-assignment rule: all peers that still miss bit [b] after
   phase [p] hand it to the same pseudo-randomly chosen peer. A pure function
   of (b, p), so it needs no coordination (Claim 1). *)
let reassign_rule ~k ~phase b =
  let h = Prng.create (Int64.add (Int64.mul (Int64.of_int b) 0x100000001b3L) (Int64.of_int phase)) in
  Prng.int h k

module Process (T : Transport.S with type msg = Msg.t) = struct
  let run_with ?(fast_path = true) ?monitor inst me =
    let n = Problem.n inst in
    let k = inst.Problem.k in
    let t = Problem.t inst in
    let quorum_others = max 0 (k - t - 1) in
    let threshold = (n + k - 1) / k in
    let max_phase = phases_upper_bound ~k ~t in
    let bpi = ceil_log2 (n + 2) in
    let cap = max 1 ((inst.Problem.b - Msg.header) / (bpi + 1)) in
    let full_payload = max 1 (inst.Problem.b - Msg.header) in
    let spec = Segment.make ~n ~s:(min k n) in
    let y = Bitarray.create n in
    let know = Array.make n false in
    let unknown = ref n in
    let got_full = ref false in
    let my_phase = ref 1 and my_stage = ref 1 in
    let learn b v =
      if not know.(b) then begin
        know.(b) <- true;
        Bitarray.set y b v;
        decr unknown
      end
    in
    let learn_pairs idx vals =
      Array.iteri (fun r b -> if b >= 0 && b < n then learn b (Bitarray.get vals r)) idx
    in
    (* Current assignment of each bit. *)
    let assign = Array.init n (fun b -> Segment.of_bit spec b) in
    (* --- per-phase bookkeeping --- *)
    let heard : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    (* (phase, peer) in S_p *)
    let heard_count : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let reply1_recv : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    (* (phase, peer) -> parts received so far *)
    let requests_sent : (int * int, int array) Hashtbl.t = Hashtbl.create 64 in
    (* (phase, peer) -> indices I pulled from them (for Reply2 content) *)
    let my_missing : (int, int array) Hashtbl.t = Hashtbl.create 8 in
    let resp2_have : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
    (* (phase, responder, about) -> parts received *)
    let resp2_answered : (int * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    (* (phase, responder, about): the responder's full answer arrived *)
    let full_asm : (int, Wire.Assembly.t) Hashtbl.t = Hashtbl.create 8 in
    let pending_req1 : (int * msg) list ref = ref [] in
    let pending_req2 : (int * msg) list ref = ref [] in
    let bump table key =
      let v = match Hashtbl.find_opt table key with Some v -> v | None -> 0 in
      Hashtbl.replace table key (v + 1);
      v + 1
    in
    let get0 table key = match Hashtbl.find_opt table key with Some v -> v | None -> 0 in
    let in_heard phase peer = Hashtbl.mem heard (phase, peer) in
    let mark_heard phase peer =
      if not (in_heard phase peer) then begin
        Hashtbl.replace heard (phase, peer) ();
        ignore (bump heard_count phase)
      end
    in
    (* Send a (idx, vals) batch under the message bound. *)
    let send_batched dst mk idx_all vals_of =
      let total = Array.length idx_all in
      let parts = max 1 ((total + cap - 1) / cap) in
      for part = 0 to parts - 1 do
        let lo = part * cap in
        let len = min cap (total - lo) in
        let len = max len 0 in
        let idx = Array.sub idx_all lo len in
        let vals = Bitarray.init len (fun r -> vals_of idx.(r)) in
        T.send dst (mk ~idx ~vals ~part ~parts)
      done
    in
    let answer_req1 src = function
      | Request1 { phase; idx; part; parts } ->
        (* Reply with my values for exactly the requested indices. By
           Claim 1 I know all of them once I finished stage 1 of [phase];
           crash-model peers never lie, so a miss is a protocol bug. *)
        let vals =
          Bitarray.init (Array.length idx) (fun r ->
              let b = idx.(r) in
              if not (b >= 0 && b < n && know.(b)) then
                failwith
                  (Printf.sprintf
                     "req1 miss: me=%d src=%d req_phase=%d my_phase=%d my_stage=%d b=%d assign=%d"
                     me src phase !my_phase !my_stage b assign.(b));
              Bitarray.get y b)
        in
        T.send src (Reply1 { phase; idx; vals; part; parts })
      | Reply1 _ | Request2 _ | Reply2 _ | Full _ -> assert false
    in
    let answer_req2 src = function
      | Request2 { phase; missing } ->
        (* Short "me neither" answers go out first so that on a serialized
           link they are not stuck behind a long bit-carrying answer. *)
        Array.iter
          (fun u ->
            if not (in_heard phase u) then
              T.send src
                (Reply2
                   { phase; about = u; known = false; idx = [||]; vals = Bitarray.create 0;
                     part = 0; parts = 1 }))
          missing;
        Array.iter
          (fun u ->
            if in_heard phase u then begin
              let idx =
                match Hashtbl.find_opt requests_sent (phase, u) with
                | Some a -> a
                | None -> [||]
              in
              send_batched src
                (fun ~idx ~vals ~part ~parts ->
                  Reply2 { phase; about = u; known = true; idx; vals; part; parts })
                idx
                (fun b -> Bitarray.get y b)
            end)
          missing
      | Request1 _ | Reply1 _ | Reply2 _ | Full _ -> assert false
    in
    let handle (src, m) =
      match m with
      | Request1 { phase; _ } ->
        (* Answerable only once my own stage 1 of that phase is done (the
           paper's "q waits until it is at least in stage 2 of phase p"). *)
        if phase < !my_phase || (phase = !my_phase && !my_stage >= 2) then answer_req1 src m
        else pending_req1 := (src, m) :: !pending_req1
      | Reply1 { phase; idx; vals; parts; _ } ->
        learn_pairs idx vals;
        let got = bump reply1_recv (phase, src) in
        if got >= parts then mark_heard phase src
      | Request2 { phase; _ } ->
        if phase < !my_phase || (phase = !my_phase && !my_stage >= 3) then answer_req2 src m
        else pending_req2 := (src, m) :: !pending_req2
      | Reply2 { phase; about; known; idx; vals; parts; _ } ->
        if known then learn_pairs idx vals;
        let got = bump resp2_have (phase, src, about) in
        if got = parts then Hashtbl.replace resp2_answered (phase, src, about) ()
      | Full { part; bits } ->
        let asm =
          match Hashtbl.find_opt full_asm src with
          | Some a -> a
          | None ->
            let a = Wire.Assembly.create ~len:n ~b:full_payload in
            Hashtbl.add full_asm src a;
            a
        in
        if not (Wire.Assembly.complete asm) then begin
          Wire.Assembly.add asm ~part bits;
          if Wire.Assembly.complete asm then begin
            got_full := true;
            let full = Wire.Assembly.get asm in
            for b = 0 to n - 1 do
              learn b (Bitarray.get full b)
            done
          end
        end
    in
    let wait_until cond =
      while not (cond ()) do
        handle (T.receive ())
      done
    in
    let drain_pending () =
      let ready1, later1 =
        List.partition
          (fun (_, m) ->
            match m with
            | Request1 { phase; _ } -> phase < !my_phase || (phase = !my_phase && !my_stage >= 2)
            | _ -> false)
          !pending_req1
      in
      pending_req1 := later1;
      List.iter (fun (src, m) -> answer_req1 src m) (List.rev ready1);
      let ready2, later2 =
        List.partition
          (fun (_, m) ->
            match m with
            | Request2 { phase; _ } -> phase < !my_phase || (phase = !my_phase && !my_stage >= 3)
            | _ -> false)
          !pending_req2
      in
      pending_req2 := later2;
      List.iter (fun (src, m) -> answer_req2 src m) (List.rev ready2)
    in
    let finish () =
      for b = 0 to n - 1 do
        if not know.(b) then learn b (T.query b)
      done;
      List.iter (fun (part, bits) -> T.broadcast (Full { part; bits })) (Wire.split ~b:full_payload y);
      y
    in
    let rec phase_loop () =
      let p = !my_phase in
      (match monitor with
      | Some f -> f ~peer:me ~phase:p ~assign:(Array.copy assign) ~know:(Array.copy know)
      | None -> ());
      if !unknown <= threshold || p > max_phase then finish ()
      else begin
        (* ---- Stage 1: query my assigned unknown bits; pull the rest. ---- *)
        my_stage := 1;
        for b = 0 to n - 1 do
          if (not know.(b)) && assign.(b) = me then learn b (T.query b)
        done;
        (* Bucket my unknown bits by assignee in one pass over the array. *)
        let wants = Array.make k [] in
        for b = n - 1 downto 0 do
          if not know.(b) then wants.(assign.(b)) <- b :: wants.(assign.(b))
        done;
        for q = 0 to k - 1 do
          if q <> me then begin
            let idx = Array.of_list wants.(q) in
            Hashtbl.replace requests_sent (p, q) idx;
            let total = Array.length idx in
            let parts = max 1 ((total + cap - 1) / cap) in
            for part = 0 to parts - 1 do
              let lo = part * cap in
              let len = max 0 (min cap (total - lo)) in
              T.send q (Request1 { phase = p; idx = Array.sub idx lo len; part; parts })
            done
          end
        done;
        my_stage := 2;
        drain_pending ();
        (* ---- Stage 2: hear from k-t peers (incl. self). ---- *)
        wait_until (fun () -> get0 heard_count p >= quorum_others || !unknown = 0);
        if !unknown = 0 then begin
          my_phase := p + 1;
          finish ()
        end
        else begin
          let missing =
            Array.of_seq
              (Seq.filter (fun q -> q <> me && not (in_heard p q)) (Seq.init k Fun.id))
          in
          Hashtbl.replace my_missing p missing;
          if Array.length missing = 0 then begin
            (* Heard everyone: nothing to ask. *)
            my_stage := 3;
            drain_pending ();
            my_phase := p + 1;
            my_stage := 1;
            drain_pending ();
            phase_loop ()
          end
          else begin
            T.broadcast (Request2 { phase = p; missing });
            my_stage := 3;
            drain_pending ();
            (* ---- Stage 3: collect k-t answers (or be rescued). ----
               A responder counts as complete once it has answered about
               every missing peer; with the Theorem 2.13 fast path, a
               missing peer whose own slow reply has arrived no longer
               needs anybody's answer. *)
            let enough_responders () =
              let needed u = not (fast_path && in_heard p u) in
              let complete q =
                Array.for_all
                  (fun u -> (not (needed u)) || Hashtbl.mem resp2_answered (p, q, u))
                  missing
              in
              let count = ref 0 in
              for q = 0 to k - 1 do
                if q <> me && complete q then incr count
              done;
              !count >= quorum_others
            in
            wait_until (fun () ->
                enough_responders ()
                || (fast_path && !unknown = 0)
                || (!got_full && !unknown = 0));
            (* ---- Re-assign what is still unknown. ---- *)
            if !unknown = 0 then begin
              my_phase := p + 1;
              finish ()
            end
            else begin
              for b = 0 to n - 1 do
                if not know.(b) then assign.(b) <- reassign_rule ~k ~phase:p b
              done;
              my_phase := p + 1;
              my_stage := 1;
              drain_pending ();
              phase_loop ()
            end
          end
        end
      end
    in
    phase_loop ()
end

let core ?(fast_path = true) () : (module Transport.CORE) =
  (module struct
    let name = if fast_path then name else name ^ "-nofp"
    let supports = supports

    module Msg = Msg

    module Process (T : Transport.S with type msg = Msg.t) = struct
      module P = Process (T)

      let run inst me = P.run_with ~fast_path inst me
    end
  end)

module ST = Sim_transport.Make (Msg)
module SP = Process (ST)

let run_with ?(opts = Exec.default) ?(fast_path = true) ?monitor inst =
  let cfg = Exec.build_config inst opts in
  let protocol = if fast_path then name else name ^ "-nofp" in
  Exec.finish ~protocol inst (ST.run_sim cfg (SP.run_with ~fast_path ?monitor inst))

let run ?opts inst = run_with ?opts ~fast_path:true inst
