(** The naive Download protocol: every nonfaulty peer queries all [n] bits.

    Q = n, M = 0, T = 0 (plus query latency). Trivially correct in {e any}
    fault model at {e any} resilience — and, by Theorem 3.1, the only
    deterministic option once half the peers can be Byzantine. It is the
    baseline every other protocol is compared against. *)

include Exec.PROTOCOL

val core : unit -> (module Transport.CORE)
(** The transport-generic protocol core (see {!Transport.CORE}). *)
