module Bitarray = Dr_source.Bitarray

type t = Leaf of Bitarray.t | Node of { index : int; zero : t; one : t }

let dedupe strings =
  let sorted = List.sort_uniq Bitarray.compare strings in
  sorted

let rec build_sorted = function
  | [] -> invalid_arg "Decision_tree.build: empty candidate set"
  | [ s ] -> Leaf s
  | first :: (second :: _ as rest) -> (
    match Bitarray.first_diff first second with
    | None -> build_sorted (first :: List.tl rest)  (* duplicates already merged; defensive *)
    | Some index ->
      let zero_set, one_set =
        List.partition (fun s -> not (Bitarray.get s index)) (first :: rest)
      in
      (* Both sides are non-empty: [first] and [second] differ at [index]. *)
      Node { index; zero = build_sorted zero_set; one = build_sorted one_set })

let build strings =
  (match strings with
  | [] -> invalid_arg "Decision_tree.build: empty candidate set"
  | s :: rest ->
    let len = Bitarray.length s in
    if List.exists (fun s' -> Bitarray.length s' <> len) rest then
      invalid_arg "Decision_tree.build: candidates must have equal length");
  build_sorted (dedupe strings)

let rec leaves = function
  | Leaf s -> [ s ]
  | Node { zero; one; _ } -> leaves zero @ leaves one

let rec internal_nodes = function
  | Leaf _ -> 0
  | Node { zero; one; _ } -> 1 + internal_nodes zero + internal_nodes one

let rec depth = function
  | Leaf _ -> 0
  | Node { zero; one; _ } -> 1 + Int.max (depth zero) (depth one)

let determine ~query ~offset tree =
  let rec walk tree spent =
    match tree with
    | Leaf s -> (s, spent)
    | Node { index; zero; one } ->
      if query (offset + index) then walk one (spent + 1) else walk zero (spent + 1)
  in
  walk tree 0

let contains tree s = List.exists (Bitarray.equal s) (leaves tree)
