(* The simulator transport: a thin renaming of Dr_engine.Sim.Make to the
   Transport.S vocabulary. Every function is a direct alias, so protocol
   cores instantiated over it execute the exact same effect sequence as the
   pre-transport code — the golden determinism tests pin this bit-exactly. *)

module Make (M : Transport.MSG) = struct
  module S = Dr_engine.Sim.Make (M)

  type msg = M.t

  let me = S.me
  let peer_count = S.peer_count
  let send = S.send
  let broadcast = S.broadcast
  let receive = S.receive
  let query = S.query
  let clock = S.now
  let rng = S.rng
  let sleep = S.sleep
  let note = S.note
  let die = S.die

  let run_sim = S.run
end
