(** Shared execution machinery for all protocol modules.

    Bundles the adversarial environment (latency policy, crash plan, query
    latency, staggered starts) and turns a raw simulator outcome into a
    {!Problem.report} by checking every nonfaulty output against [X]. *)

type opts = private {
  latency : Dr_adversary.Latency.fn;
  link_rate : float;
      (** link bandwidth in bits per time unit (see {!Dr_engine.Sim.config});
          [infinity] by default *)
  crash : Dr_adversary.Crash_plan.t;
  query_latency : float;  (** round-trip of one source query *)
  start_time : int -> float;
  trace : Dr_engine.Trace.t option;
  max_events : int;
  query_override : (peer:int -> int -> bool) option;
      (** replace the source for selected peers — the lower-bound adversary
          hands corrupted peers a simulated input this way *)
  arbiter : Dr_engine.Sim.arbiter option;
      (** schedule arbiter for systematic exploration (see
          {!Dr_engine.Explore}); overrides latency-based ordering *)
  observer : (Dr_engine.Sim.obs -> unit) option;
      (** per-event observation sink — the coverage-guided checker's
          sampling hook (see {!Dr_engine.Explore.probe}) *)
}
(** The record is [private]: read fields freely, but construct values only
    through {!make_opts} and the [with_*] combinators, so adding a field
    never breaks callers. *)

val make_opts :
  ?latency:Dr_adversary.Latency.fn ->
  ?link_rate:float ->
  ?crash:Dr_adversary.Crash_plan.t ->
  ?query_latency:float ->
  ?start_time:(int -> float) ->
  ?trace:Dr_engine.Trace.t ->
  ?max_events:int ->
  ?query_override:(peer:int -> int -> bool) ->
  ?arbiter:Dr_engine.Sim.arbiter ->
  ?observer:(Dr_engine.Sim.obs -> unit) ->
  unit ->
  opts
(** Labelled constructor; every omitted field takes the [default] value
    (unit latencies, unbounded links, no crashes, instant queries,
    simultaneous start, no trace). Preferred over record literals: adding a
    field to [opts] does not break [make_opts] callers. *)

val default : opts
(** [make_opts ()] — unit latencies, no crashes, instant queries,
    simultaneous start. *)

val with_latency : Dr_adversary.Latency.fn -> opts -> opts
val with_link_rate : float -> opts -> opts
val with_crash : Dr_adversary.Crash_plan.t -> opts -> opts
val with_trace : Dr_engine.Trace.t -> opts -> opts
val with_arbiter : Dr_engine.Sim.arbiter -> opts -> opts
val with_observer : (Dr_engine.Sim.obs -> unit) -> opts -> opts

val without_trace : opts -> opts
(** Drop the trace sink (an exploration run re-executes thousands of
    schedules; tracing them is noise). *)

val build_config : Problem.instance -> opts -> Dr_engine.Sim.config
(** Simulator configuration for the instance: a fresh counting data source
    serving [X] (or the override), plus the adversarial environment from
    [opts]. *)

val finish :
  protocol:string ->
  Problem.instance ->
  Dr_source.Bitarray.t Dr_engine.Sim.outcome ->
  Problem.report
(** Check outputs and aggregate metrics over {e nonfaulty} peers only, per
    the paper's definitions of Q and M. A nonfaulty peer with a missing
    output (deadlocked) counts as wrong. *)

module type PROTOCOL = sig
  val name : string

  val supports : Problem.instance -> (unit, string) result
  (** Whether the protocol's resilience precondition holds for the
      instance (e.g. the committee protocol needs [2t + 1 <= k]). *)

  val run : ?opts:opts -> Problem.instance -> Problem.report
end
