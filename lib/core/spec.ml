type bounds = {
  protocol : string;
  theorem : string;
  resilience : k:int -> t:int -> bool;
  q_bound : k:int -> n:int -> t:int -> b:int -> float;
  randomized : bool;
}

let gamma ~k ~t = float_of_int (k - t) /. float_of_int k

let per_peer_share ~k ~n = ceil (float_of_int n /. float_of_int k)

let naive =
  {
    protocol = "naive";
    theorem = "folklore";
    resilience = (fun ~k:_ ~t:_ -> true);
    q_bound = (fun ~k:_ ~n ~t:_ ~b:_ -> float_of_int n);
    randomized = false;
  }

let balanced =
  {
    protocol = "balanced";
    theorem = "fault-free baseline";
    resilience = (fun ~k:_ ~t -> t = 0);
    q_bound = (fun ~k ~n ~t:_ ~b:_ -> per_peer_share ~k ~n);
    randomized = false;
  }

let crash_single =
  {
    protocol = "crash-single";
    theorem = "Theorem 2.3";
    resilience = (fun ~k ~t -> t <= 1 && k >= 2);
    q_bound =
      (fun ~k ~n ~t:_ ~b:_ ->
        (* n/k for the own share, plus the 1/(k-1) re-share, plus a couple
           of boundary bits from the ceilings. *)
        per_peer_share ~k ~n
        +. ceil (per_peer_share ~k ~n /. float_of_int (max 1 (k - 1)))
        +. 2.);
    randomized = false;
  }

let crash_general =
  {
    protocol = "crash-general";
    theorem = "Theorem 2.13";
    resilience = (fun ~k ~t -> t < k);
    q_bound =
      (fun ~k ~n ~t ~b:_ ->
        (* Geometric reassignment: n/(gamma k), plus the final direct n/k,
           plus 2k slack for the pseudo-random spread of the common rule. *)
        (float_of_int n /. (gamma ~k ~t *. float_of_int k))
        +. per_peer_share ~k ~n
        +. float_of_int (2 * k)
        +. 2.);
    randomized = false;
  }

let committee =
  {
    protocol = "byz-committee";
    theorem = "Theorem 3.4";
    resilience = (fun ~k ~t -> (2 * t) + 1 <= k);
    q_bound =
      (fun ~k ~n ~t ~b ->
        (* Per peer: one query per bit of every block whose committee it
           sits on. Round-robin membership over m = ceil(n/payload) blocks
           of committees of c = 2t+1 is at most ceil(m*c/k) + 1. *)
        let payload = max 1 (b - 64) in
        let m = (n + payload - 1) / payload in
        let c = (2 * t) + 1 in
        let memberships = ((m * c) + k - 1) / k + 1 in
        float_of_int (memberships * payload));
    randomized = false;
  }

let byz_2cycle =
  {
    protocol = "byz-2cycle";
    theorem = "Theorem 3.7";
    resilience = (fun ~k ~t -> k - (2 * t) >= 1);
    q_bound =
      (fun ~k ~n ~t ~b:_ ->
        let s, _rho = Byz_2cycle.plan ~k ~n ~t in
        (* n/s for the own segment + at most one decision-tree query per
           received string (<= k) + segment-boundary slack. *)
        ceil (float_of_int n /. float_of_int s) +. float_of_int k +. float_of_int s);
    randomized = true;
  }

let byz_multicycle =
  {
    protocol = "byz-multicycle";
    theorem = "Theorem 3.12";
    resilience = (fun ~k ~t -> k - (2 * t) >= 1);
    q_bound =
      (fun ~k ~n ~t ~b:_ ->
        let s1, cycles = Byz_multicycle.plan ~k ~n ~t in
        (* n/s1 base + per-cycle tree work bounded by the received strings. *)
        ceil (float_of_int n /. float_of_int s1)
        +. float_of_int (cycles * k)
        +. float_of_int s1);
    randomized = true;
  }

let within bounds ~k ~n ~t ~b ~measured =
  bounds.resilience ~k ~t
  && Float.compare (float_of_int measured) (bounds.q_bound ~k ~n ~t ~b) <= 0
