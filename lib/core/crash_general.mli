(** Algorithm 2: deterministic asynchronous Download tolerating t < k crashes
    (Theorem 2.13).

    Runs in phases of three stages. Each peer keeps an assignment of every
    still-unknown bit to a peer responsible for querying it. Per phase it
    (1) queries the bits assigned to itself and {e pulls} the rest — one
    explicit request per peer, answered once the responder has finished its
    own stage 1; (2) waits for replies from k−t peers (more risks deadlock)
    and then asks everyone about the peers it did not hear from; (3) collects
    k−t answers — the missing peers' bits, or "me neither" — and re-assigns
    every bit that is still unknown by a deterministic common rule. Unknown
    bits shrink by a factor β per phase; once at most ⌈n/k⌉ remain the peer
    queries them directly, floods its full array and terminates (which
    rescues any peer still waiting, Claim 2).

    Q = O(n/(γk)) for any β < 1 — optimal up to the 1/γ factor, which the
    paper shows necessary. [~fast_path:true] (the default) applies the
    Theorem 2.13 modification: a peer stops waiting for third-party reports
    about a missing peer once that peer's own slow reply arrives, removing a
    t-factor from T under bandwidth-limited latencies.

    Deviations from the paper's pseudo-code, documented in DESIGN.md: pull
    requests carry explicit bit indices (the paper leaves the request
    encoding implicit), and the common re-assignment rule is a deterministic
    hash of (bit, phase) rather than "evenly", because after two rounds of
    re-assignment the surviving index sets are stride-periodic and any
    affine rule would collapse them onto one peer. *)

include Exec.PROTOCOL

val run_with :
  ?opts:Exec.opts ->
  ?fast_path:bool ->
  ?monitor:(peer:int -> phase:int -> assign:int array -> know:bool array -> unit) ->
  Problem.instance ->
  Problem.report
(** [run] with the Theorem 2.13 fast path switchable for the ablation bench.
    [monitor] is an observation hook fired by every peer at the start of
    each phase with copies of its assignment map and knowledge vector — the
    test suite uses it to check Claims 1 and 4 of the paper's analysis on
    live executions. *)

val core : ?fast_path:bool -> unit -> (module Transport.CORE)
(** The transport-generic protocol core (see {!Transport.CORE}); the
    packaged name is ["crash-general"], or ["crash-general-nofp"] with
    [~fast_path:false]. *)

val phases_upper_bound : k:int -> t:int -> int
(** The r* cap on the number of phases: ⌈log k / log (1/β)⌉ + 2, the point
    by which at most ⌈n/k⌉ bits can remain unknown. *)
