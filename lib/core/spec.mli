(** The paper's bounds as code.

    One record per protocol: resilience precondition, query/time/message
    bounds as evaluable functions of the instance parameters, and provenance
    (which theorem). The experiment harness prints these next to measured
    values, and the tests check that measured Q never exceeds the bound
    (with the constants the analysis allows). *)

type bounds = {
  protocol : string;  (** matches [Exec.PROTOCOL.name] *)
  theorem : string;  (** provenance in the paper *)
  resilience : k:int -> t:int -> bool;  (** the regime where the bound holds *)
  q_bound : k:int -> n:int -> t:int -> b:int -> float;
      (** upper bound on Q, with explicit constants; [b] is the message
          bound, which sets the committee protocol's block granularity *)
  randomized : bool;  (** bound holds w.h.p. rather than always *)
}

val naive : bounds
val balanced : bounds
val crash_single : bounds
val crash_general : bounds
val committee : bounds
val byz_2cycle : bounds
val byz_multicycle : bounds

(* The list of all bounds and lookup by name live in {!Registry} ([specs] /
   [spec_of]), next to the protocol modules they describe. *)

val within : bounds -> k:int -> n:int -> t:int -> b:int -> measured:int -> bool
(** Does a measured Q respect the bound (given the regime holds)? *)

val gamma : k:int -> t:int -> float
