module Bitarray = Dr_source.Bitarray
module Segment = Dr_source.Segment
module Fault = Dr_adversary.Fault
module Adaptive = Dr_adversary.Adaptive
module Prng = Dr_engine.Prng

type payload = { seg : int; bits : Bitarray.t }

module Msg = struct
  type t = payload

  let size_bits { bits; _ } = 64 + Bitarray.length bits
  let tag { seg; _ } = Printf.sprintf "seg(%d)" seg
end

let name = "byz-2cycle"

let supports inst =
  if inst.Problem.model <> Problem.Byzantine then Error "byz-2cycle targets Byzantine faults"
  else if inst.Problem.k - (2 * Problem.t inst) < 1 then
    Error "byz-2cycle needs k - 2t >= 1 (beta < 1/2)"
  else Ok ()

type attack =
  | Silent
  | Near_miss
  | Consistent_lie
  | Equivocate
  | Flood of int
  | Adaptive of Adaptive.plan
  | Mirror

let plan ~k ~n ~t =
  let h = max 1 (k - (2 * t)) in
  let margin = 3. *. log (float_of_int (max k 2)) in
  let s_max = int_of_float (float_of_int h /. margin) in
  let s = max 1 (min s_max n) in
  let rho = max 1 (h / (2 * s)) in
  (s, rho)

module Process (T : Transport.S with type msg = Msg.t) = struct
  let run_with ?(attack = Near_miss) ?segments ?rho inst i =
    let n = Problem.n inst in
    let k = inst.Problem.k in
    let t = Problem.t inst in
    let s_default, rho_default = plan ~k ~n ~t in
    let s = match segments with Some s -> max 1 (min s n) | None -> s_default in
    let rho = match rho with Some r -> max 1 r | None -> rho_default in
    let spec = Segment.make ~n ~s in
    let query_segment j =
      let pos, len = Segment.bounds spec j in
      Bitarray.init len (fun r -> T.query (pos + r))
    in
    let honest i =
      let prng = T.rng () in
      (* ---- Cycle 1: sample, query, broadcast. ---- *)
      let pick = Prng.int prng s in
      let mine = query_segment pick in
      T.broadcast { seg = pick; bits = mine };
      if s = 1 then mine (* Case 3: the segment is the whole input. *)
      else begin
        (* ---- Cycle 2: gather reports, then resolve each segment. ---- *)
        let store = Frequent.create () in
        ignore (Frequent.add store ~seg:pick ~peer:i mine);
        let heard = ref 1 in
        let wanted_len seg = Segment.len spec seg in
        while not (!heard >= k - t && Frequent.covered store ~segments:s ~rho) do
          let src, { seg; bits } = T.receive () in
          if seg >= 0 && seg < s && Int.equal (Bitarray.length bits) (wanted_len seg) then
            if Frequent.add store ~seg ~peer:src bits then incr heard
        done;
        let y = Bitarray.create n in
        Bitarray.blit ~src:mine ~dst:y ~pos:(Segment.start spec pick);
        for seg = 0 to s - 1 do
          if seg <> pick then begin
            let candidates = Frequent.frequent store ~seg ~rho in
            let tree = Decision_tree.build candidates in
            let value, _spent =
              Decision_tree.determine ~query:T.query ~offset:(Segment.start spec seg) tree
            in
            Bitarray.blit ~src:value ~dst:y ~pos:(Segment.start spec seg)
          end
        done;
        y
      end
    in
    let byz i =
      let rank =
        let rec go idx = function
          | [] -> 0
          | p :: _ when p = i -> idx
          | _ :: tl -> go (idx + 1) tl
        in
        go 0 inst.Problem.fault.Fault.faulty_ids
      in
      let prng = T.rng () in
      (match attack with
      | Silent -> ()
      | Near_miss ->
        (* Pick deterministically to pile onto low segments; flip a bit that
           varies per attacker so every forgery is a distinct tree leaf. *)
        let seg = i mod s in
        let bits = query_segment seg in
        let len = Bitarray.length bits in
        T.broadcast { seg; bits = Bitarray.flip bits (i mod len) }
      | Consistent_lie ->
        (* One agreed-on forged string for segment 0: becomes rho-frequent. *)
        let bits = query_segment 0 in
        let forged = Bitarray.init (Bitarray.length bits) (fun r -> not (Bitarray.get bits r)) in
        T.broadcast { seg = 0; bits = forged }
      | Equivocate ->
        let seg = Prng.int prng s in
        let len = Segment.len spec seg in
        for dst = 0 to k - 1 do
          if dst <> i then T.send dst { seg; bits = Bitarray.random prng len }
        done
      | Flood groups ->
        (* The faulty peers split into [groups] coalitions; each coalition
           agrees on a distinct forgery of segment 0, so each passes any
           threshold up to t/groups and the segment-0 decision tree gains
           [groups] leaves — the worst case of the query analysis. *)
        let groups = max 1 groups in
        let bits = query_segment 0 in
        let variant = rank mod groups in
        let len = Bitarray.length bits in
        T.broadcast { seg = 0; bits = Bitarray.flip bits (variant mod len) }
      | Adaptive plan ->
        (* Corrupt observed traffic: wait for whatever report the schedule
           delivers first, flip a rank-dependent bit of it, and echo per the
           plan. If nobody ever sends (everyone faulty and silent) the peer
           just blocks — faulty peers may do that. *)
        let _src, { seg; bits } = T.receive () in
        let forged =
          Bitarray.flip bits (Adaptive.corrupt_index ~rank ~len:(Bitarray.length bits))
        in
        (match plan with
        | Adaptive.Echo_corrupt -> T.broadcast { seg; bits = forged }
        | Adaptive.Split_brain ->
          List.iter
            (fun dst -> T.send dst { seg; bits = forged })
            (Adaptive.split_targets ~k ~me:i))
      | Mirror -> assert false (* dispatched to the honest path *));
      T.die ()
    in
    if Fault.is_faulty inst.Problem.fault i then
      match attack with Mirror -> honest i | _ -> byz i
    else honest i
end

let core ?attack ?segments ?rho () : (module Transport.CORE) =
  (module struct
    let name = name
    let supports = supports

    module Msg = Msg

    module Process (T : Transport.S with type msg = Msg.t) = struct
      module P = Process (T)

      let run inst i = P.run_with ?attack ?segments ?rho inst i
    end
  end)

module ST = Sim_transport.Make (Msg)
module SP = Process (ST)

let run_with ?(opts = Exec.default) ?attack ?segments ?rho inst =
  let cfg = Exec.build_config inst opts in
  Exec.finish ~protocol:name inst (ST.run_sim cfg (SP.run_with ?attack ?segments ?rho inst))

let run ?opts inst = run_with ?opts inst
