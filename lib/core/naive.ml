module Bitarray = Dr_source.Bitarray

module Msg = struct
  type t = unit

  let size_bits () = 0
  let tag () = "none"
end

let name = "naive"
let supports _ = Ok ()

module Process (T : Transport.S with type msg = Msg.t) = struct
  let run inst _i =
    let n = Problem.n inst in
    let y = Bitarray.create n in
    for j = 0 to n - 1 do
      Bitarray.set y j (T.query j)
    done;
    y
end

let core () : (module Transport.CORE) =
  (module struct
    let name = name
    let supports = supports

    module Msg = Msg
    module Process = Process
  end)

module ST = Sim_transport.Make (Msg)
module SP = Process (ST)

let run ?(opts = Exec.default) inst =
  let cfg = Exec.build_config inst opts in
  Exec.finish ~protocol:name inst (ST.run_sim cfg (SP.run inst))
