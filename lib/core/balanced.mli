(** Fault-free balanced Download: peer [i] queries the [i]-th segment of X
    and broadcasts it; everyone assembles the full array.

    The ideal point of the design space — Q = ⌈n/k⌉, M = O(k²·n/(kB)),
    T = O(n/(kB)) — but a single crash deadlocks it and a single Byzantine
    peer corrupts every honest output. It exists as the β = 0 baseline and
    as the failure demo motivating everything else. *)

include Exec.PROTOCOL

val core : unit -> (module Transport.CORE)
(** The transport-generic protocol core (see {!Transport.CORE}). *)
