module Bitarray = Dr_source.Bitarray
module Segment = Dr_source.Segment
module Fault = Dr_adversary.Fault

type payload = { block : int; bits : Bitarray.t }

module Msg = struct
  type t = payload

  let size_bits { bits; _ } = 64 + Bitarray.length bits
  let tag { block; _ } = Printf.sprintf "block(%d)" block
end

let name = "byz-committee"

let supports inst =
  if inst.Problem.model <> Problem.Byzantine then Error "byz-committee targets Byzantine faults"
  else if (2 * Problem.t inst) + 1 > inst.Problem.k then
    Error "byz-committee needs 2t+1 <= k (beta < 1/2)"
  else Ok ()

type attack = Honest_but_silent | Flip | Equivocate | Collude | Mirror

let committee ~k ~size j =
  let size = min size k in
  List.init size (fun i -> ((j * size) + i) mod k)

module Strmap = Map.Make (struct
  type t = Bitarray.t

  let compare = Bitarray.compare
end)

module Process (T : Transport.S with type msg = Msg.t) = struct
  let run_with ?(attack = Equivocate) ?committee_size ?threshold inst i =
    let n = Problem.n inst in
    let k = inst.Problem.k in
    let t = Problem.t inst in
    let c = min k (match committee_size with Some c -> max 1 c | None -> (2 * t) + 1) in
    let tau = match threshold with Some tau -> max 1 tau | None -> t + 1 in
    let payload_bits = max 1 (inst.Problem.b - 64) in
    let blocks = (n + payload_bits - 1) / payload_bits in
    let spec = Segment.make ~n ~s:(min blocks n) in
    let member j i = List.mem i (committee ~k ~size:c j) in
    let query_block j =
      let pos, len = Segment.bounds spec j in
      Bitarray.init len (fun r -> T.query (pos + r))
    in
    let honest i =
      let y = Bitarray.create n in
      let decided = Array.make spec.Segment.s false in
      let remaining = ref spec.Segment.s in
      let votes = Array.make spec.Segment.s Strmap.empty in
      let voted : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
      let decide j bits =
        if not decided.(j) then begin
          decided.(j) <- true;
          decr remaining;
          Bitarray.blit ~src:bits ~dst:y ~pos:(Segment.start spec j)
        end
      in
      (* Stage 1: query and broadcast every block whose committee I sit on;
         my own queries decide those blocks directly. *)
      for j = 0 to spec.Segment.s - 1 do
        if member j i then begin
          let bits = query_block j in
          T.broadcast { block = j; bits };
          decide j bits
        end
      done;
      (* Stage 2: decide the remaining blocks on tau matching committee
         values. *)
      while !remaining > 0 do
        let src, { block; bits } = T.receive () in
        if
          block >= 0
          && block < spec.Segment.s
          && (not decided.(block))
          && member block src
          && (not (Hashtbl.mem voted (block, src)))
          && Int.equal (Bitarray.length bits) (Segment.len spec block)
        then begin
          Hashtbl.add voted (block, src) ();
          let count =
            match Strmap.find_opt bits votes.(block) with Some c -> c + 1 | None -> 1
          in
          votes.(block) <- Strmap.add bits count votes.(block);
          if count >= tau then decide block bits
        end
      done;
      y
    in
    let byz i =
      (match attack with
      | Honest_but_silent -> ()
      | Flip ->
        for j = 0 to spec.Segment.s - 1 do
          if member j i then begin
            let bits = query_block j in
            let flipped = Bitarray.init (Bitarray.length bits) (fun r -> not (Bitarray.get bits r)) in
            T.broadcast { block = j; bits = flipped }
          end
        done
      | Equivocate ->
        for j = 0 to spec.Segment.s - 1 do
          if member j i then begin
            let bits = query_block j in
            let flipped = Bitarray.init (Bitarray.length bits) (fun r -> not (Bitarray.get bits r)) in
            for dst = 0 to k - 1 do
              if dst <> i then T.send dst { block = j; bits = (if dst mod 2 = 0 then bits else flipped) }
            done
          end
        done
      | Collude ->
        (* Every faulty member forges the same value: the true block with the
           first bit flipped. Breaks the protocol iff a committee holds >= tau
           faulty members, i.e. once beta >= 1/2. *)
        for j = 0 to spec.Segment.s - 1 do
          if member j i then begin
            let bits = query_block j in
            let forged = Bitarray.flip bits 0 in
            T.broadcast { block = j; bits = forged }
          end
        done
      | Mirror -> assert false (* dispatched to the honest path *));
      T.die ()
    in
    if Fault.is_faulty inst.Problem.fault i then
      match attack with Mirror -> honest i | _ -> byz i
    else honest i
end

let core ?attack ?committee_size ?threshold () : (module Transport.CORE) =
  (module struct
    let name = name
    let supports = supports

    module Msg = Msg

    module Process (T : Transport.S with type msg = Msg.t) = struct
      module P = Process (T)

      let run inst i = P.run_with ?attack ?committee_size ?threshold inst i
    end
  end)

module ST = Sim_transport.Make (Msg)
module SP = Process (ST)

let run_with ?(opts = Exec.default) ?attack ?committee_size ?threshold inst =
  let cfg = Exec.build_config inst opts in
  Exec.finish ~protocol:name inst
    (ST.run_sim cfg (SP.run_with ?attack ?committee_size ?threshold inst))

let run ?opts inst = run_with ?opts inst
