(** The 2-cycle randomized Byzantine Download protocol (Theorem 3.7).

    Cycle 1: each peer picks one of [s] segments uniformly at random, queries
    it fully and broadcasts the resulting string. Cycle 2: each peer waits
    until it has heard from k−t distinct peers {e and} every segment has a
    ρ-frequent string (ρ reports from distinct peers); it then resolves every
    segment by building a decision tree over its ρ-frequent candidates and
    querying the separating indices.

    The segment count follows the paper's three-case analysis with
    ρ = ⌈h/(2s)⌉ for h = k−2t (the guaranteed honest peers among any k−t
    heard): Case 1/2 takes s as large as the Chernoff premise
    s ≤ h/(3·ln k) allows (capped at n); Case 3 — when that leaves s = 1 —
    degenerates to the naive protocol, matching the paper's "query all bits"
    fallback. Correct w.h.p. for β < 1/2;
    Q = n/s + O(k) = Õ(n/(γk) + k).

    The message size is set by the protocol itself at Θ(n/s) (the paper's
    assumption for this protocol); the instance's B bound is not used to
    packetize. *)

include Exec.PROTOCOL

type attack =
  | Silent  (** faulty peers send nothing (coverage attack) *)
  | Near_miss
      (** faulty peers report a real segment with one bit flipped —
          maximizes decision-tree work *)
  | Consistent_lie
      (** all faulty peers report the same forged string for one segment,
          creating a ρ-frequent wrong candidate *)
  | Equivocate  (** a different forged string to every receiver — filtered
                    out by the ρ-frequency threshold when ρ ≥ 2 *)
  | Flood of int
      (** [Flood g]: the coalition splits into [g] groups, each agreeing on a
          distinct forgery of segment 0 — each forgery becomes ρ-frequent
          (for ρ ≤ t/g) and the segment-0 decision tree pays [g] extra
          queries: the worst case of the query analysis *)
  | Adaptive of Dr_adversary.Adaptive.plan
      (** choose the corruption online from observed traffic: receive first,
          then echo the observed report with one bit flipped — to everyone
          ({!Dr_adversary.Adaptive.Echo_corrupt}, registry name
          ["adaptive"]) or to only half the peers
          ({!Dr_adversary.Adaptive.Split_brain}, ["splitcast"]) *)
  | Mirror
      (** faulty peers execute the honest protocol faithfully; the deviation
          comes entirely from the simulated source the lower-bound adversary
          feeds them via [query_override] *)

val run_with :
  ?opts:Exec.opts ->
  ?attack:attack ->
  ?segments:int ->
  ?rho:int ->
  Problem.instance ->
  Problem.report
(** Defaults: [attack = Near_miss]; [segments]/[rho] per the case analysis
    (overridable for the ρ-ablation bench). *)

val core : ?attack:attack -> ?segments:int -> ?rho:int -> unit -> (module Transport.CORE)
(** The transport-generic protocol core (see {!Transport.CORE}) with the
    attack and plan overrides baked in. *)

val plan : k:int -> n:int -> t:int -> int * int
(** [(s, rho)] the case analysis would choose — exposed for tests and for
    the experiment harness to report which regime an instance falls in. *)
