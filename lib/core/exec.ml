module Bitarray = Dr_source.Bitarray

type opts = {
  latency : Dr_adversary.Latency.fn;
  link_rate : float;
  crash : Dr_adversary.Crash_plan.t;
  query_latency : float;
  start_time : int -> float;
  trace : Dr_engine.Trace.t option;
  max_events : int;
  query_override : (peer:int -> int -> bool) option;
  arbiter : Dr_engine.Sim.arbiter option;
  observer : (Dr_engine.Sim.obs -> unit) option;
}

let make_opts ?(latency = Dr_adversary.Latency.unit_delay) ?(link_rate = infinity)
    ?(crash = Dr_adversary.Crash_plan.none) ?(query_latency = 0.)
    ?(start_time = fun _ -> 0.) ?trace ?(max_events = 200_000_000) ?query_override
    ?arbiter ?observer () =
  {
    latency;
    link_rate;
    crash;
    query_latency;
    start_time;
    trace;
    max_events;
    query_override;
    arbiter;
    observer;
  }

let default = make_opts ()

let with_latency latency opts = { opts with latency }
let with_link_rate link_rate opts = { opts with link_rate }
let with_crash crash opts = { opts with crash }
let with_trace trace opts = { opts with trace = Some trace }
let with_arbiter arbiter opts = { opts with arbiter = Some arbiter }
let with_observer observer opts = { opts with observer = Some observer }
let without_trace opts = { opts with trace = None }

let build_config inst opts =
  let source = Dr_source.Data_source.create ~k:inst.Problem.k inst.Problem.x in
  let query_bit =
    match opts.query_override with
    | Some f -> f
    | None -> Dr_source.Data_source.query_fn source
  in
  {
    (Dr_engine.Sim.default_config ~k:inst.Problem.k ~query_bit) with
    seed = inst.Problem.seed;
    latency = opts.latency;
    link_rate = opts.link_rate;
    crash = opts.crash;
    query_latency = (fun ~peer:_ ~time:_ -> opts.query_latency);
    start_time = opts.start_time;
    trace = opts.trace;
    max_events = opts.max_events;
    arbiter = opts.arbiter;
    observer = opts.observer;
  }

let finish ~protocol inst (outcome : Bitarray.t Dr_engine.Sim.outcome) =
  let honest = Problem.honest inst in
  let wrong = ref [] in
  (* T is the instant the last nonfaulty peer terminates (the paper's time
     complexity); stray deliveries to already-finished peers do not count.
     If some honest peer never terminated, fall back to the last event. *)
  let t_done = ref 0. in
  let all_done = ref true in
  for i = inst.Problem.k - 1 downto 0 do
    if honest i then begin
      match outcome.Dr_engine.Sim.outputs.(i) with
      | Some (t, y) ->
        if t > !t_done then t_done := t;
        if not (Bitarray.equal y inst.Problem.x) then wrong := i :: !wrong
      | None ->
        all_done := false;
        wrong := i :: !wrong
    end
  done;
  let time = if !all_done then !t_done else outcome.Dr_engine.Sim.end_time in
  let summary = Dr_engine.Metrics.summarize ~select:honest outcome.Dr_engine.Sim.metrics in
  {
    Problem.protocol;
    ok = !wrong = [];
    wrong = !wrong;
    q_max = summary.Dr_engine.Metrics.max_queries;
    q_mean = summary.Dr_engine.Metrics.mean_queries;
    q_total = summary.Dr_engine.Metrics.total_queries;
    msgs = summary.Dr_engine.Metrics.total_msgs;
    bits_sent = summary.Dr_engine.Metrics.total_bits;
    max_msg_bits = summary.Dr_engine.Metrics.max_msg_bits;
    time;
    wakeups_max = summary.Dr_engine.Metrics.max_wakeups;
    status = outcome.Dr_engine.Sim.status;
  }

module type PROTOCOL = sig
  val name : string
  val supports : Problem.instance -> (unit, string) result
  val run : ?opts:opts -> Problem.instance -> Problem.report
end
