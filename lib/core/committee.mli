(** Deterministic Byzantine Download for β < 1/2 (Theorem 3.4).

    The input is cut into blocks of at most B bits; block [j] is assigned a
    committee of [2t+1] peers chosen round-robin. Every committee member
    queries its block and broadcasts the value; every peer decides a block
    once [t+1] {e identical} values from distinct committee members arrive.
    Any t+1 matching values include an honest one, so decisions are correct;
    honest members alone eventually produce t+1 matching values, so the
    asynchronous adaptation (wait instead of one synchronous round) never
    blocks — Byzantine peers can only delay, not forge, a decision.

    Q = (2t+1)·⌈n/k⌉ + O(B): the deterministic price of Byzantine faults
    ([3]'s lower bound, matched here), a factor ≈ 2βk+1 over the ideal n/k.

    The committee size and threshold are exposed so that the lower-bound
    demonstration (Theorem 3.1) can run the protocol {e outside} its safe
    region β < 1/2 and exhibit the forced failure. *)

include Exec.PROTOCOL

type attack =
  | Honest_but_silent  (** faulty peers never send (pure omission) *)
  | Flip  (** members broadcast their block with every bit flipped *)
  | Equivocate  (** correct value to even peers, flipped to odd peers *)
  | Collude  (** all faulty members of a committee agree on one forged value —
                 the attack that breaks the protocol once t+1 ≤ t_actual *)
  | Mirror
      (** faulty peers execute the honest protocol faithfully; the deviation
          comes entirely from the simulated source the lower-bound adversary
          feeds them via [query_override] *)

val run_with :
  ?opts:Exec.opts ->
  ?attack:attack ->
  ?committee_size:int ->
  ?threshold:int ->
  Problem.instance ->
  Problem.report
(** Defaults: [attack = Equivocate], [committee_size = 2t+1] (clamped to k),
    [threshold = t+1]. *)

val core :
  ?attack:attack -> ?committee_size:int -> ?threshold:int -> unit -> (module Transport.CORE)
(** The transport-generic protocol core (see {!Transport.CORE}) with the
    attack and committee overrides baked in. *)

val committee : k:int -> size:int -> int -> int list
(** [committee ~k ~size j] is the member list of block [j]'s committee
    (round-robin, distinct peers). *)
