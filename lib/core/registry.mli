(** The protocol registry: one entry per Download protocol.

    Single source of truth for the set of protocols in the library. Each
    entry bundles the first-class module with its fault model, fault-fraction
    supremum, paper bounds ({!Spec.bounds}) and a uniform runner that parses
    the CLI attack vocabulary for the protocols that take an adversary
    strategy. Anything that needs "all protocols" — selection, CLIs, sweeps,
    the experiment harness, the spec tests — goes through this table; no
    other hand-maintained protocol list exists. *)

type entry = {
  proto : (module Exec.PROTOCOL);
  model : Problem.fault_model;
      (** the fault model the protocol is designed against (the model a
          sweep should instantiate when running it) *)
  beta_sup : float;
      (** asymptotic supremum of the tolerated fault fraction t/k: 1 for
          naive and the general crash protocol, 1/2 for the Byzantine
          protocols, 0 for the fault-free/single-crash baselines. The exact
          finite-[k] precondition is [spec.resilience] / [supports]. *)
  spec : Spec.bounds;  (** the paper's bound record for this protocol *)
  attacks : string list;
      (** the entry's full attack-name catalog, every name accepted by [run]
          (["default"] excluded for the Byzantine entries — it aliases the
          first name). Protocols without an attack surface list just
          ["default"]. Test matrices and the [dr_check] fuzzer iterate this
          instead of keeping their own per-protocol lists. *)
  run :
    ?opts:Exec.opts ->
    ?attack:string ->
    ?segments:int ->
    ?rho:int ->
    Problem.instance ->
    Problem.report;
      (** run the protocol; [attack] is the CLI attack name ("default",
          "silent", "flip", "equivocate", "collude", "nearmiss", "lie",
          "flood", "adaptive", "splitcast") — protocols without an attack
          surface ignore it, the Byzantine ones raise {!Unknown_attack} on a
          name outside their catalog (validate first with {!validate_attack}
          for a [result]). [segments] and [rho] apply to the randomized
          protocols only. *)
  core :
    ?attack:string ->
    ?segments:int ->
    ?rho:int ->
    Problem.instance ->
    (module Transport.CORE);
      (** the transport-generic constructor: same parameter vocabulary as
          [run] (the instance is consulted only to scale attack parameters
          such as the flood group count), but instead of executing on the
          simulator it packages the protocol core for instantiation over any
          {!Transport.S}. [run] is the simulator shortcut; [core] is what
          transport-agnostic drivers ([dr_download --transport net], the
          conformance tests) use. *)
}

exception
  Unknown_attack of { protocol : string; attack : string; known : string list }
(** Raised by the attack parsers (so by [run] / [core]) on a name outside the
    entry's catalog. [known] includes ["default"]. A printer is registered, so
    [Printexc.to_string] yields the same one-line message the CLIs print. *)

val validate_attack : entry -> string -> (unit, string) result
(** [validate_attack e a] is [Ok ()] iff [e.run ~attack:a] will not raise
    {!Unknown_attack}: entries without an attack surface (catalog
    [["default"]]) accept — and ignore — any name; the Byzantine entries
    accept ["default"] plus their catalog. The [Error] carries the same
    message the exception prints. CLIs call this up front to turn a typo into
    a clean usage error instead of a crash. *)

val all : entry list
(** Every protocol, baselines included, in presentation order. *)

val find : string -> entry option
(** Lookup by [Exec.PROTOCOL.name]. *)

val find_exn : string -> entry
(** @raise Failure on an unknown name. *)

val name : entry -> string
val randomized : entry -> bool

val attacks : entry -> string list
(** The [attacks] catalog field. *)

val admits : entry -> Problem.instance -> (unit, string) result
(** The protocol's own [supports] precondition. *)

val protocols : (module Exec.PROTOCOL) list
val names : string list

val specs : Spec.bounds list
val spec_of : string -> Spec.bounds option
