module Bitarray = Dr_source.Bitarray

type 'a problem = {
  name : string;
  compute : Bitarray.t -> 'a;
  equal : 'a -> 'a -> bool;
  describe : 'a -> string;
}

let parity =
  {
    name = "parity";
    compute = (fun x -> Bitarray.count_ones x land 1 = 1);
    equal = Bool.equal;
    describe = string_of_bool;
  }

let popcount =
  {
    name = "popcount";
    compute = Bitarray.count_ones;
    equal = Int.equal;
    describe = string_of_int;
  }

let find_first wanted =
  {
    name = Printf.sprintf "find-first-%b" wanted;
    compute =
      (fun x ->
        let n = Bitarray.length x in
        let rec go i = if i >= n then None else if Bitarray.get x i = wanted then Some i else go (i + 1) in
        go 0);
    equal = Option.equal Int.equal;
    describe = (function Some i -> string_of_int i | None -> "none");
  }

let all_equal =
  {
    name = "all-equal";
    compute =
      (fun x ->
        let ones = Bitarray.count_ones x in
        ones = 0 || ones = Bitarray.length x);
    equal = Bool.equal;
    describe = string_of_bool;
  }

let longest_run =
  {
    name = "longest-run";
    compute =
      (fun x ->
        let n = Bitarray.length x in
        let best = ref 0 and cur = ref 0 in
        for i = 0 to n - 1 do
          if i > 0 && Bool.equal (Bitarray.get x i) (Bitarray.get x (i - 1)) then incr cur
          else cur := 1;
          if !cur > !best then best := !cur
        done;
        !best);
    equal = Int.equal;
    describe = string_of_int;
  }

let slice ~pos ~len =
  {
    name = Printf.sprintf "slice[%d..%d)" pos (pos + len);
    compute = (fun x -> Bitarray.sub x ~pos ~len);
    equal = Bitarray.equal;
    describe = Bitarray.to_string;
  }

type 'a result = { download : Problem.report; value : 'a option }

let solve (module P : Exec.PROTOCOL) ?opts inst problem =
  let download = P.run ?opts inst in
  (* Download's correctness guarantee is exactly Y_i = X for every nonfaulty
     peer, so all nonfaulty peers evaluate f on the same array and agree. *)
  let value = if download.Problem.ok then Some (problem.compute inst.Problem.x) else None in
  { download; value }

let check problem inst result =
  match result.value with
  | Some v -> problem.equal v (problem.compute inst.Problem.x)
  | None -> false
