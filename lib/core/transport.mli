(** The transport abstraction of the protocol layer.

    The paper's protocols are defined purely in terms of point-to-point
    messages to other peers and [Query(i)] calls to the external source.
    {!S} captures exactly that interface — plus the clock/sleep/die hooks the
    Byzantine strategies use — so a protocol core written against it is
    oblivious to {e where} it runs. Two implementations exist:

    - {!Sim_transport}: the deterministic discrete-event simulator
      ({!Dr_engine.Sim}), bit-exact with the pre-refactor behaviour;
    - [Dr_net.Net_transport]: a real runtime where each peer is an OS
      process exchanging length-prefixed frames over loopback/LAN sockets
      and querying a standalone data-source server ([dr_source_server]).

    {!CORE} packages a protocol as a first-class transport-generic
    constructor; {!Registry.entry.core} exposes one per protocol. *)

(** Message vocabulary of one protocol: payload type plus the accounting and
    tracing views. Identical to {!Dr_engine.Sim.MESSAGE}, so a protocol's
    [Msg] module satisfies both. *)
module type MSG = sig
  type t

  val size_bits : t -> int
  (** Size charged against the message-complexity accounting (the model's
      [B] bound). *)

  val tag : t -> string
  (** Short label used in traces. *)
end

(** The transport signature. Calls are only legal from inside a peer
    process executed by the owning runtime (the simulator event loop, or a
    peer OS process of the net runtime). *)
module type S = sig
  type msg

  val me : unit -> int
  val peer_count : unit -> int

  val send : int -> msg -> unit
  val broadcast : msg -> unit
  (** [broadcast m] sends [m] to every other peer, in ID order. *)

  val receive : unit -> int * msg
  (** Next delivered message as [(sender, message)]; blocks until one
      arrives. *)

  val query : int -> bool
  (** Read one bit from the external source (counted in Q — every transport
      must meter this through {!Dr_source.Data_source} accounting). *)

  val clock : unit -> float
  (** Elapsed time: virtual in the simulator, wall-clock in the net runtime.
      Only for Byzantine strategies and instrumentation — honest protocol
      logic must not read the clock (the model has no global time). *)

  val rng : unit -> Dr_engine.Prng.t
  (** This peer's private random stream. Transports derive it from the
      instance seed by the same splitting discipline, so protocol coin flips
      agree across runtimes. *)

  val sleep : float -> unit
  (** Wait for a duration. Only for Byzantine/adversarial code. *)

  val note : string -> unit
  (** Free-form trace annotation (a no-op where there is no trace). *)

  val die : unit -> 'a
  (** The crashable hook: stop executing this peer immediately (voluntary
      halt of a Byzantine strategy, or transport-internal crash injection).
      Each transport raises its own control exception — protocol code must
      not catch it. *)
end

(** A transport-generic protocol: its message vocabulary and a process body
    that can be instantiated over any {!S}. Obtain values of this type from
    {!Registry.entry.core} — the constructor closes over the protocol's
    attack/segment parameters so [Process(T).run] needs only the instance
    and the peer id. *)
module type CORE = sig
  val name : string
  val supports : Problem.instance -> (unit, string) result

  module Msg : MSG

  module Process (T : S with type msg = Msg.t) : sig
    val run : Problem.instance -> int -> Dr_source.Bitarray.t
    (** [run inst i] is the full per-peer protocol body (honest or
        Byzantine, per [inst]'s fault partition). Returns the peer's output
        array; faulty peers may instead [T.die]. *)
  end
end
