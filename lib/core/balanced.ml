module Bitarray = Dr_source.Bitarray
module Segment = Dr_source.Segment

type payload = { seg : int; part : int; bits : Bitarray.t }

module Msg = struct
  type t = payload

  (* Segment id + part index + payload; headers cost ~2 words. *)
  let size_bits { bits; _ } = 64 + Bitarray.length bits
  let tag { seg; part; _ } = Printf.sprintf "share(seg=%d,part=%d)" seg part
end

let name = "balanced"

let supports inst =
  if Problem.t inst = 0 then Ok () else Error "balanced tolerates no faults (beta = 0)"

module Process (T : Transport.S with type msg = Msg.t) = struct
  let run inst i =
    let n = Problem.n inst in
    let k = inst.Problem.k in
    let b = inst.Problem.b - 64 in
    let b = if b < 1 then 1 else b in
    let spec = Segment.make ~n ~s:(min k n) in
    let y = Bitarray.create n in
    (* Query own segment (peers beyond the segment count own nothing). *)
    let mine =
      if i < spec.Segment.s then begin
        let pos, len = Segment.bounds spec i in
        let mine = Bitarray.init len (fun j -> T.query (pos + j)) in
        Bitarray.blit ~src:mine ~dst:y ~pos;
        Some mine
      end
      else None
    in
    (match mine with
    | Some mine ->
      List.iter (fun (part, bits) -> T.broadcast { seg = i; part; bits }) (Wire.split ~b mine)
    | None -> ());
    (* Collect every other segment. *)
    let assemblies =
      Array.init spec.Segment.s (fun seg -> Wire.Assembly.create ~len:(Segment.len spec seg) ~b)
    in
    let missing = ref (if i < spec.Segment.s then spec.Segment.s - 1 else spec.Segment.s) in
    while !missing > 0 do
      let _src, { seg; part; bits } = T.receive () in
      if seg >= 0 && seg < spec.Segment.s && seg <> i then begin
        let a = assemblies.(seg) in
        if not (Wire.Assembly.complete a) then begin
          Wire.Assembly.add a ~part bits;
          if Wire.Assembly.complete a then begin
            Bitarray.blit ~src:(Wire.Assembly.get a) ~dst:y ~pos:(Segment.start spec seg);
            decr missing
          end
        end
      end
    done;
    y
end

let core () : (module Transport.CORE) =
  (module struct
    let name = name
    let supports = supports

    module Msg = Msg
    module Process = Process
  end)

module ST = Sim_transport.Make (Msg)
module SP = Process (ST)

let run ?(opts = Exec.default) inst =
  let cfg = Exec.build_config inst opts in
  Exec.finish ~protocol:name inst (ST.run_sim cfg (SP.run inst))
