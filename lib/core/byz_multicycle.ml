module Bitarray = Dr_source.Bitarray
module Segment = Dr_source.Segment
module Fault = Dr_adversary.Fault
module Adaptive = Dr_adversary.Adaptive
module Prng = Dr_engine.Prng

type payload = { cycle : int; seg : int; bits : Bitarray.t }

module Msg = struct
  type t = payload

  let size_bits { bits; _ } = 64 + Bitarray.length bits
  let tag { cycle; seg; _ } = Printf.sprintf "seg(c%d,%d)" cycle seg
end

let name = "byz-multicycle"

let supports inst =
  if inst.Problem.model <> Problem.Byzantine then Error "byz-multicycle targets Byzantine faults"
  else if inst.Problem.k - (2 * Problem.t inst) < 1 then
    Error "byz-multicycle needs k - 2t >= 1 (beta < 1/2)"
  else Ok ()

type attack =
  | Silent
  | Near_miss
  | Consistent_lie
  | Equivocate
  | Flood of int
  | Adaptive of Adaptive.plan

let floor_pow2 v =
  let rec go p = if p * 2 > v then p else go (p * 2) in
  if v < 1 then 1 else go 1

let plan ~k ~n ~t =
  let s_linear, _rho = Byz_2cycle.plan ~k ~n ~t in
  let s1 = floor_pow2 s_linear in
  let rec log2 acc p = if p >= s1 then acc else log2 (acc + 1) (p * 2) in
  (s1, 1 + log2 0 1)

module Process (T : Transport.S with type msg = Msg.t) = struct
  let run_with ?(attack = Near_miss) ?segments ?rho inst i =
    let n = Problem.n inst in
    let k = inst.Problem.k in
    let t = Problem.t inst in
    let h = max 1 (k - (2 * t)) in
    let s1 =
      match segments with
      | Some s -> floor_pow2 (max 1 (min s n))
      | None -> fst (plan ~k ~n ~t)
    in
    let specs =
      (* specs.(r-1) is the segmentation of cycle r; s halves each cycle. *)
      let rec build acc spec =
        if spec.Segment.s = 1 then List.rev (spec :: acc)
        else build (spec :: acc) (Segment.halve spec)
      in
      Array.of_list (build [] (Segment.make ~n ~s:s1))
    in
    let cycles = Array.length specs in
    (* rho doubles as segments halve (rho_r = h/(2 s_r)); an explicit [rho]
       overrides the cycle-1 value and keeps the same doubling. *)
    let rho_of r =
      let s_r = specs.(r - 1).Segment.s in
      match rho with
      | Some base -> max 1 (base * (s1 / s_r))
      | None -> max 1 (h / (2 * s_r))
    in
    let query_segment spec j =
      let pos, len = Segment.bounds spec j in
      Bitarray.init len (fun r -> T.query (pos + r))
    in
    let honest i =
      let prng = T.rng () in
      (* Per-cycle report stores; reports for future cycles are buffered by
         feeding them into their own store as they arrive. *)
      let stores = Array.init cycles (fun _ -> Frequent.create ()) in
      let heard = Array.make cycles 0 in
      let ingest src { cycle; seg; bits } =
        if cycle >= 1 && cycle <= cycles then begin
          let spec = specs.(cycle - 1) in
          if seg >= 0 && seg < spec.Segment.s
             && Int.equal (Bitarray.length bits) (Segment.len spec seg)
          then
            if Frequent.add stores.(cycle - 1) ~seg ~peer:src bits then
              heard.(cycle - 1) <- heard.(cycle - 1) + 1
        end
      in
      let report cycle seg bits =
        ingest i { cycle; seg; bits };
        T.broadcast { cycle; seg; bits }
      in
      (* ---- Cycle 1: sample and query directly. ---- *)
      let pick1 = Prng.int prng specs.(0).Segment.s in
      let mine1 = query_segment specs.(0) pick1 in
      report 1 pick1 mine1;
      (* ---- Cycles 2..R: double, resolve children, re-broadcast. ---- *)
      let last = ref (Bitarray.create 0) in
      for r = 2 to cycles do
        let spec = specs.(r - 1) in
        let fine = specs.(r - 2) in
        let rho = rho_of (r - 1) in
        let pick = if spec.Segment.s = 1 then 0 else Prng.int prng spec.Segment.s in
        let children = Segment.children ~coarse:spec ~fine pick in
        let child_ready c = Frequent.frequent stores.(r - 2) ~seg:c ~rho <> [] in
        while
          not (heard.(r - 2) >= k - t && List.for_all child_ready children)
        do
          let src, m = T.receive () in
          ingest src m
        done;
        let resolve c =
          let tree = Decision_tree.build (Frequent.frequent stores.(r - 2) ~seg:c ~rho) in
          fst (Decision_tree.determine ~query:T.query ~offset:(Segment.start fine c) tree)
        in
        let value =
          List.fold_left (fun acc c -> Bitarray.append acc (resolve c)) (Bitarray.create 0) children
        in
        report r pick value;
        if r = cycles then last := value
      done;
      if cycles = 1 then mine1 else !last
    in
    let byz i =
      let rank =
        let rec go idx = function
          | [] -> 0
          | p :: _ when p = i -> idx
          | _ :: tl -> go (idx + 1) tl
        in
        go 0 inst.Problem.fault.Fault.faulty_ids
      in
      let prng = T.rng () in
      (match attack with
      | Silent -> ()
      | Near_miss ->
        for r = 1 to cycles do
          let spec = specs.(r - 1) in
          let seg = i mod spec.Segment.s in
          let bits = query_segment spec seg in
          T.broadcast { cycle = r; seg; bits = Bitarray.flip bits (i mod Bitarray.length bits) }
        done
      | Consistent_lie ->
        for r = 1 to cycles do
          let spec = specs.(r - 1) in
          let bits = query_segment spec 0 in
          let forged = Bitarray.init (Bitarray.length bits) (fun j -> not (Bitarray.get bits j)) in
          T.broadcast { cycle = r; seg = 0; bits = forged }
        done
      | Equivocate ->
        for r = 1 to cycles do
          let spec = specs.(r - 1) in
          let seg = Prng.int prng spec.Segment.s in
          let len = Segment.len spec seg in
          for dst = 0 to k - 1 do
            if dst <> i then T.send dst { cycle = r; seg; bits = Bitarray.random prng len }
          done
        done
      | Flood groups ->
        let groups = max 1 groups in
        for r = 1 to cycles do
          let spec = specs.(r - 1) in
          let bits = query_segment spec 0 in
          let variant = rank mod groups in
          T.broadcast { cycle = r; seg = 0; bits = Bitarray.flip bits (variant mod Bitarray.length bits) }
        done
      | Adaptive plan ->
        (* One corrupted echo per cycle, each shaped by whatever report the
           schedule delivers next — the forged cycle/segment follows the
           observed traffic instead of a pre-run script. *)
        for _r = 1 to cycles do
          let _src, { cycle; seg; bits } = T.receive () in
          let forged =
            Bitarray.flip bits (Adaptive.corrupt_index ~rank ~len:(Bitarray.length bits))
          in
          match plan with
          | Adaptive.Echo_corrupt -> T.broadcast { cycle; seg; bits = forged }
          | Adaptive.Split_brain ->
            List.iter
              (fun dst -> T.send dst { cycle; seg; bits = forged })
              (Adaptive.split_targets ~k ~me:i)
        done);
      T.die ()
    in
    if Fault.is_faulty inst.Problem.fault i then byz i else honest i
end

let core ?attack ?segments ?rho () : (module Transport.CORE) =
  (module struct
    let name = name
    let supports = supports

    module Msg = Msg

    module Process (T : Transport.S with type msg = Msg.t) = struct
      module P = Process (T)

      let run inst i = P.run_with ?attack ?segments ?rho inst i
    end
  end)

module ST = Sim_transport.Make (Msg)
module SP = Process (ST)

let run_with ?(opts = Exec.default) ?attack ?segments ?rho inst =
  let cfg = Exec.build_config inst opts in
  Exec.finish ~protocol:name inst (ST.run_sim cfg (SP.run_with ?attack ?segments ?rho inst))

let run ?opts inst = run_with ?opts inst
