module Bitarray = Dr_source.Bitarray

let parts ~b len =
  if b <= 0 then invalid_arg "Wire.parts: b must be positive";
  if len = 0 then 1 else (len + b - 1) / b

let split ~b bits =
  let len = Bitarray.length bits in
  if len = 0 then [ (0, Bitarray.create 0) ]
  else
    List.init (parts ~b len) (fun part ->
        let pos = part * b in
        (part, Bitarray.sub bits ~pos ~len:(min b (len - pos))))

module Assembly = struct
  type t = {
    buffer : Bitarray.t;
    b : int;
    have : bool array;  (** which parts have arrived *)
    mutable missing : int;
  }

  let create ~len ~b =
    if b <= 0 then invalid_arg "Wire.Assembly.create: b must be positive";
    if len < 0 then invalid_arg "Wire.Assembly.create: negative length";
    let count = parts ~b len in
    { buffer = Bitarray.create len; b; have = Array.make count false; missing = count }

  let add t ~part payload =
    if part < 0 || part >= Array.length t.have then invalid_arg "Wire.Assembly.add: bad part";
    let pos = part * t.b in
    let expected = min t.b (Bitarray.length t.buffer - pos) in
    if Bitarray.length payload <> expected then
      invalid_arg "Wire.Assembly.add: payload size mismatch";
    if not t.have.(part) then begin
      t.have.(part) <- true;
      t.missing <- t.missing - 1;
      if expected > 0 then Bitarray.blit ~src:payload ~dst:t.buffer ~pos
    end
    else if expected > 0 && not (Bitarray.equal payload (Bitarray.sub t.buffer ~pos ~len:expected))
    then invalid_arg "Wire.Assembly.add: duplicate part with conflicting payload"

  let complete t = t.missing = 0

  let get t =
    if not (complete t) then invalid_arg "Wire.Assembly.get: incomplete";
    Bitarray.copy t.buffer

  let received_parts t = Array.length t.have - t.missing
end

module Frame = struct
  let header_len = 4
  let max_payload = 1 lsl 26

  let encode_header len =
    if len < 0 || len > max_payload then invalid_arg "Wire.Frame.encode_header: bad length";
    let h = Bytes.create header_len in
    Bytes.set_uint8 h 0 ((len lsr 24) land 0xff);
    Bytes.set_uint8 h 1 ((len lsr 16) land 0xff);
    Bytes.set_uint8 h 2 ((len lsr 8) land 0xff);
    Bytes.set_uint8 h 3 (len land 0xff);
    h

  let decode_header h =
    if Bytes.length h < header_len then invalid_arg "Wire.Frame.decode_header: short header";
    let b i = Bytes.get_uint8 h i in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > max_payload then
      invalid_arg (Printf.sprintf "Wire.Frame.decode_header: length %d exceeds cap" len);
    len
end
