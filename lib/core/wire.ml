module Bitarray = Dr_source.Bitarray

let parts ~b len =
  if b <= 0 then invalid_arg "Wire.parts: b must be positive";
  if len = 0 then 1 else (len + b - 1) / b

let split ~b bits =
  let len = Bitarray.length bits in
  if len = 0 then [ (0, Bitarray.create 0) ]
  else
    List.init (parts ~b len) (fun part ->
        let pos = part * b in
        (part, Bitarray.sub bits ~pos ~len:(min b (len - pos))))

module Assembly = struct
  type t = {
    buffer : Bitarray.t;
    b : int;
    have : bool array;  (** which parts have arrived *)
    mutable missing : int;
  }

  let create ~len ~b =
    if b <= 0 then invalid_arg "Wire.Assembly.create: b must be positive";
    if len < 0 then invalid_arg "Wire.Assembly.create: negative length";
    let count = parts ~b len in
    { buffer = Bitarray.create len; b; have = Array.make count false; missing = count }

  let add t ~part payload =
    if part < 0 || part >= Array.length t.have then invalid_arg "Wire.Assembly.add: bad part";
    let pos = part * t.b in
    let expected = min t.b (Bitarray.length t.buffer - pos) in
    if Bitarray.length payload <> expected then
      invalid_arg "Wire.Assembly.add: payload size mismatch";
    if not t.have.(part) then begin
      t.have.(part) <- true;
      t.missing <- t.missing - 1;
      if expected > 0 then Bitarray.blit ~src:payload ~dst:t.buffer ~pos
    end
    else if expected > 0 && not (Bitarray.equal payload (Bitarray.sub t.buffer ~pos ~len:expected))
    then invalid_arg "Wire.Assembly.add: duplicate part with conflicting payload"

  let complete t = t.missing = 0

  let get t =
    if not (complete t) then invalid_arg "Wire.Assembly.get: incomplete";
    Bitarray.copy t.buffer

  let received_parts t = Array.length t.have - t.missing
end

module Crc32 = struct
  (* Reflected CRC-32 (IEEE 802.3 / zlib), polynomial 0xEDB88320. *)
  (* dr-race: zone init-only — precomputed remainder table, never written after module init *)
  let table =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
        done;
        !c)

  let update crc byte = table.((crc lxor byte) land 0xff) lxor (crc lsr 8)

  let bytes ?(off = 0) ?len b =
    let len = match len with Some l -> l | None -> Bytes.length b - off in
    if off < 0 || len < 0 || Int.compare (off + len) (Bytes.length b) > 0 then
      invalid_arg "Wire.Crc32.bytes: bad range";
    let c = ref 0xffffffff in
    for i = off to off + len - 1 do
      c := update !c (Bytes.get_uint8 b i)
    done;
    !c lxor 0xffffffff

  let string s = bytes (Bytes.unsafe_of_string s)
end

module Frame = struct
  let header_len = 12
  let max_payload = 1 lsl 26
  let magic = "DRF1"

  type header_error = Short_header | Bad_magic | Length_out_of_range of int

  let describe_header_error = function
    | Short_header -> "short header"
    | Bad_magic -> "bad magic (stream out of sync)"
    | Length_out_of_range n -> Printf.sprintf "length %d outside [0, %d]" n max_payload

  let put_be32 h off v =
    Bytes.set_uint8 h off ((v lsr 24) land 0xff);
    Bytes.set_uint8 h (off + 1) ((v lsr 16) land 0xff);
    Bytes.set_uint8 h (off + 2) ((v lsr 8) land 0xff);
    Bytes.set_uint8 h (off + 3) (v land 0xff)

  let get_be32 h off =
    let b i = Bytes.get_uint8 h (off + i) in
    (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

  let encode_header ~len ~crc =
    if len < 0 || len > max_payload then invalid_arg "Wire.Frame.encode_header: bad length";
    let h = Bytes.create header_len in
    Bytes.blit_string magic 0 h 0 4;
    put_be32 h 4 len;
    put_be32 h 8 (crc land 0xffffffff);
    h

  let decode_header h =
    if Bytes.length h < header_len then Error Short_header
    else if not (String.equal (Bytes.sub_string h 0 4) magic) then Error Bad_magic
    else
      let len = get_be32 h 4 in
      if len > max_payload then Error (Length_out_of_range len) else Ok (len, get_be32 h 8)
end
