(** Algorithm 1: deterministic asynchronous Download with at most one crash.

    Two phases of three stages each (Theorem 2.3). In phase 1 every peer
    queries its own 1/k share and broadcasts it, waits for shares from k−1
    peers (waiting for the last one risks deadlock), asks everyone about the
    single peer it did not hear from, and collects k−1 answers — either that
    peer's bits or "me neither". By the overlap lemma all still-lacking peers
    agree on the same missing peer, so in phase 2 its share is re-queried
    evenly by the k−1 remaining peers, while peers that learned everything
    broadcast the full array ("completion mode").

    Q = ⌈n/k⌉ + ⌈n/(k(k−1))⌉ + O(1); tolerates exactly t ≤ 1 crash. *)

include Exec.PROTOCOL

val core : unit -> (module Transport.CORE)
(** The transport-generic protocol core (see {!Transport.CORE}). *)
