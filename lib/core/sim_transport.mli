(** {!Transport.S} over the deterministic simulator.

    [Make (Msg)] instantiates one simulator ({!Dr_engine.Sim.Make}) and
    exposes its process-side API under the transport names ([clock] is the
    simulator's [now]). [run_sim] drives an execution: the process passed to
    it must perform its transport calls through {e this} instance (each
    [Make] application owns its own effect constructors). *)

module Make (M : Transport.MSG) : sig
  include Transport.S with type msg = M.t

  val run_sim : Dr_engine.Sim.config -> (int -> 'r) -> 'r Dr_engine.Sim.outcome
  (** {!Dr_engine.Sim.Make.run} for this instance. *)
end
