(* The transport abstraction: exactly the primitives the protocol cores use,
   lifted out of Dr_engine.Sim so that the same protocol code can run either
   inside the deterministic simulator or as a real OS process over sockets
   (lib/net). See DESIGN.md "Transport layer". *)

module type MSG = sig
  type t

  val size_bits : t -> int
  val tag : t -> string
end

module type S = sig
  type msg

  val me : unit -> int
  val peer_count : unit -> int
  val send : int -> msg -> unit
  val broadcast : msg -> unit
  val receive : unit -> int * msg
  val query : int -> bool
  val clock : unit -> float
  val rng : unit -> Dr_engine.Prng.t
  val sleep : float -> unit
  val note : string -> unit
  val die : unit -> 'a
end

module type CORE = sig
  val name : string
  val supports : Problem.instance -> (unit, string) result

  module Msg : MSG

  module Process (T : S with type msg = Msg.t) : sig
    val run : Problem.instance -> int -> Dr_source.Bitarray.t
  end
end
