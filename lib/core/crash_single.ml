module Bitarray = Dr_source.Bitarray
module Segment = Dr_source.Segment

type msg =
  | Share of { owner : int; part : int; bits : Bitarray.t }
      (** phase-1 stage-1: the sender's own assigned segment *)
  | Ask of { about : int }  (** stage-2 request: who is your missing peer's data *)
  | Bits_of of { about : int; part : int; bits : Bitarray.t }
      (** stage-2 response carrying the missing peer's segment *)
  | Me_neither of { about : int }
  | Reshare of { about : int; part : int; bits : Bitarray.t }
      (** phase-2 share of the reassigned slice of [about]'s segment *)
  | Full of { part : int; bits : Bitarray.t }  (** completion mode: whole array *)

module Msg = struct
  type t = msg

  let header = 64

  let size_bits = function
    | Share { bits; _ } | Bits_of { bits; _ } | Reshare { bits; _ } | Full { bits; _ } ->
      header + Bitarray.length bits
    | Ask _ | Me_neither _ -> header

  let tag = function
    | Share { owner; part; _ } -> Printf.sprintf "share(%d.%d)" owner part
    | Ask { about } -> Printf.sprintf "ask(%d)" about
    | Bits_of { about; part; _ } -> Printf.sprintf "bits_of(%d.%d)" about part
    | Me_neither { about } -> Printf.sprintf "me_neither(%d)" about
    | Reshare { about; part; _ } -> Printf.sprintf "reshare(%d.%d)" about part
    | Full { part; _ } -> Printf.sprintf "full(.%d)" part
end

let name = "crash-single"

let supports inst =
  if inst.Problem.model <> Problem.Crash then Error "crash-single handles crash faults only"
  else if Problem.t inst > 1 then Error "crash-single tolerates at most one crash"
  else if inst.Problem.k < 2 then Error "crash-single needs at least 2 peers"
  else Ok ()

(* Reassignment of the missing peer's segment among the k-1 remaining peers:
   the r-th bit of the segment goes to the peer of rank (r mod (k-1)) in
   ID order, skipping [u]. The rule depends only on (bit, u), so all peers
   that reassign compute the same map. *)
let reassigned_to ~k ~u ~seg_start b =
  let rank = (b - seg_start) mod (k - 1) in
  if rank < u then rank else rank + 1

let slice ~k ~u ~seg_start ~seg_len p =
  List.filter
    (fun b -> reassigned_to ~k ~u ~seg_start b = p)
    (List.init seg_len (fun r -> seg_start + r))

module Process (T : Transport.S with type msg = Msg.t) = struct
  let run inst i =
    let n = Problem.n inst in
    let k = inst.Problem.k in
    let payload = max 1 (inst.Problem.b - Msg.header) in
    let s = min k n in
    let spec = Segment.make ~n ~s in
    let seg_of_peer i = if i < s then Some (Segment.bounds spec i) else None in
    let seg_len i = match seg_of_peer i with Some (_, len) -> len | None -> 0 in
    let y = Bitarray.create n in
    let know = Array.make n false in
    let unknown = ref n in
    let learn b v =
      if not know.(b) then begin
        know.(b) <- true;
        Bitarray.set y b v;
        decr unknown
      end
    in
    let learn_range ~pos bits =
      for r = 0 to Bitarray.length bits - 1 do
        learn (pos + r) (Bitarray.get bits r)
      done
    in
    (* --- Receive-side state --- *)
    let share_done = Array.make k false in
    share_done.(i) <- true;
    let heard_others = ref 0 in
    let share_asm = Array.make k None in
    let stage = ref 1 in
    let buffered_asks = ref [] in
    (* My stage-2 request state. *)
    let missing = ref (-1) in
    let resolved = ref false in
    let responders = Hashtbl.create 8 in
    let response_asm : (int, Wire.Assembly.t) Hashtbl.t = Hashtbl.create 8 in
    let reshare_asm : (int, Wire.Assembly.t) Hashtbl.t = Hashtbl.create 8 in
    let full_asm : (int, Wire.Assembly.t) Hashtbl.t = Hashtbl.create 8 in
    let feed table key ~len ~part bits ~on_complete =
      let asm =
        match Hashtbl.find_opt table key with
        | Some a -> a
        | None ->
          let a = Wire.Assembly.create ~len ~b:payload in
          Hashtbl.add table key a;
          a
      in
      if not (Wire.Assembly.complete asm) then begin
        Wire.Assembly.add asm ~part bits;
        if Wire.Assembly.complete asm then on_complete (Wire.Assembly.get asm)
      end
    in
    let answer_ask asker about =
      if about >= 0 && about < k then
        if share_done.(about) then begin
          match seg_of_peer about with
          | Some (pos, len) ->
            let bits = Bitarray.sub y ~pos ~len in
            List.iter
              (fun (part, bits) -> T.send asker (Bits_of { about; part; bits }))
              (Wire.split ~b:payload bits)
          | None -> T.send asker (Bits_of { about; part = 0; bits = Bitarray.create 0 })
        end
        else T.send asker (Me_neither { about })
    in
    let handle (src, m) =
      match m with
      | Share { owner; part; bits } ->
        if owner = src && owner >= 0 && owner < k && not share_done.(owner) then begin
          let len = seg_len owner in
          let complete payload_bits =
            share_done.(owner) <- true;
            incr heard_others;
            (match seg_of_peer owner with
            | Some (pos, _) -> learn_range ~pos payload_bits
            | None -> ());
            if owner = !missing then resolved := true
          in
          match share_asm.(owner) with
          | Some a ->
            if not (Wire.Assembly.complete a) then begin
              Wire.Assembly.add a ~part bits;
              if Wire.Assembly.complete a then complete (Wire.Assembly.get a)
            end
          | None ->
            let a = Wire.Assembly.create ~len ~b:payload in
            share_asm.(owner) <- Some a;
            Wire.Assembly.add a ~part bits;
            if Wire.Assembly.complete a then complete (Wire.Assembly.get a)
        end
      | Ask { about } ->
        if !stage >= 2 then answer_ask src about else buffered_asks := (src, about) :: !buffered_asks
      | Bits_of { about; part; bits } ->
        if about = !missing && not (Hashtbl.mem responders src) then begin
          (match seg_of_peer about with
          | Some (pos, len) ->
            feed response_asm src ~len ~part bits ~on_complete:(fun full ->
                Hashtbl.replace responders src ();
                learn_range ~pos full;
                resolved := true)
          | None ->
            Hashtbl.replace responders src ();
            resolved := true);
          ()
        end
      | Me_neither { about } ->
        if about = !missing then Hashtbl.replace responders src ()
      | Reshare { about; part; bits } ->
        (* All phase-2 re-sharers agree on the missing peer (Lemma 2.1); a
           completion-mode receiver may not know it, so recompute the slice
           from (about, src) rather than trusting local state. *)
        (match seg_of_peer about with
        | Some (pos, len) when src <> about ->
          let indices = slice ~k ~u:about ~seg_start:pos ~seg_len:len src in
          feed reshare_asm src ~len:(List.length indices) ~part bits ~on_complete:(fun vals ->
              List.iteri (fun r b -> learn b (Bitarray.get vals r)) indices)
        | Some _ | None -> ())
      | Full { part; bits } ->
        feed full_asm src ~len:n ~part bits ~on_complete:(fun full ->
            for b = 0 to n - 1 do
              learn b (Bitarray.get full b)
            done)
    in
    let wait_until cond =
      while not (cond ()) do
        handle (T.receive ())
      done
    in
    (* ---- Phase 1, stage 1: query own share, broadcast it. ---- *)
    (match seg_of_peer i with
    | Some (pos, len) ->
      for r = 0 to len - 1 do
        learn (pos + r) (T.query (pos + r))
      done;
      let mine = Bitarray.sub y ~pos ~len in
      List.iter
        (fun (part, bits) -> T.broadcast (Share { owner = i; part; bits }))
        (Wire.split ~b:payload mine)
    | None -> T.broadcast (Share { owner = i; part = 0; bits = Bitarray.create 0 }));
    (* ---- Stage 2: hear k-1 peers (incl. self). ---- *)
    wait_until (fun () -> !heard_others >= k - 2 || !unknown = 0);
    stage := 2;
    List.iter (fun (asker, about) -> answer_ask asker about) (List.rev !buffered_asks);
    buffered_asks := [];
    let completion = ref (!unknown = 0) in
    if not !completion then begin
      (match Array.to_list (Array.init k Fun.id) |> List.filter (fun p -> not share_done.(p)) with
      | [ u ] ->
        missing := u;
        T.broadcast (Ask { about = u });
        (* ---- Stage 3: collect k-1 responses (or be rescued). ---- *)
        let quorum = k - 2 in
        wait_until (fun () -> Hashtbl.length responders >= quorum || !resolved || !unknown = 0);
        if !resolved || !unknown = 0 then completion := true
      | [] -> completion := true
      | _ -> assert false (* heard >= k-2 others, so at most one is missing *))
    end;
    stage := 3;
    (* ---- Phase 2, stage 1. ---- *)
    if !completion then begin
      assert (!unknown = 0);
      List.iter
        (fun (part, bits) -> T.broadcast (Full { part; bits }))
        (Wire.split ~b:payload y)
    end
    else begin
      let u = !missing in
      (match seg_of_peer u with
      | Some (pos, len) ->
        let indices = Array.of_list (slice ~k ~u ~seg_start:pos ~seg_len:len i) in
        let vals =
          Bitarray.init (Array.length indices) (fun r ->
              let b = indices.(r) in
              if know.(b) then Bitarray.get y b
              else begin
                let v = T.query b in
                learn b v;
                v
              end)
        in
        List.iter
          (fun (part, bits) -> T.broadcast (Reshare { about = u; part; bits }))
          (Wire.split ~b:payload vals)
      | None ->
        (* The missing peer owned no segment: nothing to re-query. *)
        T.broadcast (Reshare { about = u; part = 0; bits = Bitarray.create 0 }))
    end;
    (* ---- Phase 2, stage 2: wait for the array to complete. ---- *)
    wait_until (fun () -> !unknown = 0);
    y
end

let core () : (module Transport.CORE) =
  (module struct
    let name = name
    let supports = supports

    module Msg = Msg
    module Process = Process
  end)

module ST = Sim_transport.Make (Msg)
module SP = Process (ST)

let run ?(opts = Exec.default) inst =
  let cfg = Exec.build_config inst opts in
  Exec.finish ~protocol:name inst (ST.run_sim cfg (SP.run inst))
