module Fault = Dr_adversary.Fault
module Latency = Dr_adversary.Latency
module Prng = Dr_engine.Prng

type payload = { report : int array }

module Msg = struct
  type t = payload

  let size_bits { report } = 64 + (32 * Array.length report)
  let tag _ = "submit"
end

module S = Dr_engine.Sim.Make (Msg)

type outcome = {
  published : int array option;
  odd_ok : bool;
  submissions_used : int;
  time : float;
}

let validate ~k ~t =
  if t < 0 || t >= k then Error "need 0 <= t < k"
  else if k <= 3 * t then
    Error "asynchronous median publication needs k > 3t (the contract cannot wait for everyone)"
  else Ok ()

let publish ?(seed = 1L) ?(rushing = true) ~feed ~fault ~honest_report () =
  let k = fault.Fault.k in
  let t = fault.Fault.t_count in
  let d = Feed.cells feed in
  let contract = k in
  let garbage = Array.make d 0 in
  let latency =
    if rushing then Latency.rushing ~fast:(fun i -> i < k && Fault.is_faulty fault i) ~eps:0.01
    else Latency.jittered (Prng.create seed)
  in
  let cfg =
    {
      (Dr_engine.Sim.default_config ~k:(k + 1) ~query_bit:(fun ~peer:_ _ -> false)) with
      seed;
      latency;
    }
  in
  let process i =
    if i = contract then begin
      (* The contract: accept the first k-t submissions, publish the
         cell-wise median. Waiting for more risks waiting forever. *)
      let received = ref [] in
      let senders = Hashtbl.create 16 in
      let quorum = k - t in
      while Hashtbl.length senders < quorum do
        let src, { report } = S.receive () in
        if (not (Hashtbl.mem senders src)) && Array.length report = d then begin
          Hashtbl.add senders src ();
          received := report :: !received
        end
      done;
      Aggregate.cellwise_median !received
    end
    else begin
      let report = if Fault.is_faulty fault i then garbage else honest_report i in
      S.send contract { report };
      report
    end
  in
  let run = S.run cfg process in
  match run.Dr_engine.Sim.outputs.(contract) with
  | None -> { published = None; odd_ok = false; submissions_used = 0; time = run.Dr_engine.Sim.end_time }
  | Some (time, published) ->
    let odd_ok = ref true in
    Array.iteri
      (fun c v -> if not (Feed.in_honest_range feed ~cell:c v) then odd_ok := false)
      published;
    { published = Some published; odd_ok = !odd_ok; submissions_used = k - t; time }
