let median values =
  let m = Array.length values in
  if m = 0 then invalid_arg "Aggregate.median: empty";
  let sorted = Array.copy values in
  Array.sort Int.compare sorted;
  sorted.((m - 1) / 2)

let cellwise_median reports =
  match reports with
  | [] -> invalid_arg "Aggregate.cellwise_median: no reports"
  | first :: rest ->
    let d = Array.length first in
    if List.exists (fun r -> Array.length r <> d) rest then
      invalid_arg "Aggregate.cellwise_median: ragged reports";
    Array.init d (fun c -> median (Array.of_list (List.map (fun r -> r.(c)) reports)))
