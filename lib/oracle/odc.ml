module Bitarray = Dr_source.Bitarray
module Fault = Dr_adversary.Fault
open Dr_core

type params = {
  peers : int;
  peer_faults : int;
  sources : int;
  source_faults : int;
  cells : int;
  seed : int64;
}

let validate p =
  if p.peers <= 0 then Error "need at least one oracle node"
  else if p.peer_faults < 0 || 2 * p.peer_faults >= p.peers then
    Error "oracle nodes need an honest majority (2*peer_faults < peers)"
  else if p.cells <= 0 then Error "need at least one cell"
  else if p.source_faults < 0 || (2 * p.source_faults) + 1 > p.sources then
    Error "need 2*source_faults+1 <= sources"
  else Ok ()

type report = {
  method_name : string;
  odd_ok : bool;
  honest_reports_ok : int;
  cell_queries_total : int;
  cell_queries_max_node : int;
  download_ok : bool;
  published : int array;
}

let check p = match validate p with Ok () -> () | Error e -> invalid_arg ("Odc: " ^ e)

let make_feed p =
  (* Byzantine sources: the last ts of the m sources. *)
  let faulty = List.init p.source_faults (fun i -> p.sources - 1 - i) in
  Feed.make ~sources:p.sources ~faulty ~cells:p.cells ~seed:p.seed ()

let picked_sources p = List.init ((2 * p.source_faults) + 1) Fun.id

let peer_fault_set p = Fault.choose ~k:p.peers (Fault.Spread p.peer_faults)

let garbage_report p = Array.make p.cells 0
(* Byzantine nodes push an out-of-range constant at the contract. *)

let publish p fault reports_of_honest =
  (* The on-chain component receives one array per node and takes a
     cell-wise median; Byzantine nodes submit garbage. *)
  let submissions =
    List.init p.peers (fun i ->
        if Fault.is_honest fault i then reports_of_honest i else garbage_report p)
  in
  Aggregate.cellwise_median submissions

let odd_holds feed published =
  let ok = ref true in
  Array.iteri (fun c v -> if not (Feed.in_honest_range feed ~cell:c v) then ok := false) published;
  !ok

let node_median feed picked ~value_of =
  Array.init (Feed.cells feed) (fun c ->
      Aggregate.median (Array.of_list (List.map (fun s -> value_of ~source:s ~cell:c) picked)))

let count_ok feed fault p medians =
  let ok = ref 0 in
  for i = 0 to p.peers - 1 do
    if Fault.is_honest fault i && odd_holds feed medians.(i) then incr ok
  done;
  !ok

let baseline p =
  check p;
  let feed = make_feed p in
  let fault = peer_fault_set p in
  let picked = picked_sources p in
  (* Every node reads every cell of every picked source itself. *)
  let per_node_queries = List.length picked * p.cells in
  let medians =
    Array.init p.peers (fun _i -> node_median feed picked ~value_of:(fun ~source ~cell -> Feed.value feed ~source ~cell))
  in
  let honest_count = Fault.honest_count fault in
  let published = publish p fault (fun i -> medians.(i)) in
  {
    method_name = "odc-baseline";
    odd_ok = odd_holds feed published;
    honest_reports_ok = count_ok feed fault p medians;
    cell_queries_total = honest_count * per_node_queries;
    cell_queries_max_node = per_node_queries;
    download_ok = true;
    published;
  }

type protocol = [ `Committee | `Two_cycle | `Naive ]

let download_based ?(protocol = `Committee) p =
  check p;
  let feed = make_feed p in
  let fault = peer_fault_set p in
  let picked = picked_sources p in
  let honest = Fault.is_honest fault in
  (* One Download instance per picked source; each honest node ends up with
     the full array of every source. *)
  let total_bit_queries = ref 0 in
  let max_bit_queries = Array.make p.peers 0 in
  let download_ok = ref true in
  let per_source_values =
    List.map
      (fun s ->
        let x = Feed.encode feed ~source:s in
        let inst =
          Problem.make ~seed:(Int64.add p.seed (Int64.of_int s)) ~model:Problem.Byzantine
            ~k:p.peers ~x fault
        in
        let trace = Dr_engine.Trace.create () in
        let opts = Exec.with_trace trace Exec.default in
        let report =
          match protocol with
          | `Committee -> Committee.run_with ~opts ~attack:Committee.Equivocate inst
          | `Two_cycle -> Byz_2cycle.run_with ~opts ~attack:Byz_2cycle.Near_miss inst
          | `Naive -> Naive.run ~opts inst
        in
        if not report.Problem.ok then download_ok := false;
        total_bit_queries := !total_bit_queries + report.Problem.q_total;
        for i = 0 to p.peers - 1 do
          if honest i then begin
            let qi = List.length (Dr_engine.Trace.query_view trace i) in
            max_bit_queries.(i) <- max_bit_queries.(i) + qi
          end
        done;
        (* All honest nodes hold the same (verified) array; decode once. *)
        (s, Feed.decode x))
      picked
  in
  let value_of ~source ~cell = (List.assoc source per_source_values).(cell) in
  let medians = Array.init p.peers (fun _ -> node_median feed picked ~value_of) in
  let published = publish p fault (fun i -> medians.(i)) in
  let to_cells bits = (bits + Feed.value_bits - 1) / Feed.value_bits in
  let max_node = Array.fold_left Int.max 0 max_bit_queries in
  {
    method_name =
      (match protocol with
      | `Committee -> "odc-download(committee)"
      | `Two_cycle -> "odc-download(2cycle)"
      | `Naive -> "odc-download(naive)");
    odd_ok = odd_holds feed published;
    honest_reports_ok = count_ok feed fault p medians;
    cell_queries_total = to_cells !total_bit_queries;
    cell_queries_max_node = to_cells max_node;
    download_ok = !download_ok;
    published;
  }

let pp_report ppf r =
  Format.fprintf ppf "%-24s odd=%b honest_ok=%d queries(total cells)=%d max/node=%d download_ok=%b"
    r.method_name r.odd_ok r.honest_reports_ok r.cell_queries_total r.cell_queries_max_node
    r.download_ok

let full_flow ?protocol p =
  match (validate p, Pipeline.validate ~k:p.peers ~t:p.peer_faults) with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () ->
    let collection = download_based ?protocol p in
    let feed = make_feed p in
    let fault = peer_fault_set p in
    (* Every honest node submits the median array it computed in step 1. *)
    let honest_report _node = collection.published in
    let publication = Pipeline.publish ~seed:p.seed ~feed ~fault ~honest_report () in
    Ok (collection, publication)
