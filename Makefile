.PHONY: all build test lint race bench bench-check bench-diff check check-smoke soak net-smoke net-chaos clean

all: build

build:
	dune build

test:
	dune runtest

# Static analysis: dr_lint's five determinism / confinement rules (L1-L5)
# over lib/ bin/ bench/. Nonzero exit on any finding or stale pragma.
lint:
	dune build @lint

# Whole-program domain-safety analysis: dr_race's R1-R3 rules against the
# zone map in dr-race.zones, plus a regenerate-and-diff of the committed
# census (RACE_INVENTORY.json). Regenerate the census after changing
# module-level mutable state:
#   dune exec bin/dr_race_main.exe -- --inventory > RACE_INVENTORY.json
race:
	dune build @race

# Full benchmark run: writes BENCH_engine.json / BENCH_protocols.json in the
# working directory (several minutes).
bench:
	dune exec bench/bench_regress.exe

# Fast smoke pass of the same harness (small sizes, few repeats) — the CI
# guard that the bench path itself keeps working.
bench-check:
	dune build @bench-smoke

# Compare a previous run against the committed reference numbers:
#   make bench && make bench-diff OLD=path/to/old
OLD ?= .
bench-diff:
	dune exec bin/dr_bench_diff.exe -- $(OLD)/BENCH_engine.json BENCH_engine.json
	dune exec bin/dr_bench_diff.exe -- $(OLD)/BENCH_protocols.json BENCH_protocols.json

# Model checker: schedule-fuzz every registry protocol against the invariant
# oracle (agreement / termination / spec-bound). `make check` is the real
# budget; check-smoke is the fast fixed-seed CI gate.
BUDGET ?= 5000
SEED ?= 1
check:
	dune exec bin/dr_check_main.exe -- --all --budget $(BUDGET) --seed $(SEED)

check-smoke:
	dune build @check-smoke

# Coverage-guided campaign soak (dr_check --campaign over every protocol,
# bounded budget): fails on any violation and leaves the deterministic
# campaign statistics in CHECK_CAMPAIGN.json next to the BENCH_*.json files.
soak:
	dune build @check-soak
	cp _build/default/bin/check_campaign.json CHECK_CAMPAIGN.json

# Socket-runtime smoke: run registry protocols as k real OS processes over
# loopback (dr_download --transport net) and require the download to verify.
net-smoke:
	dune build @net-smoke

# The same socket runs under seeded fault injection (dr_download --chaos):
# dropped/corrupted/stalled transmissions, forced source disconnects, lost
# replies and a source blackout — all masked below the protocols'
# assumptions, so every run must still verify with the right verdict.
net-chaos:
	dune build @net-chaos

clean:
	dune clean
