(* dr_race: whole-program mutable-state inventory and domain-safety
   analysis — the machine-checked gate in front of the multicore
   domain-sharding refactor (ROADMAP item 1).

   Examples:
     dr_race --check                 # R1-R3 over lib/ bin/ bench/
     dr_race --inventory             # dr-race/1 JSON census to stdout
     dr_race --check --format json   # findings as dr-lint/1 JSON lines
     dr_race --rules                 # print the rule catalogue

   Zone declarations come from dr-race.zones (see --zones) plus inline
   zone pragmas; a finding can be waived with an allow pragma directly
   above (or on) the line — dr_lint's comment machinery with a dr-race
   marker. See DESIGN.md "Domain-safety zones" for the syntax.

   Exit codes: 0 clean, 1 findings (or unused pragmas), 2 usage/IO error. *)

open Cmdliner
module Driver = Dr_lint.Driver
module Finding = Dr_lint.Finding
module Race_rules = Dr_lint.Race_rules

let paths_arg =
  Arg.(
    value & pos_all string [ "lib"; "bin"; "bench" ]
    & info [] ~docv:"PATH" ~doc:"Files or directories to analyze (default: lib bin bench).")

let inventory_arg =
  Arg.(
    value & flag
    & info [ "inventory" ] ~doc:"Print the mutable-state census as dr-race/1 JSON and exit.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ] ~doc:"Run the R1-R3 domain-safety rules (the default action).")

let zones_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "zones" ] ~docv:"FILE"
        ~doc:
          "Zone declarations file (default: dr-race.zones when it exists). Pass an explicit \
           path to require it.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Finding output format: $(b,text) or $(b,json).")

let rules_arg =
  Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule catalogue and exit.")

let print_rules () =
  List.iter
    (fun r -> Format.printf "%s  %s@." (Finding.rule_name r) (Finding.rule_doc r))
    Finding.race_rules

let default_zones = "dr-race.zones"

let run paths inventory _check zones format rules =
  if rules then begin
    print_rules ();
    0
  end
  else
    let zones_path =
      match zones with
      | Some _ as z -> z
      | None -> if Sys.file_exists default_zones then Some default_zones else None
    in
    match Race_rules.analyze ?zones_path paths with
    | a ->
      if inventory then begin
        print_string (Race_rules.inventory_json a);
        0
      end
      else begin
        (match format with
        | `Text -> Format.printf "%a" (Driver.pp_report_as ~tool:"dr_race") a.Race_rules.report
        | `Json -> Format.printf "%a" Driver.pp_report_json a.Race_rules.report);
        if Driver.clean a.Race_rules.report then 0 else 1
      end
    | exception Driver.Error msg ->
      Format.eprintf "dr_race: %s@." msg;
      2

let cmd =
  let doc = "whole-program mutable-state inventory & domain-safety analysis (rules R1-R3)" in
  Cmd.v
    (Cmd.info "dr_race" ~doc)
    Term.(
      const run $ paths_arg $ inventory_arg $ check_arg $ zones_arg $ format_arg $ rules_arg)

let () = exit (Cmd.eval' cmd)
