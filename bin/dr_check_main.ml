(* dr_check: schedule-fuzzing model checker for the Download protocols.

   Examples:
     dr_check --protocol byz-2cycle --budget 50000 --seed 7
     dr_check --all --budget 1000 --seed 1
     dr_check --replay failure.repro.json

   Each protocol is checked against a budgeted DFS prefix of the schedule
   tree plus seeded random schedules over randomized scenarios (instance
   parameters, attack names from the registry catalog, crash plans). Every
   violation of the invariant oracle (agreement / termination / spec-bound)
   is minimized to a locally minimal counterexample and can be written out
   as a replayable .repro.json file.

   Exit codes: 0 no violations (or repro reproduced), 1 violations found
   (or repro diverged/vanished), 2 usage error. *)

open Cmdliner
module Check = Dr_check.Check
module Repro = Dr_check.Repro
module Registry = Dr_core.Registry
module Cli_args = Dr_cli.Cli_args

let protocol_arg = Cli_args.protocol_opt_arg ~extra:"Default: every registry protocol." ()

let all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"Check every registry protocol (the default).")

let budget_arg =
  Arg.(
    value
    & opt int 1000
    & info [ "budget" ] ~docv:"N" ~doc:"Executions to spend per protocol (default 1000).")

let dfs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "dfs" ] ~docv:"N"
        ~doc:"Executions of the budget spent on the systematic DFS prefix (default budget/4).")

let seed_arg = Cli_args.seed_arg

let max_failures_arg =
  Arg.(
    value
    & opt int 5
    & info [ "max-failures" ] ~docv:"N"
        ~doc:"Stop collecting after this many shrunk counterexamples (default 5).")

let out_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Write each counterexample as DIR/<protocol>-<i>.repro.json.")

let replay_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay a .repro.json counterexample instead of fuzzing; verify that the \
              recorded invariant fails at the recorded event index.")

let write_failures out name failures =
  match out with
  | None -> ()
  | Some dir ->
    List.iteri
      (fun i r ->
        let path = Filename.concat dir (Printf.sprintf "%s-%d.repro.json" name i) in
        Repro.write ~path r;
        Fmt.pr "  wrote %s@." path)
      failures

let run_replay path =
  match Repro.read path with
  | exception Failure msg -> `Error (false, msg)
  | repro ->
    Fmt.pr "replaying %a@." Repro.pp repro;
    (match Check.replay repro with
    | Check.Reproduced v ->
      Fmt.pr "reproduced: %a@." Dr_check.Invariant.pp_violation v;
      `Ok 0
    | Check.Diverged msg ->
      Fmt.pr "DIVERGED: %s@." msg;
      `Ok 1
    | Check.Vanished ->
      Fmt.pr "VANISHED: no invariant violated on replay@.";
      `Ok 1)

let run_fuzz protocol budget dfs_budget seed max_failures out =
  let entries =
    match protocol with
    | None -> Ok Registry.all
    | Some name -> (
      try Ok [ Cli_args.resolve_protocol name ] with Failure msg -> Error msg)
  in
  match entries with
  | Error msg -> `Error (false, msg)
  | Ok entries ->
    let total = ref 0 in
    List.iter
      (fun entry ->
        let target = Check.of_registry entry in
        let outcome =
          Check.fuzz ?dfs_budget ~max_failures ~budget ~seed:(Int64.to_int seed) target
        in
        Fmt.pr "%a@." Check.pp_outcome outcome;
        write_failures out target.Check.name outcome.Check.failures;
        total := !total + List.length outcome.Check.failures)
      entries;
    if !total = 0 then begin
      Fmt.pr "dr_check: no violations@.";
      `Ok 0
    end
    else begin
      Fmt.pr "dr_check: %d violation(s)@." !total;
      `Ok 1
    end

let run protocol _all budget dfs_budget seed max_failures out replay =
  match replay with
  | Some path -> run_replay path
  | None -> run_fuzz protocol budget dfs_budget seed max_failures out

let cmd =
  Cmd.v
    (Cmd.info "dr_check"
       ~doc:"Schedule-fuzzing model checker with invariant oracle and counterexample shrinking")
    Term.(
      ret
        (const run $ protocol_arg $ all_arg $ budget_arg $ dfs_arg $ seed_arg $ max_failures_arg
       $ out_arg $ replay_arg))

let () =
  match Cmd.eval_value cmd with
  | Ok (`Ok code) -> exit code
  | Ok (`Version | `Help) -> exit 0
  | Error `Parse | Error `Term -> exit 2
  | Error `Exn -> exit 2
