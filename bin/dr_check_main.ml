(* dr_check: schedule-fuzzing model checker for the Download protocols.

   Examples:
     dr_check --protocol byz-2cycle --budget 50000 --seed 7
     dr_check --all --budget 1000 --seed 1
     dr_check --all --campaign --budget 2000 --stats stats.json --corpus corpus/
     dr_check --replay failure.repro.json

   Each protocol is checked against a budgeted DFS prefix of the schedule
   tree plus seeded random schedules over randomized scenarios (instance
   parameters, attack names from the registry catalog, crash plans). Every
   violation of the invariant oracle (agreement / termination / spec-bound)
   is minimized to a locally minimal counterexample and can be written out
   as a replayable .repro.json file.

   --campaign switches to the coverage-guided driver: executions stream
   hashed (phase x event x round-bucket) signatures into a coverage map,
   schedules that light up new signatures seed a mutation corpus, and the
   budget's tail is spent on mutants of interesting schedules instead of
   uniform random sampling. --stats writes the deterministic campaign
   statistics JSON, --corpus persists the corpus directory.

   Exit codes: 0 no violations (or repro reproduced), 1 violations found
   (or repro diverged/vanished), 2 usage error. *)

open Cmdliner
module Check = Dr_check.Check
module Repro = Dr_check.Repro
module Registry = Dr_core.Registry
module Cli_args = Dr_cli.Cli_args

let protocol_arg = Cli_args.protocol_opt_arg ~extra:"Default: every registry protocol." ()

let all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"Check every registry protocol (the default).")

let budget_arg =
  Arg.(
    value
    & opt int 1000
    & info [ "budget" ] ~docv:"N" ~doc:"Executions to spend per protocol (default 1000).")

let dfs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "dfs" ] ~docv:"N"
        ~doc:"Executions of the budget spent on the systematic DFS prefix (default budget/4).")

let seed_arg = Cli_args.seed_arg

let max_failures_arg =
  Arg.(
    value
    & opt int 5
    & info [ "max-failures" ] ~docv:"N"
        ~doc:"Stop collecting after this many shrunk counterexamples (default 5).")

let out_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Write each counterexample as DIR/<protocol>-<i>.repro.json.")

let campaign_arg =
  Arg.(
    value
    & flag
    & info [ "campaign" ]
        ~doc:"Coverage-guided campaign instead of DFS+random fuzzing: keep a signature \
              coverage map and a corpus of coverage-interesting schedules, and spend the \
              budget's tail mutating them.")

let corpus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"With --campaign: save each protocol's corpus under DIR/<protocol>/.")

let stats_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:"With --campaign: write the campaign statistics (schema dr-campaign/1, one \
              object per protocol in a JSON array) to FILE.")

let replay_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay a .repro.json counterexample instead of fuzzing; verify that the \
              recorded invariant fails at the recorded event index.")

let write_failures out name failures =
  match out with
  | None -> ()
  | Some dir ->
    List.iteri
      (fun i r ->
        let path = Filename.concat dir (Printf.sprintf "%s-%d.repro.json" name i) in
        Repro.write ~path r;
        Fmt.pr "  wrote %s@." path)
      failures

let run_replay path =
  match Repro.read path with
  | exception Failure msg -> `Error (false, msg)
  | repro ->
    Fmt.pr "replaying %a@." Repro.pp repro;
    (match Check.replay repro with
    | exception (Registry.Unknown_attack _ as e) ->
      `Error (false, Printexc.to_string e)
    | Check.Reproduced v ->
      Fmt.pr "reproduced: %a@." Dr_check.Invariant.pp_violation v;
      `Ok 0
    | Check.Diverged msg ->
      Fmt.pr "DIVERGED: %s@." msg;
      `Ok 1
    | Check.Vanished ->
      Fmt.pr "VANISHED: no invariant violated on replay@.";
      `Ok 1)

let run_fuzz protocol budget dfs_budget seed max_failures out =
  let entries =
    match protocol with
    | None -> Ok Registry.all
    | Some name -> (
      try Ok [ Cli_args.resolve_protocol name ] with Failure msg -> Error msg)
  in
  match entries with
  | Error msg -> `Error (false, msg)
  | Ok entries ->
    let total = ref 0 in
    List.iter
      (fun entry ->
        let target = Check.of_registry entry in
        let outcome =
          Check.fuzz ?dfs_budget ~max_failures ~budget ~seed:(Int64.to_int seed) target
        in
        Fmt.pr "%a@." Check.pp_outcome outcome;
        write_failures out target.Check.name outcome.Check.failures;
        total := !total + List.length outcome.Check.failures)
      entries;
    if !total = 0 then begin
      Fmt.pr "dr_check: no violations@.";
      `Ok 0
    end
    else begin
      Fmt.pr "dr_check: %d violation(s)@." !total;
      `Ok 1
    end

let run_campaign protocol budget seed max_failures out corpus_dir stats =
  let entries =
    match protocol with
    | None -> Ok Registry.all
    | Some name -> (
      try Ok [ Cli_args.resolve_protocol name ] with Failure msg -> Error msg)
  in
  match entries with
  | Error msg -> `Error (false, msg)
  | Ok entries ->
    let total = ref 0 in
    let stats_objs = ref [] in
    List.iter
      (fun entry ->
        let target = Check.of_registry entry in
        let c = Check.campaign ~max_failures ~budget ~seed:(Int64.to_int seed) target in
        Fmt.pr "%a@." Check.pp_campaign c;
        write_failures out target.Check.name c.Check.failures;
        (match corpus_dir with
        | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let sub = Filename.concat dir target.Check.name in
          Dr_check.Corpus.save c.Check.corpus ~dir:sub;
          Fmt.pr "  corpus: %s (%d entries)@." sub (Dr_check.Corpus.size c.Check.corpus)
        | None -> ());
        stats_objs := Check.campaign_stats_json c :: !stats_objs;
        total := !total + List.length c.Check.failures)
      entries;
    (match stats with
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc "[\n";
          output_string oc (String.concat ",\n" (List.rev_map String.trim !stats_objs));
          output_string oc "\n]\n");
      Fmt.pr "  stats: %s@." path
    | None -> ());
    if !total = 0 then begin
      Fmt.pr "dr_check: no violations@.";
      `Ok 0
    end
    else begin
      Fmt.pr "dr_check: %d violation(s)@." !total;
      `Ok 1
    end

let run protocol _all budget dfs_budget seed max_failures out replay campaign corpus stats =
  match replay with
  | Some path -> run_replay path
  | None ->
    if campaign then run_campaign protocol budget seed max_failures out corpus stats
    else run_fuzz protocol budget dfs_budget seed max_failures out

let cmd =
  Cmd.v
    (Cmd.info "dr_check"
       ~doc:"Schedule-fuzzing model checker with invariant oracle and counterexample shrinking")
    Term.(
      ret
        (const run $ protocol_arg $ all_arg $ budget_arg $ dfs_arg $ seed_arg $ max_failures_arg
       $ out_arg $ replay_arg $ campaign_arg $ corpus_arg $ stats_arg))

let () =
  match Cmd.eval_value cmd with
  | Ok (`Ok code) -> exit code
  | Ok (`Version | `Help) -> exit 0
  | Error `Parse | Error `Term -> exit 2
  | Error `Exn -> exit 2
