(* dr_download: run one Download protocol on one instance and print the
   verdict and Q/T/M measures.

   Examples:
     dr_download -p crash-general -k 16 -n 4096 -t 5 --crash midcast:2 --latency jitter
     dr_download -p byz-committee -k 9 -n 1024 -t 4 --attack collude
     dr_download -p byz-2cycle -k 64 -n 8192 -t 8 --segments 4 --trace
     dr_download -p crash-general -k 8 -n 2048 -t 2 --transport net
     dr_download -p byz-committee --model byzantine -k 9 -n 512 -t 4 \
       --transport net --chaos 7:drop=0.05,corrupt=0.01,reply_loss=0.1 *)

open Cmdliner
open Dr_core
module Cli_args = Dr_cli.Cli_args

let protocol_arg = Cli_args.protocol_arg ~extra:"Or 'auto'." ~default:"auto" ()
let peers_arg = Arg.(value & opt int 8 & info [ "k"; "peers" ] ~docv:"K" ~doc:"Number of peers.")
let bits_arg = Arg.(value & opt int 1024 & info [ "n"; "bits" ] ~docv:"N" ~doc:"Input size in bits.")
let faults_arg = Arg.(value & opt int 2 & info [ "t"; "faults" ] ~docv:"T" ~doc:"Faulty peers.")

let model_arg =
  Arg.(
    value
    & opt (enum [ ("crash", Problem.Crash); ("byzantine", Problem.Byzantine) ]) Problem.Crash
    & info [ "model" ] ~doc:"Fault model: crash or byzantine.")

let seed_arg = Cli_args.seed_arg

let msg_bits_arg =
  Arg.(value & opt (some int) None & info [ "B"; "msg-bits" ] ~doc:"Message size bound in bits.")

let latency_arg = Cli_args.latency_arg ~default:"unit"
let crash_arg = Cli_args.crash_arg ~default:"midcast:1"
let attack_arg = Cli_args.attack_arg

let segments_arg =
  Arg.(value & opt (some int) None & info [ "segments" ] ~doc:"Segment count override (randomized protocols).")

let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full execution trace.")

let matrix_arg =
  Arg.(value & flag & info [ "matrix" ] ~doc:"Print the src->dst message matrix.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE" ~doc:"Save the execution trace for dr_trace.")

let explore_arg =
  Arg.(value & opt (some int) None
       & info [ "explore" ] ~docv:"BUDGET"
           ~doc:"Instead of one run, DFS-explore up to BUDGET delivery schedules \
                 and report failures (keep k and n tiny).")

let transport_arg =
  Arg.(
    value
    & opt (enum [ ("sim", `Sim); ("net", `Net) ]) `Sim
    & info [ "transport" ]
        ~doc:"Runtime: 'sim' (the deterministic simulator) or 'net' (one OS process \
              per peer over loopback sockets, querying a real source server).")

let source_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "source" ] ~docv:"HOST:PORT"
        ~doc:"With --transport net: use an already-running dr_source_server instead \
              of spawning one in-process.")

let net_timeout_arg =
  Arg.(value & opt float 60.
       & info [ "net-timeout" ] ~docv:"SECONDS"
           ~doc:"With --transport net: wall-clock budget before stuck peers are killed.")

let chaos_arg = Cli_args.chaos_arg
let net_retries_arg = Cli_args.net_retries_arg
let request_timeout_arg = Cli_args.request_timeout_arg

let parse_source = function
  | None -> None
  | Some spec -> (
    match String.rindex_opt spec ':' with
    | Some i ->
      Some
        {
          Dr_net.Runner.host = String.sub spec 0 i;
          port = int_of_string (String.sub spec (i + 1) (String.length spec - i - 1));
        }
    | None -> failwith ("--source expects HOST:PORT, got " ^ spec))

let parse_chaos = function
  | None -> None
  | Some spec -> (
    match Dr_net.Faultnet.parse_seeded spec with
    | Ok (chaos_seed, plan) -> Some { Dr_net.Runner.chaos_seed; plan }
    | Error msg -> failwith ("--chaos: " ^ msg))

let client_config ~net_retries ~request_timeout =
  match (net_retries, request_timeout) with
  | None, None -> None
  | _ ->
    let d = Dr_net.Source_client.default_config in
    Some
      {
        d with
        Dr_net.Source_client.max_retries = Option.value net_retries ~default:d.max_retries;
        request_timeout = Option.value request_timeout ~default:d.request_timeout;
      }

let run_net ~protocol ~attack ~segments ~crash ~source ~timeout ~chaos ~net_retries
    ~request_timeout inst =
  let entry =
    match protocol with
    | "auto" ->
      let (module P : Exec.PROTOCOL) = Select.for_instance inst in
      Cli_args.resolve_protocol P.name
    | name -> Cli_args.resolve_protocol name
  in
  let core = entry.Registry.core ~attack ?segments inst in
  let crash = Cli_args.crash_plan ~fault:inst.Problem.fault crash in
  Dr_net.Runner.run_detailed ~timeout ?source:(parse_source source)
    ?chaos:(parse_chaos chaos)
    ?client_cfg:(client_config ~net_retries ~request_timeout)
    ~crash core inst

let pp_outcomes outcomes =
  Printf.printf "peers: %s\n"
    (String.concat " "
       (Array.to_list
          (Array.mapi
             (fun i o -> Printf.sprintf "%d:%s" i (Dr_net.Runner.outcome_to_string o))
             outcomes)))

let run protocol k n t model seed msg_bits latency crash attack segments trace_flag matrix_flag
    trace_out explore transport source net_timeout chaos net_retries request_timeout =
  if t >= k then `Error (false, "need t < k")
  else if n < k then `Error (false, "need n >= k")
  else begin
    let inst = Problem.random_instance ~seed ?b:msg_bits ~model ~k ~n ~t () in
    (* Validate the attack name up front where the entry is known ("auto"
       resolves later; its net path is caught below, its sim path takes no
       attack), so a typo is a usage error, not a crash. *)
    let attack_check =
      if String.equal protocol "auto" then Ok ()
      else
        match Cli_args.resolve_protocol protocol with
        | e -> Registry.validate_attack e attack
        | exception Failure msg -> Error msg
    in
    match attack_check with
    | Error msg -> `Error (false, msg)
    | Ok () ->
    match transport with
    | `Net ->
      if trace_flag || matrix_flag || trace_out <> None then
        `Error (false, "--trace/--matrix record simulator events; not available with --transport net")
      else if explore <> None then
        `Error (false, "--explore drives the simulator's schedule arbiter; not available with --transport net")
      else begin
        match
          run_net ~protocol ~attack ~segments ~crash ~source ~timeout:net_timeout ~chaos
            ~net_retries ~request_timeout inst
        with
        | exception (Registry.Unknown_attack _ as e) -> `Error (false, Printexc.to_string e)
        | exception Dr_net.Source_client.Unreachable msg -> `Error (false, msg)
        | exception Failure msg -> `Error (false, msg)
        | report, outcomes ->
          Format.printf "%a@." Problem.pp_report report;
          pp_outcomes outcomes;
          if report.Problem.ok then `Ok () else `Error (false, "download failed")
      end
    | `Sim ->
    let trace =
      if trace_flag || matrix_flag || trace_out <> None then Some (Dr_engine.Trace.create ())
      else None
    in
    let lat = Cli_args.latency_fn ~seed ~fault:inst.Problem.fault ~b:inst.Problem.b latency in
    let crash_plan = Cli_args.crash_plan ~fault:inst.Problem.fault crash in
    let opts = Exec.make_opts ~latency:lat ~crash:crash_plan ?trace () in
    match explore with
    | Some budget ->
      let run_protocol ~arbiter =
        let opts = Exec.(opts |> with_arbiter arbiter |> without_trace) in
        let (module P : Exec.PROTOCOL) =
          if protocol = "auto" then Select.for_instance inst
          else
            match Select.by_name protocol with
            | Some p -> p
            | None -> failwith ("unknown protocol: " ^ protocol)
        in
        (P.run ~opts inst).Problem.ok
      in
      let r = Dr_engine.Explore.dfs ~budget ~run:run_protocol in
      Printf.printf "schedules explored: %d%s\n" r.Dr_engine.Explore.schedules_run
        (if r.Dr_engine.Explore.exhausted then " (space exhausted)" else " (DFS prefix)");
      Printf.printf "max depth:          %d events\n" r.Dr_engine.Explore.max_depth;
      Printf.printf "failing schedules:  %d\n" r.Dr_engine.Explore.failures;
      (match r.Dr_engine.Explore.first_failure with
      | Some script ->
        Printf.printf "first failure script: [%s]\n"
          (String.concat ";" (List.map string_of_int script))
      | None -> ());
      if r.Dr_engine.Explore.failures = 0 then `Ok () else `Error (false, "schedule failures")
    | None ->
    let report =
      match protocol with
      | "auto" ->
        let (module P : Exec.PROTOCOL) = Select.for_instance inst in
        P.run ~opts inst
      | name ->
        let e = Cli_args.resolve_protocol name in
        e.Registry.run ~opts ~attack ?segments inst
    in
    (match trace with
    | Some tr ->
      (match trace_out with
      | Some path -> Dr_engine.Trace.save tr path
      | None -> ());
      if trace_flag then Format.printf "%a@." Dr_engine.Trace.pp tr;
      if matrix_flag then begin
        Format.printf "%a@." (Dr_engine.Trace_stats.pp_matrix ~label:"msgs")
          (Dr_engine.Trace_stats.message_matrix tr ~k);
        match Dr_engine.Trace_stats.busiest_link (Dr_engine.Trace_stats.bits_matrix tr ~k) with
        | Some (src, dst, w) -> Format.printf "busiest link: %d -> %d (%d bits)@." src dst w
        | None -> ()
      end
    | None -> ());
    Format.printf "%a@." Problem.pp_report report;
    if report.Problem.ok then `Ok () else `Error (false, "download failed")
  end

let cmd =
  let term =
    Term.(
      ret
        (const run $ protocol_arg $ peers_arg $ bits_arg $ faults_arg $ model_arg $ seed_arg
       $ msg_bits_arg $ latency_arg $ crash_arg $ attack_arg $ segments_arg $ trace_arg
       $ matrix_arg $ trace_out_arg $ explore_arg $ transport_arg $ source_arg
       $ net_timeout_arg $ chaos_arg $ net_retries_arg $ request_timeout_arg))
  in
  Cmd.v
    (Cmd.info "dr_download" ~doc:"Run a distributed Download protocol in the simulator")
    term

let () = exit (Cmd.eval cmd)
