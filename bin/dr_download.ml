(* dr_download: run one Download protocol on one instance and print the
   verdict and Q/T/M measures.

   Examples:
     dr_download -p crash-general -k 16 -n 4096 -t 5 --crash midcast:2 --latency jitter
     dr_download -p byz-committee -k 9 -n 1024 -t 4 --attack collude
     dr_download -p byz-2cycle -k 64 -n 8192 -t 8 --segments 4 --trace *)

open Cmdliner
open Dr_core
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan
module Prng = Dr_engine.Prng

let protocol_arg =
  let doc =
    Printf.sprintf "Protocol to run: one of %s, or 'auto'."
      (String.concat ", " Registry.names)
  in
  Arg.(value & opt string "auto" & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let peers_arg = Arg.(value & opt int 8 & info [ "k"; "peers" ] ~docv:"K" ~doc:"Number of peers.")
let bits_arg = Arg.(value & opt int 1024 & info [ "n"; "bits" ] ~docv:"N" ~doc:"Input size in bits.")
let faults_arg = Arg.(value & opt int 2 & info [ "t"; "faults" ] ~docv:"T" ~doc:"Faulty peers.")

let model_arg =
  Arg.(
    value
    & opt (enum [ ("crash", Problem.Crash); ("byzantine", Problem.Byzantine) ]) Problem.Crash
    & info [ "model" ] ~doc:"Fault model: crash or byzantine.")

let seed_arg = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Random seed.")

let msg_bits_arg =
  Arg.(value & opt (some int) None & info [ "B"; "msg-bits" ] ~doc:"Message size bound in bits.")

let latency_arg =
  Arg.(value & opt string "unit" & info [ "latency" ] ~docv:"POLICY"
         ~doc:"Latency policy: unit, jitter, rush (Byzantine messages fast), or sized.")

let crash_arg =
  Arg.(value & opt string "midcast:1" & info [ "crash" ] ~docv:"PLAN"
         ~doc:"Crash plan for crash-model faulty peers: none, silent, midcast:J, \
               staggered, or afterq:J.")

let attack_arg =
  Arg.(value & opt string "default" & info [ "attack" ] ~docv:"ATTACK"
         ~doc:"Byzantine attack: default, silent, flip, equivocate, collude, nearmiss, lie.")

let segments_arg =
  Arg.(value & opt (some int) None & info [ "segments" ] ~doc:"Segment count override (randomized protocols).")

let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full execution trace.")

let matrix_arg =
  Arg.(value & flag & info [ "matrix" ] ~doc:"Print the src->dst message matrix.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE" ~doc:"Save the execution trace for dr_trace.")

let explore_arg =
  Arg.(value & opt (some int) None
       & info [ "explore" ] ~docv:"BUDGET"
           ~doc:"Instead of one run, DFS-explore up to BUDGET delivery schedules \
                 and report failures (keep k and n tiny).")

let run protocol k n t model seed msg_bits latency crash attack segments trace_flag matrix_flag trace_out explore =
  if t >= k then `Error (false, "need t < k")
  else if n < k then `Error (false, "need n >= k")
  else begin
    let inst = Problem.random_instance ~seed ?b:msg_bits ~model ~k ~n ~t () in
    let trace =
      if trace_flag || matrix_flag || trace_out <> None then Some (Dr_engine.Trace.create ())
      else None
    in
    let lat =
      match latency with
      | "unit" -> Latency.unit_delay
      | "jitter" -> Latency.jittered (Prng.create seed)
      | "rush" ->
        Latency.rushing ~fast:(Dr_adversary.Fault.is_faulty inst.Problem.fault) ~eps:0.01
      | "sized" -> Latency.size_proportional ~per_bit:(1. /. float_of_int inst.Problem.b) ~floor:0.1
      | other -> failwith ("unknown latency policy: " ^ other)
    in
    let crash_plan =
      let fault = inst.Problem.fault in
      match String.split_on_char ':' crash with
      | [ "none" ] -> Crash_plan.none
      | [ "silent" ] -> Crash_plan.mid_broadcast fault ~after_sends:0
      | [ "midcast"; j ] -> Crash_plan.mid_broadcast fault ~after_sends:(int_of_string j)
      | [ "staggered" ] -> Crash_plan.staggered fault ~first:0.5 ~gap:2.0
      | [ "afterq"; j ] -> Crash_plan.after_queries fault (int_of_string j)
      | _ -> failwith ("unknown crash plan: " ^ crash)
    in
    let opts = Exec.make_opts ~latency:lat ~crash:crash_plan ?trace () in
    match explore with
    | Some budget ->
      let run_protocol ~arbiter =
        let opts = { opts with Exec.arbiter = Some arbiter; trace = None } in
        let (module P : Exec.PROTOCOL) =
          if protocol = "auto" then Select.for_instance inst
          else
            match Select.by_name protocol with
            | Some p -> p
            | None -> failwith ("unknown protocol: " ^ protocol)
        in
        (P.run ~opts inst).Problem.ok
      in
      let r = Dr_engine.Explore.dfs ~budget ~run:run_protocol in
      Printf.printf "schedules explored: %d%s\n" r.Dr_engine.Explore.schedules_run
        (if r.Dr_engine.Explore.exhausted then " (space exhausted)" else " (DFS prefix)");
      Printf.printf "max depth:          %d events\n" r.Dr_engine.Explore.max_depth;
      Printf.printf "failing schedules:  %d\n" r.Dr_engine.Explore.failures;
      (match r.Dr_engine.Explore.first_failure with
      | Some script ->
        Printf.printf "first failure script: [%s]\n"
          (String.concat ";" (List.map string_of_int script))
      | None -> ());
      if r.Dr_engine.Explore.failures = 0 then `Ok () else `Error (false, "schedule failures")
    | None ->
    let report =
      match protocol with
      | "auto" ->
        let (module P : Exec.PROTOCOL) = Select.for_instance inst in
        P.run ~opts inst
      | name -> (
        match Registry.find name with
        | Some e -> e.Registry.run ~opts ~attack ?segments inst
        | None -> failwith ("unknown protocol: " ^ name))
    in
    (match trace with
    | Some tr ->
      (match trace_out with
      | Some path -> Dr_engine.Trace.save tr path
      | None -> ());
      if trace_flag then Format.printf "%a@." Dr_engine.Trace.pp tr;
      if matrix_flag then begin
        Format.printf "%a@." (Dr_engine.Trace_stats.pp_matrix ~label:"msgs")
          (Dr_engine.Trace_stats.message_matrix tr ~k);
        match Dr_engine.Trace_stats.busiest_link (Dr_engine.Trace_stats.bits_matrix tr ~k) with
        | Some (src, dst, w) -> Format.printf "busiest link: %d -> %d (%d bits)@." src dst w
        | None -> ()
      end
    | None -> ());
    Format.printf "%a@." Problem.pp_report report;
    if report.Problem.ok then `Ok () else `Error (false, "download failed")
  end

let cmd =
  let term =
    Term.(
      ret
        (const run $ protocol_arg $ peers_arg $ bits_arg $ faults_arg $ model_arg $ seed_arg
       $ msg_bits_arg $ latency_arg $ crash_arg $ attack_arg $ segments_arg $ trace_arg
       $ matrix_arg $ trace_out_arg $ explore_arg))
  in
  Cmd.v
    (Cmd.info "dr_download" ~doc:"Run a distributed Download protocol in the simulator")
    term

let () = exit (Cmd.eval cmd)
