(* dr_source_server: the standalone external data source of the DR model.

   Serves Query(i) over TCP with per-peer query accounting — the "trusted
   external data source" the paper's peers download from, as an actual
   service. Peers (dr_download --transport net) connect, identify themselves
   with a Hello frame, and query bits; the server meters every query.

   Example:
     dr_source_server -n 4096 -k 8 --seed 1 --port 7440
     dr_download -p crash-general -k 8 -n 4096 -t 2 --seed 1 \
       --transport net --source 127.0.0.1:7440 *)

open Cmdliner
module Bitarray = Dr_source.Bitarray
module Prng = Dr_engine.Prng

let bits_arg =
  Arg.(value & opt int 1024 & info [ "n"; "bits" ] ~docv:"N" ~doc:"Input size in bits.")

let peers_arg =
  Arg.(value & opt int 8 & info [ "k"; "peers" ] ~docv:"K" ~doc:"Number of peers to meter.")

let seed_arg = Dr_cli.Cli_args.seed_arg

let port_arg =
  Arg.(value & opt int 0
       & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 = ephemeral).")

let run n k seed port =
  (* The same input-array derivation as Problem.random_instance, so a server
     started with (n, seed) serves exactly the instance the client built. *)
  let x = Bitarray.random (Prng.create seed) n in
  let server = Dr_net.Source_server.create ~port ~k x in
  Printf.printf "dr_source_server: serving n=%d bits to k=%d peers on port %d (seed %Ld)\n%!" n k
    (Dr_net.Source_server.port server)
    seed;
  Dr_net.Source_server.serve server;
  let per_peer = Dr_net.Source_server.stats server in
  Printf.printf "queries per peer: [%s] total=%d replays=%d\n%!"
    (String.concat "; " (Array.to_list (Array.map string_of_int per_peer)))
    (Dr_net.Source_server.total_queries server)
    (Dr_net.Source_server.replay_hits server)

let cmd =
  Cmd.v
    (Cmd.info "dr_source_server"
       ~doc:"Serve Query(i) over TCP with per-peer accounting (the DR model's external source)")
    Term.(const run $ bits_arg $ peers_arg $ seed_arg $ port_arg)

let () = exit (Cmd.eval cmd)
