(* dr_sweep: parameter sweeps over any protocol, CSV on stdout.

   Examples:
     dr_sweep --vary beta --values 0,0.125,0.25,0.5,0.75 -p crash-general -k 32 -n 16384
     dr_sweep --vary n --values 1024,4096,16384 -p byz-committee -k 16 -t 4 --seeds 5
     dr_sweep --vary k --values 16,32,64,128 -p byz-2cycle -n 32768 --beta 0.125 *)

open Cmdliner
open Dr_core
module Cli_args = Dr_cli.Cli_args
module Crash_plan = Dr_adversary.Crash_plan

type axis = Vary_n | Vary_k | Vary_beta | Vary_b

let axis_arg =
  Arg.(
    value
    & opt (enum [ ("n", Vary_n); ("k", Vary_k); ("beta", Vary_beta); ("B", Vary_b) ]) Vary_beta
    & info [ "vary" ] ~doc:"Swept parameter: n, k, beta or B.")

let values_arg =
  Arg.(
    value
    & opt (list ~sep:',' string) [ "0"; "0.125"; "0.25"; "0.5" ]
    & info [ "values" ] ~doc:"Comma-separated values of the swept parameter.")

let protocol_arg = Cli_args.protocol_arg ~default:"crash-general" ()

let peers_arg = Arg.(value & opt int 32 & info [ "k"; "peers" ] ~doc:"Peers (fixed unless swept).")
let bits_arg = Arg.(value & opt int 16384 & info [ "n"; "bits" ] ~doc:"Input bits (fixed unless swept).")
let beta_arg = Arg.(value & opt float 0.25 & info [ "beta" ] ~doc:"Fault fraction (fixed unless swept).")
let t_arg = Arg.(value & opt (some int) None & info [ "t"; "faults" ] ~doc:"Fault count (overrides beta).")
let msg_arg = Arg.(value & opt (some int) None & info [ "B"; "msg-bits" ] ~doc:"Message bound (fixed unless swept).")
let seeds_arg = Arg.(value & opt int 3 & info [ "seeds" ] ~doc:"Runs per sweep point.")

let crash_arg = Cli_args.crash_arg ~default:"silent"
let latency_arg = Cli_args.latency_arg ~default:"jitter"

let run axis values protocol k n beta t b seeds crash latency =
  let entry = Cli_args.resolve_protocol protocol in
  let (module P : Exec.PROTOCOL) = entry.Registry.proto in
  print_endline "protocol,k,n,t,beta,B,seed,ok,q_max,q_mean,q_total,time,msgs,bits,max_msg";
  List.iter
    (fun value ->
      let k, n, beta, b =
        match axis with
        | Vary_n -> (k, int_of_string value, beta, b)
        | Vary_k -> (int_of_string value, n, beta, b)
        | Vary_beta -> (k, n, float_of_string value, b)
        | Vary_b -> (k, n, beta, Some (int_of_string value))
      in
      let t =
        match (axis, t) with
        | Vary_beta, _ | _, None ->
          min (k - 1) (int_of_float (Float.round (beta *. float_of_int k)))
        | _, Some t -> t
      in
      for s = 1 to seeds do
        let seed = Int64.of_int ((s * 7919) + 13) in
        let model = entry.Registry.model in
        let inst = Problem.random_instance ~seed ?b ~model ~k ~n ~t () in
        let lat = Cli_args.latency_fn ~seed ~fault:inst.Problem.fault ~b:inst.Problem.b latency in
        let crash_plan =
          if model = Problem.Byzantine then Crash_plan.none
          else Cli_args.crash_plan ~fault:inst.Problem.fault crash
        in
        let opts = Exec.make_opts ~latency:lat ~crash:crash_plan () in
        let r = P.run ~opts inst in
        Printf.printf "%s,%d,%d,%d,%.4f,%d,%Ld,%b,%d,%.1f,%d,%.2f,%d,%d,%d\n" P.name k n t
          (float_of_int t /. float_of_int k)
          inst.Problem.b seed r.Problem.ok r.Problem.q_max r.Problem.q_mean r.Problem.q_total
          r.Problem.time r.Problem.msgs r.Problem.bits_sent r.Problem.max_msg_bits
      done)
    values;
  `Ok ()

let cmd =
  Cmd.v
    (Cmd.info "dr_sweep" ~doc:"Parameter sweeps over Download protocols (CSV output)")
    Term.(
      ret
        (const run $ axis_arg $ values_arg $ protocol_arg $ peers_arg $ bits_arg $ beta_arg
       $ t_arg $ msg_arg $ seeds_arg $ crash_arg $ latency_arg))

let () = exit (Cmd.eval cmd)
