(* dr_lint: the repo's determinism & query-confinement linter.

   Examples:
     dr_lint                     # lint lib/ bin/ bench/
     dr_lint lib/stats           # lint one subtree
     dr_lint --rules             # print the rule catalogue

   Parses every .ml into the Parsetree and checks the five static
   invariants L1–L5 (see DESIGN.md "Static invariants"). A finding can be
   deliberately waived with a comment directly above the line, of the form

     dr-lint: allow L3 — documented default formatter

   wrapped in ordinary comment parens.

   Exit codes: 0 clean, 1 findings (or unused pragmas), 2 usage/IO error. *)

open Cmdliner
module Driver = Dr_lint.Driver
module Finding = Dr_lint.Finding

let paths_arg =
  Arg.(
    value & pos_all string [ "lib"; "bin"; "bench" ]
    & info [] ~docv:"PATH" ~doc:"Files or directories to lint (default: lib bin bench).")

let rules_arg =
  Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule catalogue and exit.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Print findings only, no summary line.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Finding output format: $(b,text) or $(b,json) (dr-lint/1 JSON lines).")

let print_rules () =
  List.iter
    (fun r -> Format.printf "%s  %s@." (Finding.rule_name r) (Finding.rule_doc r))
    [ Finding.L1; Finding.L2; Finding.L3; Finding.L4; Finding.L5 ]

let run paths rules quiet format =
  if rules then begin
    print_rules ();
    0
  end
  else
    match Driver.lint_paths paths with
    | report ->
      (match format with
      | `Json -> Format.printf "%a" Driver.pp_report_json report
      | `Text ->
        if quiet then
          List.iter
            (fun fr -> List.iter (Format.printf "%a@." Finding.pp) fr.Driver.findings)
            report.Driver.files
        else Format.printf "%a" Driver.pp_report report);
      if Driver.clean report then 0 else 1
    | exception Driver.Error msg ->
      Format.eprintf "dr_lint: %s@." msg;
      2

let cmd =
  let doc = "AST-level determinism & query-confinement linter (rules L1-L5)" in
  Cmd.v
    (Cmd.info "dr_lint" ~doc)
    Term.(const run $ paths_arg $ rules_arg $ quiet_arg $ format_arg)

let () = exit (Cmd.eval' cmd)
