(* dr_bench_diff: compare two BENCH_*.json files from bench_regress and fail
   on regression.

   Examples:
     dr_bench_diff BENCH_engine.old.json BENCH_engine.json
     dr_bench_diff --max-regress 0.05 BENCH_protocols.old.json BENCH_protocols.json

   All recorded metrics are throughputs, so "new median < old median by more
   than the tolerance" is a regression. Exit codes: 0 ok, 1 regression,
   2 usage/parse error. *)

open Cmdliner
module Bench_io = Dr_stats.Bench_io
module Table = Dr_stats.Table

let old_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc:"Baseline JSON file.")

let new_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"Candidate JSON file.")

let tolerance_arg =
  Arg.(
    value
    & opt float 0.10
    & info [ "max-regress" ] ~docv:"FRAC"
        ~doc:"Allowed fractional slowdown of the median before failing (default 0.10).")

let run old_path new_path tolerance =
  match (Bench_io.read old_path, Bench_io.read new_path) with
  | exception Failure msg -> `Error (false, msg)
  | old_file, new_file ->
    if old_file.Bench_io.suite <> new_file.Bench_io.suite then
      `Error
        ( false,
          Printf.sprintf "suite mismatch: %s vs %s" old_file.Bench_io.suite
            new_file.Bench_io.suite )
    else begin
      let table = Table.create [ "bench"; "old median"; "new median"; "speedup"; "verdict" ] in
      let regressions = ref [] in
      List.iter
        (fun (n : Bench_io.bench) ->
          match Bench_io.find old_file n.Bench_io.name with
          | None ->
            Table.add_row table
              [ n.Bench_io.name; "-"; Printf.sprintf "%.0f" n.Bench_io.median; "-"; "new" ]
          | Some o ->
            let speedup =
              if o.Bench_io.median > 0. then n.Bench_io.median /. o.Bench_io.median else nan
            in
            let regressed = speedup < 1. -. tolerance in
            if regressed then regressions := n.Bench_io.name :: !regressions;
            Table.add_row table
              [
                n.Bench_io.name;
                Printf.sprintf "%.0f" o.Bench_io.median;
                Printf.sprintf "%.0f" n.Bench_io.median;
                Printf.sprintf "%.2fx" speedup;
                (if regressed then "REGRESSED" else "ok");
              ])
        new_file.Bench_io.benches;
      List.iter
        (fun (o : Bench_io.bench) ->
          if Bench_io.find new_file o.Bench_io.name = None then
            Table.add_row table
              [ o.Bench_io.name; Printf.sprintf "%.0f" o.Bench_io.median; "-"; "-"; "DROPPED" ])
        old_file.Bench_io.benches;
      Table.print table;
      match !regressions with
      | [] -> `Ok ()
      | names ->
        `Error
          ( false,
            Printf.sprintf "%d bench(es) regressed beyond %.0f%%: %s" (List.length names)
              (tolerance *. 100.)
              (String.concat ", " (List.rev names)) )
    end

let cmd =
  Cmd.v
    (Cmd.info "dr_bench_diff" ~doc:"Compare two bench_regress JSON files; fail on regression")
    Term.(ret (const run $ old_arg $ new_arg $ tolerance_arg))

let () = exit (Cmd.eval cmd)
