lib/stats/chernoff.ml: Array
