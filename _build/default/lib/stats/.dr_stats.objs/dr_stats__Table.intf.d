lib/stats/table.mli:
