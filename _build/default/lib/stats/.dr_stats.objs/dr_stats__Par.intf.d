lib/stats/par.mli:
