lib/stats/chernoff.mli:
