lib/stats/par.ml: Array Atomic Domain List
