let map ?domains f xs =
  let jobs = Array.of_list xs in
  let n = Array.length jobs in
  let workers =
    let cores = try Domain.recommended_domain_count () with _ -> 1 in
    min (match domains with Some d -> max 1 d | None -> min cores 8) n
  in
  if n <= 1 || workers <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f jobs.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map (function Some v -> v | None -> failwith "Par.map: missing result") results)
  end
