(** Summary statistics over repeated runs.

    The randomized protocols are analysed "w.h.p." and "in expectation"; the
    experiment harness runs them over many seeds and reports these
    aggregates. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

val of_floats : float list -> t
(** Raises [Invalid_argument] on an empty list. *)

val of_ints : int list -> t

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0,1]; linear interpolation. The
    array must be sorted ascending. *)

val pp : Format.formatter -> t -> unit
