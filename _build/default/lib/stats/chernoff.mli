(** Tail bounds used by the randomized protocols' analyses.

    Claim 5 and Lemma 3.8 bound the probability that some segment is picked
    by fewer than ρ honest peers. The experiment harness reports these
    predicted failure probabilities next to the measured failure rates, so
    the comparison in EXPERIMENTS.md is like-for-like. *)

val binomial_pmf : trials:int -> p:float -> int -> float
(** Exact binomial probability mass (computed in log space). *)

val binomial_tail_below : trials:int -> p:float -> threshold:int -> float
(** P[Bin(trials, p) < threshold]. *)

val coverage_failure : honest:int -> segments:int -> rho:int -> float
(** Union bound on the probability that any of [segments] segments is picked
    by fewer than [rho] of [honest] uniform pickers — the protocols' w.h.p.
    failure budget. Clamped to 1. *)

val chernoff_below : mu:float -> factor:float -> float
(** The multiplicative Chernoff bound P[X < factor·mu] <= exp(-(1-factor)²·mu/2)
    the paper's proofs quote. *)
