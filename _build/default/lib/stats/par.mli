(** Domain-parallel map for embarrassingly parallel experiment sweeps.

    Monte-Carlo sections of the bench run hundreds of independent,
    deterministic simulations; this fans them out over OCaml 5 domains.
    Each job must be self-contained (build its own instance and PRNGs from
    its input) — results are returned in input order, so determinism is
    preserved regardless of scheduling. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] with up to [domains] worker domains (default: the available
    cores, capped at 8). Falls back to sequential [List.map] for tiny
    inputs. Exceptions in workers are re-raised in the caller. *)
