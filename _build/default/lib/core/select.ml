type preference = Deterministic | Randomized

let all : (module Exec.PROTOCOL) list =
  [
    (module Naive);
    (module Balanced);
    (module Crash_single);
    (module Crash_general);
    (module Committee);
    (module Byz_2cycle);
    (module Byz_multicycle);
  ]

let by_name name =
  List.find_opt (fun (module P : Exec.PROTOCOL) -> P.name = name) all

let for_instance ?(prefer = Randomized) inst =
  let t = Problem.t inst in
  match inst.Problem.model with
  | Problem.Crash ->
    if t = 0 then (module Balanced : Exec.PROTOCOL)
    else if t = 1 then (module Crash_single)
    else (module Crash_general)
  | Problem.Byzantine ->
    if t = 0 then (module Balanced)
    else if 2 * t < inst.Problem.k then begin
      match prefer with
      | Deterministic -> (module Committee)
      | Randomized -> (module Byz_2cycle)
    end
    else (module Naive)
