(** Packetization of bit strings under the message bound B.

    Protocols that ship whole segments or arrays split them into parts of at
    most [payload] bits each and reassemble on the receiving side. Part
    indices are carried explicitly, so parts may arrive in any order (and
    some may be missing after a mid-broadcast crash). *)

val parts : b:int -> int -> int
(** [parts ~b len] is the number of packets needed for [len] bits. *)

val split : b:int -> Dr_source.Bitarray.t -> (int * Dr_source.Bitarray.t) list
(** [(part_index, payload)] covering the array in order. Empty arrays yield
    a single empty part so that "I sent you my (empty) share" is still a
    message. *)

module Assembly : sig
  (** Reassembly buffer for one logical string. *)

  type t

  val create : len:int -> b:int -> t
  val add : t -> part:int -> Dr_source.Bitarray.t -> unit
  (** Ignores duplicate parts; raises [Invalid_argument] on a part whose
      size is inconsistent with the declared length. *)

  val complete : t -> bool
  val get : t -> Dr_source.Bitarray.t
  (** The reassembled string; raises [Invalid_argument] when incomplete. *)

  val received_parts : t -> int
end
