(** ρ-frequent string bookkeeping for the randomized protocols.

    Collects the [⟨segment, string⟩] reports received from other peers and
    answers "which strings for segment [j] were reported by at least ρ
    distinct peers". Each peer's {e first} report (per cycle) is the only one
    counted — the paper's accounting "each peer sends no more than one string
    overall" is enforced here, so a Byzantine flooder cannot inflate R_j. *)

type t

val create : unit -> t

val add : t -> seg:int -> peer:int -> Dr_source.Bitarray.t -> bool
(** Record a report. Returns [false] (and ignores the report) if this peer
    already reported any segment into this store. *)

val reporters : t -> int
(** Number of distinct peers that have reported. *)

val total_for : t -> seg:int -> int
(** R_j: reports received for segment [j], including duplicates. *)

val strings_for : t -> seg:int -> (Dr_source.Bitarray.t * int) list
(** Distinct strings with their reporter counts. *)

val frequent : t -> seg:int -> rho:int -> Dr_source.Bitarray.t list
(** Strings reported by ≥ rho distinct peers. *)

val covered : t -> segments:int -> rho:int -> bool
(** Does every segment in [0 .. segments-1] have a ρ-frequent string? This is
    the paper's asynchronous waiting condition for entering cycle 2. *)
