lib/core/decision_tree.mli: Dr_source
