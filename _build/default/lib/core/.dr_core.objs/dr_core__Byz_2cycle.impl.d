lib/core/byz_2cycle.ml: Decision_tree Dr_adversary Dr_engine Dr_source Exec Frequent Printf Problem
