lib/core/select.ml: Balanced Byz_2cycle Byz_multicycle Committee Crash_general Crash_single Exec List Naive Problem
