lib/core/problem.ml: Dr_adversary Dr_engine Dr_source Format List String
