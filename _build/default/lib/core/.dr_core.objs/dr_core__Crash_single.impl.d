lib/core/crash_single.ml: Array Dr_engine Dr_source Exec Fun Hashtbl List Printf Problem Wire
