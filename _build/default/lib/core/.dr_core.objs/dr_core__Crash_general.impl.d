lib/core/crash_general.ml: Array Dr_engine Dr_source Exec Fun Hashtbl Int64 List Printf Problem Seq Wire
