lib/core/committee.ml: Array Dr_adversary Dr_engine Dr_source Exec Hashtbl List Map Printf Problem
