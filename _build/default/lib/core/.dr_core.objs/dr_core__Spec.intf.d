lib/core/spec.mli:
