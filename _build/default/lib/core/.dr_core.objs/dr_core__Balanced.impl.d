lib/core/balanced.ml: Array Dr_engine Dr_source Exec List Printf Problem Wire
