lib/core/balanced.mli: Exec
