lib/core/problem.mli: Dr_adversary Dr_engine Dr_source Format
