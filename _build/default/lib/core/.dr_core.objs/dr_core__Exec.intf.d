lib/core/exec.mli: Dr_adversary Dr_engine Dr_source Problem
