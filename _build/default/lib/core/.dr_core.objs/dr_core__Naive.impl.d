lib/core/naive.ml: Dr_engine Dr_source Exec Problem
