lib/core/wire.mli: Dr_source
