lib/core/byz_multicycle.ml: Array Byz_2cycle Decision_tree Dr_adversary Dr_engine Dr_source Exec Frequent List Printf Problem
