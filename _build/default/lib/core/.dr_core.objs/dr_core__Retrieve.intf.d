lib/core/retrieve.mli: Dr_source Exec Problem
