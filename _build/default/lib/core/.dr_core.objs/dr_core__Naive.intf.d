lib/core/naive.mli: Exec
