lib/core/crash_single.mli: Exec
