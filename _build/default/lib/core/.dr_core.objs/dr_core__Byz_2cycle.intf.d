lib/core/byz_2cycle.mli: Exec Problem
