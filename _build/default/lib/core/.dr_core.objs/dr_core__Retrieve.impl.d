lib/core/retrieve.ml: Bool Dr_source Exec Int Printf Problem
