lib/core/frequent.mli: Dr_source
