lib/core/crash_general.mli: Exec Problem
