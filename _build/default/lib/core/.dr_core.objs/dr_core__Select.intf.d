lib/core/select.mli: Exec Problem
