lib/core/wire.ml: Array Dr_source List
