lib/core/byz_multicycle.mli: Exec Problem
