lib/core/frequent.ml: Array Dr_source Hashtbl List Map
