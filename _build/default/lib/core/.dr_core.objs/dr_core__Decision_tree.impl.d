lib/core/decision_tree.ml: Dr_source List
