lib/core/exec.ml: Array Dr_adversary Dr_engine Dr_source Problem
