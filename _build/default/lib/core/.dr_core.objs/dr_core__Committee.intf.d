lib/core/committee.mli: Exec Problem
