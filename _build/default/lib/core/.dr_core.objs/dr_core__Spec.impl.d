lib/core/spec.ml: Byz_2cycle Byz_multicycle List
