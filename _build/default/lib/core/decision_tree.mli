(** Decision trees over inconsistent bit strings (Protocol 3).

    Given several candidate versions of the same segment — some honest, some
    forged — the tree's internal nodes are {e separating indices}: positions
    where two candidates differ. Querying the source at each separating index
    along a root-to-leaf walk discards every candidate inconsistent with X;
    if the correct string is among the candidates, the walk ends at it.

    The number of internal nodes is (number of distinct candidates − 1), so
    resolving a segment costs at most that many queries — the accounting
    behind the randomized protocols' query bounds. *)

type t =
  | Leaf of Dr_source.Bitarray.t
  | Node of { index : int; zero : t; one : t }
      (** [index] is relative to the segment start; [zero]/[one] hold the
          candidates whose bit at [index] is 0/1. *)

val build : Dr_source.Bitarray.t list -> t
(** Build from a non-empty list of equal-length candidates (duplicates are
    merged). Raises [Invalid_argument] on an empty list or mixed lengths. *)

val leaves : t -> Dr_source.Bitarray.t list
val internal_nodes : t -> int
val depth : t -> int

val determine :
  query:(int -> bool) -> offset:int -> t -> Dr_source.Bitarray.t * int
(** [determine ~query ~offset tree] walks the tree, querying
    [query (offset + index)] at every internal node, and returns the
    surviving candidate together with the number of queries spent.
    If the true segment string is a leaf, the result equals it. *)

val contains : t -> Dr_source.Bitarray.t -> bool
(** Is the string one of the leaves? *)
