(** The Download problem: instances and reports.

    An instance fixes everything the adversary and the protocol need: the
    input array, the number of peers, the faulty set, the message-size bound
    and the random seed. A report is what running a protocol on an instance
    produces — the correctness verdict plus the paper's three complexity
    measures Q, T, M. *)

type fault_model = Crash | Byzantine

type instance = {
  k : int;  (** number of peers *)
  x : Dr_source.Bitarray.t;  (** the input array X (n = its length) *)
  fault : Dr_adversary.Fault.t;
  model : fault_model;
  b : int;  (** message-size bound B, in bits *)
  seed : int64;
}

val make :
  ?seed:int64 ->
  ?b:int ->
  ?model:fault_model ->
  k:int ->
  x:Dr_source.Bitarray.t ->
  Dr_adversary.Fault.t ->
  instance
(** Defaults: [seed = 1L], [b = 64·⌈log2 (n+k)⌉] (a few machine words),
    [model] = [Crash] when no peer is faulty or per the caller. Raises
    [Invalid_argument] on inconsistent sizes. *)

val random_instance :
  ?seed:int64 ->
  ?b:int ->
  ?model:fault_model ->
  k:int ->
  n:int ->
  t:int ->
  unit ->
  instance
(** Uniform random input of [n] bits and [t] faulty peers chosen by the
    spread pattern; the common constructor for tests and benches. *)

val n : instance -> int
val t : instance -> int
val beta : instance -> float
val gamma : instance -> float
val honest : instance -> int -> bool

type report = {
  protocol : string;
  ok : bool;  (** every nonfaulty peer terminated with output = X *)
  wrong : int list;  (** nonfaulty peers with a wrong or missing output *)
  q_max : int;  (** Q: max bits queried by a nonfaulty peer *)
  q_mean : float;  (** mean over nonfaulty peers *)
  q_total : int;  (** total over nonfaulty peers *)
  msgs : int;  (** M: messages sent by nonfaulty peers *)
  bits_sent : int;
  max_msg_bits : int;  (** largest message actually sent (≤ B expected) *)
  time : float;  (** T: last event time, in max-latency units *)
  wakeups_max : int;
      (** most delivery-resumptions of any nonfaulty peer — a proxy for the
          paper's per-peer cycle count (the 2-cycle protocol wakes O(k)
          times but blocks in 1 logical wait; see Metrics) *)
  status : Dr_engine.Sim.status;
}

val pp_report : Format.formatter -> report -> unit
