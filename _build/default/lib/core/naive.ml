module Bitarray = Dr_source.Bitarray

module Msg = struct
  type t = unit

  let size_bits () = 0
  let tag () = "none"
end

module S = Dr_engine.Sim.Make (Msg)

let name = "naive"
let supports _ = Ok ()

let run ?(opts = Exec.default) inst =
  let cfg = Exec.build_config inst opts in
  let n = Problem.n inst in
  let process _i =
    let y = Bitarray.create n in
    for j = 0 to n - 1 do
      Bitarray.set y j (S.query j)
    done;
    y
  in
  Exec.finish ~protocol:name inst (S.run cfg process)
