module Bitarray = Dr_source.Bitarray
module Fault = Dr_adversary.Fault

type fault_model = Crash | Byzantine

type instance = {
  k : int;
  x : Bitarray.t;
  fault : Fault.t;
  model : fault_model;
  b : int;
  seed : int64;
}

let ceil_log2 v =
  let rec go acc p = if p >= v then acc else go (acc + 1) (p * 2) in
  go 0 1

let make ?(seed = 1L) ?b ?(model = Crash) ~k ~x fault =
  if k <= 0 then invalid_arg "Problem.make: k must be positive";
  if fault.Fault.k <> k then invalid_arg "Problem.make: fault partition sized for a different k";
  let n = Bitarray.length x in
  if n <= 0 then invalid_arg "Problem.make: empty input array";
  let b = match b with Some b -> b | None -> 64 * max 1 (ceil_log2 (n + k)) in
  if b < 1 then invalid_arg "Problem.make: message bound must be positive";
  { k; x; fault; model; b; seed }

let random_instance ?(seed = 1L) ?b ?(model = Crash) ~k ~n ~t () =
  let prng = Dr_engine.Prng.create seed in
  let x = Bitarray.random prng n in
  let fault = Fault.choose ~k (Fault.Spread t) in
  make ~seed ?b ~model ~k ~x fault

let n inst = Bitarray.length inst.x
let t inst = inst.fault.Fault.t_count
let beta inst = Fault.beta inst.fault
let gamma inst = Fault.gamma inst.fault
let honest inst i = Fault.is_honest inst.fault i

type report = {
  protocol : string;
  ok : bool;
  wrong : int list;
  q_max : int;
  q_mean : float;
  q_total : int;
  msgs : int;
  bits_sent : int;
  max_msg_bits : int;
  time : float;
  wakeups_max : int;
  status : Dr_engine.Sim.status;
}

let pp_status ppf = function
  | Dr_engine.Sim.Completed -> Format.pp_print_string ppf "completed"
  | Dr_engine.Sim.Deadlock blocked ->
    Format.fprintf ppf "deadlock[%s]" (String.concat "," (List.map string_of_int blocked))
  | Dr_engine.Sim.Event_limit_reached -> Format.pp_print_string ppf "event-limit"

let pp_report ppf r =
  Format.fprintf ppf "%-16s %s Q=%d (mean %.1f) T=%.1f M=%d bits=%d status=%a" r.protocol
    (if r.ok then "OK " else "FAIL")
    r.q_max r.q_mean r.time r.msgs r.bits_sent pp_status r.status;
  if not r.ok && r.wrong <> [] then
    Format.fprintf ppf " wrong=[%s]" (String.concat "," (List.map string_of_int r.wrong))
