(** General retrieval problems over the DR model.

    The paper frames Download as the fundamental member of the class of
    retrieval problems — computing any [f(X)] — "since every retrieval
    problem can be solved by first performing download and then locally
    computing f". This module is that reduction as code: a retrieval
    problem is a pure function of the array, and [solve] runs any Download
    protocol and then evaluates it; because Download guarantees every
    nonfaulty peer holds exactly [X], all nonfaulty peers agree on [f(X)]
    with no extra communication. *)

type 'a problem = {
  name : string;
  compute : Dr_source.Bitarray.t -> 'a;
  equal : 'a -> 'a -> bool;
  describe : 'a -> string;
}

(** {2 The standard catalog} *)

val parity : bool problem
(** XOR of all bits. *)

val popcount : int problem
(** Number of set bits. *)

val find_first : bool -> int option problem
(** Index of the first bit with the given value. *)

val all_equal : bool problem
(** Is the array constant? *)

val longest_run : int problem
(** Length of the longest run of equal bits. *)

val slice : pos:int -> len:int -> Dr_source.Bitarray.t problem
(** A sub-vector (partial retrieval). *)

(** {2 Solving} *)

type 'a result = {
  download : Problem.report;  (** the underlying Download run *)
  value : 'a option;  (** [Some (f X)] — the value every nonfaulty peer
                          computes — iff the download succeeded *)
}

val solve :
  (module Exec.PROTOCOL) ->
  ?opts:Exec.opts ->
  Problem.instance ->
  'a problem ->
  'a result

val check : 'a problem -> Problem.instance -> 'a result -> bool
(** Does the computed value match [f] applied to the true input? (Vacuously
    false when the download failed.) *)
