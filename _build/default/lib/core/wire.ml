module Bitarray = Dr_source.Bitarray

let parts ~b len =
  if b <= 0 then invalid_arg "Wire.parts: b must be positive";
  if len = 0 then 1 else (len + b - 1) / b

let split ~b bits =
  let len = Bitarray.length bits in
  if len = 0 then [ (0, Bitarray.create 0) ]
  else
    List.init (parts ~b len) (fun part ->
        let pos = part * b in
        (part, Bitarray.sub bits ~pos ~len:(min b (len - pos))))

module Assembly = struct
  type t = {
    buffer : Bitarray.t;
    b : int;
    have : bool array;  (** which parts have arrived *)
    mutable missing : int;
  }

  let create ~len ~b =
    if b <= 0 then invalid_arg "Wire.Assembly.create: b must be positive";
    if len < 0 then invalid_arg "Wire.Assembly.create: negative length";
    let count = parts ~b len in
    { buffer = Bitarray.create len; b; have = Array.make count false; missing = count }

  let add t ~part payload =
    if part < 0 || part >= Array.length t.have then invalid_arg "Wire.Assembly.add: bad part";
    let pos = part * t.b in
    let expected = min t.b (Bitarray.length t.buffer - pos) in
    if Bitarray.length payload <> expected then
      invalid_arg "Wire.Assembly.add: payload size mismatch";
    if not t.have.(part) then begin
      t.have.(part) <- true;
      t.missing <- t.missing - 1;
      if expected > 0 then Bitarray.blit ~src:payload ~dst:t.buffer ~pos
    end

  let complete t = t.missing = 0

  let get t =
    if not (complete t) then invalid_arg "Wire.Assembly.get: incomplete";
    Bitarray.copy t.buffer

  let received_parts t = Array.length t.have - t.missing
end
