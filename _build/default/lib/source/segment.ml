type spec = { n : int; s : int }

let make ~n ~s =
  if s < 1 || s > n then invalid_arg "Segment.make: need 1 <= s <= n";
  { n; s }

(* Boundary formula: segment j spans [j*n/s, (j+1)*n/s). Using the floor of
   the exact rational keeps lengths within one of each other, and makes any
   spec whose count divides [s] an exact coarsening (boundaries align). *)
let start { n; s } j =
  if j < 0 || j > s then invalid_arg "Segment.start";
  j * n / s

let bounds spec j =
  let lo = start spec j in
  (lo, start spec (j + 1) - lo)

let len spec j = snd (bounds spec j)
let max_len { n; s } = (n + s - 1) / s

let of_bit spec i =
  if i < 0 || i >= spec.n then invalid_arg "Segment.of_bit";
  (* Initial guess from the inverse rational, then fix up floor effects. *)
  let j = ref (i * spec.s / spec.n) in
  while start spec (!j + 1) <= i do
    incr j
  done;
  while start spec !j > i do
    decr j
  done;
  !j

let halve spec =
  if spec.s = 1 then invalid_arg "Segment.halve: already a single segment";
  if spec.s mod 2 <> 0 then invalid_arg "Segment.halve: segment count must be even";
  { spec with s = spec.s / 2 }

let children ~coarse ~fine j =
  if coarse.n <> fine.n || fine.s mod coarse.s <> 0 then
    invalid_arg "Segment.children: fine must refine coarse";
  let ratio = fine.s / coarse.s in
  List.init ratio (fun i -> (j * ratio) + i)

let extract spec x j =
  if Bitarray.length x <> spec.n then invalid_arg "Segment.extract: length mismatch";
  let pos, len = bounds spec j in
  Bitarray.sub x ~pos ~len
