lib/source/segment.ml: Bitarray List
