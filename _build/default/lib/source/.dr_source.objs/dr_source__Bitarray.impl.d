lib/source/bitarray.ml: Array Bytes Char Dr_engine Format Stdlib String
