lib/source/data_source.mli: Bitarray
