lib/source/bitarray.mli: Dr_engine Format
