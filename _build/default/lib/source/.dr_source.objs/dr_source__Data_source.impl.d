lib/source/data_source.ml: Array Bitarray
