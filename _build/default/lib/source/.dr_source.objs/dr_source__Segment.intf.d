lib/source/segment.mli: Bitarray
