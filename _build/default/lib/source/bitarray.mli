(** Packed bit arrays.

    The input array [X] of the DR model, the peers' output arrays, and the
    bit strings exchanged for segments are all values of this type. Unused
    padding bits are kept at zero, so structural equality and hashing work on
    the content. *)

type t

val create : int -> t
(** [create n] is an all-zeros array of [n] bits. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit

val copy : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val random : Dr_engine.Prng.t -> int -> t
(** Uniform random array of the given length. *)

val of_string : string -> t
(** From a ['0']/['1'] string. Raises [Invalid_argument] on other chars. *)

val to_string : t -> string

val init : int -> (int -> bool) -> t

val sub : t -> pos:int -> len:int -> t
(** Extract a contiguous slice (the paper's segment string [X[j]]). *)

val blit : src:t -> dst:t -> pos:int -> unit
(** Write [src] into [dst] starting at bit [pos]. *)

val append : t -> t -> t

val first_diff : t -> t -> int option
(** First index where the two arrays differ (the decision tree's "separating
    index"), or [None] if equal. Arrays must have equal length. *)

val count_ones : t -> int

val diff_count : t -> t -> int
(** Hamming distance; arrays must have equal length. *)

val flip : t -> int -> t
(** Copy with one bit flipped (used by lower-bound adversaries). *)

val pp : Format.formatter -> t -> unit
