(** The trusted external data source of the DR model.

    Wraps the input array behind the query interface and keeps per-peer query
    accounting (the paper's Q is derived from these counters, or equivalently
    from {!Dr_engine.Metrics}). The source is read-only and always answers
    correctly — faults live in the peer set, never here. Section 4's
    Byzantine {e data sources} are modelled separately in [Dr_oracle]. *)

type t

val create : k:int -> Bitarray.t -> t
(** [create ~k x] serves the array [x] to [k] peers. *)

val input : t -> Bitarray.t
(** The array being served (for verification; peers must not use this). *)

val n : t -> int
(** Number of bits. *)

val query : t -> peer:int -> int -> bool
(** Answer a query and charge it to [peer]. Raises [Invalid_argument] on an
    out-of-range index or peer. *)

val query_fn : t -> peer:int -> int -> bool
(** Same, shaped for {!Dr_engine.Sim.Make}'s [query_bit] field. *)

val queries_by : t -> int -> int
(** Queries charged to a peer so far. *)

val total_queries : t -> int

val max_queries : ?select:(int -> bool) -> t -> int
(** Maximum per-peer count over peers satisfying [select] (default all) —
    the paper's Q when [select] is the honesty predicate. *)

val reset_counts : t -> unit
