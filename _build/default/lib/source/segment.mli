(** Segment arithmetic for the randomized protocols.

    The input array of [n] bits is partitioned into [s] contiguous segments
    of near-equal length (lengths differ by at most one). Segment IDs range
    over [0 .. s-1]. *)

type spec = { n : int; s : int }

val make : n:int -> s:int -> spec
(** Raises [Invalid_argument] unless [1 <= s <= n]. *)

val start : spec -> int -> int
(** First bit index of a segment. *)

val len : spec -> int -> int
(** Number of bits in a segment (⌈n/s⌉ or ⌊n/s⌋). *)

val bounds : spec -> int -> int * int
(** [(start, len)]. *)

val max_len : spec -> int

val of_bit : spec -> int -> int
(** Segment containing a bit index. *)

val halve : spec -> spec
(** The next cycle of the multi-cycle protocol: half as many segments, each
    the concatenation of two consecutive segments of the current spec
    (rounding up when [s] is odd). *)

val children : coarse:spec -> fine:spec -> int -> int list
(** The fine-spec segments whose union is the given coarse segment.
    Requires that [fine] refines [coarse] (every coarse boundary is a fine
    boundary), which holds along the [halve] chain. *)

val extract : spec -> Bitarray.t -> int -> Bitarray.t
(** The bit string of a segment of the given array. *)
