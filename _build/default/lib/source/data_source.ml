type t = { bits : Bitarray.t; counts : int array }

let create ~k x =
  if k <= 0 then invalid_arg "Data_source.create";
  { bits = x; counts = Array.make k 0 }

let input t = t.bits
let n t = Bitarray.length t.bits

let query t ~peer i =
  if peer < 0 || peer >= Array.length t.counts then invalid_arg "Data_source.query: bad peer";
  t.counts.(peer) <- t.counts.(peer) + 1;
  Bitarray.get t.bits i

let query_fn t ~peer i = query t ~peer i
let queries_by t peer = t.counts.(peer)
let total_queries t = Array.fold_left ( + ) 0 t.counts

let max_queries ?(select = fun _ -> true) t =
  let best = ref 0 in
  Array.iteri (fun i c -> if select i && c > !best then best := c) t.counts;
  !best

let reset_counts t = Array.fill t.counts 0 (Array.length t.counts) 0
