type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let data = Array.make new_cap h.data.(0) in
  Array.blit h.data 0 data 0 h.len;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.len && lt h.data.(left) h.data.(!smallest) then smallest := left;
  if right < h.len && lt h.data.(right) h.data.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~time value =
  let entry = { time; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.len = 0 && Array.length h.data = 0 then h.data <- Array.make 16 entry
  else if h.len = Array.length h.data then grow h;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (top.time, top.value)
  end

let peek_time h = if h.len = 0 then None else Some h.data.(0).time
let is_empty h = h.len = 0
let size h = h.len
let clear h = h.len <- 0
