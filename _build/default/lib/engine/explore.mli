(** Bounded systematic schedule exploration.

    The asynchronous adversary's whole power over honest peers is the order
    in which pending events (message deliveries, start signals, source
    replies) fire. With {!Sim.arbiter} that order becomes an explicit choice
    sequence, so correctness can be checked against {e every} schedule of a
    small instance — depth-first, deterministically, re-executing the
    simulation once per schedule — instead of against a handful of sampled
    latency policies. The schedule tree of any non-trivial run is
    astronomical, so exploration is budgeted: [exhausted = true] means the
    whole tree was covered, otherwise the DFS covered a lexicographic prefix
    of it. *)

type outcome = {
  schedules_run : int;
  exhausted : bool;  (** the full schedule tree fit inside the budget *)
  failures : int;
  first_failure : int list option;
      (** the choice script of the first failing schedule — replay it by
          passing the same script to {!scripted} *)
  max_depth : int;  (** longest schedule seen (events per execution) *)
}

val dfs : budget:int -> run:(arbiter:Sim.arbiter -> bool) -> outcome
(** [dfs ~budget ~run] calls [run] once per schedule, handing it an arbiter
    that drives that schedule; [run] returns whether the execution was
    correct. [run] must be deterministic given the arbiter's choices. *)

val scripted : int list -> Sim.arbiter
(** An arbiter that follows the given choice script, then always picks 0 —
    for replaying a failure found by {!dfs}. *)

val random : Prng.t -> Sim.arbiter
(** A uniformly random arbiter — schedule fuzzing beyond the DFS prefix. *)
