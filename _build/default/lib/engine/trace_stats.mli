(** Aggregate views over execution traces.

    Communication matrices answer "who talked to whom, and how much" — the
    fastest way to see a protocol's structure (committee fan-out, the
    termination flood, a lower-bound adversary starving one victim) or to
    spot an imbalance bug. *)

val message_matrix : Trace.t -> k:int -> int array array
(** [m.(src).(dst)] = messages sent src → dst (from [Sent] events). *)

val bits_matrix : Trace.t -> k:int -> int array array
(** Same, in payload bits. *)

val delivered_matrix : Trace.t -> k:int -> int array array
(** Messages actually delivered (a crashed receiver drops the rest). *)

val queries_per_peer : Trace.t -> k:int -> int array

val busiest_link : int array array -> (int * int * int) option
(** [(src, dst, weight)] of the heaviest entry, or [None] if all zero. *)

val pp_matrix : ?label:string -> Format.formatter -> int array array -> unit
(** Fixed-width rendering with row/column peer indices. *)

val pp_lanes : ?max_events:int -> k:int -> Format.formatter -> Trace.t -> unit
(** A time–space view: one column per peer, one row per event, so message
    flow reads top to bottom ([>d] = send to d, [<s] = delivery from s,
    [?i] = query, [X] = crash, [#] = termination). Intended for small
    executions; rendering stops after [max_events] rows (default 200). *)
