lib/engine/prng.mli:
