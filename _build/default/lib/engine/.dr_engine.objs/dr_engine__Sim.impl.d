lib/engine/sim.ml: Array Effect Float Hashtbl Heap List Metrics Prng Queue Trace
