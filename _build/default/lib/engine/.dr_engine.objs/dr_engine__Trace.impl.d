lib/engine/trace.ml: Array Format Fun List Printf String
