lib/engine/trace_stats.mli: Format Trace
