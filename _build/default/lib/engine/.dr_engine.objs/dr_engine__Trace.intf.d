lib/engine/trace.mli: Format
