lib/engine/explore.ml: List Prng
