lib/engine/trace_stats.ml: Array Format List Printf String Trace
