lib/engine/heap.mli:
