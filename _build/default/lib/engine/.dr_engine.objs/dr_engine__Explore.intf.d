lib/engine/explore.mli: Prng Sim
