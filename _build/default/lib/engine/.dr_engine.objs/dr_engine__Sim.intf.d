lib/engine/sim.mli: Metrics Prng Trace
