(** Deterministic, splittable pseudo-random generator (xoshiro256starstar).

    Every source of randomness in the simulator is drawn from one of these
    generators, seeded from a single master seed, so that a whole execution —
    scheduling, latencies, protocol coin flips — is reproducible bit-for-bit
    from [(seed, configuration)] alone. The standard library [Random] is never
    used. *)

type t

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed (expanded through
    splitmix64, so low-entropy seeds such as [1L] are fine). *)

val split : t -> t
(** [split g] derives an independent generator; [g] advances. Used to give
    each peer its own stream so that protocol randomness does not depend on
    scheduling order. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bits : t -> int -> int
(** [bits g w] is a uniform [w]-bit nonnegative integer, [0 <= w <= 30]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
