(** Binary min-heap keyed by [(time, sequence)].

    The event queue of the simulator. Ties on time are broken by insertion
    order, which keeps executions deterministic: two events scheduled for the
    same instant are processed in the order they were scheduled. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Schedule a value at [time]. O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, or [None] when empty. O(log n). *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val clear : 'a t -> unit
(** Drop all pending events. *)
