type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64, used to expand seeds into full xoshiro state. *)
let splitmix_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let st = ref seed in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let next64 g =
  let result = Int64.mul (rotl (Int64.mul g.s1 5L) 7) 9L in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g = create (next64 g)

let int g bound =
  assert (bound > 0);
  Int64.to_int (Int64.unsigned_rem (next64 g) (Int64.of_int bound))

let float g bound =
  let mantissa = Int64.shift_right_logical (next64 g) 11 in
  Int64.to_float mantissa *. (1.0 /. 9007199254740992.0) *. bound

let bool g = Int64.logand (next64 g) 1L = 1L

let bits g w =
  assert (w >= 0 && w <= 30);
  if w = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next64 g) (64 - w))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))
