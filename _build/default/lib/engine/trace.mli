(** Structured execution traces.

    A trace records the externally visible history of a simulated execution:
    sends, deliveries, source queries, crashes, terminations and free-form
    protocol notes. Traces are what the lower-bound constructions compare when
    arguing that two executions are indistinguishable to a peer, and what the
    tests inspect to check scheduling properties. Tracing is opt-in; benches
    run without one. *)

type event =
  | Sent of { time : float; src : int; dst : int; size_bits : int; tag : string }
  | Delivered of { time : float; src : int; dst : int; tag : string }
  | Queried of { time : float; peer : int; index : int; value : bool }
  | Crashed of { time : float; peer : int }
  | Terminated of { time : float; peer : int }
  | Deadlocked of { time : float; blocked : int list }
  | Note of { time : float; peer : int; text : string }

type t

val create : ?capacity:int -> unit -> t
(** A fresh empty trace. [capacity] is an initial buffer hint. *)

val record : t -> event -> unit

val events : t -> event list
(** All recorded events, in order. *)

val length : t -> int

val events_of_peer : t -> int -> event list
(** Events in which the given peer participates (as actor, sender or
    receiver). This is the "view" used by indistinguishability checks. *)

val received_view : t -> int -> (float * int * string) list
(** [(time, src, tag)] of every delivery to the peer — what the peer can
    actually observe of the network, used by [Dr_lowerbound]. *)

val query_view : t -> int -> (int * bool) list
(** [(index, answer)] of every source query made by the peer, in order. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

(** {2 Persistence}

    A simple line-oriented text format, one event per line, so traces can be
    saved from a run and analysed offline (see the [dr_trace] CLI). Free-form
    text (tags, notes) must not contain newlines. *)

val save : t -> string -> unit
(** Write to a file (overwrites). *)

val load : string -> t
(** Read a file written by {!save}. Raises [Failure] with the offending line
    number on a malformed file. *)
