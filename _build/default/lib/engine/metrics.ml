type peer = {
  mutable queries : int;
  mutable msgs_sent : int;
  mutable bits_sent : int;
  mutable msgs_received : int;
  mutable max_msg_bits : int;
  mutable wakeups : int;
}

type t = peer array

let fresh_peer () =
  { queries = 0; msgs_sent = 0; bits_sent = 0; msgs_received = 0; max_msg_bits = 0; wakeups = 0 }

let create k = Array.init k (fun _ -> fresh_peer ())
let peer t i = t.(i)
let peer_count t = Array.length t

let on_query t i = t.(i).queries <- t.(i).queries + 1

let on_send t i ~size_bits =
  let p = t.(i) in
  p.msgs_sent <- p.msgs_sent + 1;
  p.bits_sent <- p.bits_sent + size_bits;
  if size_bits > p.max_msg_bits then p.max_msg_bits <- size_bits

let on_receive t i = t.(i).msgs_received <- t.(i).msgs_received + 1
let on_wakeup t i = t.(i).wakeups <- t.(i).wakeups + 1

type summary = {
  max_queries : int;
  total_queries : int;
  total_msgs : int;
  total_bits : int;
  max_msg_bits : int;
  mean_queries : float;
  max_wakeups : int;
}

let summarize ?(select = fun _ -> true) t =
  let max_queries = ref 0
  and total_queries = ref 0
  and total_msgs = ref 0
  and total_bits = ref 0
  and max_msg_bits = ref 0
  and max_wakeups = ref 0
  and selected = ref 0 in
  Array.iteri
    (fun i p ->
      if select i then begin
        incr selected;
        if p.queries > !max_queries then max_queries := p.queries;
        total_queries := !total_queries + p.queries;
        total_msgs := !total_msgs + p.msgs_sent;
        total_bits := !total_bits + p.bits_sent;
        if p.max_msg_bits > !max_msg_bits then max_msg_bits := p.max_msg_bits;
        if p.wakeups > !max_wakeups then max_wakeups := p.wakeups
      end)
    t;
  {
    max_queries = !max_queries;
    total_queries = !total_queries;
    total_msgs = !total_msgs;
    total_bits = !total_bits;
    max_msg_bits = !max_msg_bits;
    mean_queries =
      (if !selected = 0 then 0. else float_of_int !total_queries /. float_of_int !selected);
    max_wakeups = !max_wakeups;
  }

let pp_summary ppf s =
  Format.fprintf ppf "Q=%d (mean %.1f) M=%d bits=%d max_msg=%d" s.max_queries s.mean_queries
    s.total_msgs s.total_bits s.max_msg_bits
