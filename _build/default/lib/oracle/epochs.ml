type params = { base : Odc.params; epochs : int }

type epoch_result = {
  epoch : int;
  collection_odd : bool;
  publication_odd : bool;
  cell_queries : int;
  baseline_cell_queries : int;
}

type summary = {
  results : epoch_result list;
  all_ok : bool;
  total_queries : int;
  baseline_total : int;
  saving : float;
}

let run ?protocol { base; epochs } =
  if epochs <= 0 then Error "need at least one epoch"
  else begin
    match Odc.full_flow ?protocol base with
    | Error e -> Error e
    | Ok _ ->
      let results =
        List.init epochs (fun e ->
            let p = { base with Odc.seed = Int64.add base.Odc.seed (Int64.of_int (1000 * e)) } in
            let baseline = Odc.baseline p in
            match Odc.full_flow ?protocol p with
            | Error _ -> assert false (* validated above; parameters identical *)
            | Ok (collection, publication) ->
              {
                epoch = e;
                collection_odd = collection.Odc.odd_ok && collection.Odc.download_ok;
                publication_odd = publication.Pipeline.odd_ok;
                cell_queries = collection.Odc.cell_queries_total;
                baseline_cell_queries = baseline.Odc.cell_queries_total;
              })
      in
      let total_queries = List.fold_left (fun acc r -> acc + r.cell_queries) 0 results in
      let baseline_total =
        List.fold_left (fun acc r -> acc + r.baseline_cell_queries) 0 results
      in
      Ok
        {
          results;
          all_ok = List.for_all (fun r -> r.collection_odd && r.publication_odd) results;
          total_queries;
          baseline_total;
          saving = float_of_int baseline_total /. float_of_int (max 1 total_queries);
        }
  end
