(** Download for word-valued arrays — the paper's "extension to numbers".

    Section 4 notes that the binary Download protocols "can be extended to
    numbers via a relatively simple extension": fix a word width w, view an
    array of d numbers as a (d·w)-bit array, run any bit Download protocol,
    and decode. This module is that extension, with cost accounting in
    {e word} units (⌈bit queries / w⌉), which is what the oracle-level
    comparisons of Theorems 4.1/4.2 charge. *)

type instance = {
  k : int;
  values : int array;  (** the source's d words *)
  width : int;  (** bits per word, 1..62 *)
  fault : Dr_adversary.Fault.t;
  model : Dr_core.Problem.fault_model;
  seed : int64;
}

val make :
  ?seed:int64 ->
  ?width:int ->
  ?model:Dr_core.Problem.fault_model ->
  k:int ->
  values:int array ->
  Dr_adversary.Fault.t ->
  instance
(** Defaults: [width = 32], [seed = 1L]. Raises [Invalid_argument] when a
    value does not fit the width. *)

type report = {
  ok : bool;  (** every nonfaulty peer decoded exactly [values] *)
  words_max : int;  (** per-peer word-query maximum (Q/w, rounded up) *)
  words_total : int;
  decoded : int array option;  (** the common output when [ok] *)
  bits : Dr_core.Problem.report;  (** the underlying bit-level report *)
}

val run :
  (module Dr_core.Exec.PROTOCOL) ->
  ?opts:Dr_core.Exec.opts ->
  instance ->
  report

val encode : width:int -> int array -> Dr_source.Bitarray.t
val decode : width:int -> Dr_source.Bitarray.t -> int array
(** Raise on width out of range / length mismatch / non-representable
    values. *)
