lib/oracle/word_download.ml: Array Dr_adversary Dr_core Dr_source Exec Problem
