lib/oracle/pipeline.mli: Dr_adversary Feed
