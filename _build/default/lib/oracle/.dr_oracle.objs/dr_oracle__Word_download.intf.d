lib/oracle/word_download.mli: Dr_adversary Dr_core Dr_source
