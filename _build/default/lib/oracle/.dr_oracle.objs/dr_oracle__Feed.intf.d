lib/oracle/feed.mli: Dr_source
