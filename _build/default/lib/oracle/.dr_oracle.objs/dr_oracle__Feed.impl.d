lib/oracle/feed.ml: Array Dr_engine Dr_source List
