lib/oracle/odc.mli: Format Pipeline
