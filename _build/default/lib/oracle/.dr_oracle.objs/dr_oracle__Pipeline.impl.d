lib/oracle/pipeline.ml: Aggregate Array Dr_adversary Dr_engine Feed Hashtbl
