lib/oracle/aggregate.mli:
