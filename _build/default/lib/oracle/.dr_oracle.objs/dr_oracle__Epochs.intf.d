lib/oracle/epochs.mli: Odc
