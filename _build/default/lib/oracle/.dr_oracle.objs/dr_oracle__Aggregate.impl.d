lib/oracle/aggregate.ml: Array List
