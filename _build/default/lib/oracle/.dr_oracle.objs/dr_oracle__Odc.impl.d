lib/oracle/odc.ml: Aggregate Array Byz_2cycle Committee Dr_adversary Dr_core Dr_engine Dr_source Exec Feed Format Fun Int64 List Naive Pipeline Problem
