lib/oracle/epochs.ml: Int64 List Odc Pipeline
