module Bitarray = Dr_source.Bitarray
module Prng = Dr_engine.Prng

type t = { values : int array array; faulty : bool array; d : int }

let value_bits = 32

let make ~sources ~faulty ~cells ?(base = fun c -> 1000 + (10 * c)) ?(jitter = 2) ~seed () =
  if sources <= 0 || cells <= 0 then invalid_arg "Feed.make";
  let is_faulty = Array.make sources false in
  List.iter
    (fun s ->
      if s < 0 || s >= sources then invalid_arg "Feed.make: bad faulty source id";
      is_faulty.(s) <- true)
    faulty;
  let prng = Prng.create seed in
  let values =
    Array.init sources (fun s ->
        Array.init cells (fun c ->
            if is_faulty.(s) then
              (* Far outside the honest window, alternating direction
                 (clamped non-negative: values are encoded as unsigned). *)
              max 0 (base c + ((if (s + c) mod 2 = 0 then 1 else -1) * (100_000 + Prng.int prng 50_000)))
            else begin
              let j = Prng.int prng ((2 * jitter) + 1) - jitter in
              base c + j
            end))
  in
  { values; faulty = is_faulty; d = cells }

let sources t = Array.length t.values
let cells t = t.d
let is_faulty_source t s = t.faulty.(s)
let value t ~source ~cell = t.values.(source).(cell)

let honest_range t ~cell =
  let lo = ref max_int and hi = ref min_int in
  Array.iteri
    (fun s vals ->
      if not t.faulty.(s) then begin
        if vals.(cell) < !lo then lo := vals.(cell);
        if vals.(cell) > !hi then hi := vals.(cell)
      end)
    t.values;
  if !lo > !hi then invalid_arg "Feed.honest_range: no honest source";
  (!lo, !hi)

let in_honest_range t ~cell v =
  let lo, hi = honest_range t ~cell in
  v >= lo && v <= hi

let encode_values vals =
  Bitarray.init
    (Array.length vals * value_bits)
    (fun i ->
      let cell = i / value_bits and bit = i mod value_bits in
      (vals.(cell) lsr bit) land 1 = 1)

let encode t ~source = encode_values t.values.(source)

let decode bits =
  let total = Bitarray.length bits in
  if total mod value_bits <> 0 then invalid_arg "Feed.decode: length not a multiple of value_bits";
  Array.init (total / value_bits) (fun cell ->
      let v = ref 0 in
      for bit = value_bits - 1 downto 0 do
        v := (!v lsl 1) lor (if Bitarray.get bits ((cell * value_bits) + bit) then 1 else 0)
      done;
      !v)
