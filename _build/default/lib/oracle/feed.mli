(** Off-chain data sources for the Oracle Data Delivery application
    (Section 4).

    A feed network holds m numeric data sources, each storing the same [d]
    cells (e.g. asset prices). Honest sources agree up to a bounded jitter;
    Byzantine sources store arbitrary out-of-range values. Sources are
    {e static}: querying the same cell twice gives the same answer — the
    restrictive assumption the paper states for its Download-based
    construction (dynamic data is left open there, and so it is here). *)

type t

val make :
  sources:int ->
  faulty:int list ->
  cells:int ->
  ?base:(int -> int) ->
  ?jitter:int ->
  seed:int64 ->
  unit ->
  t
(** Honest source values are [base cell ± jitter] (deterministic per
    (source, cell) from the seed); Byzantine sources hold values far outside
    the honest range. Defaults: [base c = 1000 + 10·c], [jitter = 2]. *)

val sources : t -> int
val cells : t -> int
val is_faulty_source : t -> int -> bool

val value : t -> source:int -> cell:int -> int
(** The (static) stored value; query counting is not done here but by the
    ODC processes. *)

val honest_range : t -> cell:int -> int * int
(** [(lo, hi)] over honest sources — the ODD correctness window. *)

val in_honest_range : t -> cell:int -> int -> bool

val value_bits : int
(** Width of one encoded cell (bits) when a source array is downloaded as a
    bit string. *)

val encode : t -> source:int -> Dr_source.Bitarray.t
(** The source's whole array as a [cells·value_bits]-bit string — the input
    X a Download instance runs against. *)

val decode : Dr_source.Bitarray.t -> int array
(** Inverse of {!encode}. *)
