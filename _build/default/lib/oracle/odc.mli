(** The Oracle Data Collection step (Section 4), both ways.

    [baseline] is the classical ODC process of OCR/DORA-style oracles: every
    one of the k oracle nodes independently queries all d cells of 2·ts+1
    sources and takes a per-cell median. Correct (each node's median is in
    the honest range) but expensive: k·(2·ts+1)·d cell queries in total.

    [download_based] is the paper's proposal: the k nodes pick the same
    2·ts+1 sources, run one Download instance per source so that {e every}
    honest node learns each source's full array at ~1/(γk) of the per-node
    cost, then take the same per-cell median. Total cost ≈ (2·ts+1)·d/γ cell
    queries — a ≈ γk-fold saving (Theorem 4.2), measured here.

    Both variants publish through the mock chain: every node submits its
    median array, Byzantine nodes submit garbage, and the contract takes a
    cell-wise median across nodes (sound while the Byzantine nodes are a
    minority of the oracle network). The report records whether the
    published array satisfies the ODD honest-range predicate. *)

type params = {
  peers : int;  (** k: oracle-network nodes *)
  peer_faults : int;  (** Byzantine oracle nodes (< peers/2) *)
  sources : int;  (** m: available data sources *)
  source_faults : int;  (** ts: Byzantine sources; 2·ts+1 <= m *)
  cells : int;  (** d: cells per source *)
  seed : int64;
}

val validate : params -> (unit, string) result

type report = {
  method_name : string;
  odd_ok : bool;  (** published array within the honest range, every cell *)
  honest_reports_ok : int;  (** honest nodes whose own median satisfies ODD *)
  cell_queries_total : int;  (** across all honest nodes, in cell units *)
  cell_queries_max_node : int;
  download_ok : bool;  (** download-based only: every per-source Download
                           of an honest source was exact on honest nodes *)
  published : int array;
}

val baseline : params -> report

type protocol = [ `Committee | `Two_cycle | `Naive ]

val download_based : ?protocol:protocol -> params -> report
(** [protocol] is the Download protocol run per source among the oracle
    nodes (default [`Committee], the deterministic choice). Bit queries are
    converted to cell units ([Feed.value_bits] bits per cell). *)

val pp_report : Format.formatter -> report -> unit

val full_flow :
  ?protocol:protocol -> params -> (report * Pipeline.outcome, string) result
(** The whole Section 4 pipeline end to end: Download-based collection
    (step 1), then the simulated asynchronous submission round and on-chain
    median (steps 2–3, see {!Pipeline}). Requires the publication
    precondition [peers > 3·peer_faults] on top of {!validate}. *)
