(** Multi-epoch oracle operation.

    A real oracle network publishes repeatedly: each epoch reads a fresh
    snapshot of the sources and pushes a value on-chain. The paper's static
    -source assumption holds {e within} one epoch (one Download instance);
    across epochs the data changes freely. This runner replays the full
    Section 4 flow (Download-based collection + asynchronous publication)
    once per epoch and accumulates the query bill against the classical
    baseline — the cumulative version of Theorem 4.2's saving. *)

type params = {
  base : Odc.params;  (** per-epoch parameters; [base.seed] seeds epoch 0 *)
  epochs : int;
}

type epoch_result = {
  epoch : int;
  collection_odd : bool;
  publication_odd : bool;
  cell_queries : int;  (** Download-based collection, total cells *)
  baseline_cell_queries : int;  (** what the classical step would have paid *)
}

type summary = {
  results : epoch_result list;
  all_ok : bool;  (** every epoch kept ODD through collection and publication *)
  total_queries : int;
  baseline_total : int;
  saving : float;  (** cumulative baseline/download query ratio *)
}

val run : ?protocol:Odc.protocol -> params -> (summary, string) result
(** Fails fast on invalid parameters (including the publication k > 3t
    precondition). *)
