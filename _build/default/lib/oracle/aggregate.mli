(** Value aggregation for the oracle pipeline. *)

val median : int array -> int
(** Lower median of a non-empty array (does not modify its argument).
    If more than half the inputs come from one honest cohort, the median
    lies inside that cohort's range — the property both ODC constructions
    lean on. *)

val cellwise_median : int array list -> int array
(** Median per cell over equal-length reports; raises on empty input or
    ragged lengths. *)
