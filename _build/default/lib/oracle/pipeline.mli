(** The publication step of the oracle flow, actually simulated.

    The paper abstracts the oracle pipeline as (1) collect, (2) agree,
    (3) publish, and only optimizes (1). This module runs a concrete
    asynchronous version of (2)+(3) on the simulator: every oracle node
    submits its report to an on-chain contract over the adversarial network;
    Byzantine nodes submit out-of-range garbage (and can be scheduled to
    arrive first); the contract, which cannot wait for everyone, accepts the
    first k−t submissions and publishes their cell-wise median.

    Asynchrony has a price here: among the first k−t submissions up to t can
    be Byzantine, so the median is guaranteed inside the honest range only
    when t < (k−t)/2, i.e. {b k > 3t} — stricter than the k > 2t that
    suffices for synchronous medians. [validate] enforces it and the test
    suite demonstrates the attack in the k ≤ 3t gap. *)

type outcome = {
  published : int array option;  (** [None] if the contract starved *)
  odd_ok : bool;  (** published ⊆ honest range, every cell *)
  submissions_used : int;
  time : float;
}

val validate : k:int -> t:int -> (unit, string) result

val publish :
  ?seed:int64 ->
  ?rushing:bool ->
  feed:Feed.t ->
  fault:Dr_adversary.Fault.t ->
  honest_report:(int -> int array) ->
  unit ->
  outcome
(** [publish ~feed ~fault ~honest_report ()] runs the submission round
    (without checking [validate] — so the k ≤ 3t attack can be exhibited).
    [rushing] (default [true]) delivers Byzantine submissions first — the
    adversary's best schedule. The report arrays must all have
    [Feed.cells feed] entries. *)
