module Bitarray = Dr_source.Bitarray
open Dr_core

type instance = {
  k : int;
  values : int array;
  width : int;
  fault : Dr_adversary.Fault.t;
  model : Problem.fault_model;
  seed : int64;
}

let check_width width =
  if width < 1 || width > 62 then invalid_arg "Word_download: width must be in 1..62"

let encode ~width values =
  check_width width;
  Array.iter
    (fun v ->
      if v < 0 || (width < 62 && v lsr width <> 0) then
        invalid_arg "Word_download.encode: value does not fit the width")
    values;
  Bitarray.init
    (Array.length values * width)
    (fun i -> (values.(i / width) lsr (i mod width)) land 1 = 1)

let decode ~width bits =
  check_width width;
  let total = Bitarray.length bits in
  if total mod width <> 0 then invalid_arg "Word_download.decode: length mismatch";
  Array.init (total / width) (fun w ->
      let v = ref 0 in
      for bit = width - 1 downto 0 do
        v := (!v lsl 1) lor (if Bitarray.get bits ((w * width) + bit) then 1 else 0)
      done;
      !v)

let make ?(seed = 1L) ?(width = 32) ?(model = Problem.Byzantine) ~k ~values fault =
  check_width width;
  ignore (encode ~width values);
  { k; values; width; fault; model; seed }

type report = {
  ok : bool;
  words_max : int;
  words_total : int;
  decoded : int array option;
  bits : Problem.report;
}

let run (module P : Exec.PROTOCOL) ?opts inst =
  let x = encode ~width:inst.width inst.values in
  let bit_inst =
    Problem.make ~seed:inst.seed ~model:inst.model ~k:inst.k ~x inst.fault
  in
  let bits = match opts with Some opts -> P.run ~opts bit_inst | None -> P.run bit_inst in
  let to_words q = (q + inst.width - 1) / inst.width in
  {
    ok = bits.Problem.ok;
    words_max = to_words bits.Problem.q_max;
    words_total = to_words bits.Problem.q_total;
    decoded = (if bits.Problem.ok then Some (decode ~width:inst.width x) else None);
    bits;
  }
