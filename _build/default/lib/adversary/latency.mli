(** Adversarial latency policies.

    In the asynchronous model the adversary assigns every message a finite
    delay. A policy is a pure-looking function of (link, send time, size);
    randomized policies draw from their own {!Dr_engine.Prng} stream so the
    rest of the execution stays reproducible. Delays are normalized: honest
    "slow" traffic takes up to 1 time unit, so measured T is in units of the
    maximum latency, as in the paper. *)

type fn = src:int -> dst:int -> time:float -> size_bits:int -> float
(** The shape expected by [Dr_engine.Sim.Make]'s [latency] field. *)

val unit_delay : fn
(** Every message takes exactly 1 — the synchronous-like schedule used for
    the Table 1 prior-work rows. *)

val constant : float -> fn

val uniform : Dr_engine.Prng.t -> lo:float -> hi:float -> fn
(** Independent uniform delay per message. *)

val targeted : slow:(int -> bool) -> delay:float -> fn
(** Messages {e from} designated peers take [delay] (a long but finite
    stall, e.g. past every honest termination time); all others take 1.
    This is the "delay the peers of D until v terminates" move of the
    lower-bound constructions. *)

val targeted_links : slow:(src:int -> dst:int -> bool) -> delay:float -> fn
(** Per-link variant. *)

val rushing : fast:(int -> bool) -> eps:float -> fn
(** Messages from [fast] peers (the Byzantine coalition) arrive after [eps],
    all honest messages after 1: the classic rushing adversary. *)

val jittered : Dr_engine.Prng.t -> fn
(** Uniform in [(0, 1]] — a benign asynchronous schedule. *)

val size_proportional : per_bit:float -> floor:float -> fn
(** [floor + per_bit·size]: models bandwidth so that packetization (message
    bound B) shows up in T. *)
