type t = int -> Dr_engine.Sim.crash_spec

let none _ = Dr_engine.Sim.Never

let at_times pairs peer =
  match List.assoc_opt peer pairs with
  | Some time -> Dr_engine.Sim.At_time time
  | None -> Dr_engine.Sim.Never

let all_at fault time peer =
  if Fault.is_faulty fault peer then Dr_engine.Sim.At_time time else Dr_engine.Sim.Never

let staggered fault ~first ~gap peer =
  if not (Fault.is_faulty fault peer) then Dr_engine.Sim.Never
  else begin
    let rank = ref 0 in
    List.iteri (fun i p -> if p = peer then rank := i) fault.Fault.faulty_ids;
    Dr_engine.Sim.At_time (first +. (float_of_int !rank *. gap))
  end

let mid_broadcast fault ~after_sends peer =
  if Fault.is_faulty fault peer then Dr_engine.Sim.After_sends (max after_sends 0)
  else Dr_engine.Sim.Never

let after_queries fault j peer =
  if Fault.is_faulty fault peer then Dr_engine.Sim.After_queries (max j 0)
  else Dr_engine.Sim.Never
