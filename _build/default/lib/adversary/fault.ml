type t = { k : int; faulty : bool array; faulty_ids : int list; t_count : int }

type selection =
  | None_faulty
  | First of int
  | Last of int
  | Spread of int
  | Random of int * Dr_engine.Prng.t
  | Explicit of int list

let of_ids ~k ids =
  let faulty = Array.make k false in
  List.iter
    (fun i ->
      if i < 0 || i >= k then invalid_arg "Fault.choose: peer id out of range";
      faulty.(i) <- true)
    ids;
  let faulty_ids =
    Array.to_list (Array.of_seq (Seq.filter (fun i -> faulty.(i)) (Seq.init k Fun.id)))
  in
  { k; faulty; faulty_ids; t_count = List.length faulty_ids }

let choose ~k selection =
  if k <= 0 then invalid_arg "Fault.choose: k must be positive";
  let need t = if t < 0 || t > k then invalid_arg "Fault.choose: bad fault count" in
  match selection with
  | None_faulty -> of_ids ~k []
  | First t ->
    need t;
    of_ids ~k (List.init t Fun.id)
  | Last t ->
    need t;
    of_ids ~k (List.init t (fun i -> k - 1 - i))
  | Spread t ->
    need t;
    if t = 0 then of_ids ~k []
    else of_ids ~k (List.init t (fun i -> i * k / t))
  | Random (t, prng) ->
    need t;
    let ids = Array.init k Fun.id in
    Dr_engine.Prng.shuffle prng ids;
    of_ids ~k (Array.to_list (Array.sub ids 0 t))
  | Explicit ids -> of_ids ~k ids

let is_faulty t i = t.faulty.(i)
let is_honest t i = not t.faulty.(i)
let honest_count t = t.k - t.t_count

let honest_ids t =
  List.filter (fun i -> not t.faulty.(i)) (List.init t.k Fun.id)

let beta t = float_of_int t.t_count /. float_of_int t.k
let gamma t = 1. -. beta t

let pp ppf t =
  Format.fprintf ppf "k=%d t=%d faulty=[%s]" t.k t.t_count
    (String.concat "," (List.map string_of_int t.faulty_ids))
