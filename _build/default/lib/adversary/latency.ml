type fn = src:int -> dst:int -> time:float -> size_bits:int -> float

let unit_delay ~src:_ ~dst:_ ~time:_ ~size_bits:_ = 1.
let constant d ~src:_ ~dst:_ ~time:_ ~size_bits:_ = d

let uniform prng ~lo ~hi ~src:_ ~dst:_ ~time:_ ~size_bits:_ =
  lo +. Dr_engine.Prng.float prng (hi -. lo)

let targeted ~slow ~delay ~src ~dst:_ ~time:_ ~size_bits:_ = if slow src then delay else 1.

let targeted_links ~slow ~delay ~src ~dst ~time:_ ~size_bits:_ =
  if slow ~src ~dst then delay else 1.

let rushing ~fast ~eps ~src ~dst:_ ~time:_ ~size_bits:_ = if fast src then eps else 1.

let jittered prng ~src:_ ~dst:_ ~time:_ ~size_bits:_ =
  let x = Dr_engine.Prng.float prng 1. in
  if x <= 0. then 1e-9 else x

let size_proportional ~per_bit ~floor ~src:_ ~dst:_ ~time:_ ~size_bits =
  floor +. (per_bit *. float_of_int size_bits)
