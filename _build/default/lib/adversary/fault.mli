(** Fault-set selection and the honest/faulty partition of an execution.

    The adversary fixes the set of (up to) [t = β·k] faulty peers before the
    execution. All protocol code and all summaries take the partition from
    here, so the honesty predicate is defined in exactly one place. *)

type t = private {
  k : int;
  faulty : bool array;  (** length [k] *)
  faulty_ids : int list;  (** ascending *)
  t_count : int;  (** [List.length faulty_ids] *)
}

type selection =
  | None_faulty
  | First of int  (** peers [0 .. t-1] *)
  | Last of int  (** peers [k-t .. k-1] *)
  | Spread of int  (** every ⌈k/t⌉-th peer — breaks contiguity assumptions *)
  | Random of int * Dr_engine.Prng.t
  | Explicit of int list

val choose : k:int -> selection -> t
(** Raises [Invalid_argument] if the requested count exceeds [k] or an
    explicit ID is out of range. *)

val is_faulty : t -> int -> bool
val is_honest : t -> int -> bool
val honest_count : t -> int
val honest_ids : t -> int list
val beta : t -> float
(** Actual fault fraction [t/k]. *)

val gamma : t -> float
(** Honest fraction [1 - t/k]. *)

val pp : Format.formatter -> t -> unit
