lib/adversary/fault.ml: Array Dr_engine Format Fun List Seq String
