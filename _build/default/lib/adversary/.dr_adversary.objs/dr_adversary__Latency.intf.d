lib/adversary/latency.mli: Dr_engine
