lib/adversary/latency.ml: Dr_engine
