lib/adversary/crash_plan.ml: Dr_engine Fault List
