lib/adversary/fault.mli: Dr_engine Format
