lib/adversary/crash_plan.mli: Dr_engine Fault
