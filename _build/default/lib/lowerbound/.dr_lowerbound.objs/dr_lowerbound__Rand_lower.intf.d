lib/lowerbound/rand_lower.mli: Dr_core
