lib/lowerbound/det_lower.ml: Dr_adversary Dr_core Dr_engine Dr_source Exec Fun List Problem
