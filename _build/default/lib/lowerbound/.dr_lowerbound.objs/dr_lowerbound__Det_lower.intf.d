lib/lowerbound/det_lower.mli: Dr_core
