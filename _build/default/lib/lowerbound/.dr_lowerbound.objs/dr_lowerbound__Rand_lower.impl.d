lib/lowerbound/rand_lower.ml: Dr_adversary Dr_core Dr_engine Dr_source Exec Fun Int64 List Problem
