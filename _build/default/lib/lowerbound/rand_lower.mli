(** Theorem 3.2, measured: for β ≥ 1/2 even randomized protocols need
    queries linear in the unqueried mass.

    The mirror adversary of the proof, run over many seeds: corrupt
    C = V∖F∖{v}, have them simulate an all-zeros source, delay the honest F
    past the victim's horizon, and flip one hidden bit of the real input.
    The victim survives only when its own random queries happen to touch the
    hidden bit, so over the adversary's choice of bit

        P[failure] ≥ 1 − q/n        (q = victim's per-run query count)

    — the theorem's Cauchy–Schwarz bound in empirical form. The harness
    measures the failure rate and reports it next to that prediction. *)

type result = {
  runs : int;
  failures : int;  (** runs where the victim output the wrong array *)
  failure_rate : float;
  victim_hit_rate : float;  (** runs where the victim queried the hidden bit *)
  q_mean : float;  (** victim's mean queries per run *)
  predicted_failure_floor : float;  (** 1 − q_mean/n *)
  n : int;
}

type runner = ?opts:Dr_core.Exec.opts -> Dr_core.Problem.instance -> Dr_core.Problem.report

val attack :
  run:runner ->
  ?victim:int ->
  ?f_count:int ->
  ?hidden:[ `Uniform | `Fixed of int ] ->
  k:int ->
  n:int ->
  seeds:int64 list ->
  unit ->
  result
(** Runs one mirror execution per seed. [f_count] honest-but-slow peers
    (default ⌊(k−1)/2⌋, which makes the corrupted set a majority-β coalition);
    the hidden bit is drawn per-seed ([`Uniform] default). *)
