(** Theorem 3.1 as an executable construction: for β ≥ 1/2, any deterministic
    Download protocol that leaves even one bit unqueried can be made to
    output wrongly.

    The construction follows the appendix proof exactly.

    - Execution E₁ ("[ξ_F]"): input all zeros, the f peers of F crash before
      sending anything. The protocol must terminate (else it is F-vulnerable,
      already a failure); pick an honest victim v and a bit i it never
      queried.
    - Execution E₂ ("[ξ'_F]"): real input = zeros with bit i flipped. The
      adversary corrupts C = V∖F∖{v} (legal because |C| ≤ t once β ≥ 1/2) and
      has them run the honest protocol against a {e simulated} all-zeros
      source, while every message from the honest-but-slow F is delayed past
      v's E₁ termination time.

    From v's seat the two executions are identical — same deliveries, same
    query answers — so v terminates with the E₁ output and is wrong at bit i.
    The returned record carries the machine-checked evidence: v's message
    views in both executions, the verdicts, and the hidden bit. *)

type evidence = {
  victim : int;
  hidden_bit : int;
  faulty_f : int list;  (** F: crashed in E₁, slowed in E₂ *)
  corrupted : int list;  (** C = V∖F∖{v}: Byzantine simulators in E₂ *)
  e1 : Dr_core.Problem.report;
  e1_victim_queries : int;  (** < n, or the construction cannot start *)
  e2 : Dr_core.Problem.report;
  victim_fooled : bool;  (** v's E₂ output is wrong — the theorem's claim *)
  views_identical : bool;
      (** v received exactly the same (time, sender, message) sequence in
          both executions: the indistinguishability argument, checked *)
}

type runner = ?opts:Dr_core.Exec.opts -> Dr_core.Problem.instance -> Dr_core.Problem.report
(** Any deterministic protocol exposed in the library's standard shape. *)

val demonstrate :
  run:runner ->
  ?victim:int ->
  ?f_set:int list ->
  ?seed:int64 ->
  ?b:int ->
  k:int ->
  n:int ->
  unit ->
  (evidence, string) result
(** Builds both executions against the given protocol. Defaults:
    [victim = 0], [F] = the last ⌊k/2⌋ peers. Returns [Error] if the
    protocol queries everything (naive — the lower bound is then tight) or
    fails to terminate in E₁. *)
