(* Tests for the general-retrieval reduction (f(X) = download + local
   computation) and extra engine coverage for link serialization. *)

open Dr_core
module Bitarray = Dr_source.Bitarray
module Crash_plan = Dr_adversary.Crash_plan

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let ba = Bitarray.of_string

(* ------------------------------------------------------------------ *)
(* Retrieval functions on known arrays                                 *)
(* ------------------------------------------------------------------ *)

let test_parity () =
  checkb "odd" true (Retrieve.parity.Retrieve.compute (ba "10110"));
  checkb "even" false (Retrieve.parity.Retrieve.compute (ba "110011"))

let test_popcount () =
  checki "count" 3 (Retrieve.popcount.Retrieve.compute (ba "010110"))

let test_find_first () =
  checkb "first one" true ((Retrieve.find_first true).Retrieve.compute (ba "00100") = Some 2);
  checkb "first zero" true ((Retrieve.find_first false).Retrieve.compute (ba "110") = Some 2);
  checkb "absent" true ((Retrieve.find_first true).Retrieve.compute (ba "000") = None)

let test_all_equal () =
  checkb "zeros" true (Retrieve.all_equal.Retrieve.compute (ba "0000"));
  checkb "ones" true (Retrieve.all_equal.Retrieve.compute (ba "111"));
  checkb "mixed" false (Retrieve.all_equal.Retrieve.compute (ba "0100"))

let test_longest_run () =
  checki "run" 4 (Retrieve.longest_run.Retrieve.compute (ba "1011110"));
  checki "single" 1 (Retrieve.longest_run.Retrieve.compute (ba "0"));
  checki "alternating" 1 (Retrieve.longest_run.Retrieve.compute (ba "010101"))

let test_slice () =
  let p = Retrieve.slice ~pos:2 ~len:3 in
  checkb "slice" true (Bitarray.equal (p.Retrieve.compute (ba "0011010")) (ba "110"))

(* ------------------------------------------------------------------ *)
(* The reduction end-to-end                                            *)
(* ------------------------------------------------------------------ *)

let test_solve_via_crash_protocol () =
  let inst = Problem.random_instance ~seed:5L ~k:8 ~n:200 ~t:3 () in
  let opts = Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:1) Exec.default in
  let check_problem name problem =
    let r = Retrieve.solve (module Crash_general) ~opts inst problem in
    checkb (name ^ " download ok") true r.Retrieve.download.Problem.ok;
    checkb (name ^ " value correct") true (Retrieve.check problem inst r)
  in
  check_problem "parity" Retrieve.parity;
  check_problem "popcount" Retrieve.popcount;
  check_problem "longest-run" Retrieve.longest_run;
  check_problem "all-equal" Retrieve.all_equal

let test_solve_via_byzantine_protocol () =
  let inst = Problem.random_instance ~seed:6L ~model:Problem.Byzantine ~k:9 ~n:120 ~t:4 () in
  let r = Retrieve.solve (module Committee) inst Retrieve.popcount in
  checkb "value present" true (r.Retrieve.value <> None);
  checkb "correct" true (Retrieve.check Retrieve.popcount inst r)

let test_solve_failure_yields_no_value () =
  (* Balanced deadlocks under a crash: the reduction must report no value. *)
  let inst = Problem.random_instance ~seed:7L ~k:6 ~n:60 ~t:1 () in
  let opts = Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:0) Exec.default in
  let r = Retrieve.solve (module Balanced) ~opts inst Retrieve.parity in
  checkb "no value" true (r.Retrieve.value = None);
  checkb "check false" false (Retrieve.check Retrieve.parity inst r)

(* ------------------------------------------------------------------ *)
(* Engine: link serialization                                          *)
(* ------------------------------------------------------------------ *)

module Smsg = struct
  type t = Big of int | Small

  let size_bits = function Big _ -> 1000 | Small -> 10
  let tag = function Big _ -> "big" | Small -> "small"
end

module S = Dr_engine.Sim.Make (Smsg)

let test_link_serialization_fifo () =
  (* A big message followed by a small one on the same link: the small one
     queues behind it (FIFO), arriving at transmission(big) +
     transmission(small) + propagation. *)
  let cfg =
    {
      (Dr_engine.Sim.default_config ~k:2 ~query_bit:(fun ~peer:_ _ -> false)) with
      link_rate = 100.;
      latency = (fun ~src:_ ~dst:_ ~time:_ ~size_bits:_ -> 0.5);
    }
  in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          S.send 1 (Smsg.Big 1);
          S.send 1 Smsg.Small;
          0.
        end
        else begin
          let _ = S.receive () in
          let t_big = S.now () in
          let _ = S.receive () in
          let t_small = S.now () in
          (t_big *. 1000.) +. t_small
        end)
  in
  match outcome.Dr_engine.Sim.outputs.(1) with
  | Some (_, v) ->
    let t_big = Float.of_int (int_of_float (v /. 1000.)) in
    ignore t_big;
    (* big: 1000/100 + 0.5 = 10.5; small: 10 + 0.1 + 0.5 = 10.6 *)
    Alcotest.(check (float 0.001)) "big then queued small" (10500. +. 10.6) v
  | None -> Alcotest.fail "no output"

let test_link_serialization_links_independent () =
  (* Two different destinations do not queue behind each other. *)
  let cfg =
    {
      (Dr_engine.Sim.default_config ~k:3 ~query_bit:(fun ~peer:_ _ -> false)) with
      link_rate = 100.;
      latency = (fun ~src:_ ~dst:_ ~time:_ ~size_bits:_ -> 0.);
    }
  in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          S.send 1 (Smsg.Big 1);
          S.send 2 (Smsg.Big 2);
          0.
        end
        else begin
          let _ = S.receive () in
          S.now ()
        end)
  in
  (match outcome.Dr_engine.Sim.outputs.(1) with
  | Some (_, t) -> Alcotest.(check (float 0.001)) "dst 1 at 10" 10. t
  | None -> Alcotest.fail "no output 1");
  match outcome.Dr_engine.Sim.outputs.(2) with
  | Some (_, t) -> Alcotest.(check (float 0.001)) "dst 2 also at 10 (parallel links)" 10. t
  | None -> Alcotest.fail "no output 2"

let test_link_rate_infinite_is_default () =
  let cfg = Dr_engine.Sim.default_config ~k:2 ~query_bit:(fun ~peer:_ _ -> false) in
  let outcome =
    S.run cfg (fun i ->
        if i = 0 then begin
          S.send 1 (Smsg.Big 1);
          S.send 1 (Smsg.Big 2);
          0.
        end
        else begin
          let _ = S.receive () in
          let _ = S.receive () in
          S.now ()
        end)
  in
  match outcome.Dr_engine.Sim.outputs.(1) with
  | Some (_, t) -> Alcotest.(check (float 0.001)) "no serialization" 1. t
  | None -> Alcotest.fail "no output"

let suite =
  [
    ("retrieve: parity", `Quick, test_parity);
    ("retrieve: popcount", `Quick, test_popcount);
    ("retrieve: find-first", `Quick, test_find_first);
    ("retrieve: all-equal", `Quick, test_all_equal);
    ("retrieve: longest-run", `Quick, test_longest_run);
    ("retrieve: slice", `Quick, test_slice);
    ("retrieve: via crash protocol", `Quick, test_solve_via_crash_protocol);
    ("retrieve: via byzantine protocol", `Quick, test_solve_via_byzantine_protocol);
    ("retrieve: failed download yields no value", `Quick, test_solve_failure_yields_no_value);
    ("engine: link FIFO serialization", `Quick, test_link_serialization_fifo);
    ("engine: links independent", `Quick, test_link_serialization_links_independent);
    ("engine: infinite rate default", `Quick, test_link_rate_infinite_is_default);
  ]
