(* Tests for the word-valued Download adapter and the simulated on-chain
   publication pipeline. *)

module Word = Dr_oracle.Word_download
module Pipeline = Dr_oracle.Pipeline
module Feed = Dr_oracle.Feed
module Fault = Dr_adversary.Fault
open Dr_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Word download                                                       *)
(* ------------------------------------------------------------------ *)

let test_word_encode_decode_roundtrip () =
  List.iter
    (fun (width, values) ->
      let bits = Word.encode ~width values in
      checki "bit length" (width * Array.length values) (Dr_source.Bitarray.length bits);
      Alcotest.(check (array int)) "roundtrip" values (Word.decode ~width bits))
    [
      (8, [| 0; 255; 17; 128 |]);
      (16, [| 65535; 1; 0 |]);
      (32, [| 1_000_000; 0; 42 |]);
      (1, [| 1; 0; 1; 1 |]);
      (62, [| max_int / 4 |]);
    ]

let test_word_encode_rejects_overflow () =
  Alcotest.check_raises "too big" (Invalid_argument "Word_download.encode: value does not fit the width")
    (fun () -> ignore (Word.encode ~width:8 [| 256 |]));
  Alcotest.check_raises "negative" (Invalid_argument "Word_download.encode: value does not fit the width")
    (fun () -> ignore (Word.encode ~width:8 [| -1 |]))

let test_word_download_via_committee () =
  let k = 9 and t = 4 in
  let fault = Fault.choose ~k (Fault.Spread t) in
  let values = Array.init 40 (fun i -> 1000 + (i * i)) in
  let inst = Word.make ~seed:3L ~width:16 ~k ~values fault in
  let r = Word.run (module Committee) inst in
  checkb "ok" true r.Word.ok;
  (match r.Word.decoded with
  | Some d -> Alcotest.(check (array int)) "decoded values" values d
  | None -> Alcotest.fail "no decode");
  (* Word accounting: 40 words of 16 bits = 640 bits; committee charges
     (2t+1)/k of them per peer. *)
  checkb "word queries sane" true (r.Word.words_max >= 1 && r.Word.words_max <= 40);
  checkb "bit report consistent" true
    (r.Word.words_max = (r.Word.bits.Problem.q_max + 15) / 16)

let test_word_download_crash_model () =
  let k = 6 and t = 2 in
  let fault = Fault.choose ~k (Fault.Spread t) in
  let values = Array.init 30 (fun i -> i * 7) in
  let inst = Word.make ~seed:5L ~width:8 ~model:Problem.Crash ~k ~values fault in
  let opts =
    Exec.with_crash (Dr_adversary.Crash_plan.mid_broadcast fault ~after_sends:1) Exec.default
  in
  let r = Word.run (module Crash_general) ~opts inst in
  checkb "ok under crashes" true r.Word.ok

(* ------------------------------------------------------------------ *)
(* Publication pipeline                                                *)
(* ------------------------------------------------------------------ *)

let mk_feed ?(cells = 16) ?(faulty = [ 4 ]) () =
  Feed.make ~sources:5 ~faulty ~cells ~seed:2L ()

let honest_report_of feed fault =
  (* Every honest node reports the median over all honest sources — any
     in-range report works for the pipeline's purposes. *)
  ignore fault;
  fun _node ->
    Array.init (Feed.cells feed) (fun c ->
        let lo, hi = Feed.honest_range feed ~cell:c in
        (lo + hi) / 2)

let test_pipeline_validate () =
  checkb "k=10,t=3 ok" true (Pipeline.validate ~k:10 ~t:3 = Ok ());
  checkb "k=9,t=3 rejected" true
    (match Pipeline.validate ~k:9 ~t:3 with Error _ -> true | Ok () -> false);
  checkb "t>=k rejected" true
    (match Pipeline.validate ~k:3 ~t:3 with Error _ -> true | Ok () -> false)

let test_pipeline_publishes_in_range () =
  let feed = mk_feed () in
  let fault = Fault.choose ~k:10 (Fault.Spread 3) in
  let r = Pipeline.publish ~feed ~fault ~honest_report:(honest_report_of feed fault) () in
  checkb "published" true (r.Pipeline.published <> None);
  checkb "in honest range (k > 3t)" true r.Pipeline.odd_ok;
  checki "used k - t submissions" 7 r.Pipeline.submissions_used

let test_pipeline_no_faults () =
  let feed = mk_feed () in
  let fault = Fault.choose ~k:4 Fault.None_faulty in
  let r = Pipeline.publish ~feed ~fault ~honest_report:(honest_report_of feed fault) () in
  checkb "odd ok" true r.Pipeline.odd_ok

let test_pipeline_attack_in_the_gap () =
  (* 2t < k <= 3t: a rushing Byzantine coalition fills half of the first
     k - t submissions and drags the median out of range. *)
  let feed = mk_feed () in
  let fault = Fault.choose ~k:8 (Fault.First 3) in
  let r = Pipeline.publish ~feed ~fault ~honest_report:(honest_report_of feed fault) () in
  checkb "still publishes" true (r.Pipeline.published <> None);
  checkb "but out of honest range" false r.Pipeline.odd_ok

let test_pipeline_gap_without_rushing_can_survive () =
  (* Same k <= 3t configuration, benign schedule: honest submissions win
     races often enough — the violation is adversarial, not inherent. *)
  let feed = mk_feed () in
  let fault = Fault.choose ~k:8 (Fault.Last 3) in
  let survived = ref 0 in
  for seed = 1 to 8 do
    let r =
      Pipeline.publish ~seed:(Int64.of_int seed) ~rushing:false ~feed ~fault
        ~honest_report:(honest_report_of feed fault) ()
    in
    if r.Pipeline.odd_ok then incr survived
  done;
  checkb "some benign runs survive" true (!survived > 0)

let test_pipeline_deterministic () =
  let feed = mk_feed () in
  let fault = Fault.choose ~k:10 (Fault.Spread 3) in
  let go () = Pipeline.publish ~feed ~fault ~honest_report:(honest_report_of feed fault) () in
  let a = go () and b = go () in
  checkb "same verdict" true (a.Pipeline.odd_ok = b.Pipeline.odd_ok);
  checkb "same time" true (a.Pipeline.time = b.Pipeline.time)

let test_full_flow_end_to_end () =
  let p =
    { Dr_oracle.Odc.peers = 13; peer_faults = 3; sources = 7; source_faults = 2; cells = 24;
      seed = 4L }
  in
  match Dr_oracle.Odc.full_flow p with
  | Error e -> Alcotest.failf "full flow rejected: %s" e
  | Ok (collection, publication) ->
    checkb "collection ODD" true collection.Dr_oracle.Odc.odd_ok;
    checkb "collection exact" true collection.Dr_oracle.Odc.download_ok;
    checkb "publication ODD" true publication.Pipeline.odd_ok;
    checki "k - t submissions" 10 publication.Pipeline.submissions_used

let test_full_flow_rejects_k_3t () =
  let p =
    { Dr_oracle.Odc.peers = 9; peer_faults = 3; sources = 7; source_faults = 2; cells = 8;
      seed = 4L }
  in
  checkb "k <= 3t rejected" true
    (match Dr_oracle.Odc.full_flow p with Error _ -> true | Ok _ -> false)

let test_epochs_accumulate () =
  let base =
    { Dr_oracle.Odc.peers = 13; peer_faults = 3; sources = 7; source_faults = 2; cells = 16;
      seed = 6L }
  in
  match Dr_oracle.Epochs.run { Dr_oracle.Epochs.base; epochs = 4 } with
  | Error e -> Alcotest.failf "epochs rejected: %s" e
  | Ok s ->
    checki "four epochs" 4 (List.length s.Dr_oracle.Epochs.results);
    checkb "all epochs ok" true s.Dr_oracle.Epochs.all_ok;
    checkb "cumulative saving > 1" true (s.Dr_oracle.Epochs.saving > 1.);
    checkb "totals add up" true
      (s.Dr_oracle.Epochs.total_queries
      = List.fold_left (fun acc r -> acc + r.Dr_oracle.Epochs.cell_queries) 0
          s.Dr_oracle.Epochs.results)

let test_epochs_validation () =
  let base =
    { Dr_oracle.Odc.peers = 9; peer_faults = 3; sources = 7; source_faults = 2; cells = 8;
      seed = 6L }
  in
  checkb "k <= 3t rejected" true
    (match Dr_oracle.Epochs.run { Dr_oracle.Epochs.base; epochs = 2 } with
    | Error _ -> true
    | Ok _ -> false);
  let good = { base with Dr_oracle.Odc.peers = 13 } in
  checkb "zero epochs rejected" true
    (match Dr_oracle.Epochs.run { Dr_oracle.Epochs.base = good; epochs = 0 } with
    | Error _ -> true
    | Ok _ -> false)

let suite =
  [
    ("word: encode/decode roundtrip", `Quick, test_word_encode_decode_roundtrip);
    ("word: rejects overflow", `Quick, test_word_encode_rejects_overflow);
    ("word: download via committee", `Quick, test_word_download_via_committee);
    ("word: download under crashes", `Quick, test_word_download_crash_model);
    ("pipeline: validate k > 3t", `Quick, test_pipeline_validate);
    ("pipeline: publishes in range", `Quick, test_pipeline_publishes_in_range);
    ("pipeline: no faults", `Quick, test_pipeline_no_faults);
    ("pipeline: attack in the 2t<k<=3t gap", `Quick, test_pipeline_attack_in_the_gap);
    ("pipeline: benign schedule can survive the gap", `Quick, test_pipeline_gap_without_rushing_can_survive);
    ("pipeline: deterministic", `Quick, test_pipeline_deterministic);
    ("full flow: end to end", `Quick, test_full_flow_end_to_end);
    ("full flow: rejects k <= 3t", `Quick, test_full_flow_rejects_k_3t);
    ("epochs: accumulate savings", `Quick, test_epochs_accumulate);
    ("epochs: validation", `Quick, test_epochs_validation);
  ]
