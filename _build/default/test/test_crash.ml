(* Tests for the crash-fault Download protocols: naive, balanced,
   Algorithm 1 (single crash) and Algorithm 2 (any number of crashes). *)

open Dr_core
module Bitarray = Dr_source.Bitarray
module Fault = Dr_adversary.Fault
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instance ?seed ?b ~k ~n ~t () = Problem.random_instance ?seed ?b ~k ~n ~t ()

let assert_ok name report =
  if not report.Problem.ok then
    Alcotest.failf "%s: expected success, got %a" name Problem.pp_report report

let jitter seed = Latency.jittered (Dr_engine.Prng.create seed)

(* ------------------------------------------------------------------ *)
(* Naive                                                              *)
(* ------------------------------------------------------------------ *)

let test_naive_correct () =
  let inst = instance ~k:5 ~n:100 ~t:0 () in
  let r = Naive.run inst in
  assert_ok "naive" r;
  checki "Q = n" 100 r.Problem.q_max;
  checki "no messages" 0 r.Problem.msgs

let test_naive_survives_byzantine_majority () =
  (* Naive ignores the network entirely, so any fault pattern is fine. *)
  let inst = instance ~k:6 ~n:64 ~t:4 () in
  let inst = { inst with Problem.model = Problem.Byzantine } in
  assert_ok "naive byz" (Naive.run inst)

let test_naive_survives_crashes () =
  let inst = instance ~k:4 ~n:32 ~t:2 () in
  let opts = Exec.(with_crash (Crash_plan.all_at inst.Problem.fault 0.0) default) in
  let r = Naive.run ~opts inst in
  assert_ok "naive with crashes" r

(* ------------------------------------------------------------------ *)
(* Balanced (fault-free)                                              *)
(* ------------------------------------------------------------------ *)

let test_balanced_correct () =
  let inst = instance ~k:8 ~n:256 ~t:0 () in
  let r = Balanced.run inst in
  assert_ok "balanced" r;
  checki "Q = n/k" 32 r.Problem.q_max

let test_balanced_unbalanced_sizes () =
  (* n not divisible by k. *)
  let inst = instance ~k:7 ~n:100 ~t:0 () in
  let r = Balanced.run inst in
  assert_ok "balanced uneven" r;
  checkb "Q <= ceil(n/k)" true (r.Problem.q_max <= 15)

let test_balanced_more_peers_than_bits () =
  let inst = instance ~k:10 ~n:4 ~t:0 () in
  assert_ok "k > n" (Balanced.run inst)

let test_balanced_single_peer () =
  let inst = instance ~k:1 ~n:16 ~t:0 () in
  let r = Balanced.run inst in
  assert_ok "k = 1" r;
  checki "queries all" 16 r.Problem.q_max

let test_balanced_jittered_latency () =
  let inst = instance ~k:6 ~n:120 ~t:0 () in
  let opts = Exec.(with_latency (jitter 3L) default) in
  assert_ok "balanced under jitter" (Balanced.run ~opts inst)

let test_balanced_small_b_packetizes () =
  let inst = instance ~k:4 ~n:64 ~b:80 ~t:0 () in
  let r = Balanced.run inst in
  assert_ok "packetized" r;
  checkb "respects B" true (r.Problem.max_msg_bits <= 80)

let test_balanced_dies_on_crash () =
  (* Motivation test: balanced deadlocks under a single crash. *)
  let inst = instance ~k:4 ~n:32 ~t:1 () in
  let inst = { inst with Problem.fault = Fault.choose ~k:4 (Fault.Explicit [ 2 ]) } in
  let opts =
    Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:0) default)
  in
  let r = Balanced.run ~opts inst in
  checkb "not ok" false r.Problem.ok;
  checkb "deadlocked" true
    (match r.Problem.status with Dr_engine.Sim.Deadlock _ -> true | _ -> false)

let test_balanced_supports () =
  checkb "rejects t>0" true
    (match Balanced.supports (instance ~k:4 ~n:16 ~t:1 ()) with Error _ -> true | Ok () -> false)

(* ------------------------------------------------------------------ *)
(* Crash-single (Algorithm 1)                                          *)
(* ------------------------------------------------------------------ *)

let test_crash_single_no_crash () =
  let inst = instance ~k:6 ~n:120 ~t:1 () in
  let r = Crash_single.run inst in
  assert_ok "no actual crash" r

let test_crash_single_silent_peer () =
  (* The faulty peer crashes before sending anything. *)
  let inst = instance ~k:6 ~n:120 ~t:1 () in
  let opts = Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:0) default) in
  let r = Crash_single.run ~opts inst in
  assert_ok "silent crash" r

let test_crash_single_partial_broadcast () =
  (* The faulty peer dies mid-broadcast: some peers heard it, some did not —
     the asymmetric case stages 2 and 3 exist for. *)
  for after_sends = 1 to 4 do
    let inst = instance ~k:6 ~n:120 ~t:1 () in
    let opts =
      Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends) default)
    in
    let r = Crash_single.run ~opts inst in
    assert_ok (Printf.sprintf "partial broadcast (%d sends)" after_sends) r
  done

let test_crash_single_late_crash () =
  (* Crash after the whole phase 1 share went out. *)
  let inst = instance ~k:5 ~n:100 ~t:1 () in
  let opts = Exec.(with_crash (Crash_plan.all_at inst.Problem.fault 1.5) default) in
  assert_ok "late crash" (Crash_single.run ~opts inst)

let test_crash_single_each_victim () =
  (* Whichever peer crashes, the others still download. *)
  for victim = 0 to 4 do
    let fault = Fault.choose ~k:5 (Fault.Explicit [ victim ]) in
    let x = Bitarray.random (Dr_engine.Prng.create 31L) 60 in
    let inst = Problem.make ~k:5 ~x fault in
    let opts = Exec.(with_crash (Crash_plan.mid_broadcast fault ~after_sends:2) default) in
    assert_ok (Printf.sprintf "victim %d" victim) (Crash_single.run ~opts inst)
  done

let test_crash_single_query_bound () =
  (* Q <= ceil(n/k) + ceil(n/k / (k-1)) + slack. *)
  let k = 8 and n = 800 in
  let inst = instance ~k ~n ~t:1 () in
  let opts = Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:3) default) in
  let r = Crash_single.run ~opts inst in
  assert_ok "bound run" r;
  let bound = ((n + k - 1) / k) + ((n / k / (k - 1)) + 2) in
  checkb (Printf.sprintf "Q=%d <= %d" r.Problem.q_max bound) true (r.Problem.q_max <= bound)

let test_crash_single_no_fault_query_optimal () =
  let k = 10 and n = 1000 in
  let inst = instance ~k ~n ~t:0 () in
  let r = Crash_single.run inst in
  assert_ok "fault-free" r;
  checki "Q = n/k exactly" (n / k) r.Problem.q_max

let test_crash_single_jitter_sweep () =
  (* Random asynchrony x crash timing sweep. *)
  List.iter
    (fun seed ->
      let inst = instance ~seed ~k:5 ~n:50 ~t:1 () in
      let opts =
        Exec.default
        |> Exec.with_latency (jitter seed)
        |> Exec.with_crash (Crash_plan.all_at inst.Problem.fault 1.1)
      in
      assert_ok (Printf.sprintf "jitter seed %Ld" seed) (Crash_single.run ~opts inst))
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ]

let test_crash_single_slow_victim_not_crashed () =
  (* The "faulty" peer never actually crashes, it is just extremely slow:
     peers must not block on it, but its data eventually helps. *)
  let inst = instance ~k:5 ~n:100 ~t:1 () in
  let slow i = Fault.is_faulty inst.Problem.fault i in
  let opts = Exec.(with_latency (Latency.targeted ~slow ~delay:500.) default) in
  let r = Crash_single.run ~opts inst in
  assert_ok "slow peer" r

let test_crash_single_two_peers () =
  let inst = instance ~k:2 ~n:10 ~t:1 () in
  let opts = Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:0) default) in
  let r = Crash_single.run ~opts inst in
  assert_ok "k=2" r;
  (* The survivor must fetch everything itself. *)
  checki "survivor queries all" 10 r.Problem.q_max

let test_crash_single_supports () =
  checkb "rejects t=2" true
    (match Crash_single.supports (instance ~k:6 ~n:16 ~t:2 ()) with
    | Error _ -> true
    | Ok () -> false);
  checkb "accepts t=1" true
    (match Crash_single.supports (instance ~k:6 ~n:16 ~t:1 ()) with
    | Ok () -> true
    | Error _ -> false)

let suite =
  [
    ("naive correct", `Quick, test_naive_correct);
    ("naive under byzantine majority", `Quick, test_naive_survives_byzantine_majority);
    ("naive under crashes", `Quick, test_naive_survives_crashes);
    ("balanced correct", `Quick, test_balanced_correct);
    ("balanced uneven split", `Quick, test_balanced_unbalanced_sizes);
    ("balanced k > n", `Quick, test_balanced_more_peers_than_bits);
    ("balanced k = 1", `Quick, test_balanced_single_peer);
    ("balanced under jitter", `Quick, test_balanced_jittered_latency);
    ("balanced packetizes", `Quick, test_balanced_small_b_packetizes);
    ("balanced dies on crash (motivation)", `Quick, test_balanced_dies_on_crash);
    ("balanced supports", `Quick, test_balanced_supports);
    ("crash-single: no crash", `Quick, test_crash_single_no_crash);
    ("crash-single: silent peer", `Quick, test_crash_single_silent_peer);
    ("crash-single: partial broadcast", `Quick, test_crash_single_partial_broadcast);
    ("crash-single: late crash", `Quick, test_crash_single_late_crash);
    ("crash-single: every victim", `Quick, test_crash_single_each_victim);
    ("crash-single: query bound", `Quick, test_crash_single_query_bound);
    ("crash-single: fault-free optimal", `Quick, test_crash_single_no_fault_query_optimal);
    ("crash-single: jitter sweep", `Quick, test_crash_single_jitter_sweep);
    ("crash-single: slow not crashed", `Quick, test_crash_single_slow_victim_not_crashed);
    ("crash-single: k=2", `Quick, test_crash_single_two_peers);
    ("crash-single: supports", `Quick, test_crash_single_supports);
  ]
