(* "Executable lemmas": the combinatorial facts of the paper's Section 2
   analysis, checked on live executions via the Crash_general monitor hook
   and as pure math. *)

open Dr_core
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan
module Prng = Dr_engine.Prng

let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Overlap Lemma (Observation, Section 2.1): any two (k-1)-subsets of k
   peers share a member — pure counting, checked exhaustively. *)
(* ------------------------------------------------------------------ *)

let test_overlap_lemma () =
  (* Needs k >= 3: the overlap of two (k-1)-subsets has size k-2. *)
  for k = 3 to 8 do
    (* A (k-1)-subset is "all but one": identify it by the excluded peer. *)
    for ex1 = 0 to k - 1 do
      for ex2 = 0 to k - 1 do
        let s1 = List.filter (fun p -> p <> ex1) (List.init k Fun.id) in
        let s2 = List.filter (fun p -> p <> ex2) (List.init k Fun.id) in
        let overlap = List.exists (fun p -> List.mem p s2) s1 in
        checkb (Printf.sprintf "k=%d overlap" k) true overlap
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Claims 1 and 4 on live executions of Algorithm 2.                   *)
(* ------------------------------------------------------------------ *)

type snapshot = { assign : int array; know : bool array }

let collect_snapshots ~k ~n ~t ~seed ~after_sends =
  let inst = Problem.random_instance ~seed ~k ~n ~t () in
  (* (phase, peer) -> snapshot at the start of that phase. *)
  let snaps : (int * int, snapshot) Hashtbl.t = Hashtbl.create 64 in
  let monitor ~peer ~phase ~assign ~know =
    Hashtbl.replace snaps (phase, peer) { assign; know }
  in
  let opts =
    Exec.default
    |> Exec.with_latency (Latency.jittered (Prng.create seed))
    |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends)
  in
  let report = Crash_general.run_with ~opts ~monitor inst in
  (inst, snaps, report)

let phases_of snaps =
  Hashtbl.fold (fun (phase, _) _ acc -> max acc phase) snaps 0

(* Claim 1: for honest v, w and every bit b, at the start of any common
   phase: same assignee, or one of them already knows b. *)
let check_claim1 inst snaps =
  let k = inst.Problem.k and n = Problem.n inst in
  let honest = Problem.honest inst in
  let violations = ref 0 in
  for phase = 1 to phases_of snaps do
    for v = 0 to k - 1 do
      for w = v + 1 to k - 1 do
        if honest v && honest w then begin
          match (Hashtbl.find_opt snaps (phase, v), Hashtbl.find_opt snaps (phase, w)) with
          | Some sv, Some sw ->
            for b = 0 to n - 1 do
              if
                sv.assign.(b) <> sw.assign.(b)
                && (not sv.know.(b))
                && not sw.know.(b)
              then incr violations
            done
          | _ -> ()
        end
      done
    done
  done;
  !violations

(* Claim 4 (relaxed to the hash rule): the unknown count of every honest
   peer shrinks by at least roughly the beta factor each phase. *)
let check_claim4 inst snaps =
  let k = inst.Problem.k in
  let t = Problem.t inst in
  let honest = Problem.honest inst in
  let unknown_of s = Array.fold_left (fun acc kn -> if kn then acc else acc + 1) 0 s.know in
  let ok = ref true in
  for phase = 1 to phases_of snaps - 1 do
    for v = 0 to k - 1 do
      if honest v then begin
        match (Hashtbl.find_opt snaps (phase, v), Hashtbl.find_opt snaps (phase + 1, v)) with
        | Some before, Some after ->
          let u0 = unknown_of before and u1 = unknown_of after in
          (* Exact claim is u1 <= u0 * t/k; the pseudo-random rule spreads
             within a constant of even, so allow slack of 2x plus k. *)
          let bound = (2 * u0 * (t + 1) / k) + k in
          if u1 > min u0 bound then ok := false
        | _ -> ()
      end
    done
  done;
  !ok

let run_lemma_checks ~k ~n ~t ~seed ~after_sends =
  let inst, snaps, report = collect_snapshots ~k ~n ~t ~seed ~after_sends in
  checkb "download ok" true report.Problem.ok;
  checkb "some phases observed" true (phases_of snaps >= 1);
  Alcotest.(check int) "Claim 1: no violations" 0 (check_claim1 inst snaps);
  checkb "Claim 4: geometric shrink" true (check_claim4 inst snaps)

let test_claims_small () = run_lemma_checks ~k:6 ~n:120 ~t:2 ~seed:3L ~after_sends:1

let test_claims_majority_crash () = run_lemma_checks ~k:8 ~n:160 ~t:5 ~seed:7L ~after_sends:0

let test_claims_sweep () =
  List.iter
    (fun seed -> run_lemma_checks ~k:7 ~n:84 ~t:3 ~seed ~after_sends:2)
    [ 11L; 12L; 13L; 14L ]

let suite =
  [
    ("overlap lemma (exhaustive, 3<=k<=8)", `Quick, test_overlap_lemma);
    ("claims 1 & 4 on a live run", `Quick, test_claims_small);
    ("claims 1 & 4 under majority crash", `Quick, test_claims_majority_crash);
    ("claims 1 & 4, seed sweep", `Quick, test_claims_sweep);
  ]
