(* Tests for the verdict/orchestration layer: Exec must catch lying and
   silent protocols, aggregate only over nonfaulty peers, and validate
   instances. *)

open Dr_core
module Bitarray = Dr_source.Bitarray
module Fault = Dr_adversary.Fault

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

module Msg = struct
  type t = unit

  let size_bits () = 8
  let tag () = "u"
end

module S = Dr_engine.Sim.Make (Msg)

let instance ?(k = 4) ?(t = 1) ?(n = 16) () = Problem.random_instance ~seed:9L ~k ~n ~t ()

let run_with_process inst process =
  let cfg = Exec.build_config inst Exec.default in
  Exec.finish ~protocol:"fake" inst (S.run cfg process)

let test_verdict_catches_wrong_output () =
  let inst = instance () in
  (* Every peer "downloads" the flipped array. *)
  let r = run_with_process inst (fun _ -> Bitarray.flip inst.Problem.x 3) in
  checkb "not ok" false r.Problem.ok;
  checki "all honest peers wrong" 3 (List.length r.Problem.wrong)

let test_verdict_catches_one_liar () =
  let inst = instance () in
  let r =
    run_with_process inst (fun i ->
        if i = 2 then Bitarray.create (Problem.n inst) else Bitarray.copy inst.Problem.x)
  in
  (* Peer 2 is honest per the fault set (faulty = peer 0 under Spread 1),
     so its wrong output must be flagged. *)
  checkb "not ok" false r.Problem.ok;
  checkb "peer 2 flagged" true (List.mem 2 r.Problem.wrong)

let test_verdict_ignores_faulty_outputs () =
  let inst = instance () in
  let faulty = List.hd inst.Problem.fault.Fault.faulty_ids in
  let r =
    run_with_process inst (fun i ->
        if i = faulty then Bitarray.create (Problem.n inst) else Bitarray.copy inst.Problem.x)
  in
  checkb "ok: only the faulty peer lied" true r.Problem.ok

let test_verdict_missing_output_is_wrong () =
  let inst = instance () in
  let r =
    run_with_process inst (fun i ->
        if i = 1 then ignore (S.receive ());
        (* peer 1 blocks forever *)
        Bitarray.copy inst.Problem.x)
  in
  checkb "not ok" false r.Problem.ok;
  checkb "blocked peer flagged" true (List.mem 1 r.Problem.wrong);
  checkb "deadlock status" true
    (match r.Problem.status with Dr_engine.Sim.Deadlock [ 1 ] -> true | _ -> false)

let test_time_is_last_honest_termination () =
  let inst = instance ~k:3 ~t:0 () in
  let r =
    run_with_process inst (fun i ->
        S.sleep (float_of_int i *. 2.);
        Bitarray.copy inst.Problem.x)
  in
  checkb "ok" true r.Problem.ok;
  Alcotest.(check (float 0.001)) "T = slowest honest" 4. r.Problem.time

let test_metrics_exclude_faulty_queries () =
  let inst = instance () in
  let faulty = List.hd inst.Problem.fault.Fault.faulty_ids in
  let r =
    run_with_process inst (fun i ->
        if i = faulty then
          for j = 0 to Problem.n inst - 1 do
            ignore (S.query j)
          done
        else ignore (S.query 0);
        Bitarray.copy inst.Problem.x)
  in
  checkb "correct overall" true r.Problem.ok;
  checki "Q counts honest only" 1 r.Problem.q_max;
  checki "q_total honest only" 3 r.Problem.q_total

let test_problem_make_validation () =
  let fault = Fault.choose ~k:4 Fault.None_faulty in
  Alcotest.check_raises "k mismatch"
    (Invalid_argument "Problem.make: fault partition sized for a different k") (fun () ->
      ignore (Problem.make ~k:5 ~x:(Bitarray.create 8) fault));
  Alcotest.check_raises "empty input" (Invalid_argument "Problem.make: empty input array")
    (fun () -> ignore (Problem.make ~k:4 ~x:(Bitarray.create 0) fault));
  Alcotest.check_raises "bad B" (Invalid_argument "Problem.make: message bound must be positive")
    (fun () -> ignore (Problem.make ~k:4 ~b:0 ~x:(Bitarray.create 8) fault))

let test_problem_accessors () =
  let inst = Problem.random_instance ~seed:2L ~k:8 ~n:32 ~t:2 () in
  checki "n" 32 (Problem.n inst);
  checki "t" 2 (Problem.t inst);
  Alcotest.(check (float 1e-9)) "beta" 0.25 (Problem.beta inst);
  Alcotest.(check (float 1e-9)) "gamma" 0.75 (Problem.gamma inst);
  checkb "honest" true (Problem.honest inst 1)

let suite =
  [
    ("verdict: catches wrong output", `Quick, test_verdict_catches_wrong_output);
    ("verdict: catches one liar", `Quick, test_verdict_catches_one_liar);
    ("verdict: ignores faulty outputs", `Quick, test_verdict_ignores_faulty_outputs);
    ("verdict: missing output flagged", `Quick, test_verdict_missing_output_is_wrong);
    ("verdict: T = last honest termination", `Quick, test_time_is_last_honest_termination);
    ("verdict: Q excludes faulty peers", `Quick, test_metrics_exclude_faulty_queries);
    ("problem: make validation", `Quick, test_problem_make_validation);
    ("problem: accessors", `Quick, test_problem_accessors);
  ]
