(* Systematic schedule exploration: small instances checked against every
   (or a bounded prefix of every) delivery order. *)

open Dr_core
module Explore = Dr_engine.Explore
module Sim = Dr_engine.Sim
module Prng = Dr_engine.Prng
module Fault = Dr_adversary.Fault
module Crash_plan = Dr_adversary.Crash_plan
module Bitarray = Dr_source.Bitarray

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A toy two-peer echo as a sanity check of the DFS mechanics. *)
module Msg = struct
  type t = int

  let size_bits _ = 8
  let tag = string_of_int
end

module S = Sim.Make (Msg)

let test_dfs_covers_tiny_space () =
  (* Two peers each broadcast one message and receive one: the only
     schedule freedom is the order of the two start events and the two
     deliveries. The space is small and must be exhausted. *)
  let run ~arbiter =
    let cfg =
      {
        (Sim.default_config ~k:2 ~query_bit:(fun ~peer:_ _ -> false)) with
        arbiter = Some arbiter;
      }
    in
    let outcome =
      S.run cfg (fun i ->
          S.send (1 - i) i;
          let src, v = S.receive () in
          src = v)
    in
    Array.for_all (function Some (_, true) -> true | _ -> false) outcome.Sim.outputs
  in
  let r = Explore.dfs ~budget:10_000 ~run in
  checkb "exhausted" true r.Explore.exhausted;
  checki "no failures" 0 r.Explore.failures;
  checkb "several schedules" true (r.Explore.schedules_run > 1)

let test_dfs_finds_planted_bug () =
  (* A deliberately order-sensitive "protocol": peer 0 asserts that peer 1's
     message arrives before peer 2's. The explorer must find a schedule
     violating it, and the failing script must replay to the same failure. *)
  let run ~arbiter =
    let cfg =
      {
        (Sim.default_config ~k:3 ~query_bit:(fun ~peer:_ _ -> false)) with
        arbiter = Some arbiter;
      }
    in
    let outcome =
      S.run cfg (fun i ->
          if i = 0 then begin
            let first, _ = S.receive () in
            let _ = S.receive () in
            first = 1
          end
          else begin
            S.send 0 i;
            true
          end)
    in
    (match outcome.Sim.outputs.(0) with Some (_, ok) -> ok | None -> false)
  in
  let r = Explore.dfs ~budget:10_000 ~run in
  checkb "found the bug" true (r.Explore.failures > 0);
  (match r.Explore.first_failure with
  | Some script -> checkb "failure replays" false (run ~arbiter:(Explore.scripted script))
  | None -> Alcotest.fail "no script recorded")

let check_crash_single ~budget ~k ~n ~after_sends =
  let x = Bitarray.random (Prng.create 3L) n in
  let fault = Fault.choose ~k (Fault.Explicit [ k - 1 ]) in
  let inst = Problem.make ~k ~x fault in
  let run ~arbiter =
    let opts =
      Exec.default
      |> Exec.with_crash (Crash_plan.mid_broadcast fault ~after_sends)
      |> Exec.with_arbiter arbiter
    in
    (Crash_single.run ~opts inst).Problem.ok
  in
  Explore.dfs ~budget ~run

let test_crash_single_schedule_prefix () =
  (* Algorithm 1 on 3 peers, 3 bits, one silent crash: check a large DFS
     prefix of the schedule tree. Every schedule must download correctly. *)
  let r = check_crash_single ~budget:1_500 ~k:3 ~n:3 ~after_sends:0 in
  checki "no failing schedule" 0 r.Explore.failures;
  checkb "ran the full budget or exhausted" true
    (r.Explore.exhausted || r.Explore.schedules_run = 1_500)

let test_crash_single_partial_broadcast_schedules () =
  (* The mid-broadcast crash (1 completed send) across schedules. *)
  let r = check_crash_single ~budget:1_500 ~k:3 ~n:3 ~after_sends:1 in
  checki "no failing schedule" 0 r.Explore.failures

let test_crash_general_schedule_prefix () =
  let k = 3 and n = 3 in
  let x = Bitarray.random (Prng.create 7L) n in
  let fault = Fault.choose ~k (Fault.Explicit [ 1 ]) in
  let inst = Problem.make ~k ~x fault in
  let run ~arbiter =
    let opts =
      Exec.default
      |> Exec.with_crash (Crash_plan.mid_broadcast fault ~after_sends:1)
      |> Exec.with_arbiter arbiter
    in
    (Crash_general.run ~opts inst).Problem.ok
  in
  let r = Explore.dfs ~budget:1_200 ~run in
  checki "no failing schedule" 0 r.Explore.failures

let test_balanced_exhaustive_two_peers () =
  (* Fault-free balanced download with 2 peers / 2 bits: tiny enough to
     exhaust the whole schedule tree. *)
  let inst = Problem.random_instance ~seed:5L ~k:2 ~n:2 ~t:0 () in
  let run ~arbiter = (Balanced.run ~opts:(Exec.with_arbiter arbiter Exec.default) inst).Problem.ok in
  let r = Explore.dfs ~budget:50_000 ~run in
  checkb "exhausted" true r.Explore.exhausted;
  checki "no failures" 0 r.Explore.failures

let test_random_arbiter_fuzz () =
  (* Random schedules beyond the DFS prefix: crash-general, 4 peers. *)
  let inst = Problem.random_instance ~seed:9L ~k:4 ~n:8 ~t:1 () in
  let ok = ref true in
  for seed = 1 to 50 do
    let opts =
      Exec.default
      |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:2)
      |> Exec.with_arbiter (Explore.random (Prng.create (Int64.of_int seed)))
    in
    if not (Crash_general.run ~opts inst).Problem.ok then ok := false
  done;
  checkb "all random schedules correct" true !ok

let suite =
  [
    ("dfs exhausts a tiny space", `Quick, test_dfs_covers_tiny_space);
    ("dfs finds a planted order bug", `Quick, test_dfs_finds_planted_bug);
    ("crash-single: silent crash, schedule prefix", `Quick, test_crash_single_schedule_prefix);
    ("crash-single: partial broadcast schedules", `Quick, test_crash_single_partial_broadcast_schedules);
    ("crash-general: schedule prefix", `Quick, test_crash_general_schedule_prefix);
    ("balanced: exhaustive 2-peer space", `Quick, test_balanced_exhaustive_two_peers);
    ("random-arbiter fuzz", `Quick, test_random_arbiter_fuzz);
  ]
