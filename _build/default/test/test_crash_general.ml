(* Tests for Algorithm 2 (crash-general), the paper's main crash-fault
   result: any beta < 1, optimal-order query complexity. *)

open Dr_core
module Bitarray = Dr_source.Bitarray
module Fault = Dr_adversary.Fault
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instance ?seed ?b ~k ~n ~t () = Problem.random_instance ?seed ?b ~k ~n ~t ()

let assert_ok name report =
  if not report.Problem.ok then
    Alcotest.failf "%s: expected success, got %a" name Problem.pp_report report

let jitter seed = Latency.jittered (Dr_engine.Prng.create seed)

let test_no_crash_optimal () =
  let k = 10 and n = 1000 in
  let inst = instance ~k ~n ~t:0 () in
  let r = Crash_general.run inst in
  assert_ok "no crash" r;
  checki "Q = n/k" (n / k) r.Problem.q_max

let test_silent_crashes () =
  let inst = instance ~k:8 ~n:240 ~t:3 () in
  let opts = Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:0) default) in
  assert_ok "silent" (Crash_general.run ~opts inst)

let test_partial_broadcast_sweep () =
  for after_sends = 0 to 6 do
    let inst = instance ~seed:(Int64.of_int after_sends) ~k:8 ~n:120 ~t:3 () in
    let opts =
      Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends) default)
    in
    assert_ok (Printf.sprintf "partial %d" after_sends) (Crash_general.run ~opts inst)
  done

let test_staggered_crashes () =
  (* One crash per phase: the schedule that forces repeated reassignment. *)
  let inst = instance ~k:9 ~n:270 ~t:4 () in
  let opts =
    Exec.(with_crash (Crash_plan.staggered inst.Problem.fault ~first:0.5 ~gap:4.0) default)
  in
  assert_ok "staggered" (Crash_general.run ~opts inst)

let test_crash_after_queries () =
  (* Faulty peers pay for queries and die before sharing. *)
  let inst = instance ~k:6 ~n:120 ~t:2 () in
  let opts = Exec.(with_crash (Crash_plan.after_queries inst.Problem.fault 5) default) in
  assert_ok "after queries" (Crash_general.run ~opts inst)

let test_majority_crash () =
  (* beta = 3/4: a crash majority, which no Byzantine protocol could take. *)
  let inst = instance ~k:8 ~n:160 ~t:6 () in
  let opts = Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:2) default) in
  assert_ok "beta=3/4" (Crash_general.run ~opts inst)

let test_all_but_one_crash () =
  let k = 6 in
  let inst = instance ~k ~n:60 ~t:(k - 1) () in
  let opts = Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:0) default) in
  let r = Crash_general.run ~opts inst in
  assert_ok "t = k-1" r;
  (* The lone survivor ends up querying everything. *)
  checki "survivor queries n" 60 r.Problem.q_max

let test_single_peer () =
  let inst = instance ~k:1 ~n:32 ~t:0 () in
  let r = Crash_general.run inst in
  assert_ok "k=1" r;
  checki "queries all" 32 r.Problem.q_max

let test_query_bound () =
  (* Q <= n/(gamma k) + n/k + slack even under adversarial crashes. *)
  let k = 10 and n = 2000 and t = 5 in
  let inst = instance ~k ~n ~t () in
  let opts = Exec.(with_crash (Crash_plan.staggered inst.Problem.fault ~first:1.0 ~gap:3.0) default) in
  let r = Crash_general.run ~opts inst in
  assert_ok "bound run" r;
  let gamma = float_of_int (k - t) /. float_of_int k in
  let bound =
    int_of_float (float_of_int n /. (gamma *. float_of_int k)) + (n / k) + (2 * k)
  in
  checkb (Printf.sprintf "Q=%d <= %d" r.Problem.q_max bound) true (r.Problem.q_max <= bound)

let test_jitter_and_crashes_sweep () =
  List.iter
    (fun seed ->
      let inst = instance ~seed ~k:7 ~n:84 ~t:3 () in
      let opts =
        Exec.default
        |> Exec.with_latency (jitter seed)
        |> Exec.with_crash
             (Crash_plan.staggered inst.Problem.fault ~first:0.3 ~gap:1.7)
      in
      assert_ok (Printf.sprintf "seed %Ld" seed) (Crash_general.run ~opts inst))
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L; 9L; 10L ]

let test_slow_peers_not_crashed () =
  (* Declared-faulty peers are merely slow; protocol must neither block on
     them nor be confused by their late replies. *)
  let inst = instance ~k:6 ~n:90 ~t:2 () in
  let slow i = Fault.is_faulty inst.Problem.fault i in
  let opts = Exec.(with_latency (Latency.targeted ~slow ~delay:200.) default) in
  assert_ok "slow peers" (Crash_general.run ~opts inst)

let test_fast_path_correct_both_ways () =
  let inst = instance ~k:6 ~n:120 ~t:2 () in
  let opts = Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:3) default) in
  assert_ok "fast path on" (Crash_general.run_with ~opts ~fast_path:true inst);
  assert_ok "fast path off" (Crash_general.run_with ~opts ~fast_path:false inst)

(* Theorem 2.13's scenario: peer 0 is honest but slow — slow enough to be
   "missing" in phase 1 for everyone, and slowest of all towards peer 1.
   Reports about peer 0 carry its whole share, so under size-proportional
   latencies they arrive late; the fast path releases the stage-3 wait as
   soon as peer 0's own reply lands instead. *)
let fast_path_scenario () =
  let k = 8 in
  let fault = Fault.choose ~k (Fault.Explicit [ 0; 7 ]) in
  let x = Bitarray.random (Dr_engine.Prng.create 77L) 8192 in
  let inst = Problem.make ~k ~x fault in
  let latency ~src ~dst ~time ~size_bits =
    ignore (time, size_bits);
    if src = 0 && dst = 1 then 3.0 else 0.5
  in
  let crash i = if i = 7 then Dr_engine.Sim.After_sends 0 else Dr_engine.Sim.Never in
  ( inst,
    Exec.default
    |> Exec.with_latency latency
    |> Exec.with_link_rate (float_of_int inst.Problem.b)
    |> Exec.with_crash crash )

let test_fast_path_improves_time_with_slow_responder () =
  let inst, opts = fast_path_scenario () in
  let fast = Crash_general.run_with ~opts ~fast_path:true inst in
  let slow = Crash_general.run_with ~opts ~fast_path:false inst in
  assert_ok "fast" fast;
  assert_ok "slow" slow;
  checkb
    (Printf.sprintf "fast T (%.1f) strictly < slow T (%.1f)" fast.Problem.time slow.Problem.time)
    true
    (fast.Problem.time +. 5.0 < slow.Problem.time)

let test_phase_bound_respected () =
  List.iter
    (fun (k, t, expect_max) ->
      let got = Crash_general.phases_upper_bound ~k ~t in
      checkb (Printf.sprintf "phases(%d,%d)=%d <= %d" k t got expect_max) true (got <= expect_max))
    [ (10, 0, 2); (10, 5, 6); (10, 9, 25); (100, 50, 10) ]

let test_message_bound_respected () =
  let inst = instance ~k:6 ~n:200 ~b:96 ~t:2 () in
  let opts = Exec.(with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:1) default) in
  let r = Crash_general.run ~opts inst in
  assert_ok "small B" r;
  checkb
    (Printf.sprintf "max msg %d <= B=96" r.Problem.max_msg_bits)
    true (r.Problem.max_msg_bits <= 96)

let test_deterministic_report () =
  let inst = instance ~seed:5L ~k:7 ~n:140 ~t:3 () in
  let opts =
    Exec.default
    |> Exec.with_latency (jitter 5L)
    |> Exec.with_crash (Crash_plan.staggered inst.Problem.fault ~first:0.5 ~gap:2.0)
  in
  let a = Crash_general.run ~opts inst in
  (* Rebuild opts: the jitter PRNG is stateful, so a fresh one is needed. *)
  let opts =
    Exec.default
    |> Exec.with_latency (jitter 5L)
    |> Exec.with_crash (Crash_plan.staggered inst.Problem.fault ~first:0.5 ~gap:2.0)
  in
  let b = Crash_general.run ~opts inst in
  checkb "same verdict" true (a.Problem.ok = b.Problem.ok);
  checki "same Q" a.Problem.q_max b.Problem.q_max;
  checki "same M" a.Problem.msgs b.Problem.msgs;
  checkb "same T" true (a.Problem.time = b.Problem.time)

let test_supports () =
  checkb "rejects t=k" true
    (match
       Crash_general.supports
         { (instance ~k:4 ~n:16 ~t:0 ()) with Problem.fault = Fault.choose ~k:4 (Fault.First 4) }
     with
    | Error _ -> true
    | Ok () -> false);
  checkb "accepts t=k-1" true
    (match Crash_general.supports (instance ~k:4 ~n:16 ~t:3 ()) with
    | Ok () -> true
    | Error _ -> false)

let suite =
  [
    ("no crash: optimal Q", `Quick, test_no_crash_optimal);
    ("silent crashes", `Quick, test_silent_crashes);
    ("partial broadcast sweep", `Quick, test_partial_broadcast_sweep);
    ("staggered crashes", `Quick, test_staggered_crashes);
    ("crash after queries", `Quick, test_crash_after_queries);
    ("crash majority (beta=3/4)", `Quick, test_majority_crash);
    ("all but one crash", `Quick, test_all_but_one_crash);
    ("single peer", `Quick, test_single_peer);
    ("query bound O(n/(gamma k))", `Quick, test_query_bound);
    ("jitter x crash sweep", `Quick, test_jitter_and_crashes_sweep);
    ("slow peers, no crash", `Quick, test_slow_peers_not_crashed);
    ("fast path correct both ways", `Quick, test_fast_path_correct_both_ways);
    ("fast path helps T", `Quick, test_fast_path_improves_time_with_slow_responder);
    ("phase bound", `Quick, test_phase_bound_respected);
    ("message bound respected", `Quick, test_message_bound_respected);
    ("deterministic report", `Quick, test_deterministic_report);
    ("supports", `Quick, test_supports);
  ]
