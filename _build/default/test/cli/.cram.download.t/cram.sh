  $ dr_download -p crash-general -k 8 -n 512 -t 2 --crash silent
  $ dr_download -p byz-committee --model byzantine -k 9 -n 512 -t 4 --attack collude
  $ dr_download -p balanced -k 4 -n 64 -t 1 --crash silent 2> /dev/null
  $ dr_sweep --vary beta --values 0,0.5 -k 8 -n 256 --seeds 1
  $ dr_download -p balanced -k 4 -n 32 -t 0 --crash none --trace-out t.trace > /dev/null
  $ dr_trace t.trace --summary
