test/test_lowerbound.ml: Alcotest Byz_2cycle Committee Dr_core Dr_lowerbound Int64 List Naive Printf Problem String
