test/test_explore.ml: Alcotest Array Balanced Crash_general Crash_single Dr_adversary Dr_core Dr_engine Dr_source Exec Int64 Problem
