test/test_golden.ml: Alcotest Balanced Byz_2cycle Byz_multicycle Committee Crash_general Crash_single Dr_adversary Dr_core Dr_engine Exec Naive Problem
