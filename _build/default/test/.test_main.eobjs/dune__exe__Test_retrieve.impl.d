test/test_retrieve.ml: Alcotest Array Balanced Committee Crash_general Dr_adversary Dr_core Dr_engine Dr_source Exec Float Problem Retrieve
