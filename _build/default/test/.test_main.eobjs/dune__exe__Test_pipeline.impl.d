test/test_pipeline.ml: Alcotest Array Committee Crash_general Dr_adversary Dr_core Dr_oracle Dr_source Exec Int64 List Problem
