test/test_oracle.ml: Alcotest Array Committee Dr_core Dr_oracle Dr_source Exec List Printf Problem
