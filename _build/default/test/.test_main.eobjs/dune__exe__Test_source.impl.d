test/test_source.ml: Alcotest Bitarray Data_source Dr_core Dr_engine Dr_source List Printf Segment
