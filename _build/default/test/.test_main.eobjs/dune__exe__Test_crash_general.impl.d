test/test_crash_general.ml: Alcotest Crash_general Dr_adversary Dr_core Dr_engine Dr_source Exec Int64 List Printf Problem
