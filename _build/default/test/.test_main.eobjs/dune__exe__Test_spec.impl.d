test/test_spec.ml: Alcotest Byz_2cycle Committee Crash_general Dr_adversary Dr_core Dr_engine Exec List Naive Printf Problem Select Spec String
