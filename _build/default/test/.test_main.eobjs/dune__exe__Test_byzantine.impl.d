test/test_byzantine.ml: Alcotest Byz_2cycle Byz_multicycle Committee Decision_tree Dr_adversary Dr_core Dr_engine Dr_source Exec Frequent List Printf Problem
