test/test_crash.ml: Alcotest Balanced Crash_single Dr_adversary Dr_core Dr_engine Dr_source Exec List Naive Printf Problem
