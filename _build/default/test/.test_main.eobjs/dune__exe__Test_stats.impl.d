test/test_stats.ml: Alcotest Chernoff Crash_general Dr_core Dr_engine Dr_stats Exec Format Fun Int64 List Par Printf Problem Select String Summary Table
