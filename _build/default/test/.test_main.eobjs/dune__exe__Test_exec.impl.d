test/test_exec.ml: Alcotest Dr_adversary Dr_core Dr_engine Dr_source Exec List Problem
