test/test_engine.ml: Alcotest Array Dr_engine Filename Format Fun Heap List Metrics Printf Prng Sim String Sys Trace Trace_stats
