test/test_lemmas.ml: Alcotest Array Crash_general Dr_adversary Dr_core Dr_engine Exec Fun Hashtbl List Printf Problem
