test/test_adversary.ml: Alcotest Crash_plan Dr_adversary Dr_engine Fault Format Latency List
