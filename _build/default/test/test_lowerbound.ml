(* Tests for the executable lower-bound constructions (Theorems 3.1/3.2). *)

open Dr_core
module Det_lower = Dr_lowerbound.Det_lower
module Rand_lower = Dr_lowerbound.Rand_lower

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* The cheap deterministic protocol under attack: committees of 6 with
   threshold 2 on 8 peers — terminates with F = {5,6,7} crashed and leaves
   bits unqueried, exactly what Theorem 3.1 needs. *)
let cheap_committee ?opts inst = Committee.run_with ?opts ~committee_size:6 ~threshold:2 inst

let test_det_lower_fools_victim () =
  match
    Det_lower.demonstrate ~run:cheap_committee ~f_set:[ 5; 6; 7 ] ~b:72 ~k:8 ~n:64 ()
  with
  | Error e -> Alcotest.failf "construction failed: %s" e
  | Ok ev ->
    checkb "E1 terminates for the victim" false (List.mem ev.Det_lower.victim ev.Det_lower.e1.Problem.wrong);
    checkb "victim left bits unqueried" true (ev.Det_lower.e1_victim_queries < 64);
    checkb "victim fooled in E2" true ev.Det_lower.victim_fooled;
    checkb "views indistinguishable" true ev.Det_lower.views_identical;
    (* The corrupted coalition is a legal majority-setting fault set. *)
    checki "|C| = k - |F| - 1" 4 (List.length ev.Det_lower.corrupted)

let test_det_lower_rejects_naive () =
  (* Against the naive protocol the construction must report that no bit is
     unqueried: the lower bound is tight. *)
  match Det_lower.demonstrate ~run:Naive.run ~f_set:[ 5; 6; 7 ] ~k:8 ~n:32 () with
  | Error e -> checkb "explains tightness" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "naive should not be attackable"

let test_det_lower_victim_in_f_rejected () =
  match Det_lower.demonstrate ~run:cheap_committee ~victim:5 ~f_set:[ 5; 6 ] ~k:8 ~n:32 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "victim inside F must be rejected"

let test_det_lower_hidden_bit_unqueried () =
  match Det_lower.demonstrate ~run:cheap_committee ~f_set:[ 5; 6; 7 ] ~b:72 ~k:8 ~n:64 () with
  | Error e -> Alcotest.failf "construction failed: %s" e
  | Ok ev ->
    (* The hidden bit must belong to a block whose committee excludes the
       victim. *)
    checkb "hidden in range" true (ev.Det_lower.hidden_bit >= 0 && ev.Det_lower.hidden_bit < 64)

let test_rand_lower_failure_rate () =
  (* 21 peers, |F| = 4 slow, |C| = 16 corrupted (beta = 16/21 > 1/2). The
     2-cycle protocol with s = 3 queries ~n/3 bits, so the mirror adversary
     wins about 2/3 of the time. *)
  let run ?opts inst = Byz_2cycle.run_with ?opts ~attack:Byz_2cycle.Mirror ~segments:3 ~rho:1 inst in
  let seeds = List.init 60 (fun i -> Int64.of_int (i + 1)) in
  let r = Rand_lower.attack ~run ~f_count:4 ~k:21 ~n:60 ~seeds () in
  checki "all runs executed" 60 r.Rand_lower.runs;
  checkb
    (Printf.sprintf "failure rate %.2f near 2/3" r.Rand_lower.failure_rate)
    true
    (r.Rand_lower.failure_rate > 0.45 && r.Rand_lower.failure_rate < 0.85);
  checkb
    (Printf.sprintf "measured %.2f >= predicted floor %.2f - slack" r.Rand_lower.failure_rate
       r.Rand_lower.predicted_failure_floor)
    true
    (r.Rand_lower.failure_rate >= r.Rand_lower.predicted_failure_floor -. 0.15);
  (* Survival and hitting the hidden bit coincide. *)
  checkb "hit rate complements failures" true
    (abs_float (r.Rand_lower.victim_hit_rate +. r.Rand_lower.failure_rate -. 1.) < 0.10)

let test_rand_lower_naive_never_fails () =
  (* Querying everything defeats the mirror adversary — the bound is tight. *)
  let seeds = List.init 10 (fun i -> Int64.of_int (i + 1)) in
  let r = Rand_lower.attack ~run:Naive.run ~f_count:4 ~k:9 ~n:40 ~seeds () in
  checki "no failures" 0 r.Rand_lower.failures;
  checkb "hit every time" true (r.Rand_lower.victim_hit_rate = 1.)

let test_rand_lower_more_queries_fewer_failures () =
  (* Sweeping s downward (more queries per peer) lowers the failure rate:
     the q/n tradeoff of Theorem 3.2, measured. *)
  let rate s =
    let run ?opts inst = Byz_2cycle.run_with ?opts ~attack:Byz_2cycle.Mirror ~segments:s ~rho:1 inst in
    let seeds = List.init 40 (fun i -> Int64.of_int (100 + i)) in
    (Rand_lower.attack ~run ~f_count:4 ~k:21 ~n:60 ~seeds ()).Rand_lower.failure_rate
  in
  let r6 = rate 6 and r2 = rate 2 in
  checkb (Printf.sprintf "rate(s=6)=%.2f > rate(s=2)=%.2f" r6 r2) true (r6 > r2)

let suite =
  [
    ("det: victim fooled (Thm 3.1)", `Quick, test_det_lower_fools_victim);
    ("det: naive is tight", `Quick, test_det_lower_rejects_naive);
    ("det: victim in F rejected", `Quick, test_det_lower_victim_in_f_rejected);
    ("det: hidden bit sane", `Quick, test_det_lower_hidden_bit_unqueried);
    ("rand: failure rate ~ 1 - q/n (Thm 3.2)", `Quick, test_rand_lower_failure_rate);
    ("rand: naive never fails", `Quick, test_rand_lower_naive_never_fails);
    ("rand: q/n tradeoff", `Quick, test_rand_lower_more_queries_fewer_failures);
  ]
