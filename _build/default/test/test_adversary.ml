(* Tests for the adversary toolbox: fault-set selection, latency policies
   and crash schedules. *)

open Dr_adversary
module Prng = Dr_engine.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let check_ints = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Fault                                                               *)
(* ------------------------------------------------------------------ *)

let test_fault_first_last () =
  let f = Fault.choose ~k:6 (Fault.First 2) in
  check_ints "first" [ 0; 1 ] f.Fault.faulty_ids;
  let l = Fault.choose ~k:6 (Fault.Last 2) in
  check_ints "last" [ 4; 5 ] l.Fault.faulty_ids

let test_fault_spread () =
  let f = Fault.choose ~k:9 (Fault.Spread 3) in
  check_ints "spread" [ 0; 3; 6 ] f.Fault.faulty_ids;
  checki "count" 3 f.Fault.t_count

let test_fault_none_and_all_but_one () =
  let none = Fault.choose ~k:4 Fault.None_faulty in
  checki "none" 0 none.Fault.t_count;
  checkf "beta 0" 0. (Fault.beta none);
  let most = Fault.choose ~k:4 (Fault.First 3) in
  checkf "beta 3/4" 0.75 (Fault.beta most);
  checkf "gamma 1/4" 0.25 (Fault.gamma most)

let test_fault_explicit_dedup () =
  let f = Fault.choose ~k:5 (Fault.Explicit [ 3; 1; 3 ]) in
  check_ints "sorted, deduped" [ 1; 3 ] f.Fault.faulty_ids

let test_fault_random_deterministic () =
  let mk () = (Fault.choose ~k:20 (Fault.Random (5, Prng.create 9L))).Fault.faulty_ids in
  check_ints "reproducible" (mk ()) (mk ());
  checki "five chosen" 5 (List.length (mk ()))

let test_fault_predicates () =
  let f = Fault.choose ~k:4 (Fault.Explicit [ 2 ]) in
  checkb "faulty" true (Fault.is_faulty f 2);
  checkb "honest" true (Fault.is_honest f 0);
  checki "honest count" 3 (Fault.honest_count f);
  check_ints "honest ids" [ 0; 1; 3 ] (Fault.honest_ids f)

let test_fault_rejects_bad () =
  Alcotest.check_raises "too many" (Invalid_argument "Fault.choose: bad fault count") (fun () ->
      ignore (Fault.choose ~k:3 (Fault.First 4)));
  Alcotest.check_raises "out of range" (Invalid_argument "Fault.choose: peer id out of range")
    (fun () -> ignore (Fault.choose ~k:3 (Fault.Explicit [ 5 ])))

(* ------------------------------------------------------------------ *)
(* Latency                                                             *)
(* ------------------------------------------------------------------ *)

let test_latency_unit_and_constant () =
  checkf "unit" 1. (Latency.unit_delay ~src:0 ~dst:1 ~time:5. ~size_bits:100);
  checkf "constant" 2.5 (Latency.constant 2.5 ~src:3 ~dst:4 ~time:0. ~size_bits:1)

let test_latency_uniform_range () =
  let g = Prng.create 2L in
  for _ = 1 to 500 do
    let d = Latency.uniform g ~lo:0.5 ~hi:2.0 ~src:0 ~dst:1 ~time:0. ~size_bits:8 in
    checkb "in [lo,hi)" true (d >= 0.5 && d < 2.0)
  done

let test_latency_targeted () =
  let fn = Latency.targeted ~slow:(fun i -> i = 7) ~delay:99. in
  checkf "slow src" 99. (fn ~src:7 ~dst:0 ~time:0. ~size_bits:1);
  checkf "fast src" 1. (fn ~src:0 ~dst:7 ~time:0. ~size_bits:1)

let test_latency_targeted_links () =
  let fn = Latency.targeted_links ~slow:(fun ~src ~dst -> src = 1 && dst = 2) ~delay:50. in
  checkf "slow link" 50. (fn ~src:1 ~dst:2 ~time:0. ~size_bits:1);
  checkf "reverse fast" 1. (fn ~src:2 ~dst:1 ~time:0. ~size_bits:1)

let test_latency_rushing () =
  let fn = Latency.rushing ~fast:(fun i -> i < 2) ~eps:0.01 in
  checkf "byz fast" 0.01 (fn ~src:1 ~dst:5 ~time:0. ~size_bits:1);
  checkf "honest slow" 1. (fn ~src:5 ~dst:1 ~time:0. ~size_bits:1)

let test_latency_jittered_positive () =
  let fn = Latency.jittered (Prng.create 3L) in
  for _ = 1 to 500 do
    let d = fn ~src:0 ~dst:1 ~time:0. ~size_bits:1 in
    checkb "in (0,1]" true (d > 0. && d <= 1.)
  done

let test_latency_size_proportional () =
  let fn = Latency.size_proportional ~per_bit:0.01 ~floor:0.5 in
  checkf "scales" 1.5 (fn ~src:0 ~dst:1 ~time:0. ~size_bits:100);
  checkf "floor" 0.5 (fn ~src:0 ~dst:1 ~time:0. ~size_bits:0)

(* ------------------------------------------------------------------ *)
(* Crash plans                                                         *)
(* ------------------------------------------------------------------ *)

let spec = Alcotest.testable (fun ppf (s : Dr_engine.Sim.crash_spec) ->
    match s with
    | Dr_engine.Sim.Never -> Format.pp_print_string ppf "never"
    | Dr_engine.Sim.At_time t -> Format.fprintf ppf "at %.2f" t
    | Dr_engine.Sim.After_sends j -> Format.fprintf ppf "after_sends %d" j
    | Dr_engine.Sim.After_queries j -> Format.fprintf ppf "after_queries %d" j)
    ( = )

let test_crash_none () =
  for i = 0 to 5 do
    Alcotest.check spec "never" Dr_engine.Sim.Never (Crash_plan.none i)
  done

let test_crash_at_times () =
  let plan = Crash_plan.at_times [ (1, 2.0); (3, 5.0) ] in
  Alcotest.check spec "peer 1" (Dr_engine.Sim.At_time 2.0) (plan 1);
  Alcotest.check spec "peer 3" (Dr_engine.Sim.At_time 5.0) (plan 3);
  Alcotest.check spec "others never" Dr_engine.Sim.Never (plan 0)

let test_crash_all_at () =
  let f = Fault.choose ~k:4 (Fault.Explicit [ 0; 2 ]) in
  let plan = Crash_plan.all_at f 1.5 in
  Alcotest.check spec "faulty" (Dr_engine.Sim.At_time 1.5) (plan 0);
  Alcotest.check spec "honest" Dr_engine.Sim.Never (plan 1)

let test_crash_staggered () =
  let f = Fault.choose ~k:6 (Fault.Explicit [ 1; 4; 5 ]) in
  let plan = Crash_plan.staggered f ~first:1.0 ~gap:2.0 in
  Alcotest.check spec "rank 0" (Dr_engine.Sim.At_time 1.0) (plan 1);
  Alcotest.check spec "rank 1" (Dr_engine.Sim.At_time 3.0) (plan 4);
  Alcotest.check spec "rank 2" (Dr_engine.Sim.At_time 5.0) (plan 5);
  Alcotest.check spec "honest" Dr_engine.Sim.Never (plan 0)

let test_crash_mid_broadcast_and_after_queries () =
  let f = Fault.choose ~k:3 (Fault.Explicit [ 2 ]) in
  Alcotest.check spec "mid" (Dr_engine.Sim.After_sends 4)
    (Crash_plan.mid_broadcast f ~after_sends:4 2);
  Alcotest.check spec "negative clamps" (Dr_engine.Sim.After_sends 0)
    (Crash_plan.mid_broadcast f ~after_sends:(-3) 2);
  Alcotest.check spec "after queries" (Dr_engine.Sim.After_queries 7)
    (Crash_plan.after_queries f 7 2);
  Alcotest.check spec "honest untouched" Dr_engine.Sim.Never (Crash_plan.after_queries f 7 0)

let suite =
  [
    ("fault: first/last", `Quick, test_fault_first_last);
    ("fault: spread", `Quick, test_fault_spread);
    ("fault: beta/gamma", `Quick, test_fault_none_and_all_but_one);
    ("fault: explicit dedups", `Quick, test_fault_explicit_dedup);
    ("fault: random deterministic", `Quick, test_fault_random_deterministic);
    ("fault: predicates", `Quick, test_fault_predicates);
    ("fault: rejects bad input", `Quick, test_fault_rejects_bad);
    ("latency: unit/constant", `Quick, test_latency_unit_and_constant);
    ("latency: uniform range", `Quick, test_latency_uniform_range);
    ("latency: targeted", `Quick, test_latency_targeted);
    ("latency: targeted links", `Quick, test_latency_targeted_links);
    ("latency: rushing", `Quick, test_latency_rushing);
    ("latency: jittered positive", `Quick, test_latency_jittered_positive);
    ("latency: size proportional", `Quick, test_latency_size_proportional);
    ("crash: none", `Quick, test_crash_none);
    ("crash: at times", `Quick, test_crash_at_times);
    ("crash: all at", `Quick, test_crash_all_at);
    ("crash: staggered ranks", `Quick, test_crash_staggered);
    ("crash: mid-broadcast/after-queries", `Quick, test_crash_mid_broadcast_and_after_queries);
  ]
