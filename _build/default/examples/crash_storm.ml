(* Crash storm: Algorithm 2 riding out a 75% crash rate.

   24 peers download 8192 bits while 18 of them die — one per phase, each
   mid-broadcast — under randomized asynchronous delays. The survivors still
   terminate with the exact array, paying O(n/(gamma k)) queries each. The
   example also shows the Theorem 2.13 fast path trimming the completion
   time under bandwidth-proportional latencies.

   Run with:  dune exec examples/crash_storm.exe *)

open Dr_core
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan

let () =
  let k = 24 and n = 8192 and t = 18 in
  let inst = Problem.random_instance ~seed:99L ~k ~n ~t () in
  Printf.printf "k=%d peers, n=%d bits, t=%d crashes (beta = %.2f)\n\n" k n t (Problem.beta inst);

  (* A storm: staggered deaths, one every couple of time units, each after a
     partial broadcast. *)
  let storm =
    Exec.default
    |> Exec.with_latency (Latency.jittered (Dr_engine.Prng.create 3L))
    |> Exec.with_crash (Crash_plan.staggered inst.Problem.fault ~first:0.5 ~gap:2.0)
  in
  let r = Crash_general.run ~opts:storm inst in
  Format.printf "storm result: %a@.@." Problem.pp_report r;
  assert r.Problem.ok;
  let gamma = Problem.gamma inst in
  Printf.printf "Q = %d vs theory O(n/(gamma k)) = %.0f and naive n = %d\n\n" r.Problem.q_max
    (float_of_int n /. (gamma *. float_of_int k))
    n;

  (* The Theorem 2.13 ablation. Links now transmit at B bits per time unit,
     so a report carrying a whole missing share is genuinely slow; peer 0 is
     alive but slow towards peer 1, and peer 7 is silently crashed. The fast
     path lets peer 1 continue on peer 0's own late reply instead of waiting
     for everybody's long report about it. *)
  let inst2 =
    Problem.make ~seed:77L ~k:8
      ~x:(Dr_source.Bitarray.random (Dr_engine.Prng.create 77L) 8192)
      (Dr_adversary.Fault.choose ~k:8 (Dr_adversary.Fault.Explicit [ 0; 7 ]))
  in
  let latency ~src ~dst ~time ~size_bits =
    ignore (time, size_bits);
    if src = 0 && dst = 1 then 3.0 else 0.5
  in
  let crash i = if i = 7 then Dr_engine.Sim.After_sends 0 else Dr_engine.Sim.Never in
  let opts =
    Exec.default
    |> Exec.with_latency latency
    |> Exec.with_link_rate (float_of_int inst2.Problem.b)
    |> Exec.with_crash crash
  in
  let t_fast = (Crash_general.run_with ~opts ~fast_path:true inst2).Problem.time in
  let t_slow = (Crash_general.run_with ~opts ~fast_path:false inst2).Problem.time in
  Printf.printf "time with Theorem 2.13 fast path: %.1f; without: %.1f\n" t_fast t_slow;
  assert (t_fast < t_slow)
