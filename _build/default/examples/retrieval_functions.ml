(* Retrieval beyond Download: computing functions of the remote array.

   The DR model's general problem is computing any f(X); the paper treats
   Download as the fundamental case because every other retrieval problem
   reduces to it. This example downloads one array once — under crashes and
   asynchrony — and evaluates a whole catalog of retrieval functions, plus a
   word-valued variant (the "extension to numbers" used by oracles).

   Run with:  dune exec examples/retrieval_functions.exe *)

open Dr_core
module Word = Dr_oracle.Word_download
module Fault = Dr_adversary.Fault

let () =
  let inst = Problem.random_instance ~seed:11L ~k:10 ~n:2048 ~t:3 () in
  let opts =
    Exec.default
    |> Exec.with_latency (Dr_adversary.Latency.jittered (Dr_engine.Prng.create 2L))
    |> Exec.with_crash
         (Dr_adversary.Crash_plan.staggered inst.Problem.fault ~first:0.5 ~gap:1.5)
  in
  Printf.printf "downloading %d bits with %d/%d peers crashing...\n\n" (Problem.n inst)
    (Problem.t inst) inst.Problem.k;

  let show (name, described, correct) =
    Printf.printf "  f = %-14s -> %-10s %s\n" name described (if correct then "(correct)" else "WRONG")
  in
  let eval : type a. a Retrieve.problem -> string * string * bool =
   fun problem ->
    let r = Retrieve.solve (module Crash_general) ~opts inst problem in
    match r.Retrieve.value with
    | Some v -> (problem.Retrieve.name, problem.Retrieve.describe v, Retrieve.check problem inst r)
    | None -> (problem.Retrieve.name, "download failed", false)
  in
  let results =
    [
      eval Retrieve.parity;
      eval Retrieve.popcount;
      eval (Retrieve.find_first true);
      eval Retrieve.all_equal;
      eval Retrieve.longest_run;
      eval (Retrieve.slice ~pos:100 ~len:16);
    ]
  in
  List.iter show results;
  assert (List.for_all (fun (_, _, ok) -> ok) results);

  (* The word-valued extension: download 64 sensor readings as one array. *)
  let readings = Array.init 64 (fun i -> 20_000 + (137 * i mod 997)) in
  let fault = Fault.choose ~k:9 (Fault.Spread 2) in
  let winst = Word.make ~seed:13L ~width:16 ~k:9 ~values:readings fault in
  let wr = Word.run (module Committee) winst in
  Printf.printf "\nword-valued download: 64 x 16-bit readings among 9 peers (2 Byzantine)\n";
  Printf.printf "  ok=%b, per-peer word queries=%d (naive would pay 64)\n" wr.Word.ok
    wr.Word.words_max;
  assert wr.Word.ok;
  match wr.Word.decoded with
  | Some d -> assert (d = readings)
  | None -> assert false
