(* Price-feed oracle: the Section 4 application end to end.

   A 20-node oracle network (4 Byzantine) must publish 128 asset prices
   on-chain. Nine data sources serve the prices; three of them are
   malicious. We run the classical collection step (every node polls 2ts+1
   sources itself) and the paper's Download-based step, check the ODD
   honest-range guarantee for both, and compare the query bills.

   Run with:  dune exec examples/price_feed_oracle.exe *)

module Odc = Dr_oracle.Odc
module Feed = Dr_oracle.Feed
module Table = Dr_stats.Table

let () =
  let params =
    { Odc.peers = 20; peer_faults = 4; sources = 9; source_faults = 3; cells = 128; seed = 2026L }
  in
  (match Odc.validate params with
  | Ok () -> ()
  | Error e -> failwith e);
  Printf.printf
    "oracle network: %d nodes (%d Byzantine), %d sources (%d Byzantine), %d price cells\n\n"
    params.Odc.peers params.Odc.peer_faults params.Odc.sources params.Odc.source_faults
    params.Odc.cells;

  let baseline = Odc.baseline params in
  let via_download = Odc.download_based ~protocol:`Committee params in

  let table =
    Table.create [ "collection step"; "ODD holds"; "total cell queries"; "per-node max" ]
  in
  let row r =
    Table.add_row table
      [
        r.Odc.method_name;
        Table.cell_bool r.Odc.odd_ok;
        Table.cell_int r.Odc.cell_queries_total;
        Table.cell_int r.Odc.cell_queries_max_node;
      ]
  in
  row baseline;
  row via_download;
  Table.print table;

  (* Show a few published prices next to their honest windows. *)
  let feed =
    Feed.make ~sources:params.Odc.sources
      ~faulty:(List.init params.Odc.source_faults (fun i -> params.Odc.sources - 1 - i))
      ~cells:params.Odc.cells ~seed:params.Odc.seed ()
  in
  print_newline ();
  List.iter
    (fun c ->
      let lo, hi = Feed.honest_range feed ~cell:c in
      Printf.printf "cell %3d: published %d, honest range [%d, %d]\n" c
        via_download.Odc.published.(c) lo hi)
    [ 0; 31; 127 ];
  Printf.printf "\nsaving: %.1fx fewer total queries with Download-based collection\n"
    (float_of_int baseline.Odc.cell_queries_total
    /. float_of_int (max 1 via_download.Odc.cell_queries_total));
  assert (baseline.Odc.odd_ok && via_download.Odc.odd_ok);

  (* And the publication round, simulated on the same adversarial network:
     every node submits, Byzantine garbage rushes in first, the contract
     takes the median of the first k - t submissions (sound since k > 3t). *)
  match Odc.full_flow params with
  | Error e -> failwith e
  | Ok (_, publication) ->
    Printf.printf
      "publication: contract accepted %d submissions, published in honest range: %b\n"
      publication.Dr_oracle.Pipeline.submissions_used
      publication.Dr_oracle.Pipeline.odd_ok;
    assert publication.Dr_oracle.Pipeline.odd_ok
