(* Quickstart: download a 4096-bit array with 12 peers of which 4 may crash,
   under an asynchronous schedule, and inspect the cost.

   Run with:  dune exec examples/quickstart.exe *)

open Dr_core

let () =
  (* 1. Describe the instance: peers, input, faulty set, message bound. *)
  let inst =
    Problem.random_instance ~seed:42L ~k:12 ~n:4096 ~t:4 ()
  in
  Printf.printf "instance: k=%d peers, n=%d bits, t=%d possible crashes (beta=%.2f)\n"
    inst.Problem.k (Problem.n inst) (Problem.t inst) (Problem.beta inst);

  (* 2. Describe the adversary: random finite delays on every link, and every
        faulty peer dies after completing exactly two sends (a partial
        broadcast — the nastiest crash shape). *)
  let opts =
    Exec.default
    |> Exec.with_latency (Dr_adversary.Latency.jittered (Dr_engine.Prng.create 7L))
    |> Exec.with_crash (Dr_adversary.Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:2)
  in

  (* 3. Pick the protocol the paper recommends for this regime and run. *)
  let (module P : Exec.PROTOCOL) = Select.for_instance inst in
  Printf.printf "selected protocol: %s\n\n" P.name;
  let report = P.run ~opts inst in
  Format.printf "%a@.@." Problem.pp_report report;

  (* 4. Compare against the two baselines. *)
  let naive = Naive.run ~opts inst in
  Printf.printf "queries per peer: %s needs Q=%d, naive needs Q=%d (%.1fx saving)\n"
    P.name report.Problem.q_max naive.Problem.q_max
    (float_of_int naive.Problem.q_max /. float_of_int (max 1 report.Problem.q_max));
  let ideal = (Problem.n inst + inst.Problem.k - 1) / inst.Problem.k in
  Printf.printf "ideal fault-free share would be n/k = %d: the protocol pays %.2fx that\n" ideal
    (float_of_int report.Problem.q_max /. float_of_int ideal);
  assert report.Problem.ok
