examples/price_feed_oracle.ml: Array Dr_oracle Dr_stats List Printf
