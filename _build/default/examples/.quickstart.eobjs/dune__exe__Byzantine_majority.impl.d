examples/byzantine_majority.ml: Byz_2cycle Committee Dr_adversary Dr_core Dr_lowerbound Exec Format Int64 List Printf Problem
