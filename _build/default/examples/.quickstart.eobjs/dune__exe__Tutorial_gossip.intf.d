examples/tutorial_gossip.mli:
