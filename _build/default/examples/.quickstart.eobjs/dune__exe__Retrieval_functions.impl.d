examples/retrieval_functions.ml: Array Committee Crash_general Dr_adversary Dr_core Dr_engine Dr_oracle Exec List Printf Problem Retrieve
