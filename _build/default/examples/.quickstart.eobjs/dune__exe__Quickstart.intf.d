examples/quickstart.mli:
