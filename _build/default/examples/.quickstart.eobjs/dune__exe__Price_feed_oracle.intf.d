examples/price_feed_oracle.mli:
