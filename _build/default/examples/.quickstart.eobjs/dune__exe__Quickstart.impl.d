examples/quickstart.ml: Dr_adversary Dr_core Dr_engine Exec Format Naive Printf Problem Select
