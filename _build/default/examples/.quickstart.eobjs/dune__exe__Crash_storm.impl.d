examples/crash_storm.ml: Crash_general Dr_adversary Dr_core Dr_engine Dr_source Exec Format Printf Problem
