examples/retrieval_functions.mli:
