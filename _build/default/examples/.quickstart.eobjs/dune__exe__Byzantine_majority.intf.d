examples/byzantine_majority.mli:
