examples/tutorial_gossip.ml: Array Dr_adversary Dr_core Dr_engine Dr_source Exec Format Printf Problem
