(* Byzantine majority: why half matters.

   Below one half Byzantine, the committee protocol downloads correctly at a
   fraction of the naive cost, whatever the attack. At one half and above,
   the paper proves nothing cheaper than "query everything" can work — and
   this example runs the actual mirror constructions from the proofs of
   Theorems 3.1 and 3.2 to show a cheap protocol being fooled.

   Run with:  dune exec examples/byzantine_majority.exe *)

open Dr_core
module Det_lower = Dr_lowerbound.Det_lower
module Rand_lower = Dr_lowerbound.Rand_lower

let () =
  (* --- Safe regime: beta = 4/9 < 1/2, worst attack in the catalog. --- *)
  let inst = Problem.random_instance ~seed:5L ~model:Problem.Byzantine ~k:9 ~n:1024 ~t:4 () in
  let opts =
    Exec.with_latency
      (Dr_adversary.Latency.rushing
         ~fast:(Dr_adversary.Fault.is_faulty inst.Problem.fault)
         ~eps:0.01)
      Exec.default
  in
  let r = Committee.run_with ~opts ~attack:Committee.Collude inst in
  Format.printf "beta = 4/9 (minority), colluding + rushing Byzantine members:@.  %a@.@."
    Problem.pp_report r;
  assert r.Problem.ok;

  (* --- At the boundary: the deterministic mirror construction. --- *)
  print_endline "beta >= 1/2: Theorem 3.1's two-execution construction against a cheap protocol:";
  let cheap ?opts inst = Committee.run_with ?opts ~committee_size:6 ~threshold:2 inst in
  (match Det_lower.demonstrate ~run:cheap ~f_set:[ 5; 6; 7 ] ~b:72 ~k:8 ~n:256 () with
  | Error e -> failwith e
  | Ok ev ->
    Printf.printf
      "  victim peer %d queried only %d/256 bits in the crash execution,\n\
      \  so the adversary hides a flip at bit %d, corrupts %d peers to replay\n\
      \  the all-zeros world, and the victim outputs the wrong array: fooled=%b\n\
      \  (its two views are bit-identical: %b)\n\n"
      ev.Det_lower.victim ev.Det_lower.e1_victim_queries ev.Det_lower.hidden_bit
      (List.length ev.Det_lower.corrupted) ev.Det_lower.victim_fooled
      ev.Det_lower.views_identical;
    assert (ev.Det_lower.victim_fooled && ev.Det_lower.views_identical));

  (* --- And the randomized version: failure probability ~ 1 - q/n. --- *)
  print_endline "Theorem 3.2 against the randomized 2-cycle protocol (beta = 16/21):";
  let run ?opts inst =
    Byz_2cycle.run_with ?opts ~attack:Byz_2cycle.Mirror ~segments:3 ~rho:1 inst
  in
  let seeds = List.init 100 (fun i -> Int64.of_int (i + 1)) in
  let res = Rand_lower.attack ~run ~f_count:4 ~k:21 ~n:512 ~seeds () in
  Printf.printf
    "  victim spends q=%.0f of n=%d queries per run; theory demands failure >= %.2f;\n\
    \  measured failure rate over %d seeds: %.2f\n"
    res.Rand_lower.q_mean res.Rand_lower.n res.Rand_lower.predicted_failure_floor
    res.Rand_lower.runs res.Rand_lower.failure_rate;
  assert (res.Rand_lower.failure_rate >= res.Rand_lower.predicted_failure_floor -. 0.15)
