bin/dr_lowerbound_cli.ml: Arg Byz_2cycle Cmd Cmdliner Committee Dr_core Dr_lowerbound Int64 List Printf Problem String Term
