bin/dr_trace.ml: Arg Cmd Cmdliner Dr_engine Format List Printf Term
