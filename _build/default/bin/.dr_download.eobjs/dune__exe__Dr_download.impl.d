bin/dr_download.ml: Arg Byz_2cycle Byz_multicycle Cmd Cmdliner Committee Dr_adversary Dr_core Dr_engine Exec Format List Printf Problem Select String Term
