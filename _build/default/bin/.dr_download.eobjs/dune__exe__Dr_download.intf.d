bin/dr_download.mli:
