bin/dr_trace.mli:
