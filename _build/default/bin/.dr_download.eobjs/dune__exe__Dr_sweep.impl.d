bin/dr_sweep.ml: Arg Cmd Cmdliner Dr_adversary Dr_core Dr_engine Exec Float Int64 List Printf Problem Select String Term
