bin/dr_lowerbound_cli.mli:
