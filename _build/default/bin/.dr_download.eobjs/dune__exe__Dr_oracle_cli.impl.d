bin/dr_oracle_cli.ml: Arg Cmd Cmdliner Dr_oracle Dr_stats List Printf Term
