bin/dr_oracle_cli.mli:
