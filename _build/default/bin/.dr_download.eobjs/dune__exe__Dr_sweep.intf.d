bin/dr_sweep.mli:
