(* dr_trace: offline analysis of saved execution traces.

   Produce a trace with `dr_download --trace-out FILE`, then:
     dr_trace FILE --summary
     dr_trace FILE --matrix
     dr_trace FILE --peer 3
     dr_trace FILE --queries 3 *)

open Cmdliner
module Trace = Dr_engine.Trace
module Trace_stats = Dr_engine.Trace_stats

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file to analyse.")

let summary_arg = Arg.(value & flag & info [ "summary" ] ~doc:"Event counts and time span.")
let matrix_arg = Arg.(value & flag & info [ "matrix" ] ~doc:"src->dst message and bit matrices.")
let peer_arg = Arg.(value & opt (some int) None & info [ "peer" ] ~doc:"Timeline of one peer.")
let queries_arg = Arg.(value & opt (some int) None & info [ "queries" ] ~doc:"Query list of one peer.")
let lanes_arg = Arg.(value & flag & info [ "lanes" ] ~doc:"Time-space lane view (small traces).")

let infer_k events =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Trace.Sent { src; dst; _ } | Trace.Delivered { src; dst; _ } -> max acc (max src dst + 1)
      | Trace.Queried { peer; _ }
      | Trace.Crashed { peer; _ }
      | Trace.Terminated { peer; _ }
      | Trace.Note { peer; _ } ->
        max acc (peer + 1)
      | Trace.Deadlocked { blocked; _ } ->
        List.fold_left (fun acc p -> max acc (p + 1)) acc blocked)
    0 events

let summary trace =
  let events = Trace.events trace in
  let count p = List.length (List.filter p events) in
  let time_of = function
    | Trace.Sent { time; _ }
    | Trace.Delivered { time; _ }
    | Trace.Queried { time; _ }
    | Trace.Crashed { time; _ }
    | Trace.Terminated { time; _ }
    | Trace.Deadlocked { time; _ }
    | Trace.Note { time; _ } ->
      time
  in
  let span =
    List.fold_left (fun (lo, hi) ev -> (min lo (time_of ev), max hi (time_of ev)))
      (infinity, neg_infinity) events
  in
  Printf.printf "events:       %d\n" (List.length events);
  Printf.printf "peers:        %d\n" (infer_k events);
  Printf.printf "sends:        %d\n" (count (function Trace.Sent _ -> true | _ -> false));
  Printf.printf "deliveries:   %d\n" (count (function Trace.Delivered _ -> true | _ -> false));
  Printf.printf "queries:      %d\n" (count (function Trace.Queried _ -> true | _ -> false));
  Printf.printf "crashes:      %d\n" (count (function Trace.Crashed _ -> true | _ -> false));
  Printf.printf "terminations: %d\n" (count (function Trace.Terminated _ -> true | _ -> false));
  if events <> [] then Printf.printf "time span:    [%.3f, %.3f]\n" (fst span) (snd span)

let run file summary_flag matrix_flag peer queries lanes =
  let trace = Trace.load file in
  let events = Trace.events trace in
  let k = infer_k events in
  let nothing_asked =
    (not summary_flag) && (not matrix_flag) && (not lanes) && peer = None && queries = None
  in
  if summary_flag || nothing_asked then summary trace;
  if matrix_flag then begin
    Format.printf "%a@." (Trace_stats.pp_matrix ~label:"msgs") (Trace_stats.message_matrix trace ~k);
    Format.printf "%a@." (Trace_stats.pp_matrix ~label:"bits") (Trace_stats.bits_matrix trace ~k)
  end;
  (match peer with
  | Some p ->
    List.iter (fun ev -> Format.printf "%a@." Trace.pp_event ev) (Trace.events_of_peer trace p)
  | None -> ());
  (match queries with
  | Some p ->
    List.iter (fun (i, v) -> Printf.printf "X[%d] = %b\n" i v) (Trace.query_view trace p)
  | None -> ());
  if lanes then Format.printf "%a" (fun ppf tr -> Trace_stats.pp_lanes ~k ppf tr) trace;
  `Ok ()

let cmd =
  Cmd.v
    (Cmd.info "dr_trace" ~doc:"Analyse a saved execution trace")
    Term.(ret (const run $ file_arg $ summary_arg $ matrix_arg $ peer_arg $ queries_arg $ lanes_arg))

let () = exit (Cmd.eval cmd)
