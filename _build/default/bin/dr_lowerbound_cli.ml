(* dr_lowerbound: run the executable lower-bound constructions of
   Theorems 3.1 (deterministic) and 3.2 (randomized). *)

open Cmdliner
open Dr_core
module Det_lower = Dr_lowerbound.Det_lower
module Rand_lower = Dr_lowerbound.Rand_lower

let peers = Arg.(value & opt int 8 & info [ "k"; "peers" ] ~doc:"Peers.")
let bits = Arg.(value & opt int 256 & info [ "n"; "bits" ] ~doc:"Input size in bits.")
let runs = Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Seeds for the randomized attack.")

let det k n =
  print_endline "=== Theorem 3.1: deterministic lower bound (mirror construction) ===";
  let run ?opts inst = Committee.run_with ?opts ~committee_size:6 ~threshold:2 inst in
  let f_set = List.init ((k / 2) - 1) (fun i -> k - 1 - i) in
  match Det_lower.demonstrate ~run ~f_set ~b:72 ~k ~n () with
  | Error e -> Printf.printf "construction not applicable: %s\n" e
  | Ok ev ->
    Printf.printf "victim:            peer %d\n" ev.Det_lower.victim;
    Printf.printf "E1 (crash) ok:     %b, victim queried %d/%d bits\n"
      ev.Det_lower.e1.Problem.ok ev.Det_lower.e1_victim_queries n;
    Printf.printf "hidden bit:        %d (never queried by the victim)\n" ev.Det_lower.hidden_bit;
    Printf.printf "corrupted set:     [%s] (simulating the all-zeros world)\n"
      (String.concat "," (List.map string_of_int ev.Det_lower.corrupted));
    Printf.printf "victim fooled:     %b\n" ev.Det_lower.victim_fooled;
    Printf.printf "views identical:   %b (indistinguishability, machine-checked)\n"
      ev.Det_lower.views_identical

let rand k n runs =
  print_endline "\n=== Theorem 3.2: randomized lower bound (mirror adversary over seeds) ===";
  let run ?opts inst = Byz_2cycle.run_with ?opts ~attack:Byz_2cycle.Mirror ~segments:3 ~rho:1 inst in
  let seeds = List.init runs (fun i -> Int64.of_int (i + 1)) in
  let r = Rand_lower.attack ~run ~f_count:4 ~k ~n ~seeds () in
  Printf.printf "runs:                  %d\n" r.Rand_lower.runs;
  Printf.printf "victim mean queries q: %.1f of n = %d\n" r.Rand_lower.q_mean r.Rand_lower.n;
  Printf.printf "predicted failure:     >= 1 - q/n = %.2f\n" r.Rand_lower.predicted_failure_floor;
  Printf.printf "measured failure rate: %.2f\n" r.Rand_lower.failure_rate;
  Printf.printf "hidden-bit hit rate:   %.2f (survival requires hitting it)\n"
    r.Rand_lower.victim_hit_rate

let run k n runs_count =
  det k n;
  rand (max k 21) n runs_count;
  `Ok ()

let cmd =
  Cmd.v
    (Cmd.info "dr_lowerbound" ~doc:"Executable lower bounds for Byzantine-majority Download")
    Term.(ret (const run $ peers $ bits $ runs))

let () = exit (Cmd.eval cmd)
