(* dr_oracle: compare the classical oracle data-collection step with the
   paper's Download-based construction (Section 4). *)

open Cmdliner
module Odc = Dr_oracle.Odc
module Table = Dr_stats.Table

let peers = Arg.(value & opt int 16 & info [ "k"; "peers" ] ~doc:"Oracle-network nodes.")
let peer_faults = Arg.(value & opt int 3 & info [ "t"; "byz-peers" ] ~doc:"Byzantine nodes.")
let sources = Arg.(value & opt int 7 & info [ "m"; "sources" ] ~doc:"Available data sources.")

let source_faults =
  Arg.(value & opt int 2 & info [ "ts"; "byz-sources" ] ~doc:"Byzantine data sources.")

let cells = Arg.(value & opt int 64 & info [ "d"; "cells" ] ~doc:"Cells per source.")
let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Random seed.")

let run peers peer_faults sources source_faults cells seed =
  let p = { Odc.peers; peer_faults; sources; source_faults; cells; seed } in
  match Odc.validate p with
  | Error e -> `Error (false, e)
  | Ok () ->
    let reports =
      [
        Odc.baseline p;
        Odc.download_based ~protocol:`Committee p;
        Odc.download_based ~protocol:`Two_cycle p;
        Odc.download_based ~protocol:`Naive p;
      ]
    in
    let table =
      Table.create
        [ "method"; "ODD ok"; "honest nodes ok"; "cell queries (total)"; "max/node"; "exact dl" ]
    in
    List.iter
      (fun r ->
        Table.add_row table
          [
            r.Odc.method_name;
            Table.cell_bool r.Odc.odd_ok;
            Table.cell_int r.Odc.honest_reports_ok;
            Table.cell_int r.Odc.cell_queries_total;
            Table.cell_int r.Odc.cell_queries_max_node;
            Table.cell_bool r.Odc.download_ok;
          ])
      reports;
    Table.print table;
    let base = (List.nth reports 0).Odc.cell_queries_total in
    let dl = (List.nth reports 1).Odc.cell_queries_total in
    Printf.printf "\nDownload-based saving: %.1fx fewer total cell queries (Theorem 4.2)\n"
      (float_of_int base /. float_of_int (max 1 dl));
    `Ok ()

let cmd =
  Cmd.v
    (Cmd.info "dr_oracle" ~doc:"Oracle data-collection comparison (Section 4)")
    Term.(ret (const run $ peers $ peer_faults $ sources $ source_faults $ cells $ seed))

let () = exit (Cmd.eval cmd)
