(* Bechamel wall-clock microbenches: one Test.make per experiment table,
   timing a representative (smaller) workload of that table so simulator
   throughput regressions show up. *)

open Bechamel
open Toolkit
open Dr_core
open Exp_common
module Crash_plan = Dr_adversary.Crash_plan

let stage f = Staged.stage f

let t_table1_crash =
  Test.make ~name:"table1/crash-general"
    (stage (fun () ->
         let inst = crash_inst ~seed:1L ~k:16 ~n:2048 ~t:6 () in
         ignore (Crash_general.run ~opts:(storm_opts inst 1L) inst)))

let t_table1_committee =
  Test.make ~name:"table1/byz-committee"
    (stage (fun () ->
         let inst = byz_inst ~seed:1L ~k:16 ~n:2048 ~t:4 () in
         ignore (Committee.run_with ~attack:Committee.Equivocate inst)))

let t_table1_2cycle =
  Test.make ~name:"table1/byz-2cycle"
    (stage (fun () ->
         let inst = byz_inst ~seed:1L ~k:64 ~n:4096 ~t:8 () in
         ignore (Byz_2cycle.run_with ~attack:Byz_2cycle.Near_miss inst)))

let t_table1_multicycle =
  Test.make ~name:"table1/byz-multicycle"
    (stage (fun () ->
         let inst = byz_inst ~seed:1L ~k:64 ~n:4096 ~t:8 () in
         ignore (Byz_multicycle.run_with ~attack:Byz_multicycle.Near_miss inst)))

let t_crash_single =
  Test.make ~name:"E-2.3/crash-single"
    (stage (fun () ->
         let inst = crash_inst ~seed:2L ~k:8 ~n:1024 ~t:1 () in
         let opts =
           Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:2)
             Exec.default
         in
         ignore (Crash_single.run ~opts inst)))

let t_lowerbound_det =
  Test.make ~name:"E-3.1/det-lowerbound"
    (stage (fun () ->
         let run ?opts inst = Committee.run_with ?opts ~committee_size:6 ~threshold:2 inst in
         ignore (Dr_lowerbound.Det_lower.demonstrate ~run ~f_set:[ 5; 6; 7 ] ~b:72 ~k:8 ~n:128 ())))

let t_lowerbound_rand =
  Test.make ~name:"E-3.2/rand-lowerbound"
    (stage (fun () ->
         let run ?opts inst =
           Byz_2cycle.run_with ?opts ~attack:Byz_2cycle.Mirror ~segments:3 ~rho:1 inst
         in
         ignore
           (Dr_lowerbound.Rand_lower.attack ~run ~f_count:4 ~k:21 ~n:128
              ~seeds:[ 1L; 2L; 3L ] ())))

let t_oracle =
  Test.make ~name:"E-4/oracle-odc"
    (stage (fun () ->
         let p =
           { Dr_oracle.Odc.peers = 9; peer_faults = 2; sources = 5; source_faults = 2;
             cells = 32; seed = 4L }
         in
         ignore (Dr_oracle.Odc.download_based p)))

let t_engine =
  Test.make ~name:"engine/message-storm"
    (stage (fun () ->
         (* Raw simulator throughput: an all-to-all broadcast round. *)
         let module M = struct
           type t = int

           let size_bits _ = 64
           let tag _ = "x"
         end in
         let module S = Dr_engine.Sim.Make (M) in
         let cfg =
           Dr_engine.Sim.default_config ~k:64 ~query_bit:(fun ~peer:_ _ -> false)
         in
         ignore
           (S.run cfg (fun i ->
                S.broadcast i;
                for _ = 1 to 63 do
                  ignore (S.receive ())
                done;
                i))))

let all_tests =
  [
    t_engine;
    t_table1_crash;
    t_table1_committee;
    t_table1_2cycle;
    t_table1_multicycle;
    t_crash_single;
    t_lowerbound_det;
    t_lowerbound_rand;
    t_oracle;
  ]

let run () =
  section "Bechamel microbenches (wall-clock per full simulated execution)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) ~stabilize:false () in
  let grouped = Test.make_grouped ~name:"dr" ~fmt:"%s %s" all_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let table = Dr_stats.Table.create [ "bench"; "time/run" ] in
  (match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> ()
  | Some per_test ->
    let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) per_test [] in
    List.iter
      (fun (name, ols_result) ->
        let value =
          match Analyze.OLS.estimates ols_result with
          | Some (v :: _) ->
            if v > 1e9 then Printf.sprintf "%.2f s" (v /. 1e9)
            else if v > 1e6 then Printf.sprintf "%.2f ms" (v /. 1e6)
            else Printf.sprintf "%.0f us" (v /. 1e3)
          | Some [] | None -> "n/a"
        in
        Dr_stats.Table.add_row table [ name; value ])
      (List.sort compare rows));
  Dr_stats.Table.print table
