bench/exp_oracle.ml: Array Dr_adversary Dr_oracle Dr_stats Exp_common List Printf
