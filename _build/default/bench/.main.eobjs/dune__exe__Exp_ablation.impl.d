bench/exp_ablation.ml: Balanced Byz_2cycle Crash_general Crash_single Dr_adversary Dr_core Dr_engine Dr_source Dr_stats Exec Exp_common Int64 List Printf Problem
