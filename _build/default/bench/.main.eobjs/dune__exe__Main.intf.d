bench/main.mli:
