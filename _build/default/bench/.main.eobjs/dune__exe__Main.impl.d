bench/main.ml: Array Bench_micro Exp_ablation Exp_byz Exp_crash Exp_lowerbound Exp_oracle Exp_table1 List Printf String Sys
