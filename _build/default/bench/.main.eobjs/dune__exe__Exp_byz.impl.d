bench/exp_byz.ml: Byz_2cycle Byz_multicycle Committee Dr_core Dr_stats Exec Exp_common Int64 List Printf Problem
