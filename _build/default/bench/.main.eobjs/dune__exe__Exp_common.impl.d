bench/exp_common.ml: Dr_adversary Dr_core Dr_engine Dr_stats Exec Int64 List Printf Problem
