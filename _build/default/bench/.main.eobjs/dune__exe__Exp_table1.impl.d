bench/exp_table1.ml: Balanced Byz_2cycle Byz_multicycle Committee Crash_general Dr_core Dr_stats Exec Exp_common Float List Naive Printf Problem Spec
