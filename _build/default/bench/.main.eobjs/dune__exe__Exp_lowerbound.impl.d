bench/exp_lowerbound.ml: Byz_2cycle Committee Dr_core Dr_lowerbound Dr_stats Exp_common Int64 List Printf String
