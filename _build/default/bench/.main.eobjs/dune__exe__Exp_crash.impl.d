bench/exp_crash.ml: Crash_general Crash_single Dr_adversary Dr_core Dr_engine Dr_source Dr_stats Exec Exp_common List Printf Problem
