(* Experiments E-3.1 and E-3.2: the Byzantine-majority lower bounds run as
   constructions, with the measured failure probability against the
   theoretical floor 1 - q/n. *)

open Dr_core
open Exp_common
module Table = Dr_stats.Table
module Det_lower = Dr_lowerbound.Det_lower
module Rand_lower = Dr_lowerbound.Rand_lower

let deterministic () =
  section "E-3.1: Theorem 3.1 — the two-execution construction, machine-checked";
  let run ?opts inst = Committee.run_with ?opts ~committee_size:6 ~threshold:2 inst in
  match Det_lower.demonstrate ~run ~f_set:[ 5; 6; 7 ] ~b:72 ~k:8 ~n:256 () with
  | Error e -> note "construction failed: %s\n" e
  | Ok ev ->
    let table = Table.create [ "fact"; "value" ] in
    Table.add_row table [ "victim"; string_of_int ev.Det_lower.victim ];
    Table.add_row table
      [ "E1 victim queries"; Printf.sprintf "%d / 256" ev.Det_lower.e1_victim_queries ];
    Table.add_row table [ "hidden bit"; string_of_int ev.Det_lower.hidden_bit ];
    Table.add_row table
      [ "corrupted coalition"; String.concat "," (List.map string_of_int ev.Det_lower.corrupted) ];
    Table.add_row table [ "victim fooled in E2"; string_of_bool ev.Det_lower.victim_fooled ];
    Table.add_row table [ "views identical"; string_of_bool ev.Det_lower.views_identical ];
    Table.print table;
    note
      "\nAny deterministic protocol with Q < n at beta >= 1/2 yields such a pair of\n\
       executions; only the naive protocol (Q = n) escapes — Theorem 3.1 is tight.\n"

let randomized () =
  section "E-3.2: Theorem 3.2 — mirror adversary failure rate vs query budget";
  let table =
    Table.create [ "segments s"; "q mean"; "q/n"; "predicted fail >="; "measured fail"; "hit rate" ]
  in
  let n = 512 in
  let rows =
    Dr_stats.Par.map
      (fun s ->
        let run ?opts inst =
          Byz_2cycle.run_with ?opts ~attack:Byz_2cycle.Mirror ~segments:s ~rho:1 inst
        in
        let seeds = List.init 150 (fun i -> Int64.of_int ((s * 1000) + i + 1)) in
        (s, Rand_lower.attack ~run ~f_count:4 ~k:21 ~n ~seeds ()))
      [ 2; 3; 4; 6; 8 ]
  in
  List.iter
    (fun (s, r) ->
      Table.add_row table
        [
          string_of_int s;
          Printf.sprintf "%.0f" r.Rand_lower.q_mean;
          Printf.sprintf "%.2f" (r.Rand_lower.q_mean /. float_of_int n);
          Printf.sprintf "%.2f" r.Rand_lower.predicted_failure_floor;
          Printf.sprintf "%.2f" r.Rand_lower.failure_rate;
          Printf.sprintf "%.2f" r.Rand_lower.victim_hit_rate;
        ])
    rows;
  Table.print table;
  note
    "\nEach row: the victim spends q ~ n/s queries, and the mirror adversary wins with\n\
     probability ~ 1 - q/n — the Theorem 3.2 tradeoff, point by point.\n"

let run () =
  deterministic ();
  randomized ()
