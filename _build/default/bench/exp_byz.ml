(* Experiments E-3.4, E-3.7 and E-3.12: the Byzantine-minority upper bounds.

   E-3.4  — deterministic committees: Q = (2t+1)·n/k and the crossover with
            naive as beta approaches 1/2.
   E-3.7  — the 2-cycle randomized protocol: the three segment-count regimes
            and the measured w.h.p. success rate vs the Chernoff budget.
   E-3.12 — the multi-cycle protocol: expected Q vs the 2-cycle protocol. *)

open Dr_core
open Exp_common
module Table = Dr_stats.Table
module Summary = Dr_stats.Summary
module Chernoff = Dr_stats.Chernoff

let committee_crossover () =
  section "E-3.4: deterministic committees — Q = (2t+1)n/k and the naive crossover";
  let k = 32 and n = 16384 in
  let table = Table.create [ "beta"; "t"; "Q committee"; "(2t+1)n/k"; "Q naive"; "winner"; "ok" ] in
  List.iter
    (fun t ->
      let inst = byz_inst ~seed:21L ~k ~n ~t () in
      let r =
        Committee.run_with
          ~opts:(Exec.with_latency (jitter 21L) Exec.default)
          ~attack:Committee.Equivocate inst
      in
      let theory = ((2 * t) + 1) * n / k in
      Table.add_row table
        [
          Printf.sprintf "%.3f" (Problem.beta inst);
          string_of_int t;
          string_of_int r.Problem.q_max;
          string_of_int theory;
          string_of_int n;
          (if r.Problem.q_max < n then "committee" else "naive");
          (if r.Problem.ok then "yes" else "NO");
        ])
    [ 1; 2; 4; 8; 12; 14; 15 ];
  Table.print table;
  note
    "\nQ grows linearly in 2t+1 and meets the naive line exactly as beta -> 1/2:\n\
     the deterministic price of Byzantine faults ([3]'s lower bound, met).\n"

let two_cycle_regimes () =
  section "E-3.7: 2-cycle protocol — the three segment-count regimes";
  let table =
    Table.create [ "k"; "t"; "n"; "case"; "s"; "rho"; "Q"; "n/s + k"; "Q/n"; "ok" ]
  in
  List.iter
    (fun (k, t, n) ->
      let inst = byz_inst ~seed:23L ~k ~n ~t () in
      let s, rho = Byz_2cycle.plan ~k ~n ~t in
      let case = if s = 1 then "3 (naive)" else if s >= n then "2" else "1" in
      let r =
        Byz_2cycle.run_with
          ~opts:(Exec.with_latency (jitter 23L) Exec.default)
          ~attack:Byz_2cycle.Near_miss inst
      in
      Table.add_row table
        [
          string_of_int k;
          string_of_int t;
          string_of_int n;
          case;
          string_of_int s;
          string_of_int rho;
          string_of_int r.Problem.q_max;
          string_of_int ((n / s) + k);
          Printf.sprintf "%.3f" (float_of_int r.Problem.q_max /. float_of_int n);
          (if r.Problem.ok then "yes" else "NO");
        ])
    [
      (16, 4, 8192) (* case 3: too few peers, falls back to naive *);
      (128, 8, 32768) (* case 1: full segmentation *);
      (128, 32, 32768) (* case 1, higher beta -> fewer segments *);
      (256, 16, 65536) (* case 1, larger network *);
      (512, 64, 65536);
    ];
  Table.print table

let two_cycle_whp () =
  section "E-3.7: 2-cycle protocol — measured failure rate vs Chernoff budget";
  let k = 96 and n = 4096 and t = 16 in
  let s, rho = Byz_2cycle.plan ~k ~n ~t in
  let runs = 200 in
  let outcomes =
    Dr_stats.Par.map
      (fun seed ->
        let inst = byz_inst ~seed ~k ~n ~t () in
        let opts = Exec.with_latency (jitter seed) Exec.default in
        (Byz_2cycle.run_with ~opts ~attack:Byz_2cycle.Consistent_lie inst).Problem.ok)
      (List.init runs (fun i -> Int64.of_int (i + 1)))
  in
  let failures = ref (List.length (List.filter not outcomes)) in
  let predicted = Chernoff.coverage_failure ~honest:(k - (2 * t)) ~segments:s ~rho in
  note "k=%d t=%d n=%d: s=%d rho=%d\n" k t n s rho;
  note "measured failures: %d / %d runs (rate %.4f)\n" !failures runs
    (float_of_int !failures /. float_of_int runs);
  note "Chernoff/union budget for the coverage event: %.2e\n" predicted

let multicycle_vs_two_cycle () =
  section "E-3.12: multi-cycle vs 2-cycle — decision-tree spend under flooding (30 seeds)";
  (* Same base share for both (s = s1 = 4, rho = 1), worst-case flood attack:
     32 coalitions each push a distinct forged candidate for segment 0. The
     2-cycle protocol makes every peer resolve every segment, so everyone
     pays the flooded tree; the multi-cycle protocol only pays when its own
     pick covers the flooded segment — the expectation argument of the
     theorem, isolated in the tree-queries column. *)
  let k = 128 and n = 8192 and t = 32 in
  let s = 4 in
  let base = n / s in
  let runs proto =
    over_seeds ~seeds:30 (fun seed ->
        let inst = byz_inst ~seed ~k ~n ~t () in
        let opts = Exec.with_latency (jitter seed) Exec.default in
        match proto with
        | `Two -> Byz_2cycle.run_with ~opts ~attack:(Byz_2cycle.Flood 32) ~segments:s ~rho:1 inst
        | `Multi ->
          Byz_multicycle.run_with ~opts ~attack:(Byz_multicycle.Flood 32) ~segments:s ~rho:1 inst)
  in
  let r2 = runs `Two and rm = runs `Multi in
  let table =
    Table.create
      [ "protocol"; "base n/s"; "mean tree Q/peer"; "max tree Q"; "bits sent (mean)"; "all ok" ]
  in
  let row name rs =
    let mean_tree =
      Summary.of_floats (List.map (fun r -> r.Problem.q_mean -. float_of_int base) rs)
    in
    let max_tree = Summary.of_ints (List.map (fun r -> r.Problem.q_max - base) rs) in
    let bits = Summary.of_ints (List.map (fun r -> r.Problem.bits_sent) rs) in
    Table.add_row table
      [
        name;
        string_of_int base;
        Printf.sprintf "%.1f" mean_tree.Summary.mean;
        Printf.sprintf "%.0f" max_tree.Summary.max;
        Printf.sprintf "%.2e" bits.Summary.mean;
        (if List.for_all (fun r -> r.Problem.ok) rs then "yes" else "NO");
      ]
  in
  row "2-cycle (Thm 3.7)" r2;
  row "multi-cycle (Thm 3.12)" rm;
  Table.print table;
  note
    "\nUnder sustained per-cycle flooding the 2-cycle protocol charges every peer the\n\
     flooded tree once; the multi-cycle protocol charges only peers whose pick covers\n\
     the flooded region in early cycles but re-exposes everyone in the final cycles,\n\
     and ships Theta(n)-bit messages there — the expectation-vs-message tradeoff the\n\
     two theorems negotiate.\n"

let attack_catalog () =
  section "E-3.7: 2-cycle protocol under every catalog attack (k=128, t=16)";
  let k = 128 and n = 16384 and t = 16 in
  let table = Table.create [ "attack"; "Q"; "T"; "ok" ] in
  List.iter
    (fun (label, attack) ->
      let inst = byz_inst ~seed:31L ~k ~n ~t () in
      let opts = Exec.with_latency (jitter 31L) Exec.default in
      let r = Byz_2cycle.run_with ~opts ~attack inst in
      Table.add_row table
        [
          label;
          string_of_int r.Problem.q_max;
          Printf.sprintf "%.1f" r.Problem.time;
          (if r.Problem.ok then "yes" else "NO");
        ])
    [
      ("silent", Byz_2cycle.Silent);
      ("near-miss strings", Byz_2cycle.Near_miss);
      ("consistent lie", Byz_2cycle.Consistent_lie);
      ("equivocation", Byz_2cycle.Equivocate);
    ];
  Table.print table;
  note "\nnear-miss forgeries cost extra decision-tree queries; equivocation dies at rho.\n"

let run () =
  committee_crossover ();
  two_cycle_regimes ();
  two_cycle_whp ();
  multicycle_vs_two_cycle ();
  attack_catalog ()
