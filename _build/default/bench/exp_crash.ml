(* Experiments E-2.3 and E-2.13: the crash-fault theorems, measured.

   E-2.3  — Algorithm 1 meets its exact bound Q <= ceil(n/k) + ceil(n/k/(k-1)).
   E-2.13 — Algorithm 2 meets Q = O(n/(gamma k)) for every beta < 1, scales
            with n, and the fast path removes the long-report wait from T. *)

open Dr_core
open Exp_common
module Table = Dr_stats.Table
module Fault = Dr_adversary.Fault
module Crash_plan = Dr_adversary.Crash_plan

let algorithm1 () =
  section "E-2.3: Algorithm 1 (single crash) — Q vs the exact bound";
  let table = Table.create [ "k"; "n"; "crash"; "Q"; "bound"; "T"; "ok" ] in
  List.iter
    (fun (k, n) ->
      List.iter
        (fun after_sends ->
          let inst = crash_inst ~seed:11L ~k ~n ~t:1 () in
          let opts =
            Exec.default
            |> Exec.with_latency (jitter 11L)
            |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends)
          in
          let r = Crash_single.run ~opts inst in
          let bound = ((n + k - 1) / k) + ((((n + k - 1) / k) + k - 2) / (k - 1)) in
          Table.add_row table
            [
              string_of_int k;
              string_of_int n;
              Printf.sprintf "after %d sends" after_sends;
              string_of_int r.Problem.q_max;
              string_of_int bound;
              Printf.sprintf "%.1f" r.Problem.time;
              (if r.Problem.ok then "yes" else "NO");
            ])
        [ 0; 3 ])
    [ (8, 1024); (16, 4096); (32, 16384) ];
  Table.print table

let algorithm2_beta_sweep () =
  section "E-2.13: Algorithm 2 — Q vs beta (n = 16384, k = 32)";
  let k = 32 and n = 16384 in
  let table =
    Table.create [ "beta"; "t"; "Q"; "n/(gamma k) + n/k"; "Q/ideal"; "phases proxy T"; "M"; "ok" ]
  in
  List.iter
    (fun t ->
      let inst = crash_inst ~seed:13L ~k ~n ~t () in
      let r = Crash_general.run ~opts:(silent_opts inst 13L) inst in
      let gamma = Problem.gamma inst in
      let theory = (float_of_int n /. (gamma *. float_of_int k)) +. float_of_int (n / k) in
      Table.add_row table
        [
          Printf.sprintf "%.3f" (Problem.beta inst);
          string_of_int t;
          string_of_int r.Problem.q_max;
          Printf.sprintf "%.0f" theory;
          fmt_ratio r.Problem.q_max (ideal_q inst);
          Printf.sprintf "%.1f" r.Problem.time;
          string_of_int r.Problem.msgs;
          (if r.Problem.ok then "yes" else "NO");
        ])
    [ 0; 4; 8; 16; 24; 28; 31 ];
  Table.print table;
  note "\nQ stays within a small factor of the ideal n/k until gamma collapses, as 1/gamma predicts.\n"

let algorithm2_n_sweep () =
  section "E-2.13: Algorithm 2 — Q scales linearly in n (k = 32, beta = 1/2)";
  let k = 32 and t = 16 in
  let table = Table.create [ "n"; "Q"; "Q*k*gamma/n"; "T"; "ok" ] in
  List.iter
    (fun n ->
      let inst = crash_inst ~seed:17L ~k ~n ~t () in
      let r = Crash_general.run ~opts:(silent_opts inst 17L) inst in
      Table.add_row table
        [
          string_of_int n;
          string_of_int r.Problem.q_max;
          Printf.sprintf "%.2f" (float_of_int (r.Problem.q_max * k) *. 0.5 /. float_of_int n);
          Printf.sprintf "%.1f" r.Problem.time;
          (if r.Problem.ok then "yes" else "NO");
        ])
    [ 1024; 4096; 16384; 65536 ];
  Table.print table;
  note "\nThe normalized column is flat: Q = Theta(n/(gamma k)).\n"

let fast_path () =
  section "E-2.13: Theorem 2.13 fast path — T with B-limited links";
  let k = 8 in
  let fault = Fault.choose ~k (Fault.Explicit [ 0; 7 ]) in
  let x = Dr_source.Bitarray.random (Dr_engine.Prng.create 77L) 8192 in
  let inst = Problem.make ~k ~x fault in
  let latency ~src ~dst ~time ~size_bits =
    ignore (time, size_bits);
    if src = 0 && dst = 1 then 3.0 else 0.5
  in
  let crash i = if i = 7 then Dr_engine.Sim.After_sends 0 else Dr_engine.Sim.Never in
  let opts =
    Exec.default
    |> Exec.with_latency latency
    |> Exec.with_link_rate (float_of_int inst.Problem.b)
    |> Exec.with_crash crash
  in
  let table = Table.create [ "variant"; "T"; "Q"; "ok" ] in
  List.iter
    (fun (label, fast_path) ->
      let r = Crash_general.run_with ~opts ~fast_path inst in
      Table.add_row table
        [
          label;
          Printf.sprintf "%.1f" r.Problem.time;
          string_of_int r.Problem.q_max;
          (if r.Problem.ok then "yes" else "NO");
        ])
    [ ("with fast path (Thm 2.13)", true); ("without (plain Algorithm 2)", false) ];
  Table.print table;
  note
    "\nThe fast path releases the stage-3 wait on the slow-but-alive peer's own\n\
     reply instead of third-party long reports about it.\n"

let run () =
  algorithm1 ();
  algorithm2_beta_sweep ();
  algorithm2_n_sweep ();
  fast_path ()
