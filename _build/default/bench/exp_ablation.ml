(* Ablations A-1..A-3 for the design choices called out in DESIGN.md.

   A-1 — the rho threshold of the randomized protocols: too low admits
         forged candidates into every tree (queries go up), too high starves
         the waiting condition (deadlock).
   A-2 — latency policies: Q is schedule-independent for the deterministic
         protocols; T tracks the adversary's delays.
   A-3 — the message bound B: with B-limited links, T scales as ~1/B. *)

open Dr_core
open Exp_common
module Table = Dr_stats.Table
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan

let rho_ablation () =
  section "A-1: rho threshold sweep (2-cycle, k=96, t=16, s=4)";
  let k = 96 and n = 8192 and t = 16 in
  let table = Table.create [ "rho"; "ok runs /10"; "deadlocks"; "mean Q (ok runs)" ] in
  List.iter
    (fun rho ->
      let ok = ref 0 and dead = ref 0 and qsum = ref 0 in
      List.iter
        (fun seed ->
          let inst = byz_inst ~seed ~k ~n ~t () in
          let opts = Exec.with_latency (jitter seed) Exec.default in
          let r = Byz_2cycle.run_with ~opts ~attack:(Byz_2cycle.Flood 16) ~segments:4 ~rho inst in
          if r.Problem.ok then begin
            incr ok;
            qsum := !qsum + r.Problem.q_max
          end;
          match r.Problem.status with
          | Dr_engine.Sim.Deadlock _ -> incr dead
          | _ -> ())
        (List.init 10 (fun i -> Int64.of_int (i + 1)));
      Table.add_row table
        [
          string_of_int rho;
          string_of_int !ok;
          string_of_int !dead;
          (if !ok = 0 then "-" else string_of_int (!qsum / !ok));
        ])
    [ 1; 2; 4; 8; 12; 16; 24 ];
  Table.print table;
  note
    "\nToo low a threshold admits every one of the 16 distinct forged candidates into\n\
     the segment-0 tree (extra queries); the proofs' rho = h/(2s) = %d filters them\n\
     while staying safely below the starvation region where waits deadlock.\n"
    (max 1 ((k - (2 * t)) / (2 * 4)))

let latency_ablation () =
  section "A-2: schedule ablation (crash-general, k=32, n=16384, beta=1/4)";
  let k = 32 and n = 16384 and t = 8 in
  let table = Table.create [ "schedule"; "Q"; "T"; "M"; "ok" ] in
  List.iter
    (fun (label, mk_latency) ->
      let inst = crash_inst ~seed:41L ~k ~n ~t () in
      let opts =
        Exec.default
        |> Exec.with_latency (mk_latency inst)
        |> Exec.with_crash (Crash_plan.staggered inst.Problem.fault ~first:0.5 ~gap:2.0)
      in
      let r = Crash_general.run ~opts inst in
      Table.add_row table
        [
          label;
          string_of_int r.Problem.q_max;
          Printf.sprintf "%.1f" r.Problem.time;
          string_of_int r.Problem.msgs;
          (if r.Problem.ok then "yes" else "NO");
        ])
    [
      ("unit (synchronous-like)", fun _ -> Latency.unit_delay);
      ("uniform jitter (0,1]", fun _ -> jitter 41L);
      ( "targeted: honest half slowed 10x",
        fun _ -> Latency.targeted ~slow:(fun i -> i mod 2 = 0) ~delay:10. );
      ( "rushing: faulty fast",
        fun inst ->
          Latency.rushing ~fast:(Dr_adversary.Fault.is_faulty inst.Problem.fault) ~eps:0.01 );
    ];
  Table.print table;
  note "\nQ is schedule-invariant (determinism); only T follows the adversary.\n"

let message_bound_ablation () =
  section "A-3: message bound B vs time (crash-general, B-limited links)";
  let k = 16 and n = 8192 and t = 4 in
  let table = Table.create [ "B bits"; "T"; "max msg"; "M"; "ok" ] in
  List.iter
    (fun b ->
      let inst = crash_inst ~seed:43L ~b ~k ~n ~t () in
      let opts =
        Exec.default
        |> Exec.with_link_rate (float_of_int b)
        |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:2)
      in
      let r = Crash_general.run ~opts inst in
      Table.add_row table
        [
          string_of_int b;
          Printf.sprintf "%.1f" r.Problem.time;
          string_of_int r.Problem.max_msg_bits;
          string_of_int r.Problem.msgs;
          (if r.Problem.ok then "yes" else "NO");
        ])
    [ 256; 512; 1024; 2048; 4096 ];
  Table.print table;
  note "\nWith links transmitting B bits per unit, T shrinks as B grows (the paper's n/(kB) term).\n"

let exploration () =
  section "A-4: systematic schedule exploration (bounded DFS over delivery orders)";
  let module Explore = Dr_engine.Explore in
  let module Fault = Dr_adversary.Fault in
  let module Bitarray = Dr_source.Bitarray in
  let table =
    Table.create [ "protocol"; "k"; "n"; "crash"; "schedules"; "exhausted"; "failures"; "depth" ]
  in
  let row label run k n crash_label budget =
    let r = Explore.dfs ~budget ~run in
    Table.add_row table
      [
        label;
        string_of_int k;
        string_of_int n;
        crash_label;
        string_of_int r.Explore.schedules_run;
        (if r.Explore.exhausted then "yes" else "no (prefix)");
        string_of_int r.Explore.failures;
        string_of_int r.Explore.max_depth;
      ]
  in
  let balanced_inst = Problem.random_instance ~seed:5L ~k:2 ~n:2 ~t:0 () in
  row "balanced" (fun ~arbiter ->
      (Balanced.run ~opts:(Exec.with_arbiter arbiter Exec.default) balanced_inst).Problem.ok)
    2 2 "none" 100_000;
  let single_inst =
    let x = Bitarray.random (Dr_engine.Prng.create 3L) 3 in
    Problem.make ~k:3 ~x (Fault.choose ~k:3 (Fault.Explicit [ 2 ]))
  in
  row "crash-single" (fun ~arbiter ->
      let opts =
        Exec.default
        |> Exec.with_crash (Crash_plan.mid_broadcast single_inst.Problem.fault ~after_sends:1)
        |> Exec.with_arbiter arbiter
      in
      (Crash_single.run ~opts single_inst).Problem.ok)
    3 3 "after 1 send" 4_000;
  let general_inst =
    let x = Bitarray.random (Dr_engine.Prng.create 7L) 4 in
    Problem.make ~k:4 ~x (Fault.choose ~k:4 (Fault.Explicit [ 1 ]))
  in
  row "crash-general" (fun ~arbiter ->
      let opts =
        Exec.default
        |> Exec.with_crash (Crash_plan.mid_broadcast general_inst.Problem.fault ~after_sends:2)
        |> Exec.with_arbiter arbiter
      in
      (Crash_general.run ~opts general_inst).Problem.ok)
    4 4 "after 2 sends" 4_000;
  Table.print table;
  note
    "\nEvery explored delivery order downloads correctly. The 2-peer space is covered\n\
     exhaustively; larger instances get a lexicographic DFS prefix of the schedule tree.\n"

let run () =
  rho_ablation ();
  latency_ablation ();
  message_bound_ablation ();
  exploration ()
