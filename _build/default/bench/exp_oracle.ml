(* Experiment E-4: the blockchain-oracle application (Theorems 4.1/4.2).
   Total cell queries of the classical ODC step vs the Download-based step;
   the saving factor grows like gamma*k with the oracle network size. *)

open Exp_common
module Odc = Dr_oracle.Odc
module Pipeline = Dr_oracle.Pipeline
module Feed = Dr_oracle.Feed
module Fault = Dr_adversary.Fault
module Table = Dr_stats.Table

let publication () =
  section "E-4b: asynchronous publication — the contract's k > 3t threshold";
  let feed = Feed.make ~sources:5 ~faulty:[ 4 ] ~cells:32 ~seed:6L () in
  let honest_report _ =
    Array.init (Feed.cells feed) (fun c ->
        let lo, hi = Feed.honest_range feed ~cell:c in
        (lo + hi) / 2)
  in
  let table = Table.create [ "k"; "t"; "k > 3t"; "rushing byz"; "published in range" ] in
  List.iter
    (fun (k, t) ->
      let fault = Fault.choose ~k (Fault.First t) in
      let r = Pipeline.publish ~feed ~fault ~honest_report () in
      Table.add_row table
        [
          string_of_int k;
          string_of_int t;
          (if Pipeline.validate ~k ~t = Ok () then "yes" else "no");
          "yes";
          (if r.Pipeline.odd_ok then "yes" else "NO (attacked)");
        ])
    [ (10, 3); (13, 4); (16, 5); (8, 3) (* the gap: 2t < k <= 3t *); (9, 3); (12, 4) ];
  Table.print table;
  note
    "\nThe contract accepts the first k - t submissions; rushing Byzantine garbage can\n\
     be half of them unless k > 3t — the asynchronous tax on step (3), which the\n\
     paper abstracts away and this pipeline makes measurable.\n"

let epochs () =
  section "E-4c: multi-epoch operation — cumulative saving over 8 publications";
  let base =
    { Odc.peers = 32; peer_faults = 6; sources = 9; source_faults = 3; cells = 128; seed = 12L }
  in
  match Dr_oracle.Epochs.run { Dr_oracle.Epochs.base; epochs = 8 } with
  | Error e -> note "epochs rejected: %s\n" e
  | Ok s ->
    note "8 epochs, all ODD-correct: %b\n" s.Dr_oracle.Epochs.all_ok;
    note "cumulative cell queries: %d (classical baseline would pay %d)\n"
      s.Dr_oracle.Epochs.total_queries s.Dr_oracle.Epochs.baseline_total;
    note "cumulative saving: %.1fx\n" s.Dr_oracle.Epochs.saving

let run () =
  section "E-4: oracle data collection — classical vs Download-based (Thms 4.1/4.2)";
  let table =
    Table.create
      [ "k nodes"; "byz nodes"; "baseline total"; "download total"; "saving"; "gamma*k"; "ODD both" ]
  in
  List.iter
    (fun (peers, peer_faults) ->
      let p =
        { Odc.peers; peer_faults; sources = 9; source_faults = 3; cells = 256; seed = 8L }
      in
      let b = Odc.baseline p in
      let d = Odc.download_based ~protocol:`Committee p in
      let gamma_k = float_of_int (peers - peer_faults) in
      Table.add_row table
        [
          string_of_int peers;
          string_of_int peer_faults;
          string_of_int b.Odc.cell_queries_total;
          string_of_int d.Odc.cell_queries_total;
          Printf.sprintf "%.1fx" (ratio b.Odc.cell_queries_total d.Odc.cell_queries_total);
          Printf.sprintf "%.0f" gamma_k;
          (if b.Odc.odd_ok && d.Odc.odd_ok then "yes" else "NO");
        ])
    [ (8, 2); (16, 2); (32, 2); (64, 2); (96, 2); (32, 6); (64, 12); (96, 18) ];
  Table.print table;
  note
    "\nWith a fixed Byzantine-node count the saving grows linearly in the network size\n\
     (first five rows): baseline costs every node 2ts+1 full sources, Download-based\n\
     splits that bill k/(2t+1) ways — Theorem 4.2. When the Byzantine share is a fixed\n\
     fraction (last rows), the saving settles at ~1/(2*beta). Both constructions keep\n\
     every published cell inside the honest sources' range (the ODD property).\n";
  publication ();
  epochs ()
