(* The experiment harness: regenerates every table/figure-equivalent of the
   paper (see DESIGN.md's experiment index and EXPERIMENTS.md for the
   paper-vs-measured record).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table1 byz   # selected sections
     dune exec bench/main.exe -- --list       # section names *)

let sections =
  [
    ("table1", Exp_table1.run, "Table 1: the query-complexity landscape");
    ("crash", Exp_crash.run, "E-2.3 / E-2.13: crash-fault theorems");
    ("byz", Exp_byz.run, "E-3.4 / E-3.7 / E-3.12: Byzantine-minority protocols");
    ("lowerbound", Exp_lowerbound.run, "E-3.1 / E-3.2: Byzantine-majority lower bounds");
    ("oracle", Exp_oracle.run, "E-4: blockchain-oracle application");
    ("ablation", Exp_ablation.run, "A-1 .. A-3: design-choice ablations");
    ("bechamel", Bench_micro.run, "wall-clock microbenches");
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--list" args then
    List.iter (fun (name, _, doc) -> Printf.printf "%-12s %s\n" name doc) sections
  else begin
    let selected =
      match List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args with
      | [] -> List.map (fun (name, _, _) -> name) sections
      | names ->
        List.iter
          (fun name ->
            if not (List.exists (fun (s, _, _) -> s = name) sections) then begin
              Printf.eprintf "unknown section %S (try --list)\n" name;
              exit 2
            end)
          names;
        names
    in
    List.iter
      (fun (name, run, _) -> if List.mem name selected then run ())
      sections
  end
