(* Shared helpers for the experiment harness. *)

open Dr_core
module Latency = Dr_adversary.Latency
module Crash_plan = Dr_adversary.Crash_plan
module Prng = Dr_engine.Prng
module Table = Dr_stats.Table

let section title =
  Printf.printf "\n========== %s ==========\n\n" title

let note fmt = Printf.printf fmt

let jitter seed = Latency.jittered (Prng.create seed)

let crash_inst ?seed ?b ~k ~n ~t () = Problem.random_instance ?seed ?b ~k ~n ~t ()

let byz_inst ?seed ?b ~k ~n ~t () =
  Problem.random_instance ?seed ?b ~model:Problem.Byzantine ~k ~n ~t ()

(* Worst-case crash environment: random finite delays, every faulty peer
   silent from the start — the schedule that maximizes re-assignment work
   (Q -> n/(gamma k)). *)
let silent_opts inst seed =
  Exec.default
  |> Exec.with_latency (jitter seed)
  |> Exec.with_crash (Crash_plan.mid_broadcast inst.Problem.fault ~after_sends:0)

(* Realistic storm: staggered mid-execution deaths. *)
let storm_opts inst seed =
  Exec.default
  |> Exec.with_latency (jitter seed)
  |> Exec.with_crash (Crash_plan.staggered inst.Problem.fault ~first:0.5 ~gap:2.0)

let ratio a b = if b = 0 then nan else float_of_int a /. float_of_int b

let fmt_ratio a b = Printf.sprintf "%.2f" (ratio a b)

let ideal_q inst = (Problem.n inst + inst.Problem.k - 1) / inst.Problem.k

(* Mean over seeds of a measurement taken from a fresh report. *)
let over_seeds ~seeds f =
  List.map (fun i -> f (Int64.of_int i)) (List.init seeds (fun i -> i + 1))
